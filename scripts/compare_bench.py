#!/usr/bin/env python3
"""Compare benchmark JSON outputs against committed baselines.

Usage:
    compare_bench.py BASELINE_DIR CURRENT_DIR [--time-tolerance F]
                     [--counter-tolerance R] [--list]

For every ``*.json`` in BASELINE_DIR a file of the same name must exist in
CURRENT_DIR. Two formats are understood:

* the repo's ``JsonMetrics`` format (``bench_json.hpp``): ``counter``
  metrics must match within a relative tolerance, ``time_ms`` metrics must
  not exceed the baseline by more than a multiplicative factor. Counters
  whose name ends in ``certificate_ok`` are optimality certificates from
  the exact-flow oracle (max-flow value == min-cut capacity) and must be
  exactly 1 in the *current* run — no tolerance, and the check applies even
  to certificate metrics the baseline does not know about;
* google-benchmark's ``--benchmark_out`` format (``bench_micro``): every
  baseline benchmark must still exist, and its ``real_time`` must not
  exceed the baseline by more than the time factor.

Tolerances come from (highest precedence first): the command line, the
baseline file's ``counter_tolerance`` / ``time_tolerance`` fields, then the
defaults below. The defaults are deliberately loose on time — baselines are
recorded on a different machine than CI runs on, so only catastrophic
slowdowns (an accidental O(n^2), a serialization bug) should trip the gate
— and tight on counters, which are seed-deterministic.

Exit status: 0 if everything passes, 1 with a per-metric report otherwise.
"""

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_TIME_TOLERANCE = 10.0   # current time may be up to 10x the baseline
DEFAULT_COUNTER_TOLERANCE = 0.0  # counters must match exactly unless the
                                 # baseline file grants slack


def load(path: Path):
    try:
        with path.open() as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")


def is_google_benchmark(doc) -> bool:
    return isinstance(doc, dict) and "benchmarks" in doc


def compare_google_benchmark(name, base, cur, time_tol, failures):
    base_rows = {b["name"]: b for b in base.get("benchmarks", [])}
    cur_rows = {b["name"]: b for b in cur.get("benchmarks", [])}
    for bench_name, base_row in base_rows.items():
        cur_row = cur_rows.get(bench_name)
        if cur_row is None:
            failures.append(f"{name}: benchmark '{bench_name}' missing from current run")
            continue
        base_time = base_row.get("real_time")
        cur_time = cur_row.get("real_time")
        if base_time is None or cur_time is None:
            continue
        if base_time > 0 and cur_time > base_time * time_tol:
            failures.append(
                f"{name}: '{bench_name}' real_time {cur_time:.0f} "
                f"{base_row.get('time_unit', 'ns')} exceeds baseline "
                f"{base_time:.0f} x{time_tol:g} budget")


def compare_metrics(name, base, cur, args, failures):
    time_tol = args.time_tolerance
    if time_tol is None:
        time_tol = base.get("time_tolerance", DEFAULT_TIME_TOLERANCE)
    counter_tol = args.counter_tolerance
    if counter_tol is None:
        counter_tol = base.get("counter_tolerance", DEFAULT_COUNTER_TOLERANCE)

    # Certificate gate: every certificate_ok counter in the current run must
    # verify, independent of what the baseline recorded (a run whose oracle
    # cannot certify its optimum is wrong, not merely drifted).
    for metric in cur.get("metrics", []):
        if metric["name"].endswith("certificate_ok") \
                and metric.get("kind") != "time_ms":
            if float(metric["value"]) != 1.0:
                failures.append(
                    f"{name}: certificate '{metric['name']}' = "
                    f"{metric['value']!r}, expected 1 (max-flow value must "
                    f"equal min-cut capacity)")

    cur_metrics = {m["name"]: m for m in cur.get("metrics", [])}
    for metric in base.get("metrics", []):
        metric_name = metric["name"]
        current = cur_metrics.get(metric_name)
        if current is None:
            failures.append(f"{name}: metric '{metric_name}' missing from current run")
            continue
        base_value = float(metric["value"])
        cur_value = float(current["value"])
        if metric.get("kind") == "time_ms":
            if base_value > 0 and cur_value > base_value * time_tol:
                failures.append(
                    f"{name}: time '{metric_name}' {cur_value:.2f}ms exceeds "
                    f"baseline {base_value:.2f}ms x{time_tol:g} budget")
        else:
            scale = max(abs(base_value), 1e-12)
            if not math.isfinite(cur_value) or abs(cur_value - base_value) > counter_tol * scale:
                failures.append(
                    f"{name}: counter '{metric_name}' = {cur_value!r}, baseline "
                    f"{base_value!r} (tolerance {counter_tol:g} relative)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("current_dir", type=Path)
    parser.add_argument("--time-tolerance", type=float, default=None,
                        help="override the multiplicative wall-time budget")
    parser.add_argument("--counter-tolerance", type=float, default=None,
                        help="override the relative counter tolerance")
    parser.add_argument("--list", action="store_true",
                        help="print every compared metric, not just failures")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("*.json"))
    if not baselines:
        print(f"error: no *.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    for base_path in baselines:
        cur_path = args.current_dir / base_path.name
        if not cur_path.exists():
            failures.append(f"{base_path.name}: no current-run file at {cur_path}")
            continue
        base = load(base_path)
        cur = load(cur_path)
        if args.list:
            count = len(base.get("benchmarks", base.get("metrics", [])))
            print(f"comparing {base_path.name} ({count} entries)")
        if is_google_benchmark(base):
            time_tol = args.time_tolerance if args.time_tolerance is not None \
                else DEFAULT_TIME_TOLERANCE
            compare_google_benchmark(base_path.name, base, cur, time_tol, failures)
        else:
            compare_metrics(base_path.name, base, cur, args, failures)

    if failures:
        print(f"perf gate: {len(failures)} failure(s)", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"perf gate: {len(baselines)} baseline file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
