#!/usr/bin/env bash
# Regenerate every committed perf-gate baseline (bench/baselines/*.json) in
# one deterministic invocation: fixed seeds are baked into the harnesses,
# and the run is pinned to a single-threaded executor so counters cannot
# depend on the machine (they are bitwise thread-count invariant anyway —
# the pin is belt and braces for wall-time comparability).
#
# Usage: scripts/update_baselines.sh [BUILD_DIR]
#   BUILD_DIR defaults to ./build and must already contain the Release
#   bench binaries (cmake -B build -DCMAKE_BUILD_TYPE=Release && cmake
#   --build build -j).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$REPO_ROOT/bench/baselines"
BENCH_DIR="$BUILD_DIR/bench"

if [[ ! -x "$BENCH_DIR/bench_sampling" ]]; then
  echo "error: $BENCH_DIR does not contain the bench binaries" >&2
  echo "       (build first: cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

export MPCALLOC_THREADS=1
mkdir -p "$OUT_DIR"

run() {
  echo "== $* =="
  "$@" > /dev/null
}

if [[ -x "$BENCH_DIR/bench_micro" ]]; then
  run "$BENCH_DIR/bench_micro" --smoke --json="$OUT_DIR/bench_micro_smoke.json"
else
  echo "warning: bench_micro not built (google-benchmark missing); keeping the committed baseline" >&2
fi
run "$BENCH_DIR/bench_sampling"    --threads=1 --json="$OUT_DIR/bench_sampling.json"
run "$BENCH_DIR/bench_mpc_rounds"  --threads=1 --json="$OUT_DIR/bench_mpc_rounds.json"
run "$BENCH_DIR/bench_rounds_vs_n" --threads=1 --json="$OUT_DIR/bench_rounds_vs_n.json"
run "$BENCH_DIR/bench_boosting"    --json="$OUT_DIR/bench_boosting.json"
run "$BENCH_DIR/bench_rounding"    --json="$OUT_DIR/bench_rounding.json"

echo "baselines refreshed in $OUT_DIR"
