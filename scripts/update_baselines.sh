#!/usr/bin/env bash
# Regenerate every committed perf-gate baseline (bench/baselines/*.json) in
# one deterministic invocation: fixed seeds are baked into the harnesses,
# and the run is pinned to a single-threaded executor so counters cannot
# depend on the machine (they are bitwise thread-count invariant anyway —
# the pin is belt and braces for wall-time comparability).
#
# Usage: scripts/update_baselines.sh [BUILD_DIR]
#   BUILD_DIR defaults to ./build and must already contain the Release
#   bench binaries (cmake -B build -DCMAKE_BUILD_TYPE=Release && cmake
#   --build build -j).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$REPO_ROOT/bench/baselines"
BENCH_DIR="$BUILD_DIR/bench"

if [[ ! -x "$BENCH_DIR/bench_sampling" ]]; then
  echo "error: $BENCH_DIR does not contain the bench binaries" >&2
  echo "       (build first: cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

export MPCALLOC_THREADS=1
mkdir -p "$OUT_DIR"

# Keep the committed MPC counter baselines around for the drift check below.
COMMITTED_DIR="$(mktemp -d)"
trap 'rm -rf "$COMMITTED_DIR"' EXIT
MPC_COUNTER_FILES=(bench_mpc_rounds.json bench_sampling.json
                   bench_mpc_memory.json bench_fault_recovery.json
                   bench_serving.json)
for f in "${MPC_COUNTER_FILES[@]}"; do
  if ! git -C "$REPO_ROOT" show "HEAD:bench/baselines/$f" \
      > "$COMMITTED_DIR/$f" 2>/dev/null; then
    rm -f "$COMMITTED_DIR/$f"
    echo "warning: no committed baseline for $f at HEAD; it will skip the drift check" >&2
  fi
done

run() {
  echo "== $* =="
  "$@" > /dev/null
}

if [[ -x "$BENCH_DIR/bench_micro" ]]; then
  run "$BENCH_DIR/bench_micro" --smoke --json="$OUT_DIR/bench_micro_smoke.json"
else
  echo "warning: bench_micro not built (google-benchmark missing); keeping the committed baseline" >&2
fi
run "$BENCH_DIR/bench_sampling"    --threads=1 --json="$OUT_DIR/bench_sampling.json"
run "$BENCH_DIR/bench_mpc_rounds"  --threads=1 --json="$OUT_DIR/bench_mpc_rounds.json"
run "$BENCH_DIR/bench_mpc_memory"  --threads=1 --json="$OUT_DIR/bench_mpc_memory.json"
run "$BENCH_DIR/bench_fault_recovery" --threads=1 --json="$OUT_DIR/bench_fault_recovery.json"
run "$BENCH_DIR/bench_rounds_vs_n" --threads=1 --json="$OUT_DIR/bench_rounds_vs_n.json"
run "$BENCH_DIR/bench_boosting"    --json="$OUT_DIR/bench_boosting.json"
run "$BENCH_DIR/bench_rounding"    --json="$OUT_DIR/bench_rounding.json"
run "$BENCH_DIR/bench_approx_quality" --json="$OUT_DIR/bench_approx_quality.json"
run "$BENCH_DIR/bench_serving"     --threads=1 --json="$OUT_DIR/bench_serving.json"
run "$BENCH_DIR/bench_load"        --threads=1 --json="$OUT_DIR/bench_load.json"

# MPC counters (rounds, words moved, peak machine/total words) are exact
# model quantities, not time budgets: a refactor must reproduce them
# bitwise, so silent drift here is a correctness bug, not noise. Fail
# loudly if the regenerated counters differ from the committed ones; an
# intentional semantic change can acknowledge the drift by re-running with
# MPCALLOC_ALLOW_MPC_DRIFT=1 (the regenerated files are already in place).
# Compare whichever committed files exist (compare_bench.py walks the
# baseline dir), so one missing file never silently disables the check for
# the others.
if [[ -n "$(ls -A "$COMMITTED_DIR")" ]]; then
  # --counter-tolerance 0 overrides the ~10% slack the baseline files grant
  # the CI perf gate (which runs on different hardware): for a same-machine
  # regeneration the counters must be *bitwise* reproductions.
  if ! python3 "$REPO_ROOT/scripts/compare_bench.py" \
      "$COMMITTED_DIR" "$OUT_DIR" --time-tolerance 1e9 --counter-tolerance 0; then
    if [[ "${MPCALLOC_ALLOW_MPC_DRIFT:-0}" == "1" ]]; then
      echo "warning: MPC counter baselines drifted from HEAD" >&2
      echo "         (accepted via MPCALLOC_ALLOW_MPC_DRIFT=1)" >&2
    else
      echo "ERROR: MPC counter baselines drifted from the committed values." >&2
      echo "       These counters are exact (bitwise thread/worker-count" >&2
      echo "       invariant); drift means the runtime's record streams or" >&2
      echo "       accounting changed. If that is intentional, re-run with" >&2
      echo "       MPCALLOC_ALLOW_MPC_DRIFT=1 and explain the change in the" >&2
      echo "       commit message." >&2
      exit 1
    fi
  fi
else
  echo "warning: no committed MPC baselines at HEAD at all; skipping drift check" >&2
fi

echo "baselines refreshed in $OUT_DIR"
