// The shard-owned runtime's structural guarantees: per-worker ownership
// partition, owner-compute affinity of shard-local passes, the three
// capacity rules with structured error context, and the transport contract
// that a bad round plan throws before any arena is mutated.
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"
#include "mpc/transport.hpp"
#include "mpc/worker.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace mpcalloc::mpc {
namespace {

TEST(WorkerGroup, PartitionsMachinesContiguouslyAndEvenly) {
  const WorkerGroup group(10, 100, 4);
  ASSERT_EQ(group.num_workers(), 4u);
  // 10 = 3 + 3 + 2 + 2, contiguous and in order.
  EXPECT_EQ(group.worker(0).first_machine(), 0u);
  EXPECT_EQ(group.worker(0).end_machine(), 3u);
  EXPECT_EQ(group.worker(1).end_machine(), 6u);
  EXPECT_EQ(group.worker(2).end_machine(), 8u);
  EXPECT_EQ(group.worker(3).end_machine(), 10u);
  for (std::size_t m = 0; m < 10; ++m) {
    const std::size_t owner = group.owner_of(m);
    EXPECT_GE(m, group.worker(owner).first_machine());
    EXPECT_LT(m, group.worker(owner).end_machine());
  }
  EXPECT_THROW((void)group.owner_of(10), std::out_of_range);
}

TEST(WorkerGroup, NeverCreatesMoreWorkersThanMachines) {
  const WorkerGroup group(3, 100, 16);
  EXPECT_EQ(group.num_workers(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(group.worker(w).num_owned(), 1u);
  }
}

TEST(WorkerGroup, DistVecViewsLiveInOwnersArenas) {
  WorkerGroup group(7, 100, 3);
  const DistVec d = group.create_dist(2);
  ASSERT_EQ(d.num_shards(), 7u);
  for (std::size_t m = 0; m < 7; ++m) {
    EXPECT_EQ(d.shard_owner(m), group.owner_of(m));
  }
}

TEST(WorkerAffinity, OwnedPassVisitsEveryMachineOnItsOwner) {
  WorkerGroup group(12, 1 << 12, 4);
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> visits(12, 0);
  std::vector<std::size_t> seen_worker(12, kUnvisited);
  std::vector<std::thread::id> seen_thread(12);
  group.set_affinity_observer([&](std::size_t worker, std::size_t machine) {
    // Machines are visited once per pass, so these writes are disjoint.
    ++visits[machine];
    seen_worker[machine] = worker;
    seen_thread[machine] = std::this_thread::get_id();
  });
  group.for_each_owned_shard(4, [](std::size_t) {});
  group.set_affinity_observer(nullptr);

  for (std::size_t m = 0; m < 12; ++m) {
    EXPECT_EQ(visits[m], 1u) << "machine " << m;
    EXPECT_EQ(seen_worker[m], group.owner_of(m)) << "machine " << m;
  }
  // Owner-compute affinity: within one pass a worker's machines are all
  // processed by a single executor thread.
  for (std::size_t w = 0; w < group.num_workers(); ++w) {
    const Worker& worker = group.worker(w);
    for (std::size_t m = worker.first_machine() + 1; m < worker.end_machine();
         ++m) {
      EXPECT_EQ(seen_thread[m], seen_thread[worker.first_machine()])
          << "machine " << m << " left worker " << w << "'s thread";
    }
  }
}

TEST(WorkerAffinity, PrimitivesRunShardLocalComputeOnOwners) {
  // Drive a real primitive through a Cluster and assert every owned-shard
  // visit it makes stays on the owning worker.
  Cluster cluster(8, 1 << 14, /*num_workers=*/4);
  cluster.set_num_threads(4);
  Xoshiro256pp rng(7);
  std::vector<Word> flat;
  for (int i = 0; i < 500; ++i) {
    flat.push_back(rng.uniform(100));
    flat.push_back(i);
  }
  std::vector<std::size_t> bad_visits(8, 0);
  std::vector<std::size_t> visits(8, 0);
  cluster.workers().set_affinity_observer(
      [&](std::size_t worker, std::size_t machine) {
        ++visits[machine];
        if (cluster.workers().owner_of(machine) != worker) ++bad_visits[machine];
      });
  DistVec d = cluster.scatter(flat, 2);
  sample_sort(cluster, d, rng);
  cluster.workers().set_affinity_observer(nullptr);
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_GT(visits[m], 0u) << "machine " << m << " never visited";
    EXPECT_EQ(bad_visits[m], 0u) << "machine " << m << " computed off-owner";
  }
}

TEST(CapacityRules, SendOverflowThrowsStructuredError) {
  // Rule 1 can only trip if a shard was stuffed past what scatter admits,
  // so build the dataset at transport level: 10 words on machine 0, S = 8.
  WorkerGroup group(2, 8, 2);
  DistVec d = group.create_dist(1);
  d.shard(0).assign(10, 42);
  const std::vector<std::uint32_t> dest(10, 1);
  const RoundPlan plan = RoundPlan::build(d, dest, /*round=*/3);
  EXPECT_EQ(plan.sent[0], 10u);
  InProcessTransport transport(group);
  try {
    transport.exchange(plan, d, 1);
    FAIL() << "expected MpcCapacityError";
  } catch (const MpcCapacityError& error) {
    EXPECT_EQ(error.rule(), CapacityRule::kSend);
    EXPECT_EQ(error.machine(), 0u);
    EXPECT_EQ(error.round(), 3u);
    EXPECT_EQ(error.observed_words(), 10u);
    EXPECT_EQ(error.budget_words(), 8u);
  }
  // Nothing moved.
  EXPECT_EQ(d.shard(0).size(), 10u);
  EXPECT_TRUE(d.shard(1).empty());
}

TEST(CapacityRules, ReceiveOverflowThrowsStructuredError) {
  // Machines 0 and 1 each hold 6 words (within S = 8) and both send
  // everything to machine 2: it would receive 12 > 8 words in one round.
  WorkerGroup group(3, 8, 2);
  DistVec d = group.create_dist(1);
  d.shard(0).assign(6, 1);
  d.shard(1).assign(6, 2);
  const std::vector<std::uint32_t> dest(12, 2);
  const RoundPlan plan = RoundPlan::build(d, dest, /*round=*/1);
  InProcessTransport transport(group);
  try {
    transport.exchange(plan, d, 1);
    FAIL() << "expected MpcCapacityError";
  } catch (const MpcCapacityError& error) {
    EXPECT_EQ(error.rule(), CapacityRule::kReceive);
    EXPECT_EQ(error.machine(), 2u);
    EXPECT_EQ(error.observed_words(), 12u);
    EXPECT_EQ(error.budget_words(), 8u);
  }
  EXPECT_EQ(d.shard(0).size(), 6u);
  EXPECT_EQ(d.shard(1).size(), 6u);
  EXPECT_TRUE(d.shard(2).empty());
}

TEST(CapacityRules, ResidentOverflowThrowsStructuredError) {
  // Through the public Cluster API: two machines of S = 8 each hold 6
  // words; routing everything onto machine 1 receives only 6 foreign words
  // (rule 2 holds) but leaves 12 resident — rule 3 fires at arena commit.
  Cluster cluster(2, 8);
  std::vector<Word> flat(12);
  std::iota(flat.begin(), flat.end(), 0);
  DistVec d = cluster.scatter(flat, 1);
  const std::vector<std::uint32_t> dest(12, 1);
  try {
    cluster.shuffle(d, dest);
    FAIL() << "expected MpcCapacityError";
  } catch (const MpcCapacityError& error) {
    EXPECT_EQ(error.rule(), CapacityRule::kResident);
    EXPECT_EQ(error.machine(), 1u);
    EXPECT_EQ(error.round(), 1u);
    EXPECT_EQ(error.observed_words(), 12u);
    EXPECT_EQ(error.budget_words(), 8u);
  }
  // The failed round left both arenas untouched and was never charged.
  EXPECT_EQ(d.gather(), flat);
  EXPECT_EQ(cluster.rounds(), 0u);
}

TEST(Transport, ShuffleRejectsDistVecFromAnotherCluster) {
  // Same geometry, different runtime: exchanging a foreign DistVec would
  // enforce the wrong S budget against the wrong arenas' watermarks.
  Cluster a(2, 100);
  Cluster b(2, 100);
  const std::vector<Word> flat{1, 2, 3, 4};
  DistVec d = b.scatter(flat, 2);
  const std::vector<std::uint32_t> dest{0, 1};
  EXPECT_THROW(a.shuffle(d, dest), std::invalid_argument);
  EXPECT_NO_THROW(b.shuffle(d, dest));
}

TEST(CapacityRules, UnattributedErrorsReportNoMachine) {
  const Cluster small(4, 100);
  try {
    (void)broadcast_cost(small, 2000);
    FAIL() << "expected MpcCapacityError";
  } catch (const MpcCapacityError& error) {
    EXPECT_EQ(error.rule(), CapacityRule::kNone);
    EXPECT_FALSE(error.has_machine());
  }
}

TEST(Transport, OutOfRangeDestinationThrowsBeforeAnyArenaMutation) {
  WorkerGroup group(2, 100, 2);
  DistVec d = group.create_dist(2);
  d.shard(0) = {1, 2, 3, 4};
  const std::vector<std::uint32_t> dest{0, 9};
  EXPECT_THROW((void)RoundPlan::build(d, dest, 1), std::out_of_range);
  EXPECT_EQ(d.shard(0), (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_TRUE(d.shard(1).empty());
}

TEST(Transport, ClusterShuffleValidatesDestinationsBeforeMoving) {
  Cluster cluster(2, 100);
  const std::vector<Word> flat{10, 11, 20, 21};
  DistVec d = cluster.scatter(flat, 2);
  const std::vector<std::uint32_t> bad{0, 9};
  EXPECT_THROW(cluster.shuffle(d, bad), std::out_of_range);
  EXPECT_EQ(d.gather(), flat);
  EXPECT_EQ(cluster.rounds(), 0u);  // the failed round was never charged
}

TEST(Transport, ExchangeDeliversRecordsInStableDestinationOrder) {
  WorkerGroup group(3, 100, 2);
  DistVec d = group.create_dist(2);
  d.shard(0) = {0, 100, 1, 101};  // records 0, 1
  d.shard(1) = {2, 102, 3, 103};  // records 2, 3
  d.shard(2) = {4, 104};          // record 4
  // Destinations interleave sources; per destination the source (global
  // record) order must be preserved.
  const std::vector<std::uint32_t> dest{2, 0, 2, 0, 0};
  const RoundPlan plan = RoundPlan::build(d, dest, 1);
  InProcessTransport transport(group);
  transport.exchange(plan, d, 1);
  EXPECT_EQ(d.shard(0), (std::vector<Word>{1, 101, 3, 103, 4, 104}));
  EXPECT_TRUE(d.shard(1).empty());
  EXPECT_EQ(d.shard(2), (std::vector<Word>{0, 100, 2, 102}));
  // Record 1 stays on its source machine and is not counted as sent;
  // records 0, 2, 3, 4 cross machines: 4 records x 2 words.
  EXPECT_EQ(plan.total_words_sent(), 8u);
}

TEST(CapacityRules, ThrowingExchangeLeavesWatermarksUntouched) {
  // The strong exception guarantee covers the arenas' peak accounting, not
  // just the record contents: a rejected exchange never became resident, so
  // a caller that catches the error must read the same peaks as before.
  WorkerGroup group(3, 8, 2);
  DistVec d = group.create_dist(1);
  d.shard(0).assign(6, 1);
  d.shard(1).assign(6, 2);
  const std::uint64_t peak_before = group.peak_machine_words();
  const std::vector<std::uint32_t> dest(12, 2);
  const RoundPlan plan = RoundPlan::build(d, dest, 1);
  InProcessTransport transport(group);
  EXPECT_THROW(transport.exchange(plan, d, 1), MpcCapacityError);
  EXPECT_EQ(group.peak_machine_words(), peak_before);
  EXPECT_EQ(d.shard(0).size(), 6u);
  EXPECT_EQ(d.shard(1).size(), 6u);
  EXPECT_TRUE(d.shard(2).empty());
}

TEST(CapacityRules, FailedScatterLeavesWatermarksAndCountersUntouched) {
  // Load within budget first so the watermark is nonzero, then attempt a
  // scatter whose shards exceed S: every counter and peak must read exactly
  // as before the failed call — no machine's watermark may have been
  // committed before the violation was detected.
  Cluster cluster(2, 8);
  (void)cluster.scatter(std::vector<Word>(8, 1), 1);  // 4 words per machine
  const std::uint64_t peak_before = cluster.peak_machine_words();
  const std::uint64_t total_before = cluster.peak_total_words();
  ASSERT_GT(peak_before, 0u);
  EXPECT_THROW((void)cluster.scatter(std::vector<Word>(20, 2), 1),
               MpcCapacityError);
  EXPECT_EQ(cluster.peak_machine_words(), peak_before);
  EXPECT_EQ(cluster.peak_total_words(), total_before);
  EXPECT_EQ(cluster.rounds(), 0u);
}

TEST(CapacityRules, FaultingExchangeLeavesStateExactlyAsItWas) {
  // Same guarantee for an *injected* transient fault: destination arenas,
  // DistVec contents, and watermarks all read as before the throw.
  WorkerGroup group(4, 64, 2);
  auto inner = std::make_unique<InProcessTransport>(group);
  FaultPlan fault_plan;
  fault_plan.forced = {FaultEvent{0, FaultKind::kExchangeFailure, 1}};
  FaultInjectingTransport transport(std::move(inner), group,
                                    std::move(fault_plan));

  DistVec d = group.create_dist(2);
  d.shard(0) = {0, 100, 1, 101};
  d.shard(1) = {2, 102};
  const std::uint64_t peak_before = group.peak_machine_words();
  const std::vector<std::uint32_t> dest{3, 3, 3};
  const RoundPlan plan = RoundPlan::build(d, dest, 1);
  EXPECT_THROW(transport.exchange(plan, d, 1), TransportFault);
  EXPECT_EQ(d.shard(0), (std::vector<Word>{0, 100, 1, 101}));
  EXPECT_EQ(d.shard(1), (std::vector<Word>{2, 102}));
  EXPECT_TRUE(d.shard(3).empty());
  EXPECT_EQ(group.peak_machine_words(), peak_before);
  // The retry (same plan round, next attempt) goes through and delivers.
  transport.exchange(plan, d, 1);
  EXPECT_EQ(d.shard(3), (std::vector<Word>{0, 100, 1, 101, 2, 102}));
  EXPECT_EQ(transport.faults_injected(), 1u);
  EXPECT_EQ(transport.exchanges_started(), 1u);
}

TEST(ClusterLiveness, ChargeRoundsZeroIsNoOpButAssertsLive) {
  Cluster cluster(2, 100);
  cluster.charge_rounds(0);
  EXPECT_EQ(cluster.rounds(), 0u);
  cluster.charge_rounds(3);
  EXPECT_EQ(cluster.rounds(), 3u);

  Cluster moved = std::move(cluster);
  EXPECT_TRUE(moved.is_live());
  EXPECT_NO_THROW(moved.charge_rounds(0));
  // NOLINTNEXTLINE(bugprone-use-after-move): the moved-from contract is
  // exactly what is under test.
  EXPECT_FALSE(cluster.is_live());
  EXPECT_THROW(cluster.charge_rounds(0), std::logic_error);
  EXPECT_THROW(cluster.account_resident(0, 1), std::logic_error);
}

TEST(ClusterLiveness, ResetCountersClearsArenaWatermarks) {
  Cluster cluster(4, 100, 2);
  std::vector<Word> flat(40, 7);
  (void)cluster.scatter(flat, 1);
  EXPECT_GT(cluster.peak_machine_words(), 0u);
  cluster.reset_counters();
  EXPECT_EQ(cluster.peak_machine_words(), 0u);
  EXPECT_EQ(cluster.peak_total_words(), 0u);
}

}  // namespace
}  // namespace mpcalloc::mpc
