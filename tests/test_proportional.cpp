#include "alloc/proportional.hpp"
#include "alloc/verify.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::InstanceSpec;
using mpcalloc::testing::default_specs;
using mpcalloc::testing::make_instance;

TEST(PowTable, MatchesDirectPow) {
  const PowTable table(0.25);
  for (int d = 0; d >= -200; --d) {
    EXPECT_NEAR(table.pow(d), std::pow(1.25, d), std::pow(1.25, d) * 1e-12);
  }
  for (int d = 0; d <= 64; ++d) {
    EXPECT_NEAR(table.pow(d), std::pow(1.25, d), std::pow(1.25, d) * 1e-12);
  }
}

TEST(PowTable, DeepNegativeClampsToZero) {
  const PowTable table(0.5);
  EXPECT_EQ(table.pow(-10'000'000), 0.0);
}

TEST(PowTable, GuardsInputs) {
  EXPECT_THROW(PowTable(0.0), std::invalid_argument);
  EXPECT_THROW(PowTable(-0.1), std::invalid_argument);
  EXPECT_THROW(PowTable(1.5), std::invalid_argument);
  const PowTable table(0.25, 8);
  EXPECT_THROW((void)table.pow(9), std::out_of_range);
}

TEST(Tau, GrowsLogarithmicallyInLambda) {
  const double eps = 0.25;
  const std::size_t t1 = tau_for_arboricity(1, eps);
  const std::size_t t16 = tau_for_arboricity(16, eps);
  const std::size_t t256 = tau_for_arboricity(256, eps);
  EXPECT_LT(t1, t16);
  EXPECT_LT(t16, t256);
  // Doubling log λ adds ~log_{1+ε}(16)=constant rounds: check additivity.
  const auto step1 = static_cast<double>(t16 - t1);
  const auto step2 = static_cast<double>(t256 - t16);
  EXPECT_NEAR(step1, step2, 3.0);
}

TEST(Tau, OnePlusEpsBudgetDominates) {
  EXPECT_GT(tau_for_one_plus_eps(1000, 0.25),
            tau_for_arboricity(1000, 0.25));
}

TEST(Proportional, RejectsBadConfig) {
  AllocationInstance instance{star_graph(3), {1}};
  ProportionalConfig config;
  config.max_rounds = 0;
  EXPECT_THROW(run_proportional(instance, config), std::invalid_argument);
}

TEST(Proportional, StarSaturatesCenter) {
  AllocationInstance instance{star_graph(20), {5}};
  const ProportionalResult result = solve_two_plus_eps(instance, 1.0, 0.25);
  result.allocation.check_valid(instance);
  // OPT = 5; a 2+10ε=4.5 approximation must achieve ≥ 5/4.5 ≈ 1.11.
  EXPECT_GE(result.allocation.weight(), 5.0 / 4.5 - 1e-9);
}

TEST(Proportional, SingleEdgeIsExact) {
  BipartiteGraphBuilder b(1, 1);
  b.add_edge(0, 0);
  AllocationInstance instance{b.build(), {1}};
  const ProportionalResult result = solve_two_plus_eps(instance, 1.0, 0.25);
  EXPECT_NEAR(result.allocation.weight(), 1.0, 1e-9);
}

class ProportionalSuite : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(ProportionalSuite, OutputIsAlwaysFeasible) {
  const AllocationInstance instance = make_instance(GetParam());
  for (const double eps : {0.1, 0.25, 0.5}) {
    const ProportionalResult result =
        solve_two_plus_eps(instance, GetParam().lambda, eps);
    result.allocation.check_valid(instance);
  }
}

TEST_P(ProportionalSuite, Theorem9ApproximationBound) {
  const AllocationInstance instance = make_instance(GetParam());
  const double eps = 0.25;
  const ProportionalResult result =
      solve_two_plus_eps(instance, GetParam().lambda, eps);
  const double ratio = fractional_ratio(instance, result.allocation);
  EXPECT_LE(ratio, 2.0 + 10.0 * eps + 1e-6) << GetParam().name;
}

TEST_P(ProportionalSuite, MatchWeightLowerBoundsOutput) {
  // MatchWeight = Σ min(C_v, alloc_v) is exactly the weight of the scaled
  // output of lines 5–6 *when* no vertex is over-allocated; in general the
  // output weight is within (1+3ε) of it (Lemma 7's bounded over-allocation).
  const AllocationInstance instance = make_instance(GetParam());
  const double eps = 0.25;
  const ProportionalResult result =
      solve_two_plus_eps(instance, GetParam().lambda, eps);
  EXPECT_LE(result.allocation.weight(), result.match_weight + 1e-6);
  EXPECT_GE(result.allocation.weight(),
            result.match_weight / (1.0 + 3.0 * eps) - 1e-6);
}

TEST_P(ProportionalSuite, AdaptiveStopCertifiesSameBound) {
  const AllocationInstance instance = make_instance(GetParam());
  const double eps = 0.25;
  const ProportionalResult result = solve_adaptive(instance, eps);
  result.allocation.check_valid(instance);
  const double ratio = fractional_ratio(instance, result.allocation);
  EXPECT_LE(ratio, 2.0 + 10.0 * eps + 1e-6) << GetParam().name;
  // The λ-oblivious run must not exceed the λ-aware budget (Theorem 9's
  // proof shows the condition must hold by round τ(λ)).
  const ArboricityEstimate est = estimate_arboricity(instance.graph);
  EXPECT_LE(result.rounds_executed,
            tau_for_arboricity(est.upper_bound, eps))
      << GetParam().name;
}

TEST_P(ProportionalSuite, Lemma7UnderAndOverAllocationBounds) {
  const AllocationInstance instance = make_instance(GetParam());
  const double eps = 0.25;
  ProportionalConfig config;
  config.epsilon = eps;
  config.max_rounds = tau_for_arboricity(GetParam().lambda, eps);
  const ProportionalResult result = run_proportional(instance, config);

  const auto top = static_cast<std::int32_t>(result.rounds_executed);
  const auto bottom = -static_cast<std::int32_t>(result.rounds_executed);
  for (Vertex v = 0; v < instance.graph.num_right(); ++v) {
    const double cap = static_cast<double>(instance.capacities[v]);
    if (result.final_levels[v] < top) {
      EXPECT_GE(result.final_alloc[v], cap / (1.0 + 3.0 * eps) - 1e-9)
          << "v=" << v;
    }
    if (result.final_levels[v] > bottom) {
      EXPECT_LE(result.final_alloc[v], cap * (1.0 + 3.0 * eps) + 1e-9)
          << "v=" << v;
    }
  }
}

TEST_P(ProportionalSuite, Algorithm3LooseThresholdsStayConstantFactor) {
  const AllocationInstance instance = make_instance(GetParam());
  const double eps = 0.1;
  const double k = 4.0;
  ProportionalConfig config;
  config.epsilon = eps;
  config.max_rounds = tau_for_arboricity(GetParam().lambda, eps);
  // Adversarial-ish k_{v,r} pattern within [1/4, 4].
  config.threshold_k = [k](Vertex v, std::size_t round) {
    return (v + round) % 2 == 0 ? k : 1.0 / k;
  };
  const ProportionalResult result = run_proportional(instance, config);
  result.allocation.check_valid(instance);
  const double ratio = fractional_ratio(instance, result.allocation);
  // Theorem 16: (2 + (2k+8)ε)-approximation.
  EXPECT_LE(ratio, 2.0 + (2.0 * k + 8.0) * eps + 1e-6) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Instances, ProportionalSuite,
                         ::testing::ValuesIn(default_specs()),
                         [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
                           return param_info.param.name;
                         });

TEST(Proportional, Theorem20OnePlusEpsRegime) {
  // Small instance so the Θ(log(|R|)/ε²) budget is cheap.
  Xoshiro256pp rng(33);
  AllocationInstance instance;
  instance.graph = union_of_forests(120, 40, 3, rng);
  instance.capacities = uniform_capacities(40, 1, 4, rng);
  const double eps = 0.25;
  ProportionalConfig config;
  config.epsilon = eps;
  config.max_rounds = tau_for_one_plus_eps(instance.graph.num_right(), eps);
  const ProportionalResult result = run_proportional(instance, config);
  const double ratio = fractional_ratio(instance, result.allocation);
  EXPECT_LE(ratio, 1.0 + 18.0 * eps + 1e-6);
  // Empirically this regime should land well under the 2+10ε bound too.
  EXPECT_LE(ratio, 2.0);
}

TEST(Proportional, UnitCapacitiesBehaveLikeMatching) {
  Xoshiro256pp rng(34);
  AllocationInstance instance;
  instance.graph = union_of_forests(300, 300, 2, rng);
  instance.capacities = unit_capacities(300);
  const ProportionalResult result = solve_two_plus_eps(instance, 2.0, 0.25);
  result.allocation.check_valid(instance);
  EXPECT_LE(fractional_ratio(instance, result.allocation), 4.5);
}

TEST(Proportional, WeightHistoryHasOneEntryPerRound) {
  AllocationInstance instance{star_graph(20), {5}};
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 12;
  config.track_weight_history = true;
  const ProportionalResult result = run_proportional(instance, config);
  EXPECT_EQ(result.weight_history.size(), result.rounds_executed);
}

TEST(Proportional, LevelsStayWithinRoundBounds) {
  const AllocationInstance instance = make_instance(default_specs()[2]);
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 15;
  const ProportionalResult result = run_proportional(instance, config);
  for (const auto level : result.final_levels) {
    EXPECT_LE(std::abs(level), 15);
  }
}

TEST(Proportional, IsolatedVerticesAreHarmless) {
  BipartiteGraphBuilder b(4, 3);
  b.add_edge(0, 0);
  // u1..u3 and v1..v2 are isolated.
  AllocationInstance instance{b.build(), {2, 1, 1}};
  const ProportionalResult result = solve_two_plus_eps(instance, 1.0, 0.25);
  result.allocation.check_valid(instance);
  EXPECT_NEAR(result.allocation.weight(), 1.0, 1e-9);
}

TEST(TerminationCheck, EmptyTopLevelAlwaysSatisfies) {
  // If no vertex sits at the top level, N(L_top)=∅ and the condition holds.
  AllocationInstance instance{star_graph(4), {2}};
  const std::vector<std::int32_t> levels{0};  // round=3, top=3: not at top
  const std::vector<double> alloc{2.0};
  const TerminationCheck check =
      check_termination(instance, levels, alloc, 3, 0.25);
  EXPECT_TRUE(check.satisfied);
  EXPECT_EQ(check.neighbors_of_top, 0u);
}

TEST(TerminationCheck, CountsNeighborsOfTopOnce) {
  // Two top-level R vertices sharing all L neighbours.
  BipartiteGraphBuilder b(3, 2);
  for (Vertex u = 0; u < 3; ++u) {
    b.add_edge(u, 0);
    b.add_edge(u, 1);
  }
  AllocationInstance instance{b.build(), {1, 1}};
  const std::vector<std::int32_t> levels{1, 1};
  const std::vector<double> alloc{0.1, 0.1};
  const TerminationCheck check =
      check_termination(instance, levels, alloc, 1, 0.25);
  EXPECT_EQ(check.neighbors_of_top, 3u);
  EXPECT_EQ(check.bottom_size, 0u);
}

}  // namespace
}  // namespace mpcalloc
