#include "alloc/local_host.hpp"
#include "alloc/proportional.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::InstanceSpec;
using mpcalloc::testing::default_specs;
using mpcalloc::testing::make_instance;

class LocalHostSuite : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(LocalHostSuite, AgreesWithVectorisedEngine) {
  const AllocationInstance instance = make_instance(GetParam());
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 20;

  const ProportionalResult engine = run_proportional(instance, config);
  const LocalHostResult host = run_proportional_local(instance, config);

  ASSERT_EQ(host.result.final_levels.size(), engine.final_levels.size());
  for (Vertex v = 0; v < engine.final_levels.size(); ++v) {
    EXPECT_EQ(host.result.final_levels[v], engine.final_levels[v])
        << "level diverged at v=" << v;
  }
  for (Vertex v = 0; v < engine.final_alloc.size(); ++v) {
    EXPECT_DOUBLE_EQ(host.result.final_alloc[v], engine.final_alloc[v]);
  }
  ASSERT_EQ(host.result.allocation.x.size(), engine.allocation.x.size());
  for (EdgeId e = 0; e < engine.allocation.x.size(); ++e) {
    EXPECT_DOUBLE_EQ(host.result.allocation.x[e], engine.allocation.x[e]);
  }
  EXPECT_DOUBLE_EQ(host.result.match_weight, engine.match_weight);
}

TEST_P(LocalHostSuite, UsesConstantSizeMessages) {
  const AllocationInstance instance = make_instance(GetParam());
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 8;
  const LocalHostResult host = run_proportional_local(instance, config);
  // The sublinear-MPC portability argument (Section 1.2.1) rests on O(1)
  // words per edge per round.
  EXPECT_LE(host.max_message_words, 1u);
}

TEST_P(LocalHostSuite, ConsumesTwoLocalRoundsPerAlgorithmRound) {
  const AllocationInstance instance = make_instance(GetParam());
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 10;
  const LocalHostResult host = run_proportional_local(instance, config);
  EXPECT_EQ(host.local_rounds, 2 * config.max_rounds + 1);
}

INSTANTIATE_TEST_SUITE_P(Instances, LocalHostSuite,
                         ::testing::ValuesIn(default_specs()),
                         [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
                           return param_info.param.name;
                         });

TEST(LocalHost, HonoursAlgorithm3Thresholds) {
  Xoshiro256pp rng(41);
  AllocationInstance instance;
  instance.graph = union_of_forests(100, 50, 3, rng);
  instance.capacities = uniform_capacities(50, 1, 3, rng);

  ProportionalConfig config;
  config.epsilon = 0.2;
  config.max_rounds = 12;
  config.threshold_k = [](Vertex v, std::size_t round) {
    return (v + round) % 3 == 0 ? 2.0 : 0.5;
  };
  const ProportionalResult engine = run_proportional(instance, config);
  const LocalHostResult host = run_proportional_local(instance, config);
  for (Vertex v = 0; v < engine.final_levels.size(); ++v) {
    EXPECT_EQ(host.result.final_levels[v], engine.final_levels[v]);
  }
}

TEST(LocalHost, RejectsAdaptiveStopRule) {
  AllocationInstance instance{star_graph(3), {1}};
  ProportionalConfig config;
  config.max_rounds = 5;
  config.stop_rule = StopRule::kAdaptive;
  EXPECT_THROW(run_proportional_local(instance, config), std::invalid_argument);
}

TEST(LocalHost, RejectsZeroRounds) {
  AllocationInstance instance{star_graph(3), {1}};
  ProportionalConfig config;
  config.max_rounds = 0;
  EXPECT_THROW(run_proportional_local(instance, config), std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc
