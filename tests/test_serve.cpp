// The always-on allocation service (src/serve/): mutation batches, the warm
// restart's headline invariant, and generation-pinned snapshots.
//
// The invariant under test everywhere below: a warm-restarted generation is
// BITWISE identical — levels, allocs, per-edge x, match weight — to a cold
// facade solve of the same mutated instance, across thread counts and every
// mutation kind. EXPECT_EQ on double vectors is deliberate: any tolerance
// would hide a broken replay.
#include "alloc/solver.hpp"
#include "graph/generators.hpp"
#include "serve/mutation.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "test_util.hpp"

namespace mpcalloc::serve {
namespace {

using mpcalloc::testing::make_instance;
using mpcalloc::testing::spec_by_name;

ServiceOptions fixed_round_options(std::size_t num_threads,
                                   std::size_t max_rounds = 24) {
  ServiceOptions options;
  options.solve.method = SolveMethod::kProportional;
  options.solve.epsilon = 0.25;
  options.solve.max_rounds = max_rounds;
  options.solve.num_threads = num_threads;
  return options;
}

// What each randomized batch is allowed to contain.
struct MutationKinds {
  bool adds = false;
  bool removes = false;
  bool capacities = false;
};

// A small random batch against `instance`: a handful of removes drawn from
// the live edge list, adds that avoid colliding with surviving edges, and
// capacity retargets — roughly ≤1% of the edges, mirroring the serving
// bench's churn profile.
MutationSet random_batch(const AllocationInstance& instance,
                         const MutationKinds& kinds, Xoshiro256pp& rng) {
  const auto edges = instance.graph.edges();
  MutationSet batch;
  if (kinds.removes && !edges.empty()) {
    const std::size_t count = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < count; ++i) {
      const Edge e = edges[rng.uniform(edges.size())];
      if (std::find(batch.remove_edges.begin(), batch.remove_edges.end(), e) ==
          batch.remove_edges.end()) {
        batch.remove_edges.push_back(e);
      }
    }
  }
  if (kinds.adds) {
    const std::size_t count = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < count; ++i) {
      const auto u = static_cast<Vertex>(rng.uniform(instance.graph.num_left()));
      const auto v =
          static_cast<Vertex>(rng.uniform(instance.graph.num_right()));
      const Edge e{u, v};
      const auto nbrs = instance.graph.left_neighbors(u);
      const bool exists =
          std::any_of(nbrs.begin(), nbrs.end(),
                      [v](const Incidence& inc) { return inc.to == v; });
      const bool removed =
          std::find(batch.remove_edges.begin(), batch.remove_edges.end(), e) !=
          batch.remove_edges.end();
      const bool queued =
          std::find(batch.add_edges.begin(), batch.add_edges.end(), e) !=
          batch.add_edges.end();
      if ((!exists || removed) && !queued) batch.add_edges.push_back(e);
    }
  }
  if (kinds.capacities) {
    const std::size_t count = 1 + rng.uniform(2);
    for (std::size_t i = 0; i < count; ++i) {
      const auto v =
          static_cast<Vertex>(rng.uniform(instance.graph.num_right()));
      batch.set_capacities.push_back(
          {v, static_cast<std::uint32_t>(1 + rng.uniform(6))});
    }
  }
  return batch;
}

// The headline check: the published (warm) generation must equal a cold
// facade solve of the very same instance, bit for bit.
void expect_identical_to_cold(const AllocationSnapshot& snap,
                              const SolveOptions& solve) {
  const SolveResult cold = Solver(solve).solve(snap.instance());
  EXPECT_EQ(cold.final_levels, snap.result().final_levels);
  EXPECT_EQ(cold.final_alloc, snap.result().final_alloc);
  EXPECT_EQ(cold.allocation.x, snap.result().allocation.x);
  EXPECT_EQ(cold.match_weight, snap.result().match_weight);
  EXPECT_EQ(cold.rounds_executed, snap.result().rounds_executed);
}

class ServeWarmIdentity
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ServeWarmIdentity, WarmGenerationsMatchColdSolvesBitwise) {
  const auto [num_threads, kind_mask] = GetParam();
  const MutationKinds kinds{.adds = (kind_mask & 1) != 0,
                            .removes = (kind_mask & 2) != 0,
                            .capacities = (kind_mask & 4) != 0};

  AllocationService service(make_instance(spec_by_name("small_lam4")),
                            fixed_round_options(num_threads));
  Xoshiro256pp rng(0x5e54'0000 + num_threads * 8 + kind_mask);
  for (int gen = 0; gen < 6; ++gen) {
    const MutationSet batch =
        random_batch(service.snapshot()->instance(), kinds, rng);
    if (batch.empty()) continue;
    const auto snap = service.apply(batch);
    expect_identical_to_cold(*snap, service.options().solve);
  }
  // Every published generation after 0 must have come from the warm path —
  // a silent cold fallback would make the identity check vacuous.
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.cold_solves, 1u);
  EXPECT_EQ(counters.warm_restarts + 1, counters.generations_published);
  EXPECT_GT(counters.warm_restarts, 0u);
}

std::string warm_identity_param_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, int>>& info) {
  const int mask = std::get<1>(info.param);
  std::string name;
  if ((mask & 1) != 0) name += "Add";
  if ((mask & 2) != 0) name += "Remove";
  if ((mask & 4) != 0) name += "Cap";
  return name + "Threads" + std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    MutationMatrix, ServeWarmIdentity,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 7),
                       // adds | removes | capacities, and the mixed batch
                       ::testing::Values(1, 2, 4, 7)),
    warm_identity_param_name);

TEST(ServeWarmIdentity, GrowingBothSidesMatchesColdSolve) {
  AllocationService service(make_instance(spec_by_name("small_forest")),
                            fixed_round_options(3));
  Xoshiro256pp rng(404);
  for (int gen = 0; gen < 4; ++gen) {
    const auto& base = service.snapshot()->instance();
    MutationSet batch;
    batch.add_left_vertices = 5;
    batch.add_right_vertices = 2;
    // Wire every new vertex in so growth actually perturbs the dynamics.
    const auto old_left = static_cast<Vertex>(base.graph.num_left());
    const auto old_right = static_cast<Vertex>(base.graph.num_right());
    for (Vertex u = old_left; u < old_left + 5; ++u) {
      batch.add_edges.push_back(
          {u, static_cast<Vertex>(rng.uniform(old_right + 2))});
    }
    const auto snap = service.apply(batch);
    expect_identical_to_cold(*snap, service.options().solve);
  }
  EXPECT_EQ(service.counters().cold_solves, 1u);
  EXPECT_GT(service.counters().warm_restarts, 0u);
}

TEST(ServeWarmIdentity, TwoPlusEpsMethodAlsoWarmRestarts) {
  ServiceOptions options;
  options.solve.method = SolveMethod::kTwoPlusEps;
  options.solve.epsilon = 0.25;
  options.solve.lambda = 4.0;
  options.solve.num_threads = 2;
  AllocationService service(make_instance(spec_by_name("small_lam4")), options);
  Xoshiro256pp rng(71);
  for (int gen = 0; gen < 3; ++gen) {
    const MutationSet batch = random_batch(
        service.snapshot()->instance(),
        {.adds = true, .removes = true, .capacities = true}, rng);
    const auto snap = service.apply(batch);
    expect_identical_to_cold(*snap, options.solve);
  }
  EXPECT_GT(service.counters().warm_restarts, 0u);
}

TEST(ServeWarmIdentity, SmallBatchRecomputesFractionOfDenseVolume) {
  // Recompute-volume locality holds on instances whose dynamics converge
  // (forests: λ=1 settles in O(log λ/ε²) rounds, after which the tape is
  // quiescent and divergences stop). The ≤10% acceptance bound is gated in
  // bench_serving on a large such instance; here we assert the loose half
  // bound on a small one — on oscillating near-saturated instances the
  // perturbation genuinely reaches the whole graph and the cone must grow
  // (the identity matrix above covers those; volume is workload-dependent).
  AllocationService service(make_instance(spec_by_name("small_forest")),
                            fixed_round_options(4));
  Xoshiro256pp rng(2024);
  const MutationSet batch = random_batch(
      service.snapshot()->instance(),
      {.adds = true, .removes = true, .capacities = true}, rng);
  const auto snap = service.apply(batch);
  ASSERT_TRUE(snap->warm().used);
  EXPECT_GT(snap->warm().dense_equiv_volume, 0u);
  EXPECT_LT(snap->warm().recompute_volume,
            snap->warm().dense_equiv_volume / 2);
  EXPECT_GT(snap->warm().taped_replays, 0u);
}

TEST(ServeService, EmptyBatchPublishesNothing) {
  AllocationService service(make_instance(spec_by_name("tiny_unit")),
                            fixed_round_options(1));
  const auto before = service.snapshot();
  const auto returned = service.apply(MutationSet{});
  EXPECT_EQ(before.get(), returned.get());  // same object, not just equal
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.counters().empty_batches, 1u);
  EXPECT_EQ(service.counters().generations_published, 1u);
}

TEST(ServeService, InvalidBatchThrowsAndLeavesStatePinned) {
  AllocationService service(make_instance(spec_by_name("tiny_unit")),
                            fixed_round_options(1));
  const auto before = service.snapshot();

  MutationSet missing_edge;
  missing_edge.remove_edges.push_back(
      {static_cast<Vertex>(0), static_cast<Vertex>(0)});
  // tiny_unit is a random forest; ensure the edge is genuinely absent.
  const auto nbrs = before->instance().graph.left_neighbors(0);
  if (std::any_of(nbrs.begin(), nbrs.end(),
                  [](const Incidence& inc) { return inc.to == 0; })) {
    missing_edge.remove_edges[0].v = 19;  // forests have degree-1 left side
  }
  EXPECT_THROW((void)service.apply(missing_edge), std::invalid_argument);

  MutationSet zero_cap;
  zero_cap.set_capacities.push_back({0, 0});
  EXPECT_THROW((void)service.apply(zero_cap), std::invalid_argument);

  MutationSet out_of_range;
  out_of_range.add_edges.push_back({0, static_cast<Vertex>(10'000)});
  EXPECT_THROW((void)service.apply(out_of_range), std::invalid_argument);

  EXPECT_EQ(service.snapshot().get(), before.get());
  EXPECT_EQ(service.counters().generations_published, 1u);
}

TEST(ServeService, ColdFallbackForIneligibleMethods) {
  ServiceOptions options;
  options.solve.method = SolveMethod::kAdaptive;
  options.solve.epsilon = 0.25;
  AllocationService service(make_instance(spec_by_name("small_forest")),
                            options);
  Xoshiro256pp rng(9);
  const MutationSet batch = random_batch(
      service.snapshot()->instance(),
      {.adds = true, .removes = false, .capacities = false}, rng);
  const auto snap = service.apply(batch);
  EXPECT_FALSE(snap->warm().used);
  EXPECT_EQ(service.counters().warm_restarts, 0u);
  EXPECT_EQ(service.counters().cold_solves, 2u);
  expect_identical_to_cold(*snap, options.solve);
}

TEST(ServeService, DisablingWarmRestartForcesColdSolves) {
  ServiceOptions options = fixed_round_options(2);
  options.enable_warm_restart = false;
  AllocationService service(make_instance(spec_by_name("small_forest")),
                            options);
  Xoshiro256pp rng(10);
  (void)service.apply(random_batch(
      service.snapshot()->instance(),
      {.adds = false, .removes = true, .capacities = true}, rng));
  EXPECT_EQ(service.counters().warm_restarts, 0u);
  EXPECT_EQ(service.counters().cold_solves, 2u);
}

TEST(ServeService, SnapshotQueriesMatchResultFields) {
  AllocationService service(make_instance(spec_by_name("wide_caps")),
                            fixed_round_options(2));
  const auto snap = service.snapshot();
  const auto& instance = snap->instance();
  std::vector<Vertex> all(instance.graph.num_right());
  for (Vertex v = 0; v < all.size(); ++v) all[v] = v;
  const std::vector<double> loads = snap->query_allocations(all);
  ASSERT_EQ(loads.size(), all.size());
  for (Vertex v = 0; v < all.size(); ++v) {
    EXPECT_EQ(loads[v], snap->allocation_of(v));
    EXPECT_LE(loads[v],
              static_cast<double>(instance.capacities[v]) + 1e-12);
    EXPECT_GE(snap->marginal_value(v), 0.0);
    EXPECT_LE(snap->marginal_value(v), 1.0);
  }
  const SnapshotStats stats = snap->stats();
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.num_edges, instance.graph.num_edges());
  EXPECT_EQ(stats.match_weight, snap->result().match_weight);
  EXPECT_FALSE(stats.warm_restarted);
}

TEST(ServeMutation, PriorEdgeMapTracksSurvivorsInBaseOrder) {
  const AllocationInstance base = make_instance(spec_by_name("small_forest"));
  const auto edges = base.graph.edges();
  ASSERT_GE(edges.size(), 4u);

  MutationSet batch;
  batch.remove_edges.push_back(edges[1]);
  batch.remove_edges.push_back(edges[3]);
  batch.add_edges.push_back(edges[1]);  // re-adding a removed edge is legal
  const MutationApplyResult applied = apply_mutations(base, batch);

  EXPECT_EQ(applied.edges_removed, 2u);
  EXPECT_EQ(applied.edges_added, 1u);
  ASSERT_EQ(applied.prior_edge.size(), edges.size() - 1);
  // Survivors keep base-id order with the removed ids skipped...
  EXPECT_EQ(applied.prior_edge[0], 0u);
  EXPECT_EQ(applied.prior_edge[1], 2u);
  EXPECT_EQ(applied.prior_edge[2], 4u);
  // ...and the re-added edge is a NEW edge at the tail: its x must be
  // recomputed, never copied from the deleted predecessor.
  EXPECT_EQ(applied.prior_edge.back(), kNoPriorEdge);
  // Both endpoints of every touched edge are dirty.
  EXPECT_TRUE(applied.dirty_left[edges[1].u]);
  EXPECT_TRUE(applied.dirty_right[edges[1].v]);
  EXPECT_TRUE(applied.dirty_left[edges[3].u]);
  EXPECT_TRUE(applied.dirty_right[edges[3].v]);
}

TEST(ServeMutation, NoOpCapacitySetIsNotDirty) {
  const AllocationInstance base = make_instance(spec_by_name("tiny_unit"));
  MutationSet batch;
  batch.set_capacities.push_back({0, base.capacities[0]});  // same value
  batch.set_capacities.push_back({1, base.capacities[1] + 1});
  const MutationApplyResult applied = apply_mutations(base, batch);
  EXPECT_FALSE(applied.dirty_right[0]);
  EXPECT_TRUE(applied.dirty_right[1]);
}

// TSan leg: readers pinned to old generations must stay coherent while a
// writer publishes new ones. Each reader repeatedly pins a snapshot and
// checks a generation-dependent invariant on the immutable data it sees.
TEST(ServeConcurrency, ReadersStayPinnedWhileWriterPublishes) {
  AllocationService service(make_instance(spec_by_name("small_lam4")),
                            fixed_round_options(2, /*max_rounds=*/12));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&service, &stop, &reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = service.snapshot();
        // The pinned generation is internally consistent no matter what the
        // writer does: alloc vector matches its own instance's shape.
        ASSERT_EQ(snap->result().final_alloc.size(),
                  snap->instance().graph.num_right());
        ASSERT_EQ(snap->stats().generation, snap->generation());
        const std::vector<double> q =
            snap->query_allocations(std::vector<Vertex>{0, 1, 2});
        ASSERT_EQ(q.size(), 3u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Xoshiro256pp rng(33);
  for (int gen = 0; gen < 8; ++gen) {
    const MutationSet batch = random_batch(
        service.snapshot()->instance(),
        {.adds = true, .removes = true, .capacities = true}, rng);
    if (!batch.empty()) (void)service.apply(batch);
  }
  // Keep the generation churning until every reader has pinned at least one
  // snapshot — the 8 solves above can finish before the reader threads are
  // even scheduled.
  while (reads.load(std::memory_order_relaxed) < 3 &&
         service.generation() < 5000) {
    MutationSet cap;
    const Vertex v = static_cast<Vertex>(
        rng.uniform(service.snapshot()->instance().graph.num_right()));
    cap.set_capacities.push_back(
        {v, static_cast<std::uint32_t>(1 + rng.uniform(6))});
    (void)service.apply(cap);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_GE(reads.load(), 3u);
  EXPECT_GT(service.generation(), 0u);
}

// A reader holding an old generation outlives many publishes; its data is
// untouched (same object, same values) after the writer has moved on.
TEST(ServeConcurrency, OldGenerationSurvivesManyPublishes) {
  AllocationService service(make_instance(spec_by_name("small_forest")),
                            fixed_round_options(1, /*max_rounds=*/10));
  const auto pinned = service.snapshot();
  const double weight_at_pin = pinned->result().match_weight;
  const std::size_t edges_at_pin = pinned->instance().graph.num_edges();

  Xoshiro256pp rng(55);
  for (int gen = 0; gen < 5; ++gen) {
    const MutationSet batch = random_batch(
        service.snapshot()->instance(),
        {.adds = true, .removes = true, .capacities = false}, rng);
    if (!batch.empty()) (void)service.apply(batch);
  }
  EXPECT_EQ(pinned->generation(), 0u);
  EXPECT_EQ(pinned->result().match_weight, weight_at_pin);
  EXPECT_EQ(pinned->instance().graph.num_edges(), edges_at_pin);
  EXPECT_GT(service.generation(), pinned->generation());
}

}  // namespace
}  // namespace mpcalloc::serve
