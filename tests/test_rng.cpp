#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace mpcalloc {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256pp a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformRespectsBound) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
  }
}

TEST(Xoshiro, UniformBoundOneIsAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro, UniformZeroBoundThrows) {
  Xoshiro256pp rng(5);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Xoshiro, UniformIntCoversInclusiveRange) {
  Xoshiro256pp rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro, UniformIntEmptyRangeThrows) {
  Xoshiro256pp rng(9);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256pp rng(17);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double d = rng.uniform_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256pp rng(31);
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256pp rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Xoshiro, ShuffleIsPermutation) {
  Xoshiro256pp rng(77);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto shuffled = data;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, data);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, data);
}

TEST(Xoshiro, SampleIndicesAreDistinctAndInRange) {
  Xoshiro256pp rng(88);
  for (std::uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.sample_indices(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (const auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Xoshiro, SampleIndicesKEqualsN) {
  Xoshiro256pp rng(88);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Xoshiro, SampleIndicesTooManyThrows) {
  Xoshiro256pp rng(88);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Xoshiro, SampleIndicesIsRoughlyUniform) {
  Xoshiro256pp rng(99);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (const auto i : rng.sample_indices(20, 3)) ++counts[i];
  }
  // Each index expected 5000 * 3/20 = 750 times.
  for (const int c : counts) {
    EXPECT_GT(c, 600);
    EXPECT_LT(c, 900);
  }
}

TEST(Xoshiro, ForkProducesIndependentStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b = a.fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a() != b());
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mpcalloc
