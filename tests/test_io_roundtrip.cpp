// Exhaustive write→read round-trip checks for graph/io: the loaded
// instance must reproduce the original BipartiteGraph adjacency (both CSR
// sides, including edge ids) and Capacities exactly, across the default
// spec matrix and the degenerate shapes (empty graph, single edge).
#include "graph/generators.hpp"
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

void expect_identical(const AllocationInstance& a, const AllocationInstance& b) {
  ASSERT_EQ(a.graph.num_left(), b.graph.num_left());
  ASSERT_EQ(a.graph.num_right(), b.graph.num_right());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  ASSERT_EQ(a.capacities, b.capacities);
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e), b.graph.edge(e)) << "edge id " << e;
  }
  for (Vertex u = 0; u < a.graph.num_left(); ++u) {
    const auto lhs = a.graph.left_neighbors(u);
    const auto rhs = b.graph.left_neighbors(u);
    ASSERT_EQ(lhs.size(), rhs.size()) << "left degree of u=" << u;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].to, rhs[i].to) << "u=" << u << " slot " << i;
      EXPECT_EQ(lhs[i].edge, rhs[i].edge) << "u=" << u << " slot " << i;
    }
  }
  for (Vertex v = 0; v < a.graph.num_right(); ++v) {
    const auto lhs = a.graph.right_neighbors(v);
    const auto rhs = b.graph.right_neighbors(v);
    ASSERT_EQ(lhs.size(), rhs.size()) << "right degree of v=" << v;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].to, rhs[i].to) << "v=" << v << " slot " << i;
      EXPECT_EQ(lhs[i].edge, rhs[i].edge) << "v=" << v << " slot " << i;
    }
  }
}

AllocationInstance round_trip(const AllocationInstance& instance) {
  std::stringstream stream;
  write_instance(stream, instance);
  return read_instance(stream);
}

TEST(IoRoundTrip, DefaultSpecMatrix) {
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const AllocationInstance original = testing::make_instance(spec);
    const AllocationInstance loaded = round_trip(original);
    expect_identical(original, loaded);
    loaded.graph.validate();
  }
}

TEST(IoRoundTrip, EmptyGraphNoVertices) {
  AllocationInstance original;
  original.graph = BipartiteGraphBuilder(0, 0).build();
  const AllocationInstance loaded = round_trip(original);
  expect_identical(original, loaded);
  EXPECT_EQ(loaded.graph.num_vertices(), 0u);
  EXPECT_EQ(loaded.graph.num_edges(), 0u);
}

TEST(IoRoundTrip, EmptyGraphWithIsolatedVertices) {
  AllocationInstance original;
  original.graph = BipartiteGraphBuilder(3, 2).build();
  original.capacities = {4, 1};
  const AllocationInstance loaded = round_trip(original);
  expect_identical(original, loaded);
  EXPECT_EQ(loaded.graph.num_left(), 3u);
  EXPECT_EQ(loaded.graph.left_degree(0), 0u);
}

TEST(IoRoundTrip, SingleEdge) {
  BipartiteGraphBuilder builder(1, 1);
  builder.add_edge(0, 0);
  AllocationInstance original;
  original.graph = builder.build();
  original.capacities = {9};
  const AllocationInstance loaded = round_trip(original);
  expect_identical(original, loaded);
  ASSERT_EQ(loaded.graph.num_edges(), 1u);
  EXPECT_EQ(loaded.graph.edge(0), (Edge{0, 0}));
  EXPECT_EQ(loaded.capacities[0], 9u);
}

TEST(IoRoundTrip, DoubleRoundTripIsStable) {
  // write(read(write(g))) must emit the same bytes as write(g): the text
  // format is canonical for a fixed instance.
  const AllocationInstance original =
      testing::make_instance(testing::default_specs().front());
  std::stringstream first;
  write_instance(first, original);
  const AllocationInstance loaded = read_instance(first);
  std::stringstream second;
  write_instance(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace mpcalloc
