#include "flow/optimal_allocation.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace mpcalloc {
namespace {

TEST(Generators, UnionOfForestsRespectsArboricityBound) {
  Xoshiro256pp rng(1);
  for (const std::uint32_t lambda : {1u, 2u, 4u, 8u}) {
    const BipartiteGraph g = union_of_forests(400, 200, lambda, rng);
    g.validate();
    const ArboricityEstimate est = estimate_arboricity(g);
    // λ(G) ≤ lambda by construction, and degeneracy ≤ 2λ−1.
    EXPECT_LE(est.degeneracy, 2 * lambda - 1) << "lambda=" << lambda;
    EXPECT_LE(est.lower_bound, lambda);
  }
}

TEST(Generators, UnionOfForestsSingleForestIsForest) {
  Xoshiro256pp rng(2);
  const BipartiteGraph g = union_of_forests(300, 150, 1, rng);
  EXPECT_TRUE(is_forest(g));
  // A forest on ≤ 450 vertices has < 450 edges.
  EXPECT_LT(g.num_edges(), g.num_vertices());
}

TEST(Generators, UnionOfForestsGrowsDenserWithLambda) {
  Xoshiro256pp rng(3);
  const auto m1 = union_of_forests(500, 250, 1, rng).num_edges();
  const auto m8 = union_of_forests(500, 250, 8, rng).num_edges();
  EXPECT_GT(m8, 3 * m1);
}

TEST(Generators, UnionOfForestsZeroLambdaThrows) {
  Xoshiro256pp rng(4);
  EXPECT_THROW(union_of_forests(10, 10, 0, rng), std::invalid_argument);
}

TEST(Generators, DenseCoreHasExpectedDensity) {
  Xoshiro256pp rng(5);
  const std::uint32_t core = 16;
  const BipartiteGraph g = dense_core_sparse_fringe(300, 300, core, rng);
  g.validate();
  const ArboricityEstimate est = estimate_arboricity(g);
  // K_{16,16} forces λ ≥ ⌈256/31⌉ = 9; fringe adds little.
  EXPECT_GE(est.lower_bound, core / 2);
  EXPECT_LE(est.upper_bound, 2 * core);
}

TEST(Generators, StarGraphShape) {
  const BipartiteGraph g = star_graph(50);
  g.validate();
  EXPECT_EQ(g.num_left(), 50u);
  EXPECT_EQ(g.num_right(), 1u);
  EXPECT_EQ(g.num_edges(), 50u);
  EXPECT_EQ(g.right_degree(0), 50u);
  EXPECT_TRUE(is_forest(g));
}

TEST(Generators, LeftRegularDegrees) {
  Xoshiro256pp rng(6);
  const BipartiteGraph g = left_regular(100, 40, 5, rng);
  g.validate();
  for (Vertex u = 0; u < g.num_left(); ++u) {
    EXPECT_EQ(g.left_degree(u), 5u);
  }
}

TEST(Generators, LeftRegularDegreeTooLargeThrows) {
  Xoshiro256pp rng(6);
  EXPECT_THROW(left_regular(10, 4, 5, rng), std::invalid_argument);
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  Xoshiro256pp rng(7);
  const BipartiteGraph g = erdos_renyi_bipartite(50, 60, 500, rng);
  g.validate();
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(Generators, ErdosRenyiCompleteGraph) {
  Xoshiro256pp rng(7);
  const BipartiteGraph g = erdos_renyi_bipartite(8, 9, 72, rng);
  EXPECT_EQ(g.num_edges(), 72u);
  EXPECT_THROW(erdos_renyi_bipartite(8, 9, 73, rng), std::invalid_argument);
}

TEST(Generators, PowerLawIsSkewed) {
  Xoshiro256pp rng(8);
  const BipartiteGraph g = power_law_bipartite(2000, 2000, 6000, 0.9, rng);
  g.validate();
  EXPECT_GT(g.num_edges(), 4000u);
  // The first (heaviest) vertices should dominate the degree distribution.
  std::size_t head_degree = 0;
  for (Vertex v = 0; v < 20; ++v) head_degree += g.right_degree(v);
  EXPECT_GT(head_degree, g.num_edges() / 10);
}

TEST(Generators, PlantedInstanceHasPerfectAllocation) {
  Xoshiro256pp rng(9);
  const PlantedInstance planted = planted_instance(300, 80, 4, 3, rng);
  planted.instance.validate();
  EXPECT_EQ(optimal_allocation_value(planted.instance), 300u);
  // The planted partner edges must exist.
  const auto& g = planted.instance.graph;
  for (Vertex u = 0; u < g.num_left(); ++u) {
    bool found = false;
    for (const Incidence& inc : g.left_neighbors(u)) {
      found |= inc.to == planted.planted_partner[u];
    }
    EXPECT_TRUE(found) << "u=" << u;
  }
}

TEST(Generators, PlantedInstanceInsufficientCapacityThrows) {
  Xoshiro256pp rng(9);
  EXPECT_THROW(planted_instance(100, 10, 5, 0, rng), std::invalid_argument);
}

TEST(Generators, ZeroVertexSidesThrowEverywhere) {
  // Entry validation: an empty side can never yield a usable allocation
  // instance, so every generator must reject it instead of building a
  // degenerate graph.
  Xoshiro256pp rng(20);
  EXPECT_THROW(union_of_forests(0, 10, 1, rng), std::invalid_argument);
  EXPECT_THROW(union_of_forests(10, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(dense_core_sparse_fringe(0, 10, 4, rng), std::invalid_argument);
  EXPECT_THROW(dense_core_sparse_fringe(10, 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(star_graph(0), std::invalid_argument);
  EXPECT_THROW(left_regular(0, 10, 2, rng), std::invalid_argument);
  EXPECT_THROW(left_regular(10, 0, 0, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_bipartite(0, 10, 0, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_bipartite(10, 0, 0, rng), std::invalid_argument);
  EXPECT_THROW(power_law_bipartite(0, 10, 5, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(power_law_bipartite(10, 0, 5, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(planted_instance(0, 10, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW(planted_instance(10, 0, 1, 0, rng), std::invalid_argument);
}

TEST(Generators, LeftRegularZeroDegreeThrows) {
  Xoshiro256pp rng(21);
  EXPECT_THROW(left_regular(10, 4, 0, rng), std::invalid_argument);
}

TEST(Generators, PowerLawValidatesBetaAndEdgeBudget) {
  Xoshiro256pp rng(22);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(power_law_bipartite(10, 10, 5, nan, rng), std::invalid_argument);
  EXPECT_THROW(power_law_bipartite(10, 10, 5, inf, rng), std::invalid_argument);
  // More edges than |L|·|R| simple edges exist.
  EXPECT_THROW(power_law_bipartite(4, 4, 17, 1.0, rng), std::invalid_argument);
  EXPECT_NO_THROW(power_law_bipartite(4, 4, 16, 1.0, rng));
}

TEST(Capacities, UnitCapacities) {
  const Capacities c = unit_capacities(5);
  EXPECT_EQ(c, (Capacities{1, 1, 1, 1, 1}));
}

TEST(Capacities, UniformRange) {
  Xoshiro256pp rng(10);
  const Capacities c = uniform_capacities(1000, 2, 7, rng);
  for (const auto v : c) {
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 7u);
  }
  EXPECT_THROW(uniform_capacities(10, 0, 5, rng), std::invalid_argument);
  EXPECT_THROW(uniform_capacities(10, 5, 2, rng), std::invalid_argument);
}

TEST(Capacities, DegreeProportionalRejectsNonPositiveAndNaN) {
  const BipartiteGraph g = star_graph(4);
  EXPECT_THROW(degree_proportional_capacities(g, 0.0), std::invalid_argument);
  EXPECT_THROW(degree_proportional_capacities(g, -1.0), std::invalid_argument);
  // NaN compares false against every threshold — it must still be rejected.
  EXPECT_THROW(
      degree_proportional_capacities(g, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      degree_proportional_capacities(g, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(Capacities, ZipfRejectsNonFiniteSkew) {
  Xoshiro256pp rng(23);
  EXPECT_THROW(
      zipf_capacities(10, 4, std::numeric_limits<double>::quiet_NaN(), rng),
      std::invalid_argument);
}

TEST(Capacities, DegreeProportional) {
  const BipartiteGraph g = star_graph(30);
  const Capacities c = degree_proportional_capacities(g, 0.5);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 15u);
  // Fractions below 1 still clamp to C ≥ 1 on low-degree vertices.
  BipartiteGraphBuilder b(1, 1);
  b.add_edge(0, 0);
  const Capacities c2 = degree_proportional_capacities(b.build(), 0.1);
  EXPECT_EQ(c2[0], 1u);
}

TEST(Capacities, ZipfStaysInRange) {
  Xoshiro256pp rng(11);
  const Capacities c = zipf_capacities(2000, 16, 1.2, rng);
  std::size_t ones = 0;
  for (const auto v : c) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 16u);
    ones += v == 1 ? 1 : 0;
  }
  // Zipf(1.2) concentrates on small values.
  EXPECT_GT(ones, c.size() / 3);
}


TEST(Generators, OversubscribedCoreShape) {
  const AllocationInstance instance = oversubscribed_core_instance(8, 4, 2);
  instance.validate();
  // Per copy: 32 L vertices, 8 core + 32 private R vertices.
  EXPECT_EQ(instance.graph.num_left(), 64u);
  EXPECT_EQ(instance.graph.num_right(), 80u);
  // Per copy: 32*8 core edges + 32 private edges.
  EXPECT_EQ(instance.graph.num_edges(), 2u * (32 * 8 + 32));
  for (const auto c : instance.capacities) EXPECT_EQ(c, 1u);
}

TEST(Generators, OversubscribedCoreHasPerfectOpt) {
  const AllocationInstance instance = oversubscribed_core_instance(16, 4, 3);
  EXPECT_EQ(optimal_allocation_value(instance), instance.graph.num_left());
}

TEST(Generators, OversubscribedCoreArboricityTracksCore) {
  for (const std::size_t core : {8u, 32u}) {
    const AllocationInstance instance = oversubscribed_core_instance(core, 4, 1);
    const ArboricityEstimate est = estimate_arboricity(instance.graph);
    EXPECT_GE(est.lower_bound, core / 2) << core;
    EXPECT_LE(est.upper_bound, 2 * core) << core;
  }
}

TEST(Generators, OversubscribedCoreGuards) {
  EXPECT_THROW(oversubscribed_core_instance(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(oversubscribed_core_instance(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(oversubscribed_core_instance(4, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc
