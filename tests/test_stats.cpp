#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

namespace mpcalloc {
namespace {

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleton) {
  const std::vector<double> v{7.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Stats, PercentileRejectsBadQ) {
  const std::vector<double> v{1, 2};
  EXPECT_THROW((void)percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.1), std::invalid_argument);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitSizeMismatchThrows) {
  const std::vector<double> x{1, 2, 3}, y{1, 2};
  EXPECT_THROW((void)linear_fit(x, y), std::invalid_argument);
}

TEST(Stats, Log2FitRecoversLogLaw) {
  // y = 5 + 1.5*log2(x): the shape of an O(log λ) round-count curve.
  std::vector<double> x, y;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
    x.push_back(v);
    y.push_back(5.0 + 1.5 * std::log2(v));
  }
  const LinearFit fit = log2_fit(x, y);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
}

TEST(Stats, Log2FitRejectsNonPositiveX) {
  const std::vector<double> x{0.0, 1.0}, y{1.0, 2.0};
  EXPECT_THROW((void)log2_fit(x, y), std::invalid_argument);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, down), -1.0, 1e-12);
}

TEST(Table, PrintsAlignedColumns) {
  Table t("demo");
  t.header({"a", "long_column"});
  t.row({"1", "x"});
  t.row({Table::num(3.14159, 2), Table::integer(42)});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("long_column"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, MarkdownOutput) {
  Table t;
  t.header({"x", "y"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("| x | y |"), std::string::npos);
  EXPECT_NE(os.str().find("|---|---|"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(Table, HeaderAfterRowsThrows) {
  Table t;
  t.row({"x"});
  EXPECT_THROW(t.header({"a"}), std::logic_error);
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::integer(-5), "-5");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.option("n", "10", "count").option("eps", "0.25", "accuracy").flag("verbose", "talk");
  const char* argv[] = {"prog", "--n=20", "--eps", "0.5", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.5);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsApply) {
  CliParser cli("test");
  cli.option("n", "10", "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 10);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  cli.option("n", "10", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, ListParsing) {
  CliParser cli("test");
  cli.option("lambdas", "1,2,4", "sweep");
  const char* argv[] = {"prog", "--lambdas=8,16,32"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int_list("lambdas"),
            (std::vector<std::int64_t>{8, 16, 32}));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

}  // namespace
}  // namespace mpcalloc
