#include "flow/dinic.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

TEST(Dinic, TrivialTwoNodeFlow) {
  DinicMaxFlow flow(2);
  const auto e = flow.add_edge(0, 1, 5);
  EXPECT_EQ(flow.solve(0, 1), 5);
  EXPECT_EQ(flow.flow_on(e), 5);
}

TEST(Dinic, BottleneckPath) {
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 10);
  flow.add_edge(1, 2, 3);
  flow.add_edge(2, 3, 10);
  EXPECT_EQ(flow.solve(0, 3), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 4);
  flow.add_edge(1, 3, 4);
  flow.add_edge(0, 2, 6);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 9);
}

TEST(Dinic, RequiresAugmentingThroughBackEdge) {
  // Classic diamond where the naive greedy path must be re-routed.
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(1, 2, 1);
  flow.add_edge(1, 3, 1);
  flow.add_edge(2, 3, 1);
  EXPECT_EQ(flow.solve(0, 3), 2);
}

TEST(Dinic, DisconnectedSinkIsZero) {
  DinicMaxFlow flow(3);
  flow.add_edge(0, 1, 5);
  EXPECT_EQ(flow.solve(0, 2), 0);
}

TEST(Dinic, GuardsMisuse) {
  DinicMaxFlow flow(2);
  EXPECT_THROW(flow.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(flow.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(flow.solve(0, 0), std::invalid_argument);
  flow.add_edge(0, 1, 1);
  flow.solve(0, 1);
  EXPECT_THROW(flow.solve(0, 1), std::logic_error);
  EXPECT_THROW(flow.add_edge(0, 1, 1), std::logic_error);
  EXPECT_THROW((void)flow.flow_on(99), std::out_of_range);
}

TEST(OptimalAllocation, StarRespectsCenterCapacity) {
  AllocationInstance instance{star_graph(10), {3}};
  EXPECT_EQ(optimal_allocation_value(instance), 3u);
  const auto result = solve_optimal_allocation(instance);
  EXPECT_EQ(result.value, 3u);
  EXPECT_EQ(result.allocation.size(), 3u);
  result.allocation.check_valid(instance);
}

TEST(OptimalAllocation, StarWithFullCapacity) {
  AllocationInstance instance{star_graph(10), {10}};
  EXPECT_EQ(optimal_allocation_value(instance), 10u);
}

TEST(OptimalAllocation, PlantedInstanceIsPerfect) {
  const auto planted = mpcalloc::testing::make_planted(400, 100, 5, 4);
  const auto result = solve_optimal_allocation(planted.instance);
  EXPECT_EQ(result.value, 400u);
  result.allocation.check_valid(planted.instance);
}

TEST(OptimalAllocation, WitnessValueMatches) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const auto result = solve_optimal_allocation(instance);
    EXPECT_EQ(result.allocation.size(), result.value) << spec.name;
    result.allocation.check_valid(instance);
  }
}

TEST(OptimalAllocation, BoundedByCapacityAndLeftSide) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const auto value = optimal_allocation_value(instance);
    EXPECT_LE(value, instance.graph.num_left()) << spec.name;
    EXPECT_LE(value, instance.total_capacity()) << spec.name;
  }
}

class GreedySuite
    : public ::testing::TestWithParam<mpcalloc::testing::InstanceSpec> {};

TEST_P(GreedySuite, GreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = greedy_allocation(instance);
  greedy.check_valid(instance);
  // Any maximal allocation is a 2-approximation.
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

TEST_P(GreedySuite, RandomizedGreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  Xoshiro256pp rng(GetParam().seed + 1000);
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = randomized_greedy_allocation(instance, rng);
  greedy.check_valid(instance);
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

TEST_P(GreedySuite, DegreeAwareGreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = degree_aware_greedy_allocation(instance);
  greedy.check_valid(instance);
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GreedySuite,
    ::testing::ValuesIn(mpcalloc::testing::default_specs()),
    [](const ::testing::TestParamInfo<mpcalloc::testing::InstanceSpec>& param_info) {
      return param_info.param.name;
    });

TEST(Greedy, MaximalityOnStar) {
  AllocationInstance instance{star_graph(10), {4}};
  const IntegralAllocation greedy = greedy_allocation(instance);
  EXPECT_EQ(greedy.size(), 4u);  // fills the center's capacity
}

}  // namespace
}  // namespace mpcalloc
