#include "flow/dinic.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

TEST(Dinic, TrivialTwoNodeFlow) {
  DinicMaxFlow flow(2);
  const auto e = flow.add_edge(0, 1, 5);
  EXPECT_EQ(flow.solve(0, 1), 5);
  EXPECT_EQ(flow.flow_on(e), 5);
}

TEST(Dinic, BottleneckPath) {
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 10);
  flow.add_edge(1, 2, 3);
  flow.add_edge(2, 3, 10);
  EXPECT_EQ(flow.solve(0, 3), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 4);
  flow.add_edge(1, 3, 4);
  flow.add_edge(0, 2, 6);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 9);
}

TEST(Dinic, RequiresAugmentingThroughBackEdge) {
  // Classic diamond where the naive greedy path must be re-routed.
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(1, 2, 1);
  flow.add_edge(1, 3, 1);
  flow.add_edge(2, 3, 1);
  EXPECT_EQ(flow.solve(0, 3), 2);
}

TEST(Dinic, DisconnectedSinkIsZero) {
  DinicMaxFlow flow(3);
  flow.add_edge(0, 1, 5);
  EXPECT_EQ(flow.solve(0, 2), 0);
}

TEST(Dinic, GuardsMisuse) {
  DinicMaxFlow flow(2);
  EXPECT_THROW(flow.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(flow.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(flow.solve(0, 0), std::invalid_argument);
  flow.add_edge(0, 1, 1);
  flow.solve(0, 1);
  EXPECT_THROW(flow.solve(0, 1), std::logic_error);
  EXPECT_THROW(flow.add_edge(0, 1, 1), std::logic_error);
  EXPECT_THROW((void)flow.flow_on(99), std::out_of_range);
}

TEST(Dinic, DeepPathSolvesWithoutRecursion) {
  // A path-shaped network with 2^18 BFS levels: the recursive augmenting
  // DFS of the pre-CSR oracle overflowed the native stack here (one frame
  // per level). The iterative solver must walk it with a fixed explicit
  // stack and still certify the bottleneck cut.
  constexpr std::size_t kLevels = std::size_t{1} << 18;
  DinicMaxFlow flow(kLevels + 1);
  std::vector<std::size_t> handles;
  handles.reserve(kLevels);
  for (std::size_t i = 0; i < kLevels; ++i) {
    // Bottleneck of 2 planted mid-path; everything else has capacity 5.
    handles.push_back(flow.add_edge(i, i + 1, i == kLevels / 2 ? 2 : 5));
  }
  const auto certified = flow.solve_certified(0, kLevels);
  EXPECT_EQ(certified.value, 2);
  EXPECT_EQ(certified.cut_capacity, 2);
  EXPECT_TRUE(certified.ok());
  // The residual-reachable cut side is exactly the prefix up to the
  // bottleneck's tail.
  EXPECT_EQ(certified.cut_reachable, kLevels / 2 + 1);
  EXPECT_EQ(flow.flow_on(handles.front()), 2);
  EXPECT_EQ(flow.flow_on(handles.back()), 2);
}

TEST(Dinic, SelfLoopIsInertByConstruction) {
  // Arc pairing by index xor makes a self-loop's forward and reverse copies
  // distinct arcs, so it cannot corrupt residual capacities (the old
  // adjacency-list layout recorded a self-referential `rev` index here).
  DinicMaxFlow flow(3);
  const auto forward_a = flow.add_edge(0, 1, 4);
  const auto loop = flow.add_edge(1, 1, 7);
  const auto forward_b = flow.add_edge(1, 2, 3);
  EXPECT_EQ(flow.solve(0, 2), 3);
  EXPECT_EQ(flow.flow_on(loop), 0);
  EXPECT_EQ(flow.flow_on(forward_a), 3);
  EXPECT_EQ(flow.flow_on(forward_b), 3);
}

TEST(Dinic, SelfLoopOnSourceAndSink) {
  DinicMaxFlow flow(2);
  flow.add_edge(0, 0, 9);
  const auto middle = flow.add_edge(0, 1, 5);
  flow.add_edge(1, 1, 9);
  const auto certified = flow.solve_certified(0, 1);
  EXPECT_EQ(certified.value, 5);
  EXPECT_TRUE(certified.ok());
  EXPECT_EQ(flow.flow_on(middle), 5);
}

TEST(Dinic, ParallelDuplicateEdgesAccumulate) {
  DinicMaxFlow flow(2);
  const auto first = flow.add_edge(0, 1, 2);
  const auto second = flow.add_edge(0, 1, 3);
  EXPECT_EQ(flow.solve(0, 1), 5);
  EXPECT_EQ(flow.flow_on(first) + flow.flow_on(second), 5);
  EXPECT_LE(flow.flow_on(first), 2);
  EXPECT_LE(flow.flow_on(second), 3);
}

TEST(Dinic, FlowOnHandlesConserveAtEveryNode) {
  // Handle-indexed flows must describe a feasible flow after the CSR
  // rewrite: conservation at inner nodes, capacity obeyed per edge.
  struct Spec {
    std::size_t from, to;
    DinicMaxFlow::FlowValue cap;
  };
  const std::vector<Spec> edges{{0, 1, 4}, {0, 2, 6}, {1, 2, 2}, {1, 3, 3},
                                {2, 3, 5}, {2, 4, 2}, {3, 4, 9}};
  DinicMaxFlow flow(5);
  std::vector<std::size_t> handles;
  for (const Spec& e : edges) handles.push_back(flow.add_edge(e.from, e.to, e.cap));
  const auto value = flow.solve(0, 4);
  EXPECT_EQ(value, 10);
  std::vector<DinicMaxFlow::FlowValue> net(5, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto f = flow.flow_on(handles[i]);
    EXPECT_GE(f, 0);
    EXPECT_LE(f, edges[i].cap);
    net[edges[i].from] -= f;
    net[edges[i].to] += f;
  }
  EXPECT_EQ(net[0], -value);
  EXPECT_EQ(net[4], value);
  EXPECT_EQ(net[1], 0);
  EXPECT_EQ(net[2], 0);
  EXPECT_EQ(net[3], 0);
}

TEST(Dinic, CertificateOnDisconnectedSink) {
  DinicMaxFlow flow(3);
  flow.add_edge(0, 1, 5);
  const auto certified = flow.solve_certified(0, 2);
  EXPECT_EQ(certified.value, 0);
  EXPECT_EQ(certified.cut_capacity, 0);
  EXPECT_TRUE(certified.ok());
  // 0 and 1 stay residual-reachable; only the sink is across the cut.
  EXPECT_EQ(certified.cut_reachable, 2u);
}

TEST(Dinic, CertificateOnKnownCut) {
  // Min cut separates {0,1} from {2,3}: arcs 1->2 (3) and 0->2 (1).
  DinicMaxFlow flow(4);
  flow.add_edge(0, 1, 10);
  flow.add_edge(1, 2, 3);
  flow.add_edge(0, 2, 1);
  flow.add_edge(2, 3, 10);
  const auto certified = flow.solve_certified(0, 3);
  EXPECT_EQ(certified.value, 4);
  EXPECT_EQ(certified.cut_capacity, 4);
  EXPECT_EQ(certified.cut_reachable, 2u);
}

TEST(Dinic, SolveRejectsOutOfRangeTerminals) {
  DinicMaxFlow flow(2);
  EXPECT_THROW(flow.solve(0, 7), std::out_of_range);
}

TEST(Dinic, ResultsAreThreadCountInvariant) {
  // The tiled level-graph construction must not change results with the
  // thread count: solve the same multi-tile instance at 1/2/4/7 threads.
  Xoshiro256pp rng(99);
  AllocationInstance instance;
  instance.graph = erdos_renyi_bipartite(4000, 1500, 12000, rng);
  instance.capacities = uniform_capacities(1500, 1, 6, rng);
  const std::size_t source = 0;
  const std::size_t sink = 1 + 4000 + 1500;
  std::vector<DinicMaxFlow::CertifiedFlow> results;
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    DinicMaxFlow flow(sink + 1);
    for (Vertex u = 0; u < 4000; ++u) flow.add_edge(source, 1 + u, 1);
    for (const Edge& e : instance.graph.edges()) {
      flow.add_edge(1 + e.u, 1 + 4000 + e.v, 1);
    }
    for (Vertex v = 0; v < 1500; ++v) {
      flow.add_edge(1 + 4000 + v, sink, instance.capacities[v]);
    }
    flow.set_num_threads(threads);
    results.push_back(flow.solve_certified(source, sink));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].value, results[0].value);
    EXPECT_EQ(results[i].cut_capacity, results[0].cut_capacity);
    EXPECT_EQ(results[i].cut_reachable, results[0].cut_reachable);
  }
}

TEST(CertifiedOracle, ValueEqualsCutOnRandomizedInstances) {
  // Property test: across randomized instances the certificate must verify
  // (value == cut capacity) and the value must dominate the greedy lower
  // bound while respecting the trivial upper bounds.
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const CertifiedOptimum certified = certified_optimal_value(instance);
    EXPECT_TRUE(certified.certificate_ok) << spec.name;
    EXPECT_EQ(certified.value, certified.cut_capacity) << spec.name;
    const IntegralAllocation greedy = greedy_allocation(instance);
    EXPECT_GE(certified.value, greedy.size()) << spec.name;
    EXPECT_LE(certified.value, instance.graph.num_left()) << spec.name;
    EXPECT_LE(certified.value, instance.total_capacity()) << spec.name;
  }
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Xoshiro256pp rng(seed);
    AllocationInstance instance;
    instance.graph = erdos_renyi_bipartite(600, 300, 2400, rng);
    instance.capacities = uniform_capacities(300, 1, 4, rng);
    const CertifiedOptimum certified = certified_optimal_value(instance);
    EXPECT_TRUE(certified.certificate_ok) << "seed " << seed;
    const IntegralAllocation greedy = greedy_allocation(instance);
    EXPECT_GE(certified.value, greedy.size()) << "seed " << seed;
    EXPECT_LE(certified.value, 2 * greedy.size() + 1) << "seed " << seed;
  }
}

TEST(CertifiedOracle, WitnessResultCarriesCertificate) {
  const auto planted = mpcalloc::testing::make_planted(400, 100, 5, 4);
  const OptimalAllocationResult result =
      solve_optimal_allocation(planted.instance);
  EXPECT_TRUE(result.certificate_ok);
  EXPECT_EQ(result.value, result.cut_capacity);
  EXPECT_EQ(result.allocation.size(), result.value);
}

TEST(OptimalAllocation, StarRespectsCenterCapacity) {
  AllocationInstance instance{star_graph(10), {3}};
  EXPECT_EQ(optimal_allocation_value(instance), 3u);
  const auto result = solve_optimal_allocation(instance);
  EXPECT_EQ(result.value, 3u);
  EXPECT_EQ(result.allocation.size(), 3u);
  result.allocation.check_valid(instance);
}

TEST(OptimalAllocation, StarWithFullCapacity) {
  AllocationInstance instance{star_graph(10), {10}};
  EXPECT_EQ(optimal_allocation_value(instance), 10u);
}

TEST(OptimalAllocation, PlantedInstanceIsPerfect) {
  const auto planted = mpcalloc::testing::make_planted(400, 100, 5, 4);
  const auto result = solve_optimal_allocation(planted.instance);
  EXPECT_EQ(result.value, 400u);
  result.allocation.check_valid(planted.instance);
}

TEST(OptimalAllocation, WitnessValueMatches) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const auto result = solve_optimal_allocation(instance);
    EXPECT_EQ(result.allocation.size(), result.value) << spec.name;
    result.allocation.check_valid(instance);
  }
}

TEST(OptimalAllocation, BoundedByCapacityAndLeftSide) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const auto value = optimal_allocation_value(instance);
    EXPECT_LE(value, instance.graph.num_left()) << spec.name;
    EXPECT_LE(value, instance.total_capacity()) << spec.name;
  }
}

class GreedySuite
    : public ::testing::TestWithParam<mpcalloc::testing::InstanceSpec> {};

TEST_P(GreedySuite, GreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = greedy_allocation(instance);
  greedy.check_valid(instance);
  // Any maximal allocation is a 2-approximation.
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

TEST_P(GreedySuite, RandomizedGreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  Xoshiro256pp rng(GetParam().seed + 1000);
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = randomized_greedy_allocation(instance, rng);
  greedy.check_valid(instance);
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

TEST_P(GreedySuite, DegreeAwareGreedyIsValidAndHalfOptimal) {
  const AllocationInstance instance = mpcalloc::testing::make_instance(GetParam());
  const auto opt = optimal_allocation_value(instance);
  const IntegralAllocation greedy = degree_aware_greedy_allocation(instance);
  greedy.check_valid(instance);
  EXPECT_GE(2 * greedy.size() + 1, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GreedySuite,
    ::testing::ValuesIn(mpcalloc::testing::default_specs()),
    [](const ::testing::TestParamInfo<mpcalloc::testing::InstanceSpec>& param_info) {
      return param_info.param.name;
    });

TEST(Greedy, MaximalityOnStar) {
  AllocationInstance instance{star_graph(10), {4}};
  const IntegralAllocation greedy = greedy_allocation(instance);
  EXPECT_EQ(greedy.size(), 4u);  // fills the center's capacity
}

}  // namespace
}  // namespace mpcalloc
