#include "alloc/mpc_driver.hpp"
#include "alloc/verify.hpp"
#include "graph/generators.hpp"
#include "mpc/cluster.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

AllocationInstance medium_instance(std::uint32_t lambda, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  AllocationInstance instance;
  instance.graph = union_of_forests(1500, 600, lambda, rng);
  instance.capacities = uniform_capacities(600, 1, 5, rng);
  return instance;
}

MpcDriverConfig base_config() {
  MpcDriverConfig config;
  config.epsilon = 0.25;
  config.alpha = 0.7;
  config.samples_per_group = 6;
  config.seed = 3;
  return config;
}

TEST(PhaseLength, FollowsEquationFour) {
  // B = ⌊min(√(α log n), √(log λ))/√(8ε)⌋, floored at 1.
  EXPECT_EQ(phase_length_for(/*lambda=*/2.0, 0.25, 0.5, 1 << 20), 1u);
  EXPECT_GE(phase_length_for(/*lambda=*/1 << 16, 0.25, 0.9, 1 << 20), 2u);
  // Tiny λ caps B regardless of n.
  EXPECT_LE(phase_length_for(2.0, 0.25, 0.9, 1 << 30), 1u);
}

TEST(MpcNaive, ChargesConstantRoundsPerLocalRound) {
  const AllocationInstance instance = medium_instance(4, 11);
  MpcDriverConfig config = base_config();
  config.lambda = 4.0;
  const MpcRunResult result = run_mpc_naive(instance, config);
  result.allocation.check_valid(instance);
  EXPECT_EQ(result.local_rounds, tau_for_arboricity(4.0, 0.25));
  // 8 charged rounds per simulated LOCAL round + 2 materialisation.
  EXPECT_EQ(result.mpc_rounds, 8 * result.local_rounds + 2);
  EXPECT_LE(result.peak_machine_words, result.machine_words);
}

TEST(MpcNaive, QualityMatchesTheoremNine) {
  const AllocationInstance instance = medium_instance(4, 12);
  MpcDriverConfig config = base_config();
  config.lambda = 4.0;
  const MpcRunResult result = run_mpc_naive(instance, config);
  EXPECT_LE(fractional_ratio(instance, result.allocation), 4.5 + 1e-6);
}

TEST(MpcNaive, AdaptiveStopReducesRounds) {
  AllocationInstance instance{star_graph(400), {40}};
  MpcDriverConfig config = base_config();
  config.lambda = 400.0;  // deliberately pessimistic guess
  MpcDriverConfig adaptive = config;
  adaptive.adaptive_termination = true;
  const MpcRunResult fixed = run_mpc_naive(instance, config);
  const MpcRunResult early = run_mpc_naive(instance, adaptive);
  EXPECT_TRUE(early.stopped_by_condition);
  EXPECT_LT(early.local_rounds, fixed.local_rounds);
}

TEST(MpcPhased, ProducesFeasibleConstantFactorAllocation) {
  const AllocationInstance instance = medium_instance(8, 13);
  MpcDriverConfig config = base_config();
  config.lambda = 8.0;
  const MpcRunResult result = run_mpc_phased(instance, config);
  result.allocation.check_valid(instance);
  EXPECT_LE(fractional_ratio(instance, result.allocation), 6.0);
  EXPECT_GT(result.phases, 0u);
  EXPECT_EQ(result.local_rounds, tau_for_arboricity(8.0, 0.25));
}

TEST(MpcPhased, UsesFewerMpcRoundsThanNaive) {
  // With the eq.-(4) phase length, the phased driver's per-LOCAL-round MPC
  // cost (6/B + o(1)) undercuts the naive driver's 8.
  const AllocationInstance instance = medium_instance(8, 14);
  MpcDriverConfig config = base_config();
  config.lambda = 8.0;
  const MpcRunResult naive = run_mpc_naive(instance, config);
  const MpcRunResult phased = run_mpc_phased(instance, config);
  EXPECT_LT(phased.mpc_rounds, naive.mpc_rounds);
  EXPECT_EQ(phased.local_rounds, naive.local_rounds);
}

TEST(MpcPhased, BallVolumesRespectMachineMemory) {
  const AllocationInstance instance = medium_instance(8, 15);
  MpcDriverConfig config = base_config();
  config.lambda = 8.0;
  const MpcRunResult result = run_mpc_phased(instance, config);
  EXPECT_GT(result.max_ball_volume, 0u);
  EXPECT_LE(result.peak_machine_words, result.machine_words);
}

TEST(MpcPhased, OversizedPhaseLengthOverflowsMachines) {
  // Forcing B far beyond eq. (4) must blow the per-machine ball budget —
  // this is exactly the constraint that makes B = Θ(√log λ) necessary.
  const AllocationInstance instance = medium_instance(8, 16);
  MpcDriverConfig config = base_config();
  config.lambda = 8.0;
  config.alpha = 0.35;       // small machines
  config.phase_length = 12;  // enormous balls
  config.samples_per_group = 16;
  EXPECT_THROW(run_mpc_phased(instance, config), mpc::MpcCapacityError);
}

TEST(MpcUnknownLambda, TerminatesWithCertificate) {
  const AllocationInstance instance = medium_instance(4, 17);
  MpcDriverConfig config = base_config();
  const MpcRunResult result = run_mpc_unknown_lambda(instance, config);
  result.allocation.check_valid(instance);
  EXPECT_GE(result.trials, 1u);
  EXPECT_TRUE(result.stopped_by_condition);
  EXPECT_LE(fractional_ratio(instance, result.allocation), 6.0);
}

TEST(MpcUnknownLambda, CostsConstantFactorOverKnownLambda) {
  const AllocationInstance instance = medium_instance(4, 18);
  MpcDriverConfig known = base_config();
  known.lambda = 4.0;
  known.adaptive_termination = true;
  const MpcRunResult with_lambda = run_mpc_phased(instance, known);
  const MpcRunResult oblivious = run_mpc_unknown_lambda(instance, base_config());
  EXPECT_LE(oblivious.mpc_rounds, 8 * with_lambda.mpc_rounds + 64);
}

TEST(MpcDriver, TotalMemoryScalesWithInput) {
  const AllocationInstance instance = medium_instance(4, 19);
  MpcDriverConfig config = base_config();
  config.lambda = 4.0;
  const MpcRunResult result = run_mpc_naive(instance, config);
  // Peak total resident words should stay within a small multiple of the
  // input size (Õ(λn) claim; here m ≈ λn by construction).
  const std::uint64_t input =
      2 * instance.graph.num_edges() + instance.graph.num_vertices();
  EXPECT_LE(result.peak_total_words, 4 * input);
}

}  // namespace
}  // namespace mpcalloc
