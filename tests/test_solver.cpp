// The unified Solver facade (alloc/solver.hpp):
//
//  (a) every legacy free-function entry point (run_proportional,
//      solve_two_plus_eps, solve_adaptive, run_sampled, run_mpc_*) now
//      forwards through the facade and returns unchanged results — a
//      Solver configured with the equivalent SolveOptions reproduces each
//      one bit for bit;
//  (b) the shared CommonOptions slice (threads/seed/engine) propagates, and
//      results stay bitwise independent of num_threads through the facade;
//  (c) option validation still throws the legacy exception types/messages.
#include "alloc/mpc_driver.hpp"
#include "alloc/proportional.hpp"
#include "alloc/sampled.hpp"
#include "alloc/solver.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::make_instance;
using mpcalloc::testing::spec_by_name;

void expect_same(const ProportionalResult& legacy, const SolveResult& facade) {
  EXPECT_EQ(legacy.final_levels, facade.final_levels);
  EXPECT_EQ(legacy.final_alloc, facade.final_alloc);
  EXPECT_EQ(legacy.allocation.x, facade.allocation.x);
  EXPECT_EQ(legacy.match_weight, facade.match_weight);
  EXPECT_EQ(legacy.rounds_executed, facade.rounds_executed);
  EXPECT_EQ(legacy.stopped_by_condition, facade.stopped_by_condition);
  EXPECT_EQ(legacy.stats, facade.stats);
}

TEST(Solver, ProportionalMatchesLegacyEntryPoint) {
  const AllocationInstance instance = make_instance(spec_by_name("small_lam4"));
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 24;
  const ProportionalResult legacy = run_proportional(instance, config);

  SolveOptions options;
  options.method = SolveMethod::kProportional;
  options.epsilon = 0.25;
  options.max_rounds = 24;
  expect_same(legacy, Solver(options).solve(instance));
}

TEST(Solver, TwoPlusEpsMatchesLegacyEntryPoint) {
  const AllocationInstance instance = make_instance(spec_by_name("small_forest"));
  const ProportionalResult legacy =
      solve_two_plus_eps(instance, /*lambda=*/4.0, /*epsilon=*/0.25);

  SolveOptions options;
  options.method = SolveMethod::kTwoPlusEps;
  options.epsilon = 0.25;
  options.lambda = 4.0;
  const SolveResult facade = Solver(options).solve(instance);
  expect_same(legacy, facade);
  EXPECT_EQ(facade.rounds_executed, tau_for_arboricity(4.0, 0.25));
}

TEST(Solver, AdaptiveMatchesLegacyEntryPointIncludingDefaultCap) {
  const AllocationInstance instance = make_instance(spec_by_name("medium_lam8"));
  const ProportionalResult legacy = solve_adaptive(instance, /*epsilon=*/0.25);

  SolveOptions options;
  options.method = SolveMethod::kAdaptive;
  options.epsilon = 0.25;
  options.max_rounds = 0;  // facade substitutes τ(n, ε), as the shim did
  expect_same(legacy, Solver(options).solve(instance));
}

TEST(Solver, SampledMatchesLegacyEntryPointFromSeed) {
  const AllocationInstance instance = make_instance(spec_by_name("small_lam4"));
  SampledConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 12;
  config.phase_length = 3;
  config.samples_per_group = 8;
  Xoshiro256pp rng(99);
  const SampledResult legacy = run_sampled(instance, config, rng);

  SolveOptions options;
  options.method = SolveMethod::kSampled;
  options.epsilon = 0.25;
  options.max_rounds = 12;
  options.phase_length = 3;
  options.samples_per_group = 8;
  options.seed = 99;  // no-rng overload seeds its own stream from this
  const SolveResult facade = Solver(options).solve(instance);
  EXPECT_EQ(legacy.final_levels, facade.final_levels);
  EXPECT_EQ(legacy.allocation.x, facade.allocation.x);
  EXPECT_EQ(legacy.match_weight, facade.match_weight);
  EXPECT_EQ(legacy.phases_executed, facade.phases);
  EXPECT_EQ(legacy.samples_drawn, facade.samples_drawn);
}

TEST(Solver, MpcNaiveMatchesLegacyEntryPoint) {
  const AllocationInstance instance = make_instance(spec_by_name("small_forest"));
  MpcDriverConfig config;
  config.epsilon = 0.25;
  config.lambda = 2.0;
  const MpcRunResult legacy = run_mpc_naive(instance, config);

  SolveOptions options;
  options.method = SolveMethod::kMpcNaive;
  options.epsilon = 0.25;
  options.lambda = 2.0;
  const SolveResult facade = Solver(options).solve(instance);
  ASSERT_TRUE(facade.mpc.has_value());
  EXPECT_EQ(legacy.allocation.x, facade.allocation.x);
  EXPECT_EQ(legacy.match_weight, facade.match_weight);
  EXPECT_EQ(legacy.local_rounds, facade.rounds_executed);
  EXPECT_EQ(legacy.mpc_rounds, facade.mpc->mpc_rounds);
  EXPECT_EQ(legacy.words_moved, facade.mpc->words_moved);
  EXPECT_EQ(legacy.peak_machine_words, facade.mpc->peak_machine_words);
  EXPECT_EQ(legacy.num_machines, facade.mpc->num_machines);
  EXPECT_EQ(legacy.host_record_updates, facade.mpc->host_record_updates);
}

TEST(Solver, MpcPhasedAndUnknownLambdaMatchLegacyEntryPoints) {
  const AllocationInstance instance = make_instance(spec_by_name("small_lam4"));
  MpcDriverConfig config;
  config.epsilon = 0.25;
  config.lambda = 4.0;
  config.seed = 7;

  const MpcRunResult phased = run_mpc_phased(instance, config);
  SolveOptions options;
  options.method = SolveMethod::kMpcPhased;
  options.epsilon = 0.25;
  options.lambda = 4.0;
  options.seed = 7;
  const SolveResult facade = Solver(options).solve(instance);
  ASSERT_TRUE(facade.mpc.has_value());
  EXPECT_EQ(phased.allocation.x, facade.allocation.x);
  EXPECT_EQ(phased.phases, facade.phases);
  EXPECT_EQ(phased.mpc_rounds, facade.mpc->mpc_rounds);
  EXPECT_EQ(phased.max_ball_volume, facade.mpc->max_ball_volume);

  MpcDriverConfig unknown = config;
  unknown.lambda = 0.0;
  const MpcRunResult legacy_unknown = run_mpc_unknown_lambda(instance, unknown);
  options.method = SolveMethod::kMpcUnknownLambda;
  options.lambda = 0.0;
  const SolveResult facade_unknown = Solver(options).solve(instance);
  ASSERT_TRUE(facade_unknown.mpc.has_value());
  EXPECT_EQ(legacy_unknown.allocation.x, facade_unknown.allocation.x);
  EXPECT_EQ(legacy_unknown.trials, facade_unknown.mpc->trials);
  EXPECT_EQ(legacy_unknown.stopped_by_condition,
            facade_unknown.stopped_by_condition);
}

TEST(Solver, ResultsBitwiseIndependentOfThreadCount) {
  const AllocationInstance instance = make_instance(spec_by_name("medium_lam8"));
  SolveOptions options;
  options.method = SolveMethod::kProportional;
  options.epsilon = 0.25;
  options.max_rounds = 20;
  options.num_threads = 1;
  const SolveResult base = Solver(options).solve(instance);
  for (const std::size_t threads : {2, 4, 7}) {
    options.num_threads = threads;
    const SolveResult other = Solver(options).solve(instance);
    EXPECT_EQ(base.final_levels, other.final_levels) << threads;
    EXPECT_EQ(base.allocation.x, other.allocation.x) << threads;
    EXPECT_EQ(base.match_weight, other.match_weight) << threads;
  }
}

TEST(Solver, ValidationKeepsLegacyExceptions) {
  const AllocationInstance instance{star_graph(3), {1}};
  {
    SolveOptions options;
    options.method = SolveMethod::kProportional;
    options.max_rounds = 0;
    EXPECT_THROW((void)Solver(options).solve(instance), std::invalid_argument);
  }
  {
    ProportionalConfig config;  // legacy shim: adaptive still demands a budget
    config.stop_rule = StopRule::kAdaptive;
    config.max_rounds = 0;
    EXPECT_THROW((void)run_proportional(instance, config),
                 std::invalid_argument);
  }
  {
    SolveOptions options;
    options.method = SolveMethod::kSampled;
    options.max_rounds = 0;
    EXPECT_THROW((void)Solver(options).solve(instance), std::invalid_argument);
  }
}

}  // namespace
}  // namespace mpcalloc
