// Unit coverage for the deterministic parallel executor: tile coverage,
// bitwise-stable reductions, exception propagation, and the strict
// MPCALLOC_THREADS environment contract.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mpcalloc {
namespace {

/// Scoped override of MPCALLOC_THREADS; restores the previous value (or
/// unset state) on destruction so the suite-wide CI setting survives.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* previous = std::getenv(kVar)) previous_ = previous;
    if (value == nullptr) {
      ::unsetenv(kVar);
    } else {
      ::setenv(kVar, value, /*overwrite=*/1);
    }
  }
  ~ScopedThreadsEnv() {
    if (previous_.has_value()) {
      ::setenv(kVar, previous_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "MPCALLOC_THREADS";
  std::optional<std::string> previous_;
};

TEST(ResolveNumThreads, ExplicitRequestWins) {
  // An explicit positive request never consults the environment, even a
  // broken one.
  const ScopedThreadsEnv env("garbage");
  EXPECT_EQ(resolve_num_threads(3), 3u);
  EXPECT_EQ(resolve_num_threads(1), 1u);
}

TEST(ResolveNumThreads, AutoReadsEnvironment) {
  {
    const ScopedThreadsEnv env("7");
    EXPECT_EQ(resolve_num_threads(0), 7u);
  }
  {
    // Leading whitespace is strtol territory and tolerated.
    const ScopedThreadsEnv env(" 4");
    EXPECT_EQ(resolve_num_threads(0), 4u);
  }
}

TEST(ResolveNumThreads, AutoWithoutEnvUsesHardware) {
  const ScopedThreadsEnv env(nullptr);
  EXPECT_GE(resolve_num_threads(0), 1u);
}

TEST(ResolveNumThreads, RejectsBrokenEnvironmentValues) {
  // A set-but-invalid MPCALLOC_THREADS is a configuration error, not a
  // request for the default.
  for (const char* bad : {"garbage", "-2", "0", "", "4x", "2.5", "4 ",
                          "99999999999999999999999999"}) {
    SCOPED_TRACE(std::string("MPCALLOC_THREADS=\"") + bad + "\"");
    const ScopedThreadsEnv env(bad);
    EXPECT_THROW((void)resolve_num_threads(0), std::invalid_argument);
  }
}

TEST(ParallelFor, CoversRangeExactlyOncePerElement) {
  constexpr std::size_t kN = 5000;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    SCOPED_TRACE(threads);
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, kParallelTile, threads,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     hits[i].fetch_add(1);
                   }
                 });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
    }
  }
}

TEST(ParallelFor, TileBoundariesAreFixed) {
  // The decomposition is a pure function of (range, tile_size): every
  // thread count sees the same (begin, end) pairs.
  const auto tiles_with = [&](std::size_t threads) {
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    std::mutex mutex;
    parallel_for(10, 3700, 256, threads,
                 [&](std::size_t begin, std::size_t end) {
                   const std::lock_guard<std::mutex> lock(mutex);
                   tiles.emplace_back(begin, end);
                 });
    std::sort(tiles.begin(), tiles.end());
    return tiles;
  };
  const auto baseline = tiles_with(1);
  ASSERT_GT(baseline.size(), 1u);
  EXPECT_EQ(tiles_with(4), baseline);
  EXPECT_EQ(tiles_with(7), baseline);
}

TEST(ParallelReduce, FloatSumsAreBitwiseThreadInvariant) {
  // Left-to-right combination of per-tile partials: the grouping of the
  // additions never depends on the thread count.
  constexpr std::size_t kN = 20000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto sum_with = [&](std::size_t threads) {
    return parallel_reduce<double>(
        0, kN, kParallelTile, threads, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double partial = 0.0;
          for (std::size_t i = begin; i < end; ++i) partial += values[i];
          return partial;
        },
        [](double a, double b) { return a + b; });
  };
  const double baseline = sum_with(1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(threads);
    EXPECT_EQ(sum_with(threads), baseline);  // bitwise, not approximate
  }
}

TEST(ParallelFor, PropagatesTileExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    EXPECT_THROW(
        parallel_for(0, 10000, kParallelTile, threads,
                     [&](std::size_t begin, std::size_t) {
                       if (begin >= 2048) throw std::runtime_error("tile");
                     }),
        std::runtime_error);
  }
}

}  // namespace
}  // namespace mpcalloc
