// Paper-bound regression tests: pin the headline complexity/quality claims
// to concrete inequalities on the default instance matrix so that future
// driver rewrites cannot silently regress them.
//
//  * Theorem 3:  run_mpc_phased uses O(√(log λ)) MPC rounds.
//  * Baseline:   run_mpc_naive uses O(log λ) MPC rounds.
//  * Theorem 1:  boost_to_one_plus_eps reaches (1+ε)·OPT, with OPT from the
//                exact Dinic oracle in flow/optimal_allocation.
//
// The multiplicative constants below absorb the ε-dependence at ε = 0.25
// (the paper's bounds are c(ε)·√(log λ) and c(ε)·log λ); they were chosen
// with ~1.5× headroom over the measured seed values, so a change that
// blows up the round complexity by even a modest factor trips them.
#include "alloc/boosting.hpp"
#include "alloc/mpc_driver.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

constexpr double kEpsilon = 0.25;

// Round budgets as a function of λ (λ < 2 clamps to 2 so the log terms stay
// positive; the +1 keeps the bound meaningful for forests).
double log_lambda(double lambda) { return std::log2(std::max(lambda, 2.0)); }

MpcDriverConfig config_for(double lambda) {
  MpcDriverConfig config;
  config.epsilon = kEpsilon;
  config.alpha = 0.7;
  config.samples_per_group = 6;
  config.seed = 5;
  config.lambda = lambda;
  return config;
}

TEST(PaperBounds, NaiveDriverUsesLogLambdaMpcRounds) {
  constexpr double kNaiveConstant = 130.0;  // c(ε=0.25) for c·(1+log λ)
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const AllocationInstance instance = testing::make_instance(spec);
    const double lambda = spec.lambda;
    const MpcRunResult result = run_mpc_naive(instance, config_for(lambda));
    result.allocation.check_valid(instance);
    EXPECT_LE(result.mpc_rounds,
              kNaiveConstant * (1.0 + log_lambda(lambda)))
        << "mpc_rounds=" << result.mpc_rounds << " lambda=" << lambda;
  }
}

TEST(PaperBounds, PhasedDriverUsesSqrtLogLambdaMpcRounds) {
  constexpr double kPhasedConstant = 110.0;  // c(ε=0.25) for c·(1+√log λ)
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const AllocationInstance instance = testing::make_instance(spec);
    const double lambda = spec.lambda;
    const MpcRunResult result = run_mpc_phased(instance, config_for(lambda));
    result.allocation.check_valid(instance);
    EXPECT_LE(result.mpc_rounds,
              kPhasedConstant * (1.0 + std::sqrt(log_lambda(lambda))))
        << "mpc_rounds=" << result.mpc_rounds << " lambda=" << lambda;
  }
}

TEST(PaperBounds, PhasedBeatsNaivePerLocalRound) {
  // The whole point of phasing: amortised MPC cost per simulated LOCAL
  // round must be strictly below the naive driver's constant charge.
  const auto spec = testing::spec_by_name("medium_lam8");
  const AllocationInstance instance = testing::make_instance(spec);
  const MpcRunResult naive = run_mpc_naive(instance, config_for(spec.lambda));
  const MpcRunResult phased = run_mpc_phased(instance, config_for(spec.lambda));
  ASSERT_GT(naive.local_rounds, 0u);
  ASSERT_GT(phased.local_rounds, 0u);
  const double naive_cost =
      static_cast<double>(naive.mpc_rounds) / naive.local_rounds;
  const double phased_cost =
      static_cast<double>(phased.mpc_rounds) / phased.local_rounds;
  EXPECT_LT(phased_cost, naive_cost);
}

TEST(PaperBounds, BoosterReachesOnePlusEpsOfDinicOptimum) {
  constexpr double kBoostEpsilon = 0.2;
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const AllocationInstance instance = testing::make_instance(spec);
    const std::uint64_t opt = optimal_allocation_value(instance);
    const IntegralAllocation seed = greedy_allocation(instance);
    const BoostResult boosted =
        boost_to_one_plus_eps(instance, seed, kBoostEpsilon);
    boosted.allocation.check_valid(instance);
    // No augmenting walk of length ≤ 2k+1 with k = ⌈1/ε⌉ certifies
    // |M| ≥ OPT/(1+ε).
    EXPECT_GE((1.0 + kBoostEpsilon) *
                  static_cast<double>(boosted.allocation.size()) + 1e-9,
              static_cast<double>(opt))
        << "|M|=" << boosted.allocation.size() << " OPT=" << opt;
  }
}

}  // namespace
}  // namespace mpcalloc
