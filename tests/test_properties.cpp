// Randomized cross-validation sweep: many small random instances, every
// pipeline stage checked against its invariant and against the exact flow
// oracle. This is the suite most likely to catch subtle interaction bugs
// (mismatched edge ids, residual bookkeeping, scaling slips) that the
// per-module tests can miss.
#include "alloc/api.hpp"
#include "bmatch/bmatching.hpp"
#include "bmatch/proportional_bmatching.hpp"

#include <gtest/gtest.h>

namespace mpcalloc {
namespace {

/// A random small instance drawn from a mixed family (forest unions,
/// Erdős–Rényi, power law, stars, planted) with random capacities.
AllocationInstance random_instance(Xoshiro256pp& rng) {
  const std::size_t num_left = 10 + rng.uniform(120);
  const std::size_t num_right = 5 + rng.uniform(60);
  AllocationInstance instance;
  switch (rng.uniform(5)) {
    case 0:
      instance.graph = union_of_forests(
          num_left, num_right, 1 + static_cast<std::uint32_t>(rng.uniform(6)),
          rng);
      break;
    case 1: {
      const std::size_t max_edges = num_left * num_right;
      instance.graph = erdos_renyi_bipartite(
          num_left, num_right,
          std::min<std::size_t>(max_edges, 2 * num_left), rng);
      break;
    }
    case 2:
      instance.graph =
          power_law_bipartite(num_left, num_right, 3 * num_left, 0.7, rng);
      break;
    case 3:
      instance.graph = star_graph(num_left);
      break;
    default:
      instance.graph = left_regular(
          num_left, num_right,
          1 + static_cast<std::uint32_t>(rng.uniform(
                  std::min<std::size_t>(num_right, 5))),
          rng);
      break;
  }
  const std::size_t actual_right = instance.graph.num_right();
  switch (rng.uniform(3)) {
    case 0:
      instance.capacities = unit_capacities(actual_right);
      break;
    case 1:
      instance.capacities = uniform_capacities(actual_right, 1, 8, rng);
      break;
    default:
      instance.capacities = zipf_capacities(actual_right, 10, 1.1, rng);
      break;
  }
  return instance;
}

class RandomInstanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceSweep, AllPipelineInvariantsHold) {
  Xoshiro256pp rng(GetParam());
  constexpr int kInstancesPerSeed = 12;
  for (int trial = 0; trial < kInstancesPerSeed; ++trial) {
    const AllocationInstance instance = random_instance(rng);
    instance.validate();
    const auto opt = optimal_allocation_value(instance);
    const double eps = 0.25;

    // Stage 1: proportional allocation (λ-oblivious) — feasible, bounded.
    const ProportionalResult frac = solve_adaptive(instance, eps);
    frac.allocation.check_valid(instance);
    if (opt > 0) {
      EXPECT_LE(approximation_ratio(opt, frac.allocation.weight()),
                2.0 + 10.0 * eps + 1e-6)
          << "trial " << trial;
    }

    // Stage 2: rounding — always valid; maximal completion never hurts.
    BestOfRoundingResult rounded =
        round_best_of(instance, frac.allocation, rng, 6);
    rounded.best.check_valid(instance);
    const std::size_t before = rounded.best.size();
    make_maximal(instance, rounded.best);
    rounded.best.check_valid(instance);
    EXPECT_GE(rounded.best.size(), before);

    // Stage 3: booster — certificate vs exact OPT.
    const BoostResult boosted =
        boost_to_one_plus_eps(instance, rounded.best, eps);
    boosted.allocation.check_valid(instance);
    EXPECT_GE(static_cast<double>(boosted.allocation.size()) * (1.0 + eps),
              static_cast<double>(opt))
        << "trial " << trial;

    // Unbounded booster must reach OPT exactly (cross-validates Dinic).
    const BoostResult exact = boost_path_limited(
        instance, rounded.best, 2 * instance.graph.num_vertices() + 1);
    EXPECT_EQ(exact.allocation.size(), opt) << "trial " << trial;
  }
}

TEST_P(RandomInstanceSweep, SampledExecutorStaysFeasible) {
  Xoshiro256pp rng(GetParam() + 1000);
  for (int trial = 0; trial < 6; ++trial) {
    const AllocationInstance instance = random_instance(rng);
    SampledConfig config;
    config.epsilon = 0.25;
    config.phase_length = 1 + rng.uniform(4);
    config.samples_per_group = 1 + rng.uniform(8);
    config.max_rounds = 5 + rng.uniform(20);
    const SampledResult result = run_sampled(instance, config, rng);
    result.allocation.check_valid(instance);
  }
}

TEST_P(RandomInstanceSweep, LocalHostMatchesEngine) {
  Xoshiro256pp rng(GetParam() + 2000);
  for (int trial = 0; trial < 4; ++trial) {
    const AllocationInstance instance = random_instance(rng);
    ProportionalConfig config;
    config.epsilon = 0.2;
    config.max_rounds = 4 + rng.uniform(10);
    const ProportionalResult engine = run_proportional(instance, config);
    const LocalHostResult host = run_proportional_local(instance, config);
    EXPECT_EQ(host.result.final_levels, engine.final_levels) << trial;
  }
}

TEST_P(RandomInstanceSweep, BMatchingBoosterMatchesOracle) {
  Xoshiro256pp rng(GetParam() + 3000);
  for (int trial = 0; trial < 6; ++trial) {
    const AllocationInstance alloc = random_instance(rng);
    BMatchingInstance instance = BMatchingInstance::from_allocation(alloc);
    instance.left_capacities =
        uniform_capacities(instance.graph.num_left(), 1, 4, rng);
    const BMatching seed = greedy_bmatching(instance);
    seed.check_valid(instance);
    const BMatchBoostResult boosted = boost_bmatching(
        instance, seed, 2 * instance.graph.num_vertices() + 1);
    EXPECT_EQ(boosted.matching.size(), optimal_bmatching_value(instance))
        << "trial " << trial;
  }
}

TEST_P(RandomInstanceSweep, RoundingRespectsDistribution) {
  Xoshiro256pp rng(GetParam() + 4000);
  const AllocationInstance instance = random_instance(rng);
  const ProportionalResult frac = solve_adaptive(instance, 0.25);
  // Sampling at rate x/6 can never produce more edges than 6·weight in
  // expectation; check a generous tail bound over repeats.
  for (int trial = 0; trial < 20; ++trial) {
    const IntegralAllocation m =
        round_fractional(instance, frac.allocation, rng);
    EXPECT_LE(static_cast<double>(m.size()),
              frac.allocation.weight() + 12.0 * std::sqrt(
                  frac.allocation.weight() + 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mpcalloc
