#include "alloc/proportional.hpp"
#include "alloc/rounding.hpp"
#include "alloc/verify.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::InstanceSpec;
using mpcalloc::testing::default_specs;
using mpcalloc::testing::make_instance;

FractionalAllocation fractional_for(const AllocationInstance& instance,
                                    std::uint32_t lambda) {
  return solve_two_plus_eps(instance, lambda, 0.25).allocation;
}

class RoundingSuite : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(RoundingSuite, RoundedAllocationIsAlwaysValid) {
  const AllocationInstance instance = make_instance(GetParam());
  const FractionalAllocation frac = fractional_for(instance, GetParam().lambda);
  Xoshiro256pp rng(GetParam().seed + 100);
  for (int trial = 0; trial < 10; ++trial) {
    const IntegralAllocation rounded = round_fractional(instance, frac, rng);
    rounded.check_valid(instance);
  }
}

TEST_P(RoundingSuite, ExpectedSizeMatchesSectionSixBound) {
  // Section 6: E[|M|] ≥ wt(M_f)/9. Check the empirical mean with slack.
  const AllocationInstance instance = make_instance(GetParam());
  const FractionalAllocation frac = fractional_for(instance, GetParam().lambda);
  Xoshiro256pp rng(GetParam().seed + 200);
  double total = 0.0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    total += static_cast<double>(round_fractional(instance, frac, rng).size());
  }
  const double mean = total / kTrials;
  EXPECT_GE(mean, frac.weight() / 9.0 * 0.8) << GetParam().name;
}

TEST_P(RoundingSuite, BestOfCopiesAtLeastSingleTrial) {
  const AllocationInstance instance = make_instance(GetParam());
  const FractionalAllocation frac = fractional_for(instance, GetParam().lambda);
  Xoshiro256pp rng(GetParam().seed + 300);
  const BestOfRoundingResult best = round_best_of(instance, frac, rng, 12);
  EXPECT_EQ(best.copies, 12u);
  EXPECT_EQ(best.copy_sizes.size(), 12u);
  for (const std::size_t size : best.copy_sizes) {
    EXPECT_LE(size, best.best.size());
  }
  best.best.check_valid(instance);
}

TEST_P(RoundingSuite, MakeMaximalNeverShrinksAndStaysValid) {
  const AllocationInstance instance = make_instance(GetParam());
  const FractionalAllocation frac = fractional_for(instance, GetParam().lambda);
  Xoshiro256pp rng(GetParam().seed + 400);
  IntegralAllocation rounded = round_fractional(instance, frac, rng);
  const std::size_t before = rounded.size();
  make_maximal(instance, rounded);
  rounded.check_valid(instance);
  EXPECT_GE(rounded.size(), before);
  // Maximality: every free u must have no neighbour with residual capacity.
  std::vector<std::uint8_t> left_used(instance.graph.num_left(), 0);
  std::vector<std::uint32_t> residual(instance.capacities);
  for (const EdgeId e : rounded.edges) {
    left_used[instance.graph.edge(e).u] = 1;
    --residual[instance.graph.edge(e).v];
  }
  for (Vertex u = 0; u < instance.graph.num_left(); ++u) {
    if (left_used[u]) continue;
    for (const Incidence& inc : instance.graph.left_neighbors(u)) {
      EXPECT_EQ(residual[inc.to], 0u) << "u=" << u << " has a free neighbour";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, RoundingSuite,
                         ::testing::ValuesIn(default_specs()),
                         [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
                           return param_info.param.name;
                         });

TEST(Rounding, DefaultCopiesAreLogarithmic) {
  const AllocationInstance instance = make_instance(default_specs()[1]);
  const FractionalAllocation frac = fractional_for(instance, 1);
  Xoshiro256pp rng(1);
  const BestOfRoundingResult best = round_best_of(instance, frac, rng);
  const double n = static_cast<double>(instance.graph.num_vertices());
  EXPECT_EQ(best.copies,
            static_cast<std::size_t>(std::ceil(std::log2(n))) + 1);
}

TEST(Rounding, ZeroFractionalGivesEmptyRounding) {
  AllocationInstance instance{star_graph(5), {2}};
  FractionalAllocation frac;
  frac.x.assign(instance.graph.num_edges(), 0.0);
  Xoshiro256pp rng(2);
  EXPECT_EQ(round_fractional(instance, frac, rng).size(), 0u);
}

TEST(Rounding, RejectsMismatchedInput) {
  AllocationInstance instance{star_graph(5), {2}};
  FractionalAllocation frac;
  frac.x.assign(3, 0.5);
  Xoshiro256pp rng(3);
  EXPECT_THROW(round_fractional(instance, frac, rng), std::invalid_argument);
  frac.x.assign(instance.graph.num_edges(), 0.5);
  RoundingConfig config;
  config.sample_divisor = 0.5;
  EXPECT_THROW(round_fractional(instance, frac, rng, config),
               std::invalid_argument);
}

TEST(Rounding, EndToEndConstantApproximation) {
  // The full pipeline of Theorem 2 + Section 6 (+ greedy completion) should
  // land a small-constant integral approximation w.h.p. over copies.
  const auto planted = mpcalloc::testing::make_planted(600, 150, 5, 4);
  const AllocationInstance& instance = planted.instance;
  const FractionalAllocation frac = fractional_for(instance, 8);
  Xoshiro256pp rng(4);
  BestOfRoundingResult best = round_best_of(instance, frac, rng);
  make_maximal(instance, best.best);
  const double ratio = integral_ratio(instance, best.best);
  EXPECT_LE(ratio, 3.0);
}

}  // namespace
}  // namespace mpcalloc
