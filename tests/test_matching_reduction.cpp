#include "alloc/matching_reduction.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

TEST(MatchingReduction, SplitCountsCopies) {
  AllocationInstance instance{star_graph(5), {3}};
  const SplitGraph split = split_capacities(instance);
  EXPECT_EQ(split.graph.num_left(), 5u);
  EXPECT_EQ(split.graph.num_right(), 3u);
  EXPECT_EQ(split.graph.num_edges(), 15u);  // 5 leaves × 3 copies
  EXPECT_EQ(split.copy_owner, (std::vector<Vertex>{0, 0, 0}));
  split.graph.validate();
}

TEST(MatchingReduction, StarBlowUpMatchesRemarkOne) {
  // Remark 1: a star with center capacity n−1 becomes (nearly) complete
  // bipartite; arboricity jumps from 1 to Θ(n).
  const std::size_t n = 60;
  AllocationInstance instance{star_graph(n), {static_cast<std::uint32_t>(n - 1)}};
  EXPECT_TRUE(is_forest(instance.graph));

  const SplitGraph split = split_capacities(instance);
  EXPECT_EQ(split.graph.num_edges(), n * (n - 1));
  const ArboricityEstimate est = estimate_arboricity(split.graph);
  EXPECT_GE(est.lower_bound, static_cast<std::uint32_t>(n / 4));
}

TEST(MatchingReduction, SizeGuardTriggers) {
  AllocationInstance instance{star_graph(1000), {999}};
  EXPECT_THROW(split_capacities(instance, 10'000), std::length_error);
}

TEST(MatchingReduction, SplitOptEqualsOriginalOpt) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const SplitGraph split = split_capacities(instance);
    AllocationInstance split_instance{split.graph,
                                      unit_capacities(split.graph.num_right())};
    EXPECT_EQ(optimal_allocation_value(split_instance),
              optimal_allocation_value(instance))
        << spec.name;
  }
}

TEST(MatchingReduction, LiftPreservesSizeAndValidity) {
  const AllocationInstance instance =
      mpcalloc::testing::make_instance(mpcalloc::testing::default_specs()[2]);
  const SplitGraph split = split_capacities(instance);
  AllocationInstance split_instance{split.graph,
                                    unit_capacities(split.graph.num_right())};
  const auto split_opt = solve_optimal_allocation(split_instance);
  const IntegralAllocation lifted =
      lift_matching(instance, split, split_opt.allocation);
  lifted.check_valid(instance);
  EXPECT_EQ(lifted.size(), split_opt.allocation.size());
  EXPECT_EQ(lifted.size(), optimal_allocation_value(instance));
}

TEST(MatchingReduction, FirstCopyIndexing) {
  BipartiteGraphBuilder b(1, 3);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  AllocationInstance instance{b.build(), {2, 1, 3}};
  const SplitGraph split = split_capacities(instance);
  EXPECT_EQ(split.first_copy, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(split.copy_owner, (std::vector<Vertex>{0, 0, 1, 2, 2, 2}));
}

}  // namespace
}  // namespace mpcalloc
