// The frontier-driven incremental round engine's contract (round_engine.hpp):
//
//  (a) engine choice (dense / sparse / auto, at any thread count) never
//      changes a single output bit — the sparse path recomputes fewer
//      entries, never different values;
//  (b) the frontier bookkeeping is sound (the touched sets cover every
//      entry that actually moves) and allocation-free after warm-up
//      (workspace buffer addresses are stable);
//  (c) the MPCALLOC_FORCE_DENSE / MPCALLOC_FORCE_SPARSE environment
//      overrides pin the engine, so CI can exercise both paths.
#include "alloc/local_host.hpp"
#include "alloc/proportional.hpp"
#include "alloc/round_engine.hpp"
#include "bmatch/proportional_bmatching.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_set>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

/// Scoped environment override (value == nullptr unsets); restores the
/// previous state on destruction so engine-forcing tests cannot leak into
/// the rest of the suite.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

/// Tests that pin `config.engine` (and assert per-engine stats) cover both
/// recompute paths themselves, so they neutralise any ambient
/// MPCALLOC_FORCE_* override — CI's forced-engine jobs are aimed at the
/// kAuto-default suites, not at these.
struct ClearEngineOverrides {
  ScopedEnv dense{"MPCALLOC_FORCE_DENSE", nullptr};
  ScopedEnv sparse{"MPCALLOC_FORCE_SPARSE", nullptr};
};

std::vector<AllocationInstance> engine_instances() {
  std::vector<AllocationInstance> instances;
  instances.push_back(testing::make_instance(testing::spec_by_name("medium_lam8")));
  {
    // Load-balanced (total capacity == n_L) and multi-tile: the dynamics
    // genuinely quiesce (the frontier hits zero by round ~7), so the auto
    // engine really takes sparse rounds on this instance.
    Xoshiro256pp rng(2031);
    AllocationInstance balanced;
    balanced.graph = union_of_forests(6000, 3000, 8, rng);
    balanced.capacities = Capacities(3000, 2);
    instances.push_back(std::move(balanced));
  }
  return instances;
}

void expect_identical(const ProportionalResult& a, const ProportionalResult& b) {
  EXPECT_EQ(a.allocation.x, b.allocation.x);
  EXPECT_EQ(a.match_weight, b.match_weight);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.stopped_by_condition, b.stopped_by_condition);
  EXPECT_EQ(a.final_levels, b.final_levels);
  EXPECT_EQ(a.final_alloc, b.final_alloc);
}

TEST(Incremental, EnginesBitwiseIdenticalAcrossThreadCounts) {
  const ClearEngineOverrides no_overrides;
  for (std::size_t i = 0; const AllocationInstance& instance : engine_instances()) {
    for (const StopRule rule : {StopRule::kFixedRounds, StopRule::kAdaptive}) {
      SCOPED_TRACE(::testing::Message()
                   << "instance " << i << ", rule "
                   << (rule == StopRule::kAdaptive ? "adaptive" : "fixed"));
      const auto run_with = [&](RoundEngine engine, std::size_t threads) {
        ProportionalConfig config;
        config.epsilon = 0.25;
        config.stop_rule = rule;
        config.max_rounds =
            rule == StopRule::kAdaptive
                ? tau_for_arboricity(
                      static_cast<double>(instance.graph.num_vertices()), 0.25)
                : 25;
        config.engine = engine;
        config.num_threads = threads;
        return run_proportional(instance, config);
      };
      const ProportionalResult baseline = run_with(RoundEngine::kDense, 1);
      EXPECT_EQ(baseline.stats.sparse_rounds, 0u);
      EXPECT_EQ(baseline.stats.dense_rounds, baseline.rounds_executed);
      for (const RoundEngine engine :
           {RoundEngine::kDense, RoundEngine::kSparse, RoundEngine::kAuto}) {
        ProportionalResult reference;
        bool have_reference = false;
        for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
          SCOPED_TRACE(::testing::Message()
                       << "engine " << static_cast<int>(engine) << ", "
                       << threads << " threads");
          ProportionalResult result = run_with(engine, threads);
          expect_identical(baseline, result);
          // Stats (frontier sizes, engine choices) are set/volume counters,
          // so they too must not depend on the thread count.
          if (!have_reference) {
            reference = std::move(result);
            have_reference = true;
          } else {
            EXPECT_EQ(result.stats, reference.stats);
          }
        }
        if (engine == RoundEngine::kSparse && reference.rounds_executed > 1) {
          // Forced sparse: only round 1 (no frontier yet) is dense.
          EXPECT_EQ(reference.stats.dense_rounds, 1u);
          EXPECT_EQ(reference.stats.sparse_rounds,
                    reference.rounds_executed - 1);
        }
      }
    }
    ++i;
  }
}

TEST(Incremental, AutoEngineTakesSparseRoundsOnQuiescentInstance) {
  const ClearEngineOverrides no_overrides;
  // The balanced instance converges, so kAuto must actually exercise the
  // sparse path (otherwise the suite above is vacuous for it) and the
  // recompute counters must stay below the dense volume.
  const AllocationInstance instance = engine_instances()[1];
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 25;
  auto result = run_proportional(instance, config);
  EXPECT_GT(result.stats.sparse_rounds, 0u);
  ASSERT_EQ(result.stats.rounds.size(), result.rounds_executed);
  EXPECT_FALSE(result.stats.rounds.front().sparse);  // round 1 is dense
  for (const RoundStats& round : result.stats.rounds) {
    if (!round.sparse) continue;
    EXPECT_LE(round.recomputed_left, instance.graph.num_left());
    EXPECT_LE(round.recomputed_right, instance.graph.num_right());
  }
}

TEST(Incremental, ThresholdKSparseMatchesDense) {
  const ClearEngineOverrides no_overrides;
  // Algorithm 3's loose per-(vertex, round) thresholds flow through the
  // incremental path too: a changed k can move a vertex whose alloc did not
  // change, which the frontier logic must survive (the level update is
  // always a full dense pass; only the aggregate/alloc recompute is sparse).
  Xoshiro256pp rng(2032);
  AllocationInstance instance;
  instance.graph = union_of_forests(900, 400, 4, rng);
  instance.capacities = Capacities(400, 2);

  const auto run_with = [&](RoundEngine engine) {
    ProportionalConfig config;
    config.epsilon = 0.2;
    config.max_rounds = 18;
    config.engine = engine;
    config.threshold_k = [](Vertex v, std::size_t round) {
      return (v + round) % 3 == 0 ? 2.0 : 0.5;
    };
    return run_proportional(instance, config);
  };
  const ProportionalResult dense = run_with(RoundEngine::kDense);
  const ProportionalResult sparse = run_with(RoundEngine::kSparse);
  expect_identical(dense, sparse);
}

TEST(Incremental, BMatchingEnginesBitwiseIdentical) {
  const ClearEngineOverrides no_overrides;
  Xoshiro256pp rng(2033);
  BMatchingInstance instance;
  instance.graph = union_of_forests(4000, 1500, 5, rng);
  instance.left_capacities = uniform_capacities(4000, 1, 3, rng);
  instance.right_capacities = Capacities(1500, 4);

  const auto run_with = [&](RoundEngine engine, std::size_t threads) {
    ProportionalBMatchingConfig config;
    config.epsilon = 0.25;
    config.rounds = 20;
    config.engine = engine;
    config.num_threads = threads;
    return run_proportional_bmatching(instance, config);
  };
  const ProportionalBMatchingResult baseline = run_with(RoundEngine::kDense, 1);
  for (const RoundEngine engine : {RoundEngine::kSparse, RoundEngine::kAuto}) {
    for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
      SCOPED_TRACE(::testing::Message() << "engine " << static_cast<int>(engine)
                                        << ", " << threads << " threads");
      const ProportionalBMatchingResult result = run_with(engine, threads);
      EXPECT_EQ(result.matching.x, baseline.matching.x);
      EXPECT_EQ(result.match_weight, baseline.match_weight);
      EXPECT_EQ(result.final_levels, baseline.final_levels);
    }
  }
  // The sparse run must actually be sparse after round 1.
  const ProportionalBMatchingResult sparse = run_with(RoundEngine::kSparse, 1);
  EXPECT_EQ(sparse.stats.dense_rounds, 1u);
  EXPECT_EQ(sparse.stats.sparse_rounds, sparse.rounds_executed - 1);
}

TEST(Incremental, TouchedSetsCoverEveryChangedEntry) {
  // Property test for the frontier derivation: run the dynamics densely;
  // at each round compare the freshly recomputed aggregate/alloc against
  // the previous round's and assert every entry that moved is inside the
  // touched sets derived from the recorded deltas (marked ⊇ changed).
  const AllocationInstance instance =
      testing::make_instance(testing::spec_by_name("medium_lam8"));
  const auto& g = instance.graph;
  const PowTable pow_table(0.25);

  std::vector<std::int32_t> levels(g.num_right(), 0);
  RoundWorkspace ws;
  ws.init(g);
  LeftAggregate prev_left;
  std::vector<double> prev_alloc;
  bool have_prev = false;

  for (std::size_t round = 1; round <= 15; ++round) {
    const LeftAggregate left =
        compute_left_aggregate(g, levels, pow_table);
    const std::vector<double> alloc =
        compute_alloc(g, levels, left, pow_table);
    if (have_prev) {
      ASSERT_TRUE(ws.derive_touched(
          g, std::numeric_limits<std::uint64_t>::max()));
      const auto touched_left = ws.touched_left();
      const auto touched_right = ws.touched_right();
      const std::unordered_set<Vertex> left_set(touched_left.begin(),
                                                touched_left.end());
      const std::unordered_set<Vertex> right_set(touched_right.begin(),
                                                 touched_right.end());
      for (Vertex u = 0; u < g.num_left(); ++u) {
        if (left.max_level[u] != prev_left.max_level[u] ||
            left.inv_scaled_denominator[u] !=
                prev_left.inv_scaled_denominator[u]) {
          EXPECT_TRUE(left_set.contains(u)) << "changed left entry " << u
                                            << " missing at round " << round;
        }
      }
      for (Vertex v = 0; v < g.num_right(); ++v) {
        if (alloc[v] != prev_alloc[v]) {
          EXPECT_TRUE(right_set.contains(v)) << "changed alloc entry " << v
                                             << " missing at round " << round;
        }
      }
    }
    apply_level_update(instance, alloc, 0.25, round, nullptr, levels, 1,
                       &ws.deltas);
    ws.derive_frontier(g, ws.deltas, 1);
    prev_left = left;
    prev_alloc = alloc;
    have_prev = true;
  }
}

TEST(Incremental, FrontierMatchesNonzeroDeltas) {
  const AllocationInstance instance =
      testing::make_instance(testing::spec_by_name("small_lam4"));
  const auto& g = instance.graph;
  std::vector<std::int8_t> deltas(g.num_right(), 0);
  deltas[1] = 1;
  deltas[5] = -1;
  if (g.num_right() > 200) deltas[200] = 1;
  RoundWorkspace ws;
  ws.init(g);
  // The two-pass compaction must agree with a trivial serial scan for any
  // thread count (ragged 7 included).
  for (const std::size_t threads : {1u, 2u, 7u}) {
    ws.derive_frontier(g, deltas, threads);
    std::vector<Vertex> expected;
    std::uint64_t volume = 0;
    for (Vertex v = 0; v < g.num_right(); ++v) {
      if (deltas[v] != 0) {
        expected.push_back(v);
        volume += g.right_degree(v);
      }
    }
    EXPECT_EQ(std::vector<Vertex>(ws.frontier().begin(), ws.frontier().end()),
              expected);
    EXPECT_EQ(ws.frontier_volume(), volume);
  }
}

TEST(Incremental, DeriveTouchedHonoursEdgeBudget) {
  const AllocationInstance instance =
      testing::make_instance(testing::spec_by_name("medium_lam8"));
  const auto& g = instance.graph;
  std::vector<std::int8_t> deltas(g.num_right(), 1);  // everything moved
  RoundWorkspace ws;
  ws.init(g);
  ws.derive_frontier(g, deltas, 1);
  EXPECT_FALSE(ws.derive_touched(g, /*edge_budget=*/8));
  EXPECT_TRUE(ws.derive_touched(
      g, std::numeric_limits<std::uint64_t>::max()));
  // With an unbounded budget on an everything-moved frontier the touched
  // sets must cover every non-isolated vertex.
  EXPECT_GT(ws.touched_left().size(), 0u);
  EXPECT_GT(ws.touched_right().size(), 0u);
}

TEST(Incremental, WorkspaceBuffersStableAfterWarmup) {
  // The zero-allocation contract, observed through pointer stability: once
  // init() sized the buffers, no round may reallocate any of them — the
  // frontier queue, the touched sets, and the delta array keep their
  // addresses through a full forced-sparse run.
  const AllocationInstance instance = engine_instances()[1];
  const auto& g = instance.graph;
  const PowTable pow_table(0.25);

  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);
  LeftAggregate left;
  RoundWorkspace ws;
  ws.init(g);

  const std::int8_t* deltas_data = ws.deltas.data();
  const Vertex* frontier_data = nullptr;
  const Vertex* touched_left_data = nullptr;
  const Vertex* touched_right_data = nullptr;

  for (std::size_t round = 1; round <= 20; ++round) {
    if (round == 1) {
      compute_left_aggregate_into(g, levels, pow_table, 1, left);
      compute_alloc_into(g, levels, left, pow_table, 1, alloc);
    } else {
      ASSERT_TRUE(ws.derive_touched(
          g, std::numeric_limits<std::uint64_t>::max()));
      for (const Vertex u : ws.touched_left()) {
        recompute_left_entry(g, levels, pow_table, u, left);
      }
      for (const Vertex v : ws.touched_right()) {
        alloc[v] = recompute_alloc_entry(g, levels, left, pow_table, v);
      }
    }
    apply_level_update(instance, alloc, 0.25, round, nullptr, levels, 1,
                       &ws.deltas);
    ws.derive_frontier(g, ws.deltas, 1);
    if (round == 2) {
      frontier_data = ws.frontier().data();
      touched_left_data = ws.touched_left().data();
      touched_right_data = ws.touched_right().data();
    } else if (round > 2) {
      EXPECT_EQ(ws.deltas.data(), deltas_data);
      EXPECT_EQ(ws.frontier().data(), frontier_data);
      EXPECT_EQ(ws.touched_left().data(), touched_left_data);
      EXPECT_EQ(ws.touched_right().data(), touched_right_data);
    }
  }
}

TEST(Incremental, EnvOverridesForceEngineChoice) {
  const ClearEngineOverrides no_overrides;
  const AllocationInstance instance =
      testing::make_instance(testing::spec_by_name("medium_lam8"));
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 12;
  config.engine = RoundEngine::kAuto;

  {
    ScopedEnv force("MPCALLOC_FORCE_SPARSE", "1");
    const ProportionalResult result = run_proportional(instance, config);
    EXPECT_EQ(result.stats.dense_rounds, 1u);
    EXPECT_EQ(result.stats.sparse_rounds, result.rounds_executed - 1);
  }
  {
    ScopedEnv force("MPCALLOC_FORCE_DENSE", "1");
    const ProportionalResult result = run_proportional(instance, config);
    EXPECT_EQ(result.stats.sparse_rounds, 0u);
  }
  {
    ScopedEnv dense("MPCALLOC_FORCE_DENSE", "1");
    ScopedEnv sparse("MPCALLOC_FORCE_SPARSE", "1");
    EXPECT_THROW((void)run_proportional(instance, config),
                 std::invalid_argument);
  }
  {
    // "0" means unset, matching the usual boolean-env convention.
    ScopedEnv off("MPCALLOC_FORCE_DENSE", "0");
    EXPECT_EQ(resolve_round_engine(RoundEngine::kSparse), RoundEngine::kSparse);
  }
}

TEST(Incremental, LocalHostMessagesAreFrontierDriven) {
  // The LOCAL host now re-announces levels only when they changed and
  // re-sends fractional terms only to processors that heard a new level, so
  // on a quiescing instance the message volume must fall far below the
  // always-broadcast protocol's m + 2m·rounds (while test_local_host keeps
  // asserting bit-for-bit agreement with the vectorised engine).
  const AllocationInstance instance = engine_instances()[1];
  ProportionalConfig config;
  config.epsilon = 0.25;
  config.max_rounds = 20;
  const LocalHostResult host = run_proportional_local(instance, config);
  const std::uint64_t broadcast_messages =
      static_cast<std::uint64_t>(instance.graph.num_edges()) *
      (1 + 2 * config.max_rounds);
  EXPECT_LT(host.messages_sent, broadcast_messages / 2);
  EXPECT_EQ(host.local_rounds, 2 * config.max_rounds + 1);
}

TEST(Incremental, RejectsNegativeSwitchFraction) {
  const AllocationInstance instance =
      testing::make_instance(testing::spec_by_name("tiny_unit"));
  ProportionalConfig config;
  config.max_rounds = 3;
  config.dense_switch_fraction = -0.5;
  EXPECT_THROW((void)run_proportional(instance, config), std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc
