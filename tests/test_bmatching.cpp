#include "bmatch/bmatching.hpp"
#include "bmatch/proportional_bmatching.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

BMatchingInstance random_bmatching(std::size_t num_left, std::size_t num_right,
                                   std::uint32_t lambda, std::uint32_t cap_hi,
                                   std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  BMatchingInstance instance;
  instance.graph = union_of_forests(num_left, num_right, lambda, rng);
  instance.left_capacities = uniform_capacities(num_left, 1, cap_hi, rng);
  instance.right_capacities = uniform_capacities(num_right, 1, cap_hi, rng);
  return instance;
}

TEST(BMatchingInstance, ValidationGuards) {
  BMatchingInstance instance;
  instance.graph = star_graph(3);
  instance.left_capacities = {1, 1};  // wrong size
  instance.right_capacities = {2};
  EXPECT_THROW(instance.validate(), std::invalid_argument);
  instance.left_capacities = {1, 1, 0};
  EXPECT_THROW(instance.validate(), std::invalid_argument);
  instance.left_capacities = {1, 1, 1};
  instance.validate();
  EXPECT_EQ(instance.total_left_capacity(), 3u);
  EXPECT_EQ(instance.total_right_capacity(), 2u);
}

TEST(BMatchingInstance, FromAllocationMatchesSemantics) {
  AllocationInstance alloc{star_graph(5), {3}};
  const BMatchingInstance bm = BMatchingInstance::from_allocation(alloc);
  bm.validate();
  EXPECT_EQ(bm.left_capacities, Capacities(5, 1));
  EXPECT_EQ(bm.right_capacities, alloc.capacities);
  EXPECT_EQ(optimal_bmatching_value(bm), 3u);
}

TEST(BMatching, ValidityChecksBothSides) {
  BMatchingInstance instance;
  BipartiteGraphBuilder b(2, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  instance.graph = b.build();
  instance.left_capacities = {2, 1};
  instance.right_capacities = {1, 1};

  BMatching ok{{0, 1}};  // u0 uses both slots
  EXPECT_TRUE(ok.is_valid(instance));
  BMatching right_overflow{{0, 2}};  // v0 gets 2 with b_v=1
  EXPECT_FALSE(right_overflow.is_valid(instance));
  instance.left_capacities = {1, 1};
  EXPECT_FALSE(ok.is_valid(instance));  // now u0 over its b_u
}

TEST(FractionalBMatching, ValidityChecksLoads) {
  BMatchingInstance instance;
  BipartiteGraphBuilder b(1, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  instance.graph = b.build();
  instance.left_capacities = {1};
  instance.right_capacities = {1, 1};

  FractionalBMatching f;
  f.x = {0.5, 0.5};
  EXPECT_TRUE(f.is_valid(instance));
  EXPECT_DOUBLE_EQ(f.weight(), 1.0);
  f.x = {0.9, 0.9};  // u0 load 1.8 > 1
  EXPECT_FALSE(f.is_valid(instance));
  instance.left_capacities = {2};
  EXPECT_TRUE(f.is_valid(instance));
}

TEST(OptimalBMatching, HandComputedExample) {
  // K_{2,2}, all b = 2: every edge can be used.
  BipartiteGraphBuilder b(2, 2);
  for (Vertex u = 0; u < 2; ++u) {
    for (Vertex v = 0; v < 2; ++v) b.add_edge(u, v);
  }
  BMatchingInstance instance{b.build(), {2, 2}, {2, 2}};
  EXPECT_EQ(optimal_bmatching_value(instance), 4u);
  instance.right_capacities = {1, 1};
  EXPECT_EQ(optimal_bmatching_value(instance), 2u);
}

class BMatchingSuite
    : public ::testing::TestWithParam<mpcalloc::testing::InstanceSpec> {};

TEST_P(BMatchingSuite, GreedyIsValidMaximalAndHalfOptimal) {
  const auto& spec = GetParam();
  const BMatchingInstance instance = random_bmatching(
      spec.num_left, spec.num_right, spec.lambda, spec.cap_hi, spec.seed);
  const BMatching greedy = greedy_bmatching(instance);
  greedy.check_valid(instance);
  const auto opt = optimal_bmatching_value(instance);
  EXPECT_GE(2 * greedy.size() + 1, opt) << spec.name;
}

TEST_P(BMatchingSuite, BoosterReachesExactOptimumUnbounded) {
  const auto& spec = GetParam();
  const BMatchingInstance instance = random_bmatching(
      spec.num_left, spec.num_right, spec.lambda, spec.cap_hi, spec.seed + 1);
  const BMatching seed = greedy_bmatching(instance);
  const std::size_t huge = 2 * instance.graph.num_vertices() + 1;
  const BMatchBoostResult boosted = boost_bmatching(instance, seed, huge);
  EXPECT_EQ(boosted.matching.size(), optimal_bmatching_value(instance))
      << spec.name;
}

TEST_P(BMatchingSuite, BoosterOnePlusEpsCertificate) {
  const auto& spec = GetParam();
  const BMatchingInstance instance = random_bmatching(
      spec.num_left, spec.num_right, spec.lambda, spec.cap_hi, spec.seed + 2);
  const BMatching seed = greedy_bmatching(instance);
  // k = 5 pairs ⇒ no augmenting walk of length ≤ 11 ⇒ ratio ≤ 1+1/6.
  const BMatchBoostResult boosted = boost_bmatching(instance, seed, 11);
  boosted.matching.check_valid(instance);
  const auto opt = optimal_bmatching_value(instance);
  EXPECT_GE(static_cast<double>(boosted.matching.size()) * (1.0 + 1.0 / 6.0),
            static_cast<double>(opt))
      << spec.name;
}

TEST_P(BMatchingSuite, ProportionalDynamicsProduceFeasibleFraction) {
  const auto& spec = GetParam();
  const BMatchingInstance instance = random_bmatching(
      spec.num_left, spec.num_right, spec.lambda, spec.cap_hi, spec.seed + 3);
  ProportionalBMatchingConfig config;
  config.epsilon = 0.25;
  config.rounds = 30;
  const ProportionalBMatchingResult result =
      run_proportional_bmatching(instance, config);
  result.matching.check_valid(instance);
  // No proven bound (open question) — but it must beat a trivial fraction
  // of OPT on these benign instances.
  const auto opt = optimal_bmatching_value(instance);
  EXPECT_GE(result.matching.weight() * 6.0, static_cast<double>(opt))
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Instances, BMatchingSuite,
    ::testing::ValuesIn(mpcalloc::testing::default_specs()),
    [](const ::testing::TestParamInfo<mpcalloc::testing::InstanceSpec>& param_info) {
      return param_info.param.name;
    });

TEST(ProportionalBMatching, ReducesToAllocationWhenLeftUnit) {
  // With b_u ≡ 1 the two-sided dynamics must coincide with Algorithm 1's
  // level trajectory.
  const AllocationInstance alloc =
      mpcalloc::testing::make_instance(mpcalloc::testing::default_specs()[2]);
  const BMatchingInstance bm = BMatchingInstance::from_allocation(alloc);

  ProportionalBMatchingConfig bconfig;
  bconfig.epsilon = 0.25;
  bconfig.rounds = 12;
  const ProportionalBMatchingResult two_sided =
      run_proportional_bmatching(bm, bconfig);

  ProportionalConfig aconfig;
  aconfig.epsilon = 0.25;
  aconfig.max_rounds = 12;
  const ProportionalResult one_sided = run_proportional(alloc, aconfig);

  ASSERT_EQ(two_sided.final_levels.size(), one_sided.final_levels.size());
  for (Vertex v = 0; v < one_sided.final_levels.size(); ++v) {
    EXPECT_EQ(two_sided.final_levels[v], one_sided.final_levels[v]) << v;
  }
}

TEST(ProportionalBMatching, GuardsConfig) {
  BMatchingInstance instance;
  instance.graph = star_graph(2);
  instance.left_capacities = {1, 1};
  instance.right_capacities = {1};
  ProportionalBMatchingConfig config;
  config.rounds = 0;
  EXPECT_THROW(run_proportional_bmatching(instance, config),
               std::invalid_argument);
}

TEST(BoostBMatching, GuardsWalkLength) {
  BMatchingInstance instance;
  instance.graph = star_graph(2);
  instance.left_capacities = {1, 1};
  instance.right_capacities = {2};
  BMatching empty;
  EXPECT_THROW(boost_bmatching(instance, empty, 2), std::invalid_argument);
  const BMatchBoostResult r = boost_bmatching(instance, empty, 1);
  EXPECT_EQ(r.matching.size(), 2u);
}

TEST(BoostBMatching, LeftCapacityRootsAugmentMultipleTimes) {
  // One L vertex with b_u=3 and three R partners: length-1 walks must fire
  // three times from the same root.
  BipartiteGraphBuilder b(1, 3);
  for (Vertex v = 0; v < 3; ++v) b.add_edge(0, v);
  BMatchingInstance instance{b.build(), {3}, {1, 1, 1}};
  BMatching empty;
  const BMatchBoostResult r = boost_bmatching(instance, empty, 1);
  EXPECT_EQ(r.matching.size(), 3u);
}

}  // namespace
}  // namespace mpcalloc
