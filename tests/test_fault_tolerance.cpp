// The fault-tolerance layer's headline invariant: a run with any injected
// fault schedule — transient exchange failures, delayed or partial
// deliveries, worker crashes — produces record streams and MPC model
// counters (rounds, words_moved, peak_machine_words, peak_total_words)
// bitwise identical to the fault-free run, at every thread count, with the
// recovery overhead reported separately. Plus the checkpoint/restore and
// OverflowPolicy machinery underneath it.
#include "alloc/mpc_driver.hpp"
#include "graph/generators.hpp"
#include "mpc/cluster.hpp"
#include "mpc/process_transport.hpp"
#include "mpc/transport.hpp"
#include "mpc/worker.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <numeric>
#include <string>
#include <vector>

namespace mpcalloc {
namespace {

using mpc::Cluster;
using mpc::ClusterCheckpoint;
using mpc::DistVec;
using mpc::FaultEvent;
using mpc::FaultInjectingTransport;
using mpc::FaultKind;
using mpc::FaultPlan;
using mpc::MpcRecoveryStats;
using mpc::TransportFault;
using mpc::Word;
using mpc::WorkerGroup;

AllocationInstance chaos_instance() {
  Xoshiro256pp rng(17);
  AllocationInstance instance;
  instance.graph = union_of_forests(120, 60, 3, rng);
  instance.capacities = uniform_capacities(60, 1, 4, rng);
  return instance;
}

MpcDriverConfig chaos_config(std::size_t num_threads) {
  MpcDriverConfig config;
  config.epsilon = 0.25;
  config.lambda = 4.0;
  config.seed = 5;
  config.num_threads = num_threads;
  return config;
}

/// The full bitwise-identity contract between a recovered and a fault-free
/// run: identical output allocation and identical model counters. Recovery
/// overhead lives on `.recovery` and is asserted separately by callers.
void expect_bitwise_match(const MpcRunResult& recovered,
                          const MpcRunResult& reference,
                          const std::string& label) {
  EXPECT_EQ(recovered.allocation.x, reference.allocation.x) << label;
  EXPECT_EQ(recovered.match_weight, reference.match_weight) << label;
  EXPECT_EQ(recovered.local_rounds, reference.local_rounds) << label;
  EXPECT_EQ(recovered.mpc_rounds, reference.mpc_rounds) << label;
  EXPECT_EQ(recovered.words_moved, reference.words_moved) << label;
  EXPECT_EQ(recovered.peak_machine_words, reference.peak_machine_words)
      << label;
  EXPECT_EQ(recovered.peak_total_words, reference.peak_total_words) << label;
  EXPECT_EQ(recovered.host_record_updates, reference.host_record_updates)
      << label;
  EXPECT_EQ(recovered.stats, reference.stats) << label;
}

TEST(FaultTolerance, ChaosMatrixRecoversBitwiseIdenticalRuns) {
  // The acceptance-criteria sweep: every fault kind × injection point ×
  // thread count must recover to the exact fault-free result. The fault-free
  // reference is computed once at one thread — the runtime's determinism
  // regime already guarantees thread-count independence, so any mismatch
  // here is the fault path's fault.
  const AllocationInstance instance = chaos_instance();
  const MpcRunResult reference = run_mpc_naive(instance, chaos_config(1));
  // Checkpoints are allowed (a real transport backend arms them even with
  // no fault plan); every fault and recovery counter must still be zero.
  MpcRecoveryStats clean{};
  clean.checkpoints_taken = reference.recovery.checkpoints_taken;
  ASSERT_EQ(reference.recovery, clean);

  const FaultKind kinds[] = {
      FaultKind::kExchangeFailure, FaultKind::kDelayedDelivery,
      FaultKind::kPartialDelivery, FaultKind::kWorkerCrash};
  const std::size_t injection_points[] = {0, 3, 9};
  const std::size_t thread_counts[] = {1, 2, 4, 7};
  for (const FaultKind kind : kinds) {
    for (const std::size_t at : injection_points) {
      for (const std::size_t threads : thread_counts) {
        MpcDriverConfig config = chaos_config(threads);
        config.fault_plan.forced = {FaultEvent{at, kind, /*attempts=*/1}};
        config.checkpoint_every = 1;
        const std::string label = std::string(fault_kind_name(kind)) +
                                  " at exchange " + std::to_string(at) +
                                  ", " + std::to_string(threads) + " threads";
        const MpcRunResult recovered = run_mpc_naive(instance, config);
        expect_bitwise_match(recovered, reference, label);
        EXPECT_EQ(recovered.recovery.faults_injected, 1u) << label;
        if (kind == FaultKind::kWorkerCrash) {
          // Unrecoverable at exchange scope: the driver restored a
          // checkpoint and replayed the local round.
          EXPECT_EQ(recovered.recovery.checkpoint_restores, 1u) << label;
          EXPECT_GT(recovered.recovery.replayed_rounds, 0u) << label;
        } else {
          // Absorbed by the cluster's in-place retry, with deterministic
          // backoff accounted as recovery rounds.
          EXPECT_EQ(recovered.recovery.exchange_retries, 1u) << label;
          EXPECT_EQ(recovered.recovery.checkpoint_restores, 0u) << label;
          EXPECT_GT(recovered.recovery.backoff_rounds, 0u) << label;
        }
        if (kind == FaultKind::kPartialDelivery) {
          EXPECT_EQ(recovered.recovery.replayed_exchanges, 1u) << label;
          EXPECT_GT(recovered.recovery.restored_words, 0u) << label;
        }
      }
    }
  }
}

TEST(FaultTolerance, RandomKeyedScheduleIsRecoveredAndReplayable) {
  // A probabilistic schedule drawn from a SplitMix64 key: still recovered
  // bitwise, and bitwise *replayable* — the same key injects the same
  // faults, so two chaos runs agree on every counter including overhead.
  const AllocationInstance instance = chaos_instance();
  const MpcRunResult reference = run_mpc_naive(instance, chaos_config(1));

  MpcDriverConfig config = chaos_config(2);
  config.fault_plan.key = 0xC0FFEE;
  config.fault_plan.fault_probability = 0.10;
  config.checkpoint_every = 2;
  const MpcRunResult first = run_mpc_naive(instance, config);
  EXPECT_GT(first.recovery.faults_injected, 0u)
      << "schedule too quiet to test anything — raise the probability";
  expect_bitwise_match(first, reference, "keyed schedule");

  const MpcRunResult second = run_mpc_naive(instance, config);
  expect_bitwise_match(second, reference, "keyed schedule, replay");
  EXPECT_EQ(second.recovery, first.recovery);
}

TEST(FaultTolerance, RepeatedCrashesConsumeRestoresThenSucceed) {
  // A worker crash that re-fires on the first two delivery attempts needs
  // two checkpoint restores; the third replay passes. Counters still match.
  const AllocationInstance instance = chaos_instance();
  const MpcRunResult reference = run_mpc_naive(instance, chaos_config(1));

  MpcDriverConfig config = chaos_config(1);
  config.fault_plan.forced = {
      FaultEvent{2, FaultKind::kWorkerCrash, /*attempts=*/2}};
  config.checkpoint_every = 1;
  const MpcRunResult recovered = run_mpc_naive(instance, config);
  expect_bitwise_match(recovered, reference, "double crash");
  EXPECT_EQ(recovered.recovery.checkpoint_restores, 2u);
  EXPECT_EQ(recovered.recovery.faults_injected, 2u);
}

TEST(FaultTolerance, ExhaustedRestoresEscalateToTheCaller) {
  MpcDriverConfig config = chaos_config(1);
  config.fault_plan.forced = {
      FaultEvent{0, FaultKind::kWorkerCrash, /*attempts=*/1}};
  config.fault_plan.max_restores = 0;
  EXPECT_THROW((void)run_mpc_naive(chaos_instance(), config), TransportFault);
}

TEST(FaultTolerance, ExhaustedRetriesEscalateToCheckpointRestore) {
  // An exchange failure that outlives max_retries is no longer absorbable
  // in place — the cluster rethrows and the driver's checkpoint recovery
  // takes over, still landing on the fault-free result.
  const AllocationInstance instance = chaos_instance();
  const MpcRunResult reference = run_mpc_naive(instance, chaos_config(1));

  MpcDriverConfig config = chaos_config(1);
  config.fault_plan.max_retries = 1;
  config.fault_plan.forced = {
      FaultEvent{1, FaultKind::kExchangeFailure, /*attempts=*/3}};
  config.checkpoint_every = 1;
  const MpcRunResult recovered = run_mpc_naive(instance, config);
  expect_bitwise_match(recovered, reference, "retry exhaustion");
  EXPECT_GT(recovered.recovery.checkpoint_restores, 0u);
}

TEST(FaultTolerance, SparseCheckpointCadenceReplaysMoreRounds) {
  // checkpoint_every = 3 takes fewer checkpoints than = 1 but pays more
  // replayed rounds per restore; the model counters must not notice.
  const AllocationInstance instance = chaos_instance();
  const MpcRunResult reference = run_mpc_naive(instance, chaos_config(1));

  MpcRunResult results[2];
  const std::size_t cadences[] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    MpcDriverConfig config = chaos_config(1);
    config.fault_plan.forced = {
        FaultEvent{9, FaultKind::kWorkerCrash, /*attempts=*/1}};
    config.checkpoint_every = cadences[i];
    results[i] = run_mpc_naive(instance, config);
    expect_bitwise_match(results[i], reference,
                         "cadence " + std::to_string(cadences[i]));
  }
  EXPECT_GT(results[0].recovery.checkpoints_taken,
            results[1].recovery.checkpoints_taken);
  EXPECT_LE(results[0].recovery.replayed_rounds,
            results[1].recovery.replayed_rounds);
}

// ---------------------------------------------------------------------------
// Cluster-level recovery machinery
// ---------------------------------------------------------------------------

TEST(FaultTolerance, TransientFaultLeavesShardsIntactAndRetrySucceeds) {
  // Strong exception guarantee on the injected fault itself: the exchange
  // that failed moved nothing, so the cluster's in-place retry delivers the
  // exact stream a fault-free shuffle would have, charging one round.
  Cluster faultless(4, 64, 2);
  Cluster faulty(4, 64, 2);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kExchangeFailure, 1}};
  faulty.set_fault_plan(plan);

  std::vector<Word> flat(32);
  std::iota(flat.begin(), flat.end(), 100);
  std::vector<std::uint32_t> dest(32);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    dest[i] = static_cast<std::uint32_t>((i * 7) % 4);
  }
  DistVec a = faultless.scatter(flat, 1);
  DistVec b = faulty.scatter(flat, 1);
  faultless.shuffle(a, dest);
  faulty.shuffle(b, dest);

  EXPECT_EQ(b.gather(), a.gather());
  EXPECT_EQ(faulty.rounds(), faultless.rounds());
  EXPECT_EQ(faulty.total_words_moved(), faultless.total_words_moved());
  EXPECT_EQ(faulty.peak_machine_words(), faultless.peak_machine_words());
  EXPECT_EQ(faulty.recovery_stats().exchange_retries, 1u);
}

TEST(FaultTolerance, PartialDeliveryRestoresInFlightDataAndReplays) {
  Cluster faultless(4, 64, 2);
  Cluster faulty(4, 64, 2);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kPartialDelivery, 1}};
  faulty.set_fault_plan(plan);

  std::vector<Word> flat(40);
  std::iota(flat.begin(), flat.end(), 0);
  std::vector<std::uint32_t> dest(40);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    dest[i] = static_cast<std::uint32_t>((i + 1) % 4);
  }
  DistVec a = faultless.scatter(flat, 1);
  DistVec b = faulty.scatter(flat, 1);
  faultless.shuffle(a, dest);
  faulty.shuffle(b, dest);

  EXPECT_EQ(b.gather(), a.gather());
  EXPECT_EQ(faulty.rounds(), faultless.rounds());
  EXPECT_EQ(faulty.total_words_moved(), faultless.total_words_moved());
  EXPECT_EQ(faulty.recovery_stats().replayed_exchanges, 1u);
  EXPECT_GT(faulty.recovery_stats().restored_words, 0u);
}

TEST(FaultTolerance, WorkerCrashEscalatesOutOfShuffle) {
  Cluster cluster(4, 64, 2);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kWorkerCrash, 1}};
  cluster.set_fault_plan(plan);
  std::vector<Word> flat(16, 3);
  std::vector<std::uint32_t> dest(16, 2);
  DistVec d = cluster.scatter(flat, 1);
  EXPECT_THROW(cluster.shuffle(d, dest), TransportFault);
  // The failed round was never charged; the damage is arena-side only.
  EXPECT_EQ(cluster.rounds(), 0u);
  EXPECT_EQ(cluster.recovery_stats().faults_injected, 1u);
}

TEST(FaultTolerance, CheckpointRestoreRewindsCountersArenasAndWatermarks) {
  Cluster cluster(4, 64, 2);
  std::vector<Word> flat(24);
  std::iota(flat.begin(), flat.end(), 0);
  DistVec d = cluster.scatter(flat, 1);
  const std::vector<Word> before = d.gather();
  const std::uint64_t peak_before = cluster.peak_machine_words();

  ClusterCheckpoint cp = cluster.checkpoint();

  std::vector<std::uint32_t> dest(24, 0);
  for (std::size_t i = 0; i < 24; ++i) {
    dest[i] = static_cast<std::uint32_t>(i % 4 == 0 ? 3 : i % 4);
  }
  cluster.shuffle(d, dest);
  ASSERT_NE(d.gather(), before);
  ASSERT_GT(cluster.rounds(), 0u);

  cluster.restore(cp);
  EXPECT_EQ(d.gather(), before);
  EXPECT_EQ(cluster.rounds(), 0u);
  EXPECT_EQ(cluster.total_words_moved(), 0u);
  EXPECT_EQ(cluster.peak_machine_words(), peak_before);
  EXPECT_EQ(cluster.recovery_stats().checkpoints_taken, 1u);
  EXPECT_EQ(cluster.recovery_stats().checkpoint_restores, 1u);
  EXPECT_GT(cluster.recovery_stats().replayed_rounds, 0u);

  // A checkpoint can only rewind, never fast-forward.
  cluster.shuffle(d, dest);
  ClusterCheckpoint later = cluster.checkpoint();
  cluster.restore(cp);
  EXPECT_THROW(cluster.restore(later), std::invalid_argument);
}

TEST(FaultTolerance, CrashWorkerWipesOnlyThatWorkersShards) {
  WorkerGroup group(4, 64, 2);  // workers own machines {0,1} and {2,3}
  DistVec d = group.create_dist(1);
  for (std::size_t m = 0; m < 4; ++m) d.shard(m).assign(4, m);
  const mpc::ArenaSnapshot snapshot = group.snapshot_arenas();

  group.crash_worker(0);
  EXPECT_TRUE(d.shard(0).empty());
  EXPECT_TRUE(d.shard(1).empty());
  EXPECT_EQ(d.shard(2), (std::vector<Word>(4, 2)));
  EXPECT_EQ(d.shard(3), (std::vector<Word>(4, 3)));

  group.restore_arenas(snapshot);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(d.shard(m), (std::vector<Word>(4, m))) << "machine " << m;
  }
  EXPECT_THROW(group.crash_worker(2), std::out_of_range);
}

TEST(FaultTolerance, SnapshotSkipsDatasetsThatDiedSinceCheckpoint) {
  WorkerGroup group(2, 64, 2);
  mpc::ArenaSnapshot snapshot;
  {
    DistVec transient = group.create_dist(1);
    transient.shard(0).assign(3, 9);
    snapshot = group.snapshot_arenas();
    EXPECT_EQ(group.num_live_storages(), 1u);
  }
  EXPECT_EQ(group.num_live_storages(), 0u);
  // The dataset died between snapshot and restore: nothing to put back, and
  // nothing to crash either.
  EXPECT_NO_THROW(group.restore_arenas(snapshot));
  EXPECT_NO_THROW(group.crash_worker(0));
}

TEST(FaultInjection, ScheduleIsAPureFunctionOfKeyAndOrdinal) {
  // Two transports with the same plan inject byte-identical schedules; a
  // different key draws a different one. Exercised through real exchanges.
  const auto run_schedule = [](std::uint64_t key) {
    Cluster cluster(4, 1 << 10, 2);
    FaultPlan plan;
    plan.key = key;
    plan.fault_probability = 0.5;
    cluster.set_fault_plan(plan);
    std::vector<Word> flat(64, 1);
    DistVec d = cluster.scatter(flat, 1);
    std::vector<std::uint32_t> dest(64);
    std::vector<std::uint64_t> trace;
    Xoshiro256pp rng(3);
    for (int round = 0; round < 8; ++round) {
      for (auto& x : dest) x = static_cast<std::uint32_t>(rng.uniform(4));
      // A drawn worker crash escalates out of shuffle by design; recover it
      // the way a driver would — checkpoint, restore, replay.
      ClusterCheckpoint cp = cluster.checkpoint();
      try {
        cluster.shuffle(d, dest);
      } catch (const TransportFault&) {
        cluster.restore(cp);
        cluster.shuffle(d, dest);
      }
      trace.push_back(cluster.recovery_stats().faults_injected);
      trace.push_back(cluster.recovery_stats().exchange_retries);
    }
    return trace;
  };
  const std::vector<std::uint64_t> a = run_schedule(41);
  const std::vector<std::uint64_t> b = run_schedule(41);
  const std::vector<std::uint64_t> c = run_schedule(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a.back(), 0u) << "probability 0.5 over 8 exchanges never fired";
}

// ---------------------------------------------------------------------------
// OverflowPolicy
// ---------------------------------------------------------------------------

TEST(Overflow, SplitExchangeDeliversOverBudgetSendInHonestSubRounds) {
  // Machine 0 holds 10 width-1 words (stuffed at arena level — a legal
  // scatter could never create send pressure above S, but a future backend
  // or broadcast layer can) and sends all of them: rule 1 would fire at
  // S = 8. kSplitExchange proves a 2-wave schedule, charges 2 rounds, and
  // delivers the exact stream the unsplit exchange would have.
  Cluster cluster(3, 8, 2);
  cluster.set_overflow_policy(mpc::OverflowPolicy::kSplitExchange);
  DistVec d = cluster.workers().create_dist(1);
  d.shard(0).assign(10, 7);
  std::vector<std::uint32_t> dest(10);
  for (std::size_t i = 0; i < 10; ++i) dest[i] = i < 5 ? 1 : 2;
  cluster.shuffle(d, dest);

  EXPECT_TRUE(d.shard(0).empty());
  EXPECT_EQ(d.shard(1), (std::vector<Word>(5, 7)));
  EXPECT_EQ(d.shard(2), (std::vector<Word>(5, 7)));
  EXPECT_EQ(cluster.rounds(), 2u);  // k = ceil(10/8) waves, honestly charged
  EXPECT_EQ(cluster.total_words_moved(), 10u);
  EXPECT_EQ(cluster.recovery_stats().split_exchanges, 1u);
  EXPECT_EQ(cluster.recovery_stats().split_extra_rounds, 1u);
}

TEST(Overflow, FailFastStillThrowsAndSplitNeverRelaxesResidentRule) {
  const auto stuffed = [](Cluster& cluster) {
    DistVec d = cluster.workers().create_dist(1);
    d.shard(0).assign(10, 7);
    return d;
  };
  {  // default policy: the same plan fails fast on rule 1
    Cluster cluster(3, 8, 2);
    DistVec d = stuffed(cluster);
    std::vector<std::uint32_t> dest(10);
    for (std::size_t i = 0; i < 10; ++i) dest[i] = i < 5 ? 1 : 2;
    EXPECT_THROW(cluster.shuffle(d, dest), mpc::MpcCapacityError);
    EXPECT_EQ(cluster.rounds(), 0u);
  }
  {  // splitting cannot rescue resident pressure: 10 words onto one machine
    Cluster cluster(3, 8, 2);
    cluster.set_overflow_policy(mpc::OverflowPolicy::kSplitExchange);
    DistVec d = stuffed(cluster);
    const std::vector<std::uint32_t> dest(10, 1);
    try {
      cluster.shuffle(d, dest);
      FAIL() << "expected MpcCapacityError";
    } catch (const mpc::MpcCapacityError& error) {
      EXPECT_EQ(error.rule(), mpc::CapacityRule::kResident);
    }
    EXPECT_EQ(cluster.rounds(), 0u);
  }
  {  // a single record wider than S is unsplittable
    Cluster cluster(2, 8, 2);
    cluster.set_overflow_policy(mpc::OverflowPolicy::kSplitExchange);
    DistVec d = cluster.workers().create_dist(10);
    d.shard(0).assign(10, 1);
    const std::vector<std::uint32_t> dest{1};
    EXPECT_THROW(cluster.shuffle(d, dest), mpc::MpcCapacityError);
  }
}

// ---------------------------------------------------------------------------
// Real-process chaos: actual signals delivered to forked worker processes
// (mpc/process_transport.*), recovered through the same tiers as the
// simulated faults above. Suite name deliberately avoids the sanitizer-CI
// name filters: these tests fork, and fork + TSan do not mix.
// ---------------------------------------------------------------------------

MpcDriverConfig process_chaos_config(std::size_t threads) {
  MpcDriverConfig config = chaos_config(threads);
  config.transport = mpc::TransportKind::kProcess;
  config.checkpoint_every = 1;
  return config;
}

TEST(RealProcessFaults, SigkillMatrixRecoversBitwiseIdenticalRuns) {
  // The acceptance sweep with nothing simulated: a worker process is
  // SIGKILLed for real at each scripted exchange, at every thread count.
  // The coordinator must reap it, respawn a replacement, and recover
  // through the checkpoint-restore tier to the exact result of a fault-free
  // *in-process* run — the strongest cross-backend identity claim we have.
  const AllocationInstance instance = chaos_instance();
  MpcDriverConfig reference_config = chaos_config(1);
  reference_config.transport = mpc::TransportKind::kInProcess;
  const MpcRunResult reference = run_mpc_naive(instance, reference_config);

  const std::size_t injection_points[] = {0, 3, 9};
  const std::size_t thread_counts[] = {1, 2, 4};
  for (const std::size_t at : injection_points) {
    for (const std::size_t threads : thread_counts) {
      MpcDriverConfig config = process_chaos_config(threads);
      config.process_options.kill_script = {
          mpc::ProcessKill{at, SIGKILL, /*worker=*/at % 2}};
      const std::string label = "SIGKILL at exchange " + std::to_string(at) +
                                ", " + std::to_string(threads) + " threads";
      const MpcRunResult recovered = run_mpc_naive(instance, config);
      expect_bitwise_match(recovered, reference, label);
      EXPECT_EQ(recovered.recovery.process_crashes, 1u) << label;
      EXPECT_EQ(recovered.recovery.worker_respawns, 1u) << label;
      EXPECT_GE(recovered.recovery.checkpoint_restores, 1u) << label;
      EXPECT_EQ(recovered.recovery.backend_degradations, 0u) << label;
    }
  }
}

TEST(RealProcessFaults, SigstopMatrixClassifiesDeadlineMissesAndRetries) {
  // A SIGSTOPped worker is not dead — its heartbeat goes stale. The
  // supervisor must classify that as a deadline miss (kDelayedDelivery),
  // SIGCONT the worker, and recover by in-place retry with backoff — no
  // checkpoint restore, no crash counted, bitwise identical result.
  const AllocationInstance instance = chaos_instance();
  MpcDriverConfig reference_config = chaos_config(1);
  reference_config.transport = mpc::TransportKind::kInProcess;
  const MpcRunResult reference = run_mpc_naive(instance, reference_config);

  const std::size_t injection_points[] = {0, 3, 9};
  const std::size_t thread_counts[] = {1, 2, 4};
  for (const std::size_t at : injection_points) {
    for (const std::size_t threads : thread_counts) {
      MpcDriverConfig config = process_chaos_config(threads);
      config.process_options.deadline_ms = 150;
      config.process_options.kill_script = {
          mpc::ProcessKill{at, SIGSTOP, /*worker=*/at % 2}};
      const std::string label = "SIGSTOP at exchange " + std::to_string(at) +
                                ", " + std::to_string(threads) + " threads";
      const MpcRunResult recovered = run_mpc_naive(instance, config);
      expect_bitwise_match(recovered, reference, label);
      EXPECT_GE(recovered.recovery.deadline_misses, 1u) << label;
      EXPECT_GE(recovered.recovery.exchange_retries, 1u) << label;
      EXPECT_GE(recovered.recovery.backoff_rounds, 1u) << label;
      EXPECT_EQ(recovered.recovery.process_crashes, 0u) << label;
      EXPECT_EQ(recovered.recovery.checkpoint_restores, 0u) << label;
    }
  }
}

TEST(RealProcessFaults, RealKillComposesWithSimulatedFaultPlan) {
  // FaultInjectingTransport decorating ProcessTransport: a simulated
  // partial delivery and a real SIGKILL in one run, each recovered by its
  // own tier, still landing bitwise on the in-process fault-free result.
  const AllocationInstance instance = chaos_instance();
  MpcDriverConfig reference_config = chaos_config(1);
  reference_config.transport = mpc::TransportKind::kInProcess;
  const MpcRunResult reference = run_mpc_naive(instance, reference_config);

  MpcDriverConfig config = process_chaos_config(2);
  config.process_options.kill_script = {
      mpc::ProcessKill{3, SIGKILL, /*worker=*/0}};
  config.fault_plan.forced = {
      FaultEvent{7, FaultKind::kPartialDelivery, /*attempts=*/1}};
  const MpcRunResult recovered = run_mpc_naive(instance, config);
  expect_bitwise_match(recovered, reference, "SIGKILL + simulated partial");
  EXPECT_EQ(recovered.recovery.process_crashes, 1u);
  EXPECT_EQ(recovered.recovery.faults_injected, 2u)
      << "one real crash + one simulated partial, both seen by the ledger";
  EXPECT_EQ(recovered.recovery.replayed_exchanges, 1u)
      << "the partial is absorbed in-shuffle; only the crash escalates";
  EXPECT_GE(recovered.recovery.checkpoint_restores, 1u);
}

TEST(RealProcessFaults, ExhaustedRespawnBudgetDegradesAndStillMatches) {
  // max_respawns = 0: the first real crash burns the process backend down
  // to the in-process fallback. The run must still complete — degradation
  // is an overhead-ledger event, not an error — and still match bitwise.
  const AllocationInstance instance = chaos_instance();
  MpcDriverConfig reference_config = chaos_config(1);
  reference_config.transport = mpc::TransportKind::kInProcess;
  const MpcRunResult reference = run_mpc_naive(instance, reference_config);

  MpcDriverConfig config = process_chaos_config(1);
  config.process_options.max_respawns = 0;
  config.process_options.kill_script = {
      mpc::ProcessKill{2, SIGKILL, /*worker=*/0}};
  const MpcRunResult recovered = run_mpc_naive(instance, config);
  expect_bitwise_match(recovered, reference, "degraded mid-run");
  EXPECT_EQ(recovered.recovery.process_crashes, 1u);
  EXPECT_EQ(recovered.recovery.worker_respawns, 0u);
  EXPECT_EQ(recovered.recovery.backend_degradations, 1u);
  EXPECT_GE(recovered.recovery.checkpoint_restores, 1u);
}

TEST(Overflow, SplitExchangeComposesWithFaultRecovery) {
  // A transient fault on a split exchange: the retry re-proves the same
  // wave schedule and the charge stays k rounds, once.
  Cluster cluster(3, 8, 2);
  cluster.set_overflow_policy(mpc::OverflowPolicy::kSplitExchange);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kExchangeFailure, 1}};
  cluster.set_fault_plan(plan);
  DistVec d = cluster.workers().create_dist(1);
  d.shard(0).assign(10, 7);
  std::vector<std::uint32_t> dest(10);
  for (std::size_t i = 0; i < 10; ++i) dest[i] = i < 5 ? 1 : 2;
  cluster.shuffle(d, dest);
  EXPECT_EQ(cluster.rounds(), 2u);
  EXPECT_EQ(cluster.recovery_stats().exchange_retries, 1u);
  EXPECT_EQ(cluster.recovery_stats().split_exchanges, 1u);
}

}  // namespace
}  // namespace mpcalloc
