// Determinism guard: with a fixed seed, the full pipeline
// (solve_adaptive → round_best_of) must be byte-identical across runs for
// every spec in the default matrix — and, since the sweeps run on the
// deterministic parallel executor (util/parallel.hpp), byte-identical
// across *thread counts* too.
#include "alloc/local_host.hpp"
#include "alloc/mpc_driver.hpp"
#include "alloc/proportional.hpp"
#include "alloc/rounding.hpp"
#include "alloc/sampled.hpp"
#include "bmatch/proportional_bmatching.hpp"
#include "graph/generators.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

struct PipelineOutput {
  ProportionalResult fractional;
  BestOfRoundingResult rounded;
};

PipelineOutput run_pipeline(const testing::InstanceSpec& spec) {
  const AllocationInstance instance = testing::make_instance(spec);
  PipelineOutput out;
  out.fractional = solve_adaptive(instance, /*epsilon=*/0.25);
  Xoshiro256pp rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  out.rounded = round_best_of(instance, out.fractional.allocation, rng);
  return out;
}

void expect_identical(const ProportionalResult& a, const ProportionalResult& b) {
  // Exact (bitwise) double comparisons are intentional: the engine promises
  // run-to-run reproducibility, not just numerical closeness.
  EXPECT_EQ(a.allocation.x, b.allocation.x);
  EXPECT_EQ(a.match_weight, b.match_weight);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.stopped_by_condition, b.stopped_by_condition);
  EXPECT_EQ(a.final_levels, b.final_levels);
  EXPECT_EQ(a.final_alloc, b.final_alloc);
  EXPECT_EQ(a.weight_history, b.weight_history);
}

void expect_identical(const BestOfRoundingResult& a,
                      const BestOfRoundingResult& b) {
  EXPECT_EQ(a.best.edges, b.best.edges);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.copy_sizes, b.copy_sizes);
}

TEST(Determinism, AdaptiveSolveAndRoundingAreReproducible) {
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const PipelineOutput first = run_pipeline(spec);
    const PipelineOutput second = run_pipeline(spec);
    expect_identical(first.fractional, second.fractional);
    expect_identical(first.rounded, second.rounded);
  }
}

TEST(Determinism, ThreadCountDoesNotChangeResults) {
  // 1 vs 2, 4, and 7 threads (7 exercises ragged tile-to-thread mappings)
  // must be bitwise identical: the sweeps use a fixed tile decomposition
  // combined left-to-right, so the thread count is pure scheduling noise.
  // The large instance spans many kParallelTile-sized tiles so cross-tile
  // combination is genuinely exercised; medium_lam8 covers the small-
  // instance (single-tile) corner.
  std::vector<AllocationInstance> instances;
  instances.push_back(testing::make_instance(testing::spec_by_name("medium_lam8")));
  {
    Xoshiro256pp rng(2026);
    AllocationInstance large;
    large.graph = union_of_forests(6000, 2500, 6, rng);
    large.capacities = uniform_capacities(2500, 1, 5, rng);
    instances.push_back(std::move(large));
  }

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const AllocationInstance& instance = instances[i];
    for (const StopRule rule : {StopRule::kFixedRounds, StopRule::kAdaptive}) {
      SCOPED_TRACE(::testing::Message()
                   << "instance " << i << ", rule "
                   << (rule == StopRule::kAdaptive ? "adaptive" : "fixed"));
      const auto run_with = [&](std::size_t threads) {
        ProportionalConfig config;
        config.epsilon = 0.25;
        config.stop_rule = rule;
        config.max_rounds =
            rule == StopRule::kAdaptive
                ? tau_for_arboricity(
                      static_cast<double>(instance.graph.num_vertices()), 0.25)
                : 20;
        config.track_weight_history = true;
        config.num_threads = threads;
        return run_proportional(instance, config);
      };
      const ProportionalResult baseline = run_with(1);
      for (const std::size_t threads : {2u, 4u, 7u}) {
        SCOPED_TRACE(::testing::Message() << threads << " threads");
        const ProportionalResult result = run_with(threads);
        expect_identical(baseline, result);
      }
    }
  }
}

TEST(Determinism, ThreadCountDoesNotChangeBMatching) {
  // The parallelized two-sided dynamics carry the same bitwise contract.
  Xoshiro256pp rng(2027);
  BMatchingInstance instance;
  instance.graph = union_of_forests(4000, 1500, 5, rng);
  instance.left_capacities = uniform_capacities(4000, 1, 3, rng);
  instance.right_capacities = uniform_capacities(1500, 1, 6, rng);

  const auto run_with = [&](std::size_t threads) {
    ProportionalBMatchingConfig config;
    config.epsilon = 0.25;
    config.rounds = 15;
    config.num_threads = threads;
    return run_proportional_bmatching(instance, config);
  };
  const ProportionalBMatchingResult baseline = run_with(1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const ProportionalBMatchingResult result = run_with(threads);
    EXPECT_EQ(result.matching.x, baseline.matching.x);
    EXPECT_EQ(result.match_weight, baseline.match_weight);
    EXPECT_EQ(result.final_levels, baseline.final_levels);
  }
}

TEST(Determinism, ThreadCountDoesNotChangeLocalHost) {
  // The LOCAL-model host parallelizes the per-round processor sweeps;
  // delivered messages, results, and accounting must not notice.
  Xoshiro256pp rng(2028);
  AllocationInstance instance;
  instance.graph = union_of_forests(3000, 1200, 4, rng);
  instance.capacities = uniform_capacities(1200, 1, 5, rng);

  const auto run_with = [&](std::size_t threads) {
    ProportionalConfig config;
    config.epsilon = 0.25;
    config.max_rounds = 12;
    config.num_threads = threads;
    return run_proportional_local(instance, config);
  };
  const LocalHostResult baseline = run_with(1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    const LocalHostResult host = run_with(threads);
    expect_identical(baseline.result, host.result);
    EXPECT_EQ(host.local_rounds, baseline.local_rounds);
    EXPECT_EQ(host.messages_sent, baseline.messages_sent);
    EXPECT_EQ(host.max_message_words, baseline.max_message_words);
  }
}

TEST(Determinism, ThreadCountDoesNotChangeSampledExecutor) {
  // The sampled executor draws on per-(phase, round, tile) RNG streams, so
  // its randomness — and therefore every output, including the sample
  // counter — is bitwise independent of the thread count. The large
  // instance spans many kParallelTile-sized tiles; medium_lam8 covers the
  // single-tile corner.
  std::vector<AllocationInstance> instances;
  instances.push_back(testing::make_instance(testing::spec_by_name("medium_lam8")));
  {
    Xoshiro256pp rng(2029);
    AllocationInstance large;
    large.graph = union_of_forests(6000, 2500, 6, rng);
    large.capacities = uniform_capacities(2500, 1, 5, rng);
    instances.push_back(std::move(large));
  }

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const AllocationInstance& instance = instances[i];
    for (const bool adaptive : {false, true}) {
      SCOPED_TRACE(::testing::Message()
                   << "instance " << i << (adaptive ? ", adaptive" : ", fixed"));
      const auto run_with = [&](std::size_t threads) {
        SampledConfig config;
        config.epsilon = 0.25;
        config.phase_length = 3;
        config.samples_per_group = 8;
        config.max_rounds = 15;
        config.adaptive_termination = adaptive;
        config.num_threads = threads;
        Xoshiro256pp rng(77);  // fresh identical stream per run
        return run_sampled(instance, config, rng);
      };
      const SampledResult baseline = run_with(1);
      for (const std::size_t threads : {2u, 4u, 7u}) {
        SCOPED_TRACE(::testing::Message() << threads << " threads");
        const SampledResult result = run_with(threads);
        EXPECT_EQ(result.allocation.x, baseline.allocation.x);
        EXPECT_EQ(result.match_weight, baseline.match_weight);
        EXPECT_EQ(result.final_levels, baseline.final_levels);
        EXPECT_EQ(result.rounds_executed, baseline.rounds_executed);
        EXPECT_EQ(result.phases_executed, baseline.phases_executed);
        EXPECT_EQ(result.stopped_by_condition, baseline.stopped_by_condition);
        EXPECT_EQ(result.samples_drawn, baseline.samples_drawn);
      }
    }
  }
}

TEST(Determinism, ThreadCountDoesNotChangeMpcPrimitives) {
  // Shard-parallel sort/reduce with per-shard derived sample streams and
  // ordered accounting: the shard contents, round counters, and the
  // peak_machine_words high-watermark must be bitwise identical for any
  // Cluster::num_threads.
  std::vector<mpc::Word> flat;
  {
    Xoshiro256pp rng(2030);
    for (int i = 0; i < 20000; ++i) {
      flat.push_back(rng.uniform(500));  // key
      flat.push_back(rng.uniform(1000));  // payload
    }
  }

  struct PrimitiveOutput {
    std::vector<mpc::Word> data;
    std::size_t rounds;
    std::uint64_t peak_machine_words;
    std::uint64_t peak_total_words;
    std::uint64_t words_moved;
  };
  const auto run_with = [&](std::size_t threads, bool reduce) {
    mpc::Cluster cluster(32, 4096);
    cluster.set_num_threads(threads);
    Xoshiro256pp rng(91);
    mpc::DistVec d = cluster.scatter(flat, 2);
    if (reduce) {
      mpc::sum_by_key(cluster, d, rng);
    } else {
      mpc::sample_sort(cluster, d, rng);
    }
    mpc::exclusive_prefix_sum(cluster, d);
    return PrimitiveOutput{d.gather(threads), cluster.rounds(),
                           cluster.peak_machine_words(),
                           cluster.peak_total_words(),
                           cluster.total_words_moved()};
  };

  for (const bool reduce : {false, true}) {
    SCOPED_TRACE(reduce ? "sum_by_key" : "sample_sort");
    const PrimitiveOutput baseline = run_with(1, reduce);
    for (const std::size_t threads : {2u, 4u, 7u}) {
      SCOPED_TRACE(::testing::Message() << threads << " threads");
      const PrimitiveOutput result = run_with(threads, reduce);
      EXPECT_EQ(result.data, baseline.data);
      EXPECT_EQ(result.rounds, baseline.rounds);
      EXPECT_EQ(result.peak_machine_words, baseline.peak_machine_words);
      EXPECT_EQ(result.peak_total_words, baseline.peak_total_words);
      EXPECT_EQ(result.words_moved, baseline.words_moved);
    }
  }
}

TEST(Determinism, ThreadCountDoesNotChangeMpcDrivers) {
  // End-to-end: both MPC drivers — cluster shuffles, sampled phases, ball
  // collection, space accounting — are bitwise thread-count invariant.
  const auto spec = testing::spec_by_name("medium_lam8");
  const AllocationInstance instance = testing::make_instance(spec);

  const auto config_with = [&](std::size_t threads) {
    MpcDriverConfig config;
    config.epsilon = 0.25;
    config.alpha = 0.7;
    config.samples_per_group = 6;
    config.seed = 5;
    config.lambda = spec.lambda;
    config.num_threads = threads;
    return config;
  };
  const auto expect_identical_runs = [&](const MpcRunResult& a,
                                         const MpcRunResult& b) {
    EXPECT_EQ(a.allocation.x, b.allocation.x);
    EXPECT_EQ(a.match_weight, b.match_weight);
    EXPECT_EQ(a.local_rounds, b.local_rounds);
    EXPECT_EQ(a.phases, b.phases);
    EXPECT_EQ(a.mpc_rounds, b.mpc_rounds);
    EXPECT_EQ(a.peak_machine_words, b.peak_machine_words);
    EXPECT_EQ(a.peak_total_words, b.peak_total_words);
    EXPECT_EQ(a.max_ball_volume, b.max_ball_volume);
  };

  const MpcRunResult naive_baseline = run_mpc_naive(instance, config_with(1));
  const MpcRunResult phased_baseline = run_mpc_phased(instance, config_with(1));
  for (const std::size_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    expect_identical_runs(run_mpc_naive(instance, config_with(threads)),
                          naive_baseline);
    expect_identical_runs(run_mpc_phased(instance, config_with(threads)),
                          phased_baseline);
  }
}

TEST(Determinism, DistinctSeedsPerturbRounding) {
  // Sanity check that the comparison above is not vacuously true because
  // rounding ignores its RNG: different seeds should (on a non-trivial
  // instance) produce different copy outcomes.
  const auto spec = testing::spec_by_name("medium_lam8");
  const AllocationInstance instance = testing::make_instance(spec);
  const ProportionalResult frac = solve_adaptive(instance, 0.25);
  Xoshiro256pp rng_a(1);
  Xoshiro256pp rng_b(2);
  const auto a = round_best_of(instance, frac.allocation, rng_a);
  const auto b = round_best_of(instance, frac.allocation, rng_b);
  EXPECT_NE(a.copy_sizes, b.copy_sizes);
}

}  // namespace
}  // namespace mpcalloc
