// Determinism guard: with a fixed seed, the full pipeline
// (solve_adaptive → round_best_of) must be byte-identical across runs for
// every spec in the default matrix. Future parallelization PRs must keep
// this property (or introduce an explicitly seeded deterministic mode).
#include "alloc/proportional.hpp"
#include "alloc/rounding.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

struct PipelineOutput {
  ProportionalResult fractional;
  BestOfRoundingResult rounded;
};

PipelineOutput run_pipeline(const testing::InstanceSpec& spec) {
  const AllocationInstance instance = testing::make_instance(spec);
  PipelineOutput out;
  out.fractional = solve_adaptive(instance, /*epsilon=*/0.25);
  Xoshiro256pp rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  out.rounded = round_best_of(instance, out.fractional.allocation, rng);
  return out;
}

void expect_identical(const ProportionalResult& a, const ProportionalResult& b) {
  // Exact (bitwise) double comparisons are intentional: the engine promises
  // run-to-run reproducibility, not just numerical closeness.
  EXPECT_EQ(a.allocation.x, b.allocation.x);
  EXPECT_EQ(a.match_weight, b.match_weight);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.stopped_by_condition, b.stopped_by_condition);
  EXPECT_EQ(a.final_levels, b.final_levels);
  EXPECT_EQ(a.final_alloc, b.final_alloc);
  EXPECT_EQ(a.weight_history, b.weight_history);
}

void expect_identical(const BestOfRoundingResult& a,
                      const BestOfRoundingResult& b) {
  EXPECT_EQ(a.best.edges, b.best.edges);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.copy_sizes, b.copy_sizes);
}

TEST(Determinism, AdaptiveSolveAndRoundingAreReproducible) {
  for (const auto& spec : testing::default_specs()) {
    SCOPED_TRACE(spec.name);
    const PipelineOutput first = run_pipeline(spec);
    const PipelineOutput second = run_pipeline(spec);
    expect_identical(first.fractional, second.fractional);
    expect_identical(first.rounded, second.rounded);
  }
}

TEST(Determinism, DistinctSeedsPerturbRounding) {
  // Sanity check that the comparison above is not vacuously true because
  // rounding ignores its RNG: different seeds should (on a non-trivial
  // instance) produce different copy outcomes.
  const auto spec = testing::spec_by_name("medium_lam8");
  const AllocationInstance instance = testing::make_instance(spec);
  const ProportionalResult frac = solve_adaptive(instance, 0.25);
  Xoshiro256pp rng_a(1);
  Xoshiro256pp rng_b(2);
  const auto a = round_best_of(instance, frac.allocation, rng_a);
  const auto b = round_best_of(instance, frac.allocation, rng_b);
  EXPECT_NE(a.copy_sizes, b.copy_sizes);
}

}  // namespace
}  // namespace mpcalloc
