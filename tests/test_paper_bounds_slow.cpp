// Slow-tier paper-bound regressions: the same Theorem 3 inequalities as
// test_paper_bounds.cpp, but at λ ∈ {64, 256} where the phased driver's
// √(log λ) advantage is no longer dominated by constant factors — the
// naive/phased separation must actually bind, not just the loose budgets.
//
// These instances are orders of magnitude larger than the default matrix
// (hundreds of thousands of edges flowing through the cluster simulator
// every round), so the suite is built only under -DMPCALLOC_SLOW_TESTS=ON
// and carries the `slow` CTest label; CI runs it on the nightly schedule,
// never on the PR path.
#include "alloc/mpc_driver.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace mpcalloc {
namespace {

constexpr double kEpsilon = 0.25;

struct SlowSpec {
  const char* name;
  std::size_t num_left;
  std::size_t num_right;
  std::uint32_t lambda;
  std::uint64_t seed;
};

// λ=64 and λ=256 with enough vertices that union_of_forests actually
// realises the arboricity (each forest needs room to place edges).
const SlowSpec kSlowSpecs[] = {
    {"lam64", 3000, 1200, 64, 21},
    {"lam256", 2500, 1000, 256, 22},
};

AllocationInstance make_slow_instance(const SlowSpec& spec) {
  Xoshiro256pp rng(spec.seed);
  AllocationInstance instance;
  instance.graph =
      union_of_forests(spec.num_left, spec.num_right, spec.lambda, rng);
  instance.capacities = uniform_capacities(spec.num_right, 1, 5, rng);
  return instance;
}

MpcDriverConfig config_for(double lambda) {
  MpcDriverConfig config;
  config.epsilon = kEpsilon;
  // The asymptotic regime needs S large enough for eq. (4)'s radius-B
  // balls at these degrees: α = 0.7 (the tier-1 value) overflows machines
  // at λ = 256 on a laptop-scale n, which the Cluster rightly rejects.
  // (λ = 256 runs ~38 LOCAL rounds, so level groups spread to ~77 and the
  // radius-2 sampled balls reach ~10^5 words; S = n^0.85 ≈ 2×10^5 holds
  // them with 2× headroom while staying sublinear.)
  config.alpha = 0.85;
  config.samples_per_group = 4;
  config.seed = 5;
  config.lambda = lambda;
  return config;
}

double log_lambda(double lambda) { return std::log2(std::max(lambda, 2.0)); }

class SlowBounds : public ::testing::TestWithParam<SlowSpec> {};

TEST_P(SlowBounds, NaiveDriverStaysWithinLogLambdaBudget) {
  // Same constant as the tier-1 suite: the budget is λ-independent, so it
  // must keep holding as log λ grows.
  constexpr double kNaiveConstant = 130.0;
  const AllocationInstance instance = make_slow_instance(GetParam());
  const MpcRunResult result =
      run_mpc_naive(instance, config_for(GetParam().lambda));
  result.allocation.check_valid(instance);
  EXPECT_LE(result.mpc_rounds,
            kNaiveConstant * (1.0 + log_lambda(GetParam().lambda)))
      << "mpc_rounds=" << result.mpc_rounds;
}

TEST_P(SlowBounds, PhasedDriverStaysWithinSqrtLogLambdaBudget) {
  constexpr double kPhasedConstant = 110.0;
  const AllocationInstance instance = make_slow_instance(GetParam());
  const MpcRunResult result =
      run_mpc_phased(instance, config_for(GetParam().lambda));
  result.allocation.check_valid(instance);
  EXPECT_LE(result.mpc_rounds,
            kPhasedConstant * (1.0 + std::sqrt(log_lambda(GetParam().lambda))))
      << "mpc_rounds=" << result.mpc_rounds;
}

TEST_P(SlowBounds, SeparationBindsInAsymptoticRegime) {
  // The headline claim: at large λ the phased driver must beat the naive
  // one outright (total rounds, not just amortised per-LOCAL-round cost),
  // because √(log λ) pulls away from log λ. At the λ≤8 of the default
  // matrix this is swamped by constants; here it must hold strictly.
  const AllocationInstance instance = make_slow_instance(GetParam());
  const MpcRunResult naive =
      run_mpc_naive(instance, config_for(GetParam().lambda));
  const MpcRunResult phased =
      run_mpc_phased(instance, config_for(GetParam().lambda));
  ASSERT_GT(naive.local_rounds, 0u);
  ASSERT_GT(phased.local_rounds, 0u);
  EXPECT_LT(phased.mpc_rounds, naive.mpc_rounds);
  const double naive_cost =
      static_cast<double>(naive.mpc_rounds) / naive.local_rounds;
  const double phased_cost =
      static_cast<double>(phased.mpc_rounds) / phased.local_rounds;
  EXPECT_LT(phased_cost, naive_cost);
}

INSTANTIATE_TEST_SUITE_P(LargeLambda, SlowBounds,
                         ::testing::ValuesIn(kSlowSpecs),
                         [](const ::testing::TestParamInfo<SlowSpec>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace mpcalloc
