#include "alloc/verify.hpp"
#include "flow/greedy.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

TEST(Verify, RatioBasics) {
  EXPECT_DOUBLE_EQ(approximation_ratio(10, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(10, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(0, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(approximation_ratio(5, 0.0)));
}

TEST(Verify, IntegralRatioOnStar) {
  AllocationInstance instance{star_graph(10), {4}};
  IntegralAllocation half{{0, 1}};
  EXPECT_DOUBLE_EQ(integral_ratio(instance, half), 2.0);
}

TEST(Verify, IntegralRatioRejectsInvalid) {
  AllocationInstance instance{star_graph(10), {1}};
  IntegralAllocation bad{{0, 1}};
  EXPECT_THROW((void)integral_ratio(instance, bad), std::logic_error);
}

TEST(Verify, FractionalRatioRejectsInvalid) {
  AllocationInstance instance{star_graph(3), {1}};
  FractionalAllocation bad;
  bad.x = {1.0, 1.0, 1.0};  // 3 units into capacity 1
  EXPECT_THROW((void)fractional_ratio(instance, bad), std::logic_error);
}

TEST(Verify, GreedyRatioIsAtMostTwoPlusSlack) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const double ratio = integral_ratio(instance, greedy_allocation(instance));
    EXPECT_GE(ratio, 1.0) << spec.name;
    EXPECT_LE(ratio, 2.0 + 1e-9) << spec.name;
  }
}

}  // namespace
}  // namespace mpcalloc
