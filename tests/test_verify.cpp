#include "alloc/verify.hpp"
#include "flow/greedy.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

TEST(Verify, RatioBasics) {
  EXPECT_DOUBLE_EQ(approximation_ratio(10, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(10, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(0, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(approximation_ratio(5, 0.0)));
}

TEST(Verify, RatioClampedAtOneAgainstFloatNoise) {
  // Floating-point summation of a fractional weight can overshoot OPT by an
  // ulp; the reported ratio must never drop below 1.0. Regression for the
  // unclamped oracle division.
  EXPECT_DOUBLE_EQ(approximation_ratio(10, 10.0 + 1e-9), 1.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(3000, 3000.0000000000218), 1.0);
  EXPECT_GE(approximation_ratio(10, 9.999999999), 1.0);
}

TEST(Verify, CertifiedRatiosCarryMatchingCertificate) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const CertifiedRatio certified =
        certified_integral_ratio(instance, greedy_allocation(instance));
    EXPECT_TRUE(certified.certificate_ok) << spec.name;
    EXPECT_EQ(certified.opt, certified.cut_capacity) << spec.name;
    EXPECT_GE(certified.ratio, 1.0) << spec.name;
    // The plain-double wrapper must agree with the certified path.
    EXPECT_DOUBLE_EQ(integral_ratio(instance, greedy_allocation(instance)),
                     certified.ratio)
        << spec.name;
  }
}

TEST(Verify, CertifiedFractionalRatioOnSaturatedInstance) {
  // x ≡ 1 on a star with full capacity is exactly optimal; the certified
  // ratio must clamp to 1.0 even though the weight is a float sum.
  AllocationInstance instance{star_graph(10), {10}};
  FractionalAllocation full;
  full.x.assign(10, 1.0);
  const CertifiedRatio certified = certified_fractional_ratio(instance, full);
  EXPECT_TRUE(certified.certificate_ok);
  EXPECT_EQ(certified.opt, 10u);
  EXPECT_DOUBLE_EQ(certified.ratio, 1.0);
}

TEST(Verify, IntegralRatioOnStar) {
  AllocationInstance instance{star_graph(10), {4}};
  IntegralAllocation half{{0, 1}};
  EXPECT_DOUBLE_EQ(integral_ratio(instance, half), 2.0);
}

TEST(Verify, IntegralRatioRejectsInvalid) {
  AllocationInstance instance{star_graph(10), {1}};
  IntegralAllocation bad{{0, 1}};
  EXPECT_THROW((void)integral_ratio(instance, bad), std::logic_error);
}

TEST(Verify, FractionalRatioRejectsInvalid) {
  AllocationInstance instance{star_graph(3), {1}};
  FractionalAllocation bad;
  bad.x = {1.0, 1.0, 1.0};  // 3 units into capacity 1
  EXPECT_THROW((void)fractional_ratio(instance, bad), std::logic_error);
}

TEST(Verify, GreedyRatioIsAtMostTwoPlusSlack) {
  for (const auto& spec : mpcalloc::testing::default_specs()) {
    const AllocationInstance instance = mpcalloc::testing::make_instance(spec);
    const double ratio = integral_ratio(instance, greedy_allocation(instance));
    EXPECT_GE(ratio, 1.0) << spec.name;
    EXPECT_LE(ratio, 2.0 + 1e-9) << spec.name;
  }
}

}  // namespace
}  // namespace mpcalloc
