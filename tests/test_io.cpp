#include "graph/generators.hpp"
#include "graph/io.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include <sstream>

namespace mpcalloc {
namespace {

AllocationInstance sample_instance() {
  Xoshiro256pp rng(3);
  AllocationInstance instance;
  instance.graph = union_of_forests(30, 20, 2, rng);
  instance.capacities = uniform_capacities(20, 1, 5, rng);
  return instance;
}

TEST(Io, RoundTripPreservesInstance) {
  const AllocationInstance original = sample_instance();
  std::stringstream stream;
  write_instance(stream, original);
  const AllocationInstance loaded = read_instance(stream);

  EXPECT_EQ(loaded.graph.num_left(), original.graph.num_left());
  EXPECT_EQ(loaded.graph.num_right(), original.graph.num_right());
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(loaded.capacities, original.capacities);
  for (EdgeId e = 0; e < original.graph.num_edges(); ++e) {
    EXPECT_EQ(loaded.graph.edge(e), original.graph.edge(e));
  }
}

TEST(Io, CommentsAndDefaultsAccepted) {
  std::stringstream stream(
      "# hello\n"
      "alloc 2 2 1\n"
      "# capacity of v=0 defaults to 1\n"
      "c 1 7\n"
      "e 0 1\n");
  const AllocationInstance instance = read_instance(stream);
  EXPECT_EQ(instance.capacities[0], 1u);
  EXPECT_EQ(instance.capacities[1], 7u);
  EXPECT_EQ(instance.graph.num_edges(), 1u);
}

TEST(Io, MissingHeaderRejected) {
  std::stringstream stream("e 0 0\n");
  EXPECT_THROW(read_instance(stream), std::runtime_error);
}

TEST(Io, EdgeCountMismatchRejected) {
  std::stringstream stream("alloc 2 2 2\ne 0 0\n");
  EXPECT_THROW(read_instance(stream), std::runtime_error);
}

TEST(Io, OutOfRangeVertexRejected) {
  std::stringstream stream("alloc 2 2 1\ne 0 5\n");
  EXPECT_THROW(read_instance(stream), std::runtime_error);
}

TEST(Io, ZeroCapacityRejected) {
  std::stringstream stream("alloc 2 2 1\nc 0 0\ne 0 0\n");
  EXPECT_THROW(read_instance(stream), std::runtime_error);
}

TEST(Io, UnknownTagRejected) {
  std::stringstream stream("alloc 2 2 1\nq 0 0\ne 0 0\n");
  EXPECT_THROW(read_instance(stream), std::runtime_error);
}

TEST(Io, CrlfLineEndingsAccepted) {
  std::stringstream stream("# dos file\r\nalloc 2 2 1\r\nc 1 7\r\ne 0 1\r\n");
  const AllocationInstance instance = read_instance(stream);
  EXPECT_EQ(instance.capacities[1], 7u);
  EXPECT_EQ(instance.graph.num_edges(), 1u);
}

TEST(Io, BlankAndWhitespaceLinesSkipped) {
  std::stringstream stream(
      "alloc 2 2 1\n"
      "\n"
      "   \n"
      "\t\r\n"
      "  # indented comment\n"
      "e 0 1\n");
  const AllocationInstance instance = read_instance(stream);
  EXPECT_EQ(instance.graph.num_edges(), 1u);
}

TEST(Io, TrailingGarbageRejected) {
  {
    std::stringstream stream("alloc 2 2 1 extra\ne 0 1\n");
    EXPECT_THROW(read_instance(stream), std::runtime_error);
  }
  {
    std::stringstream stream("alloc 2 2 1\nc 1 7 9\ne 0 1\n");
    EXPECT_THROW(read_instance(stream), std::runtime_error);
  }
  {
    std::stringstream stream("alloc 2 2 1\ne 0 1 1\n");
    EXPECT_THROW(read_instance(stream), std::runtime_error);
  }
}

TEST(Io, FileSaveLoad) {
  const AllocationInstance original = sample_instance();
  const std::string path = ::testing::TempDir() + "/mpcalloc_io_test.txt";
  save_instance(path, original);
  const AllocationInstance loaded = load_instance(path);
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(loaded.capacities, original.capacities);
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/path/file.txt"), std::runtime_error);
}


TEST(SolutionIo, RoundTrip) {
  const AllocationInstance instance = sample_instance();
  const auto opt = [&] {
    // Cheap valid solution: greedy-style first-fit.
    IntegralAllocation m;
    std::vector<std::uint32_t> residual(instance.capacities);
    for (Vertex u = 0; u < instance.graph.num_left(); ++u) {
      for (const Incidence& inc : instance.graph.left_neighbors(u)) {
        if (residual[inc.to] > 0) {
          --residual[inc.to];
          m.edges.push_back(inc.edge);
          break;
        }
      }
    }
    return m;
  }();
  std::stringstream stream;
  write_solution(stream, instance, opt);
  const IntegralAllocation loaded = read_solution(stream, instance);
  auto sorted_a = opt.edges, sorted_b = loaded.edges;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  EXPECT_EQ(sorted_a, sorted_b);
}

TEST(SolutionIo, RejectsNonEdgePair) {
  AllocationInstance instance{star_graph(3), {2}};
  std::stringstream stream("solution 1\nm 0 5\n");
  EXPECT_THROW((void)read_solution(stream, instance), std::runtime_error);
}

TEST(SolutionIo, RejectsCountMismatch) {
  AllocationInstance instance{star_graph(3), {2}};
  std::stringstream stream("solution 2\nm 0 0\n");
  EXPECT_THROW((void)read_solution(stream, instance), std::runtime_error);
}

TEST(SolutionIo, RejectsInfeasibleSolution) {
  AllocationInstance instance{star_graph(3), {1}};
  std::stringstream stream("solution 2\nm 0 0\nm 1 0\n");
  EXPECT_THROW((void)read_solution(stream, instance), std::logic_error);
}

TEST(SolutionIo, RejectsDuplicatePairAtParseTime) {
  // With C_v = 3 the duplicate would even survive the right-side capacity
  // check; the parser must reject it before feasibility checking runs.
  // (std::runtime_error pins parse-time detection: check_valid throws
  // std::logic_error, a different branch of the exception hierarchy.)
  AllocationInstance instance{star_graph(3), {3}};
  std::stringstream stream("solution 2\nm 0 0\nm 0 0\n");
  EXPECT_THROW((void)read_solution(stream, instance), std::runtime_error);
}

TEST(SolutionIo, CrlfAndTrailingGarbage) {
  AllocationInstance instance{star_graph(3), {2}};
  {
    std::stringstream stream("solution 1\r\nm 0 0\r\n");
    EXPECT_EQ(read_solution(stream, instance).size(), 1u);
  }
  {
    std::stringstream stream("solution 1\nm 0 0 junk\n");
    EXPECT_THROW((void)read_solution(stream, instance), std::runtime_error);
  }
  {
    std::stringstream stream("solution 1 junk\nm 0 0\n");
    EXPECT_THROW((void)read_solution(stream, instance), std::runtime_error);
  }
}

TEST(SolutionIo, FileRoundTrip) {
  AllocationInstance instance{star_graph(4), {2}};
  IntegralAllocation m{{0, 1}};
  const std::string path = ::testing::TempDir() + "/mpcalloc_sol_test.txt";
  save_solution(path, instance, m);
  const IntegralAllocation loaded = load_solution(path, instance);
  EXPECT_EQ(loaded.size(), 2u);
}

}  // namespace
}  // namespace mpcalloc
