#include "alloc/boosting.hpp"
#include "alloc/rounding.hpp"
#include "alloc/verify.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::InstanceSpec;
using mpcalloc::testing::default_specs;
using mpcalloc::testing::make_instance;

TEST(PathBooster, RejectsEvenWalkLength) {
  AllocationInstance instance{star_graph(3), {1}};
  IntegralAllocation empty;
  EXPECT_THROW(boost_path_limited(instance, empty, 4), std::invalid_argument);
  EXPECT_THROW(boost_path_limited(instance, empty, 0), std::invalid_argument);
}

TEST(PathBooster, LengthOneIsGreedyCompletion) {
  // Walks of length 1 just match free u's to spare capacity.
  AllocationInstance instance{star_graph(6), {4}};
  IntegralAllocation empty;
  const BoostResult result = boost_path_limited(instance, empty, 1);
  EXPECT_EQ(result.allocation.size(), 4u);
}

TEST(PathBooster, ResolvesClassicAugmentingPath) {
  // u0-v0, u1-{v0,v1}: greedy can match u1→v0 and strand u0; one length-3
  // walk fixes it.
  BipartiteGraphBuilder b(2, 2);
  b.add_edge(0, 0);
  b.add_edge(1, 0);
  b.add_edge(1, 1);
  AllocationInstance instance{b.build(), {1, 1}};
  IntegralAllocation bad;
  bad.edges = {1};  // (1,0): strands u0
  const BoostResult result = boost_path_limited(instance, bad, 3);
  EXPECT_EQ(result.allocation.size(), 2u);
}

class BoosterSuite : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(BoosterSuite, OnePlusEpsCertificateAgainstExactOpt) {
  const AllocationInstance instance = make_instance(GetParam());
  const IntegralAllocation seed = greedy_allocation(instance);
  const double eps = 0.2;
  const BoostResult result = boost_to_one_plus_eps(instance, seed, eps);
  result.allocation.check_valid(instance);
  const auto opt = optimal_allocation_value(instance);
  EXPECT_GE(static_cast<double>(result.allocation.size()) * (1.0 + eps),
            static_cast<double>(opt))
      << GetParam().name;
}

TEST_P(BoosterSuite, UnboundedLengthReachesExactOptimum) {
  const AllocationInstance instance = make_instance(GetParam());
  const IntegralAllocation seed = greedy_allocation(instance);
  // Walk length ≥ 2n+1 cannot be binding: this is plain augmentation to
  // optimality, cross-validating the booster against Dinic.
  const std::size_t huge = 2 * instance.graph.num_vertices() + 1;
  const BoostResult result = boost_path_limited(instance, seed, huge);
  EXPECT_EQ(result.allocation.size(), optimal_allocation_value(instance))
      << GetParam().name;
}

TEST_P(BoosterSuite, BoostingNeverShrinks) {
  const AllocationInstance instance = make_instance(GetParam());
  const IntegralAllocation seed = greedy_allocation(instance);
  const BoostResult result = boost_path_limited(instance, seed, 5);
  EXPECT_GE(result.allocation.size(), seed.size());
}

TEST_P(BoosterSuite, Ggm22IsValidAndMonotone) {
  const AllocationInstance instance = make_instance(GetParam());
  const IntegralAllocation seed = greedy_allocation(instance);
  Xoshiro256pp rng(GetParam().seed + 77);
  const BoostResult result = boost_ggm22(instance, seed, 0.25, 30, rng);
  result.allocation.check_valid(instance);
  EXPECT_GE(result.allocation.size(), seed.size());
  EXPECT_EQ(result.iterations, 30u);
  EXPECT_EQ(result.augmentations_per_iteration.size(), 30u);
}

INSTANTIATE_TEST_SUITE_P(Instances, BoosterSuite,
                         ::testing::ValuesIn(default_specs()),
                         [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
                           return param_info.param.name;
                         });

TEST(Ggm22, ClosesTheGapOnPlantedInstances) {
  // With a perfect allocation available, GGM22 iterations should keep
  // finding augmenting walks and approach OPT from a greedy seed.
  const auto planted = mpcalloc::testing::make_planted(300, 80, 4, 3, 55);
  const AllocationInstance& instance = planted.instance;
  IntegralAllocation seed = greedy_allocation(instance);
  Xoshiro256pp rng(56);
  const BoostResult result = boost_ggm22(instance, seed, 0.34, 200, rng);
  const auto opt = optimal_allocation_value(instance);
  EXPECT_GE(static_cast<double>(result.allocation.size()),
            0.95 * static_cast<double>(opt));
}

TEST(Ggm22, FromEmptySeedStillProgresses) {
  const AllocationInstance instance = make_instance(default_specs()[2]);
  IntegralAllocation empty;
  Xoshiro256pp rng(57);
  const BoostResult result = boost_ggm22(instance, empty, 0.34, 50, rng);
  result.allocation.check_valid(instance);
  EXPECT_GT(result.allocation.size(), 0u);
}

TEST(PathBooster, PhasesReportAugmentations) {
  const AllocationInstance instance = make_instance(default_specs()[3]);
  IntegralAllocation empty;
  const BoostResult result = boost_path_limited(instance, empty, 3);
  std::size_t total = 0;
  for (const std::size_t a : result.augmentations_per_iteration) {
    EXPECT_GT(a, 0u);  // phases that find nothing terminate the loop
    total += a;
  }
  EXPECT_EQ(total, result.allocation.size());
}

TEST(Booster, InvalidSeedRejected) {
  AllocationInstance instance{star_graph(4), {1}};
  IntegralAllocation overfull;
  overfull.edges = {0, 1};  // two edges into C=1 center
  EXPECT_THROW(boost_path_limited(instance, overfull, 3), std::logic_error);
  Xoshiro256pp rng(1);
  EXPECT_THROW(boost_ggm22(instance, overfull, 0.5, 5, rng), std::logic_error);
}

TEST(Booster, EpsilonGuards) {
  AllocationInstance instance{star_graph(4), {1}};
  IntegralAllocation empty;
  EXPECT_THROW(boost_to_one_plus_eps(instance, empty, 0.0),
               std::invalid_argument);
  Xoshiro256pp rng(1);
  EXPECT_THROW(boost_ggm22(instance, empty, -1.0, 5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc
