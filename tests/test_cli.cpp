// Strict numeric parsing on the shared CLI parser: garbage suffixes,
// negatives on count-like options, and out-of-range magnitudes fail loudly
// with the option named, instead of silently truncating the value (the same
// contract resolve_num_threads applies to MPCALLOC_THREADS).
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mpcalloc {
namespace {

CliParser parser_with(std::initializer_list<const char*> extra_args,
                      std::vector<std::string>& storage,
                      std::vector<const char*>& argv) {
  CliParser cli("test");
  cli.option("seed", "1", "seed").option("eps", "0.25", "epsilon");
  cli.option("threads-list", "1,2", "sweep");
  cli.threads_option();
  storage = {"prog"};
  for (const char* arg : extra_args) storage.emplace_back(arg);
  argv.clear();
  for (const std::string& s : storage) argv.push_back(s.c_str());
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  return cli;
}

TEST(Cli, StrictIntAcceptsPlainIntegers) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli =
      parser_with({"--seed=42", "--threads", "7"}, storage, argv);
  EXPECT_EQ(cli.get_int("seed"), 42);
  EXPECT_EQ(cli.get_size("threads"), 7u);
  EXPECT_EQ(cli.get_int_list("threads-list"), (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, GarbageSuffixIsRejectedNotTruncated) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli = parser_with({"--seed=8x"}, storage, argv);
  // std::stoll would have silently returned 8 here.
  try {
    (void)cli.get_int("seed");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--seed"), std::string::npos)
        << "message must name the offending option: " << error.what();
  }
}

TEST(Cli, EmptyAndNonNumericValuesAreRejected) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser empty = parser_with({"--seed="}, storage, argv);
  EXPECT_THROW((void)empty.get_int("seed"), std::invalid_argument);
  const CliParser word = parser_with({"--seed=auto"}, storage, argv);
  EXPECT_THROW((void)word.get_int("seed"), std::invalid_argument);
  const CliParser fp = parser_with({"--seed=1.5"}, storage, argv);
  EXPECT_THROW((void)fp.get_int("seed"), std::invalid_argument);
}

TEST(Cli, OutOfRangeMagnitudesAreRejected) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli =
      parser_with({"--seed=99999999999999999999"}, storage, argv);
  EXPECT_THROW((void)cli.get_int("seed"), std::invalid_argument);
}

TEST(Cli, GetSizeRejectsNegativesWithClearMessage) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli = parser_with({"--threads=-4"}, storage, argv);
  // get_int accepts the sign; the count-like accessor must not.
  EXPECT_EQ(cli.get_int("threads"), -4);
  try {
    (void)cli.get_size("threads");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find(">= 0"), std::string::npos);
  }
}

TEST(Cli, StrictDoubleRejectsGarbageAndNonFinite) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli = parser_with({"--eps=0.5"}, storage, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.5);
  const CliParser garbage = parser_with({"--eps=0.5oops"}, storage, argv);
  EXPECT_THROW((void)garbage.get_double("eps"), std::invalid_argument);
  const CliParser nan = parser_with({"--eps=nan"}, storage, argv);
  EXPECT_THROW((void)nan.get_double("eps"), std::invalid_argument);
  const CliParser inf = parser_with({"--eps=inf"}, storage, argv);
  EXPECT_THROW((void)inf.get_double("eps"), std::invalid_argument);
  const CliParser huge = parser_with({"--eps=1e999"}, storage, argv);
  EXPECT_THROW((void)huge.get_double("eps"), std::invalid_argument);
}

TEST(Cli, ListElementsAreValidatedLikeScalars) {
  std::vector<std::string> storage;
  std::vector<const char*> argv;
  const CliParser cli = parser_with({"--threads-list=1,2x,4"}, storage, argv);
  EXPECT_THROW((void)cli.get_int_list("threads-list"), std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc
