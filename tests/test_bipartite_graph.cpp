#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mpcalloc {
namespace {

BipartiteGraph triangle_ish() {
  // L = {0,1,2}, R = {0,1}; edges: (0,0) (0,1) (1,0) (2,1)
  BipartiteGraphBuilder b(3, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(2, 1);
  return b.build();
}

TEST(BipartiteGraph, BasicCounts) {
  const BipartiteGraph g = triangle_ish();
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 2u);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.left_degree(0), 2u);
  EXPECT_EQ(g.left_degree(1), 1u);
  EXPECT_EQ(g.right_degree(0), 2u);
  EXPECT_EQ(g.right_degree(1), 2u);
  EXPECT_EQ(g.max_left_degree(), 2u);
  EXPECT_EQ(g.max_right_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
}

TEST(BipartiteGraph, AdjacencyIsConsistentWithEdges) {
  const BipartiteGraph g = triangle_ish();
  g.validate();  // must not throw
  for (Vertex u = 0; u < g.num_left(); ++u) {
    for (const Incidence& inc : g.left_neighbors(u)) {
      EXPECT_EQ(g.edge(inc.edge).u, u);
      EXPECT_EQ(g.edge(inc.edge).v, inc.to);
    }
  }
  for (Vertex v = 0; v < g.num_right(); ++v) {
    for (const Incidence& inc : g.right_neighbors(v)) {
      EXPECT_EQ(g.edge(inc.edge).v, v);
      EXPECT_EQ(g.edge(inc.edge).u, inc.to);
    }
  }
}

TEST(BipartiteGraph, EmptyGraph) {
  BipartiteGraphBuilder b(0, 0);
  const BipartiteGraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  g.validate();
}

TEST(BipartiteGraph, IsolatedVerticesAllowed) {
  BipartiteGraphBuilder b(5, 5);
  b.add_edge(0, 0);
  const BipartiteGraph g = b.build();
  EXPECT_EQ(g.left_degree(4), 0u);
  EXPECT_EQ(g.right_degree(4), 0u);
  g.validate();
}

TEST(BipartiteGraphBuilder, OutOfRangeThrows) {
  BipartiteGraphBuilder b(2, 2);
  EXPECT_THROW(b.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

TEST(BipartiteGraphBuilder, DeduplicateRemovesCopies) {
  BipartiteGraphBuilder b(2, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  b.add_edge(0, 0);
  EXPECT_EQ(b.pending_edges(), 4u);
  b.deduplicate();
  const BipartiteGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  g.validate();
}

TEST(BipartiteGraphBuilder, BuildResetsToDocumentedEmptyState) {
  BipartiteGraphBuilder b(3, 2);
  b.add_edge(0, 0);
  b.add_edge(2, 1);
  const BipartiteGraph first = b.build();
  EXPECT_EQ(first.num_edges(), 2u);

  // Post-build the builder is the documented empty 0×0 state, not a stale
  // copy of its pre-build contents.
  EXPECT_EQ(b.pending_edges(), 0u);
  EXPECT_THROW(b.add_edge(0, 0), std::out_of_range);
  const BipartiteGraph second = b.build();
  EXPECT_EQ(second.num_left(), 0u);
  EXPECT_EQ(second.num_right(), 0u);
  EXPECT_EQ(second.num_edges(), 0u);

  // The first graph is unaffected by the reset.
  first.validate();
  EXPECT_EQ(first.num_edges(), 2u);
}

TEST(BipartiteGraph, CachedDegreeGettersMatchRecomputation) {
  const BipartiteGraph g = triangle_ish();
  std::size_t max_left = 0, max_right = 0;
  for (Vertex u = 0; u < g.num_left(); ++u) {
    max_left = std::max(max_left, g.left_degree(u));
  }
  for (Vertex v = 0; v < g.num_right(); ++v) {
    max_right = std::max(max_right, g.right_degree(v));
  }
  EXPECT_EQ(g.max_left_degree(), max_left);
  EXPECT_EQ(g.max_right_degree(), max_right);
}

TEST(BipartiteGraph, ValidateDetectsDuplicates) {
  BipartiteGraphBuilder b(2, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 0);
  const BipartiteGraph g = b.build();
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(BipartiteGraph, DescribeMentionsSizes) {
  const std::string d = triangle_ish().describe();
  EXPECT_NE(d.find("n_L=3"), std::string::npos);
  EXPECT_NE(d.find("m=4"), std::string::npos);
}

TEST(AllocationInstance, ValidateChecksCapacities) {
  AllocationInstance instance;
  instance.graph = triangle_ish();
  instance.capacities = {1, 0};
  EXPECT_THROW(instance.validate(), std::invalid_argument);
  instance.capacities = {1};
  EXPECT_THROW(instance.validate(), std::invalid_argument);
  instance.capacities = {1, 2};
  instance.validate();
  EXPECT_EQ(instance.total_capacity(), 3u);
}

TEST(IntegralAllocation, AcceptsValidSubset) {
  AllocationInstance instance{triangle_ish(), {1, 2}};
  // Edge ids after CSR build are in sorted (u,v) order: (0,0)=0 (0,1)=1
  // (1,0)=2 (2,1)=3.
  IntegralAllocation m{{0, 3}};
  EXPECT_TRUE(m.is_valid(instance));
}

TEST(IntegralAllocation, RejectsLeftDoubleMatch) {
  AllocationInstance instance{triangle_ish(), {2, 2}};
  IntegralAllocation m{{0, 1}};  // both edges of u=0
  EXPECT_FALSE(m.is_valid(instance));
}

TEST(IntegralAllocation, RejectsCapacityOverflow) {
  AllocationInstance instance{triangle_ish(), {1, 2}};
  IntegralAllocation m{{0, 2}};  // two edges into v=0 with C=1
  EXPECT_FALSE(m.is_valid(instance));
}

TEST(IntegralAllocation, RejectsRepeatedEdge) {
  AllocationInstance instance{triangle_ish(), {2, 2}};
  IntegralAllocation m{{0, 0}};
  EXPECT_FALSE(m.is_valid(instance));
}

TEST(IntegralAllocation, RejectsOutOfRangeEdge) {
  AllocationInstance instance{triangle_ish(), {2, 2}};
  IntegralAllocation m{{99}};
  EXPECT_FALSE(m.is_valid(instance));
}

TEST(FractionalAllocation, WeightAndLoads) {
  AllocationInstance instance{triangle_ish(), {1, 2}};
  FractionalAllocation f;
  f.x = {0.5, 0.5, 0.25, 1.0};
  EXPECT_DOUBLE_EQ(f.weight(), 2.25);
  const auto lload = f.left_loads(instance);
  EXPECT_DOUBLE_EQ(lload[0], 1.0);
  EXPECT_DOUBLE_EQ(lload[1], 0.25);
  EXPECT_DOUBLE_EQ(lload[2], 1.0);
  const auto rload = f.right_loads(instance);
  EXPECT_DOUBLE_EQ(rload[0], 0.75);
  EXPECT_DOUBLE_EQ(rload[1], 1.5);
  EXPECT_TRUE(f.is_valid(instance));
}

TEST(FractionalAllocation, RejectsLeftOverload) {
  AllocationInstance instance{triangle_ish(), {5, 5}};
  FractionalAllocation f;
  f.x = {0.8, 0.8, 0.0, 0.0};  // u=0 carries 1.6
  EXPECT_FALSE(f.is_valid(instance));
}

TEST(FractionalAllocation, RejectsCapacityOverload) {
  AllocationInstance instance{triangle_ish(), {1, 5}};
  FractionalAllocation f;
  f.x = {0.9, 0.0, 0.9, 0.0};  // v=0 carries 1.8 > C=1
  EXPECT_FALSE(f.is_valid(instance));
}

TEST(FractionalAllocation, RejectsValueOutsideUnitInterval) {
  AllocationInstance instance{triangle_ish(), {5, 5}};
  FractionalAllocation f;
  f.x = {1.5, 0.0, 0.0, 0.0};
  EXPECT_FALSE(f.is_valid(instance));
  f.x = {-0.2, 0.0, 0.0, 0.0};
  EXPECT_FALSE(f.is_valid(instance));
}

TEST(FractionalAllocation, SizeMismatchRejected) {
  AllocationInstance instance{triangle_ish(), {1, 1}};
  FractionalAllocation f;
  f.x = {0.1};
  EXPECT_FALSE(f.is_valid(instance));
}

TEST(FractionalAllocation, ToleranceAbsorbsRoundoff) {
  AllocationInstance instance{triangle_ish(), {1, 1}};
  FractionalAllocation f;
  f.x = {0.5 + 1e-12, 0.5, 0.0, 0.0};
  EXPECT_TRUE(f.is_valid(instance, 1e-9));
}

}  // namespace
}  // namespace mpcalloc
