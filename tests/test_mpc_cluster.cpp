#include "mpc/cluster.hpp"
#include "mpc/exponentiation.hpp"
#include "mpc/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

namespace mpcalloc::mpc {
namespace {

TEST(Cluster, ConstructionGuards) {
  EXPECT_THROW(Cluster(0, 10), std::invalid_argument);
  EXPECT_THROW(Cluster(10, 0), std::invalid_argument);
}

TEST(Cluster, ForInputSizesSublinearly) {
  const Cluster c = Cluster::for_input(1'000'000, 0.5);
  EXPECT_GE(c.machine_words(), 1000u);
  EXPECT_LE(c.machine_words(), 1100u);
  // Enough machines for 4x the input.
  EXPECT_GE(static_cast<std::uint64_t>(c.num_machines()) * c.machine_words(),
            4'000'000u);
  EXPECT_THROW(Cluster::for_input(100, 0.0), std::invalid_argument);
  EXPECT_THROW(Cluster::for_input(100, 1.0), std::invalid_argument);
}

TEST(Cluster, ScatterPartitionsEvenly) {
  Cluster c(4, 100);
  std::vector<Word> flat(200);
  std::iota(flat.begin(), flat.end(), 0);
  const DistVec d = c.scatter(flat, 2);
  EXPECT_EQ(d.num_records(), 100u);
  EXPECT_EQ(d.num_words(), 200u);
  EXPECT_EQ(d.gather(), flat);
  for (std::size_t m = 0; m < d.num_shards(); ++m) {
    EXPECT_LE(d.shard(m).size(), 100u);
  }
}

TEST(Cluster, ScatterRejectsOversizedInput) {
  Cluster c(2, 10);
  std::vector<Word> flat(100, 0);
  EXPECT_THROW(c.scatter(flat, 2), MpcCapacityError);
}

TEST(Cluster, ScatterRejectsBadWidth) {
  Cluster c(2, 100);
  std::vector<Word> flat(3, 0);
  EXPECT_THROW(c.scatter(flat, 2), std::invalid_argument);
}

TEST(Cluster, ShuffleMovesRecordsAndCountsRound) {
  Cluster c(2, 100);
  std::vector<Word> flat{10, 11, 20, 21};
  DistVec d = c.scatter(flat, 2);
  EXPECT_EQ(c.rounds(), 0u);
  const std::vector<std::uint32_t> dest{1, 0};
  c.shuffle(d, dest);
  EXPECT_EQ(c.rounds(), 1u);
  // Record 0 (10,11) moved to machine 1, record 1 (20,21) to machine 0.
  EXPECT_EQ(d.shard(0), (std::vector<Word>{20, 21}));
  EXPECT_EQ(d.shard(1), (std::vector<Word>{10, 11}));
  EXPECT_GT(c.total_words_moved(), 0u);
}

TEST(Cluster, ShuffleEnforcesReceiveCap) {
  Cluster c(4, 8);
  // 4 records of width 2 spread over machines; route all to machine 0:
  // it would receive more than S=8 words from others once resident data
  // is included... craft: 6 records width 2 = 12 words > 8.
  std::vector<Word> flat(12, 1);
  DistVec d = c.scatter(flat, 2);
  const std::vector<std::uint32_t> dest(6, 0);
  EXPECT_THROW(c.shuffle(d, dest), MpcCapacityError);
}

TEST(Cluster, ShuffleValidatesArguments) {
  Cluster c(2, 100);
  std::vector<Word> flat{1, 2};
  DistVec d = c.scatter(flat, 2);
  std::vector<std::uint32_t> wrong_size{0, 1};
  EXPECT_THROW(c.shuffle(d, wrong_size), std::invalid_argument);
  std::vector<std::uint32_t> bad_dest{9};
  EXPECT_THROW(c.shuffle(d, bad_dest), std::out_of_range);
}

TEST(Cluster, AccountResidentTracksPeak) {
  Cluster c(2, 50);
  c.account_resident(0, 30);
  EXPECT_EQ(c.peak_machine_words(), 30u);
  try {
    c.account_resident(1, 51);
    FAIL() << "expected MpcCapacityError";
  } catch (const MpcCapacityError& error) {
    EXPECT_EQ(error.rule(), CapacityRule::kResident);
    EXPECT_TRUE(error.has_machine());
    EXPECT_EQ(error.machine(), 1u);
    EXPECT_EQ(error.observed_words(), 51u);
    EXPECT_EQ(error.budget_words(), 50u);
  }
  // The rejected commit never became resident: no watermark pollution.
  EXPECT_EQ(c.peak_machine_words(), 30u);
  EXPECT_THROW(c.account_resident(5, 1), std::out_of_range);
}

TEST(Cluster, ResetCountersZeroesEverything) {
  Cluster c(2, 100);
  c.charge_rounds(5);
  c.account_resident(0, 10);
  c.reset_counters();
  EXPECT_EQ(c.rounds(), 0u);
  EXPECT_EQ(c.peak_machine_words(), 0u);
  EXPECT_EQ(c.total_words_moved(), 0u);
}

TEST(Primitives, SampleSortOrdersGlobally) {
  Cluster c(8, 200);
  Xoshiro256pp rng(3);
  std::vector<Word> flat;
  for (int i = 0; i < 300; ++i) {
    flat.push_back(rng.uniform(1000));  // key
    flat.push_back(i);                  // payload
  }
  DistVec d = c.scatter(flat, 2);
  sample_sort(c, d, rng);
  const std::vector<Word> out = d.gather();
  ASSERT_EQ(out.size(), flat.size());
  for (std::size_t i = 2; i < out.size(); i += 2) {
    EXPECT_LE(out[i - 2], out[i]);
  }
  EXPECT_GE(c.rounds(), 2u);  // sample round + shuffle round
}

TEST(Primitives, SumByKeyMatchesMap) {
  Cluster c(6, 400);
  Xoshiro256pp rng(4);
  std::vector<Word> flat;
  std::map<Word, Word> expected;
  for (int i = 0; i < 500; ++i) {
    const Word key = rng.uniform(17);
    const Word value = rng.uniform(100);
    flat.push_back(key);
    flat.push_back(value);
    expected[key] += value;
  }
  DistVec d = c.scatter(flat, 2);
  sum_by_key(c, d, rng);
  const std::vector<Word> out = d.gather();
  std::map<Word, Word> got;
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    EXPECT_EQ(got.count(out[i]), 0u) << "key duplicated after reduce";
    got[out[i]] = out[i + 1];
  }
  EXPECT_EQ(got, expected);
}

TEST(Primitives, ReduceByKeyHandlesHeavyKeySkew) {
  // All records share one key: local pre-aggregation must prevent a bucket
  // overflow that raw sorting would cause.
  Cluster c(8, 64);
  Xoshiro256pp rng(5);
  std::vector<Word> flat;
  for (int i = 0; i < 200; ++i) {
    flat.push_back(7);
    flat.push_back(1);
  }
  DistVec d = c.scatter(flat, 2);
  sum_by_key(c, d, rng);
  const std::vector<Word> out = d.gather();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 200u);
}

TEST(Primitives, BroadcastCostIsLogarithmic) {
  const Cluster small(4, 1000);
  EXPECT_EQ(broadcast_cost(small, 10), 1u);
  const Cluster large(1'000'000, 4);
  EXPECT_GT(broadcast_cost(large, 2), 1u);
  EXPECT_THROW(broadcast_cost(small, 2000), MpcCapacityError);
}

TEST(Primitives, ExclusivePrefixSum) {
  Cluster c(3, 100);
  std::vector<Word> flat{1, 0, 2, 0, 3, 0, 4, 0};
  DistVec d = c.scatter(flat, 2);
  exclusive_prefix_sum(c, d);
  const std::vector<Word> out = d.gather();
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[2], 1u);
  EXPECT_EQ(out[4], 3u);
  EXPECT_EQ(out[6], 6u);
}

TEST(Exponentiation, PathBallsHaveExpectedRadius) {
  // Path 0-1-2-3-4.
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  Cluster c(2, 1000);
  const BallCollection balls = collect_balls(c, adj, 2);
  EXPECT_EQ(balls.balls[0], (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(balls.balls[2], (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(balls.max_ball_vertices, 5u);
  EXPECT_GE(c.rounds(), balls.rounds_charged);
}

TEST(Exponentiation, RoundsAreLogarithmicInRadius) {
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0}};
  Cluster c(2, 1000);
  const BallCollection b8 = collect_balls(c, adj, 8);
  EXPECT_EQ(b8.rounds_charged, 4u);  // ⌈log2 8⌉ + 1
  const BallCollection b9 = collect_balls(c, adj, 9);
  EXPECT_EQ(b9.rounds_charged, 5u);  // ⌈log2 9⌉ + 1
}

TEST(Exponentiation, OverflowingBallThrows) {
  // A star of 100 leaves: radius-2 ball at a leaf = whole graph, volume
  // ≈ 300 words > S = 64.
  std::vector<std::vector<std::uint32_t>> adj(101);
  for (std::uint32_t leaf = 1; leaf <= 100; ++leaf) {
    adj[0].push_back(leaf);
    adj[leaf].push_back(0);
  }
  Cluster c(64, 64);
  EXPECT_THROW(collect_balls(c, adj, 2), MpcCapacityError);
}

TEST(Exponentiation, BallVolumeCountsMembersAndArcs) {
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1}};
  const std::vector<std::uint32_t> ball{0, 1, 2};
  // 3 member words + arcs 0→1,1→0,1→2,2→1 all internal = 4.
  EXPECT_EQ(ball_volume_words(adj, ball), 7u);
}

TEST(Exponentiation, RadiusZeroRejected) {
  std::vector<std::vector<std::uint32_t>> adj{{}};
  Cluster c(1, 10);
  EXPECT_THROW(collect_balls(c, adj, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpcalloc::mpc
