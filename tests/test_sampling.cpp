#include "alloc/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace mpcalloc {
namespace {

TEST(Lemma11, SampleCountFormula) {
  // s = ⌈20 t² log n / ε⁴⌉.
  const double t = 2.0, eps = 0.5;
  const std::size_t n = 1000;
  const double expected = 20.0 * 4.0 * std::log(1000.0) / 0.0625;
  EXPECT_EQ(lemma11_sample_count(t, eps, n),
            static_cast<std::size_t>(std::ceil(expected)));
}

TEST(Lemma11, SampleCountGrowsWithSpread) {
  EXPECT_LT(lemma11_sample_count(1.5, 0.25, 100),
            lemma11_sample_count(3.0, 0.25, 100));
  EXPECT_LT(lemma11_sample_count(2.0, 0.5, 100),
            lemma11_sample_count(2.0, 0.25, 100));
}

TEST(Estimator, EmptyAndZeroSampleAreZero) {
  Xoshiro256pp rng(1);
  EXPECT_EQ(estimate_sum({}, 10, rng).estimate, 0.0);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_EQ(estimate_sum(v, 0, rng).estimate, 0.0);
}

TEST(Estimator, ConstantSequenceIsExact) {
  Xoshiro256pp rng(2);
  const std::vector<double> v(100, 3.0);
  const SumEstimate est = estimate_sum(v, 10, rng);
  EXPECT_DOUBLE_EQ(est.estimate, 300.0);
  EXPECT_EQ(est.samples_used, 10u);
}

TEST(Estimator, IsUnbiasedOverManyTrials) {
  Xoshiro256pp rng(3);
  std::vector<double> v(200);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 + static_cast<double>(i % 7);
  }
  const double truth = std::accumulate(v.begin(), v.end(), 0.0);
  double mean = 0.0;
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    mean += estimate_sum(v, 20, rng).estimate;
  }
  mean /= kTrials;
  EXPECT_NEAR(mean, truth, truth * 0.02);
}

TEST(Estimator, Lemma11ErrorBoundHoldsEmpirically) {
  // Values within [V/t, V·t] for t = (1+ε)^B with ε=0.5, B=2 → t = 2.25.
  const double eps = 0.5;
  const double t = std::pow(1.0 + eps, 2.0);
  Xoshiro256pp rng(4);
  const std::size_t n = 500;
  std::vector<double> v(n);
  for (auto& value : v) {
    // Spread across [1/t, t] around V = 1.
    value = (1.0 / t) * std::pow(t * t, rng.uniform_double());
  }
  const double truth = std::accumulate(v.begin(), v.end(), 0.0);
  const std::size_t s = lemma11_sample_count(t, eps, n);

  int failures = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double est = estimate_sum(v, s, rng).estimate;
    if (std::abs(est - truth) > 4.0 * eps * truth) ++failures;
  }
  // Lemma 11 promises failure probability ≪ 1; the empirical rate with the
  // prescribed (very conservative) sample count should be zero.
  EXPECT_EQ(failures, 0);
}

TEST(Estimator, SmallSamplesAreNoisierThanLargeSamples) {
  Xoshiro256pp rng(5);
  std::vector<double> v(300);
  for (auto& value : v) value = rng.uniform_double() * 10.0;
  const double truth = std::accumulate(v.begin(), v.end(), 0.0);

  auto mean_abs_error = [&](std::size_t samples) {
    double total = 0.0;
    constexpr int kTrials = 400;
    for (int trial = 0; trial < kTrials; ++trial) {
      total += std::abs(estimate_sum(v, samples, rng).estimate - truth);
    }
    return total / kTrials;
  };
  EXPECT_GT(mean_abs_error(4), mean_abs_error(256));
}

}  // namespace
}  // namespace mpcalloc
