// The real-process MPC backend (mpc/process_transport.*): bitwise parity
// with the in-process backend, strict backend selection (env + CLI), crash
// supervision with respawn, deadline classification of stopped workers,
// graceful degradation, and — via the fixture — the no-leak hygiene
// contract: no /dev/shm/mpcalloc-* segment and no child process survives
// any test.
//
// Suite name deliberately avoids the sanitizer-CI name filters: these tests
// fork, and fork + TSan do not mix.
#include "mpc/cluster.hpp"
#include "mpc/process_transport.hpp"
#include "util/syscall.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

namespace mpcalloc {
namespace {

using mpc::Cluster;
using mpc::ClusterCheckpoint;
using mpc::DistVec;
using mpc::FaultEvent;
using mpc::FaultKind;
using mpc::FaultPlan;
using mpc::ProcessKill;
using mpc::ProcessTransport;
using mpc::ProcessTransportOptions;
using mpc::TransportFault;
using mpc::TransportKind;
using mpc::Word;

std::vector<std::string> shm_segments() {
  // Segment names embed the creating pid (util/syscall.cpp), so the scan
  // only sees this process's segments even under a parallel ctest run.
  const std::string mine = "mpcalloc-" + std::to_string(getpid()) + "-";
  std::vector<std::string> out;
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) return out;  // no tmpfs — nothing can leak either
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind(mine, 0) == 0) out.push_back(name);
  }
  closedir(dir);
  return out;
}

/// Every test must leave the machine exactly as it found it: no named shm
/// segment (unlink-on-map means none should exist even *during* a test) and
/// no child process, zombie or alive.
class ProcessBackend : public ::testing::Test {
 protected:
  void TearDown() override {
    EXPECT_EQ(shm_segments(), std::vector<std::string>{})
        << "leaked /dev/shm segment";
    int status = 0;
    errno = 0;
    EXPECT_EQ(retry_waitpid(-1, &status, WNOHANG), -1)
        << "a child process outlived the test";
    EXPECT_EQ(errno, ECHILD);
  }
};

ProcessTransportOptions fast_deadline(std::uint64_t ms = 250) {
  ProcessTransportOptions options;
  options.deadline_ms = ms;
  return options;
}

/// Drive `rounds` deterministic shuffles and return the final stream plus
/// the model counters — the parity probe both backends must agree on.
struct RunTrace {
  std::vector<Word> data;
  std::size_t rounds = 0;
  std::uint64_t words_moved = 0;
  std::uint64_t peak_machine = 0;

  friend bool operator==(const RunTrace&, const RunTrace&) = default;
};

RunTrace drive(Cluster& cluster, std::size_t rounds) {
  std::vector<Word> flat(96);
  std::iota(flat.begin(), flat.end(), 1000);
  DistVec d = cluster.scatter(flat, 2);
  const std::size_t n = cluster.num_machines();
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::uint32_t> dest(48);
    for (std::size_t i = 0; i < dest.size(); ++i) {
      dest[i] = static_cast<std::uint32_t>((i * 7 + r * 13 + 3) % n);
    }
    cluster.shuffle(d, dest);
  }
  return RunTrace{d.gather(), cluster.rounds(), cluster.total_words_moved(),
                  cluster.peak_machine_words()};
}

TEST_F(ProcessBackend, BitwiseParityWithInProcessBackend) {
  // Both kinds pinned explicitly: the parity claim must hold even when the
  // suite itself runs under MPCALLOC_TRANSPORT=process.
  Cluster inproc(6, 256, 3);
  inproc.set_transport_kind(TransportKind::kInProcess);
  Cluster proc(6, 256, 3);
  proc.set_transport_kind(TransportKind::kProcess);
  auto* transport = dynamic_cast<ProcessTransport*>(&proc.transport());
  ASSERT_NE(transport, nullptr);
  ASSERT_FALSE(transport->degraded());
  ASSERT_EQ(transport->live_children(), 3u);

  const RunTrace a = drive(inproc, 6);
  const RunTrace b = drive(proc, 6);
  EXPECT_EQ(a, b) << "records crossed address spaces but the stream and "
                     "every model counter must be bitwise identical";
  EXPECT_FALSE(transport->degraded());
}

TEST_F(ProcessBackend, EvenDuringARunNoShmNameIsVisible) {
  // Unlink-on-map: the segment name is gone the moment the mapping exists,
  // so even a live, mid-run backend leaves /dev/shm empty.
  Cluster cluster(4, 256, 2);
  cluster.set_transport_kind(TransportKind::kProcess);
  (void)drive(cluster, 2);
  EXPECT_EQ(shm_segments(), std::vector<std::string>{});
}

TEST_F(ProcessBackend, DestructorReapsEveryChild) {
  std::vector<pid_t> pids;
  {
    Cluster cluster(4, 256, 2);
    cluster.set_transport_kind(TransportKind::kProcess);
    auto* transport = dynamic_cast<ProcessTransport*>(&cluster.transport());
    ASSERT_NE(transport, nullptr);
    for (std::size_t w = 0; w < 2; ++w) {
      const pid_t pid = transport->child_pid(w);
      ASSERT_GT(pid, 0);
      pids.push_back(pid);
    }
    (void)drive(cluster, 2);
  }
  for (const pid_t pid : pids) {
    errno = 0;
    EXPECT_EQ(kill(pid, 0), -1) << "worker " << pid << " still running";
    EXPECT_EQ(errno, ESRCH);
  }
}

TEST_F(ProcessBackend, SigkilledWorkerIsReapedRespawnedAndClassified) {
  Cluster cluster(6, 256, 3);
  ProcessTransportOptions options = fast_deadline();
  options.kill_script = {ProcessKill{/*exchange_index=*/1, SIGKILL,
                                     /*worker=*/1}};
  cluster.set_transport_kind(TransportKind::kProcess, options);
  auto* transport = dynamic_cast<ProcessTransport*>(&cluster.transport());
  ASSERT_NE(transport, nullptr);
  const pid_t doomed = transport->child_pid(1);

  std::vector<Word> flat(48, 5);
  DistVec d = cluster.scatter(flat, 1);
  std::vector<std::uint32_t> dest(48);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    dest[i] = static_cast<std::uint32_t>(i % 6);
  }
  const ClusterCheckpoint cp = cluster.checkpoint();
  cluster.shuffle(d, dest);  // ordinal 0: clean

  // Ordinal 1: the worker dies for real mid-exchange. The crash must
  // escalate out of shuffle (arena state died with the process), already
  // classified and with a fresh worker in place.
  try {
    cluster.shuffle(d, dest);
    FAIL() << "expected TransportFault{kWorkerCrash}";
  } catch (const TransportFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::kWorkerCrash);
  }
  EXPECT_EQ(cluster.recovery_stats().process_crashes, 1u);
  EXPECT_EQ(cluster.recovery_stats().worker_respawns, 1u);
  EXPECT_EQ(cluster.recovery_stats().backend_degradations, 0u);
  EXPECT_EQ(transport->live_children(), 3u) << "respawn must refill the slot";
  EXPECT_NE(transport->child_pid(1), doomed);

  // Driver-style recovery: restore and replay lands on the clean result.
  Cluster reference(6, 256, 3);
  reference.set_transport_kind(TransportKind::kInProcess);
  DistVec ref = reference.scatter(flat, 1);
  reference.shuffle(ref, dest);
  reference.shuffle(ref, dest);
  cluster.restore(cp);
  cluster.shuffle(d, dest);
  cluster.shuffle(d, dest);
  EXPECT_EQ(d.gather(), ref.gather());
}

TEST_F(ProcessBackend, SigstoppedWorkerIsADeadlineMissAndRecoversInPlace) {
  Cluster cluster(4, 256, 2);
  ProcessTransportOptions options = fast_deadline(150);
  options.kill_script = {ProcessKill{/*exchange_index=*/0, SIGSTOP,
                                     /*worker=*/0}};
  cluster.set_transport_kind(TransportKind::kProcess, options);

  std::vector<Word> flat(32);
  std::iota(flat.begin(), flat.end(), 0);
  DistVec d = cluster.scatter(flat, 1);
  std::vector<std::uint32_t> dest(32);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    dest[i] = static_cast<std::uint32_t>((i + 1) % 4);
  }
  // kDelayedDelivery is non-corrupting: the armed recovery loop absorbs it
  // (SIGCONT + in-place retry) without the caller noticing.
  cluster.shuffle(d, dest);
  EXPECT_GE(cluster.recovery_stats().deadline_misses, 1u);
  EXPECT_GE(cluster.recovery_stats().exchange_retries, 1u);
  EXPECT_GE(cluster.recovery_stats().backoff_rounds, 1u);
  EXPECT_EQ(cluster.recovery_stats().process_crashes, 0u);

  Cluster reference(4, 256, 2);
  reference.set_transport_kind(TransportKind::kInProcess);
  DistVec ref = reference.scatter(flat, 1);
  reference.shuffle(ref, dest);
  EXPECT_EQ(d.gather(), ref.gather());
  EXPECT_EQ(cluster.rounds(), reference.rounds());
  EXPECT_EQ(cluster.total_words_moved(), reference.total_words_moved());
}

TEST_F(ProcessBackend, KillScriptWorkerIndexWrapsModuloWorkerCount) {
  // Worker 7 on a 2-worker cluster targets 7 % 2 = 1, so one kill script
  // stays meaningful across thread-count sweeps.
  Cluster cluster(4, 256, 2);
  ProcessTransportOptions options = fast_deadline();
  options.kill_script = {ProcessKill{/*exchange_index=*/0, SIGKILL,
                                     /*worker=*/7}};
  cluster.set_transport_kind(TransportKind::kProcess, options);
  auto* transport = dynamic_cast<ProcessTransport*>(&cluster.transport());
  const pid_t w1 = transport->child_pid(1);

  std::vector<Word> flat(16, 3);
  DistVec d = cluster.scatter(flat, 1);
  const std::vector<std::uint32_t> dest(16, 2);
  EXPECT_THROW(cluster.shuffle(d, dest), TransportFault);
  EXPECT_EQ(cluster.recovery_stats().process_crashes, 1u);
  EXPECT_NE(transport->child_pid(1), w1);
}

TEST_F(ProcessBackend, SimulatedFaultPlanComposesOverProcessTransport) {
  // FaultInjectingTransport decorates whatever backend is configured, so a
  // simulated transient fault rides on real forked exchanges.
  Cluster cluster(4, 256, 2);
  cluster.set_transport_kind(TransportKind::kProcess);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kExchangeFailure, 1}};
  cluster.set_fault_plan(plan);

  std::vector<Word> flat(32);
  std::iota(flat.begin(), flat.end(), 50);
  DistVec d = cluster.scatter(flat, 1);
  std::vector<std::uint32_t> dest(32);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    dest[i] = static_cast<std::uint32_t>((i * 3) % 4);
  }
  cluster.shuffle(d, dest);
  EXPECT_EQ(cluster.recovery_stats().faults_injected, 1u);
  EXPECT_EQ(cluster.recovery_stats().exchange_retries, 1u);

  Cluster reference(4, 256, 2);
  reference.set_transport_kind(TransportKind::kInProcess);
  DistVec ref = reference.scatter(flat, 1);
  reference.shuffle(ref, dest);
  EXPECT_EQ(d.gather(), ref.gather());
}

TEST_F(ProcessBackend, TransportMustBeConfiguredBeforeTheFaultPlan) {
  Cluster cluster(4, 64, 2);
  FaultPlan plan;
  plan.forced = {FaultEvent{0, FaultKind::kExchangeFailure, 1}};
  cluster.set_fault_plan(plan);
  EXPECT_THROW(cluster.set_transport_kind(TransportKind::kProcess),
               std::logic_error);
}

TEST_F(ProcessBackend, SpawnFailureDegradesGracefullyToInProcess) {
  Cluster cluster(4, 256, 2);
  ProcessTransportOptions options;
  options.force_spawn_failure = true;
  cluster.set_transport_kind(TransportKind::kProcess, options);
  auto* transport = dynamic_cast<ProcessTransport*>(&cluster.transport());
  ASSERT_NE(transport, nullptr);
  EXPECT_TRUE(transport->degraded());
  EXPECT_EQ(transport->live_children(), 0u);
  EXPECT_EQ(cluster.recovery_stats().backend_degradations, 1u);

  // Degraded is not broken: exchanges run in-process, bitwise identical.
  Cluster reference(4, 256, 2);
  reference.set_transport_kind(TransportKind::kInProcess);
  const RunTrace a = drive(reference, 4);
  const RunTrace b = drive(cluster, 4);
  EXPECT_EQ(a, b);
}

TEST_F(ProcessBackend, ExhaustedRespawnBudgetDegradesInsteadOfSpinning) {
  Cluster cluster(4, 256, 2);
  ProcessTransportOptions options = fast_deadline();
  options.max_respawns = 0;
  options.kill_script = {ProcessKill{/*exchange_index=*/0, SIGKILL,
                                     /*worker=*/0}};
  cluster.set_transport_kind(TransportKind::kProcess, options);
  auto* transport = dynamic_cast<ProcessTransport*>(&cluster.transport());

  std::vector<Word> flat(16, 9);
  DistVec d = cluster.scatter(flat, 1);
  const std::vector<std::uint32_t> dest(16, 3);
  // The crash still escalates (this exchange lost data)...
  EXPECT_THROW(cluster.shuffle(d, dest), TransportFault);
  // ...but the backend gave up on processes rather than re-forking forever.
  EXPECT_TRUE(transport->degraded());
  EXPECT_EQ(transport->live_children(), 0u);
  EXPECT_EQ(cluster.recovery_stats().backend_degradations, 1u);
  EXPECT_EQ(cluster.recovery_stats().worker_respawns, 0u);

  // Replay on the degraded backend completes and matches in-process.
  d.shard(0).assign(16, 9);
  for (std::size_t m = 1; m < 4; ++m) d.shard(m).clear();
  cluster.shuffle(d, dest);
  EXPECT_EQ(d.shard(3), (std::vector<Word>(16, 9)));
}

// ---------------------------------------------------------------------------
// Backend selection: environment + CLI, strict everywhere
// ---------------------------------------------------------------------------

TEST_F(ProcessBackend, ParseIsStrictAndNamesItsContext) {
  EXPECT_EQ(mpc::parse_transport_kind("inprocess", "MPCALLOC_TRANSPORT"),
            TransportKind::kInProcess);
  EXPECT_EQ(mpc::parse_transport_kind("process", "MPCALLOC_TRANSPORT"),
            TransportKind::kProcess);
  for (const char* garbage : {"", "Process", "proc", "auto ", "threads"}) {
    try {
      (void)mpc::parse_transport_kind(garbage, "MPCALLOC_TRANSPORT");
      FAIL() << "accepted '" << garbage << "'";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("MPCALLOC_TRANSPORT"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST_F(ProcessBackend, CliValueAutoDefersToEnvironmentOthersAreStrict) {
  EXPECT_EQ(mpc::transport_kind_from_cli("auto"), TransportKind::kAuto);
  EXPECT_EQ(mpc::transport_kind_from_cli("inprocess"),
            TransportKind::kInProcess);
  EXPECT_EQ(mpc::transport_kind_from_cli("process"), TransportKind::kProcess);
  try {
    (void)mpc::transport_kind_from_cli("sockets");
    FAIL() << "accepted 'sockets'";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--transport"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(ProcessBackend, EnvironmentKnobSelectsBackendAndRejectsGarbage) {
  const char* saved = std::getenv("MPCALLOC_TRANSPORT");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("MPCALLOC_TRANSPORT", "process", 1), 0);
  EXPECT_EQ(mpc::resolve_transport_kind(TransportKind::kAuto),
            TransportKind::kProcess);
  // Explicit kinds are never overridden by the environment.
  EXPECT_EQ(mpc::resolve_transport_kind(TransportKind::kInProcess),
            TransportKind::kInProcess);
  {
    // Every cluster honours the knob from birth, no plumbing required.
    Cluster cluster(4, 256, 2);
    EXPECT_EQ(cluster.transport_kind(), TransportKind::kProcess);
    EXPECT_NE(dynamic_cast<ProcessTransport*>(&cluster.transport()), nullptr);
  }

  ASSERT_EQ(setenv("MPCALLOC_TRANSPORT", "forked", 1), 0);
  try {
    (void)mpc::resolve_transport_kind(TransportKind::kAuto);
    FAIL() << "garbage env value accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("MPCALLOC_TRANSPORT"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW(Cluster(4, 256, 2), std::invalid_argument);

  ASSERT_EQ(unsetenv("MPCALLOC_TRANSPORT"), 0);
  EXPECT_EQ(mpc::resolve_transport_kind(TransportKind::kAuto),
            TransportKind::kInProcess);
  if (saved != nullptr) {
    ASSERT_EQ(setenv("MPCALLOC_TRANSPORT", saved_value.c_str(), 1), 0);
  }
}

TEST_F(ProcessBackend, SwitchingKindsRebuildsAndBackIsInProcess) {
  Cluster cluster(4, 256, 2);
  cluster.set_transport_kind(TransportKind::kInProcess);
  EXPECT_EQ(cluster.transport_kind(), TransportKind::kInProcess);
  cluster.set_transport_kind(TransportKind::kProcess);
  EXPECT_EQ(cluster.transport_kind(), TransportKind::kProcess);
  EXPECT_TRUE(cluster.fault_tolerant())
      << "a real backend arms recovery unconditionally";
  cluster.set_transport_kind(TransportKind::kInProcess);
  EXPECT_EQ(cluster.transport_kind(), TransportKind::kInProcess);
  EXPECT_EQ(dynamic_cast<ProcessTransport*>(&cluster.transport()), nullptr);
  (void)drive(cluster, 2);
}

}  // namespace
}  // namespace mpcalloc
