#include "graph/arboricity.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace mpcalloc {
namespace {

TEST(Arboricity, EmptyGraph) {
  BipartiteGraphBuilder b(3, 3);
  const ArboricityEstimate est = estimate_arboricity(b.build());
  EXPECT_EQ(est.degeneracy, 0u);
  EXPECT_EQ(est.peel_order.size(), 6u);
}

TEST(Arboricity, SingleEdge) {
  BipartiteGraphBuilder b(1, 1);
  b.add_edge(0, 0);
  const ArboricityEstimate est = estimate_arboricity(b.build());
  EXPECT_EQ(est.degeneracy, 1u);
  EXPECT_EQ(est.lower_bound, 1u);
  EXPECT_EQ(est.upper_bound, 1u);
}

TEST(Arboricity, StarIsForest) {
  const BipartiteGraph g = star_graph(100);
  const ArboricityEstimate est = estimate_arboricity(g);
  EXPECT_EQ(est.degeneracy, 1u);
  EXPECT_EQ(est.upper_bound, 1u);
  EXPECT_TRUE(is_forest(g));
}

TEST(Arboricity, CompleteBipartiteDegeneracy) {
  // K_{c,c}: degeneracy = c; Nash–Williams λ = ⌈c²/(2c−1)⌉.
  for (const std::uint32_t c : {2u, 4u, 8u, 16u}) {
    BipartiteGraphBuilder b(c, c);
    for (Vertex u = 0; u < c; ++u) {
      for (Vertex v = 0; v < c; ++v) b.add_edge(u, v);
    }
    const ArboricityEstimate est = estimate_arboricity(b.build());
    EXPECT_EQ(est.degeneracy, c);
    const std::uint32_t nash_williams = (c * c + 2 * c - 2) / (2 * c - 1);
    EXPECT_GE(est.lower_bound, nash_williams);
    EXPECT_LE(est.lower_bound, est.upper_bound);
    EXPECT_EQ(est.upper_bound, c);
  }
}

TEST(Arboricity, PathGraph) {
  // Alternating path u0-v0-u1-v1-...: a tree, degeneracy 1.
  BipartiteGraphBuilder b(50, 50);
  for (Vertex i = 0; i < 50; ++i) {
    b.add_edge(i, i);
    if (i + 1 < 50) b.add_edge(i + 1, i);
  }
  const BipartiteGraph g = b.build();
  EXPECT_TRUE(is_forest(g));
  EXPECT_EQ(estimate_arboricity(g).degeneracy, 1u);
}

TEST(Arboricity, EvenCycleHasDegeneracyTwo) {
  // u0-v0-u1-v1-u0: a 4-cycle.
  BipartiteGraphBuilder b(2, 2);
  b.add_edge(0, 0);
  b.add_edge(1, 0);
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  const BipartiteGraph g = b.build();
  EXPECT_FALSE(is_forest(g));
  const ArboricityEstimate est = estimate_arboricity(g);
  EXPECT_EQ(est.degeneracy, 2u);
  // A cycle needs 2 forests: λ = 2... actually a single even cycle has
  // arboricity 2 (it is connected with m = n, exceeding the tree bound).
  EXPECT_GE(est.lower_bound, 1u);
  EXPECT_LE(est.lower_bound, 2u);
}

TEST(Arboricity, PeelOrderIsPermutation) {
  Xoshiro256pp rng(21);
  const BipartiteGraph g = union_of_forests(100, 100, 3, rng);
  const ArboricityEstimate est = estimate_arboricity(g);
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  for (const Vertex v : est.peel_order) {
    ASSERT_LT(v, g.num_vertices());
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
  EXPECT_EQ(est.peel_order.size(), g.num_vertices());
}

TEST(Arboricity, DensityWitnessBelowUpperBound) {
  Xoshiro256pp rng(22);
  const BipartiteGraph g = erdos_renyi_bipartite(200, 200, 3000, rng);
  const ArboricityEstimate est = estimate_arboricity(g);
  EXPECT_GE(est.max_subgraph_density, 3000.0 / 399.0);
  EXPECT_LE(est.lower_bound, est.upper_bound);
  EXPECT_GE(est.degeneracy, est.lower_bound);
}

TEST(Arboricity, SandwichHoldsOnRandomInstances) {
  Xoshiro256pp rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const auto lambda = static_cast<std::uint32_t>(1 + rng.uniform(10));
    const BipartiteGraph g = union_of_forests(150, 150, lambda, rng);
    const ArboricityEstimate est = estimate_arboricity(g);
    EXPECT_LE(est.lower_bound, lambda) << "trial " << trial;
    EXPECT_GE(2 * est.upper_bound, est.degeneracy);
  }
}

}  // namespace
}  // namespace mpcalloc
