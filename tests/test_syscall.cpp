// util/syscall: the EINTR-retry contract, exercised both against interposed
// failing callables (deterministic, no real signal timing needed) and
// against real fds, processes, and shm objects.
//
// Suite name deliberately avoids the sanitizer-CI name filters: these tests
// fork, and fork + TSan do not mix.
#include "util/syscall.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mpcalloc {
namespace {

TEST(SyscallRetry, RetriesExactlyWhileEintrThenReturnsSuccess) {
  // An interposed "fd" scripted to fail with EINTR three times: the wrapper
  // must call it exactly four times and hand back the eventual result.
  int calls = 0;
  const auto flaky = [&]() -> ssize_t {
    if (++calls <= 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  };
  EXPECT_EQ(retry_eintr(flaky), 42);
  EXPECT_EQ(calls, 4);
}

TEST(SyscallRetry, NonEintrErrorsPropagateImmediately) {
  int calls = 0;
  const auto broken = [&]() -> ssize_t {
    ++calls;
    errno = EBADF;
    return -1;
  };
  EXPECT_EQ(retry_eintr(broken), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(calls, 1) << "a real error must not be retried";
}

TEST(SyscallRetry, ZeroIsSuccessNotARetry) {
  // EOF (read returning 0) is a valid outcome, not a retryable failure.
  int calls = 0;
  const auto eof = [&]() -> ssize_t {
    ++calls;
    return 0;
  };
  EXPECT_EQ(retry_eintr(eof), 0);
  EXPECT_EQ(calls, 1);
}

TEST(SyscallRetry, ReadExactAssemblesShortReadsAndStopsAtEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Writer dribbles the payload in small chunks, then closes: read_exact
  // must assemble the full message across short reads, and a second call
  // must report the early EOF honestly.
  const std::string payload(1000, 'x');
  std::thread writer([&] {
    for (std::size_t i = 0; i < payload.size(); i += 100) {
      ASSERT_EQ(write_all(fds[1], payload.data() + i, 100), 100);
    }
    close_quiet(fds[1]);
  });
  std::vector<char> buf(payload.size());
  EXPECT_EQ(read_exact(fds[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(read_exact(fds[0], buf.data(), buf.size()), 0) << "EOF expected";
  writer.join();
  close_quiet(fds[0]);
}

TEST(SyscallRetry, WriteAllPushesMoreThanOnePipeBufferThrough) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // 1 MiB is comfortably past the default 64 KiB pipe buffer, so write_all
  // must block and resume mid-payload while the reader drains.
  const std::size_t total = 1 << 20;
  std::thread reader([&] {
    std::vector<char> sink(1 << 16);
    std::size_t got = 0;
    while (got < total) {
      const ssize_t n = retry_read(fds[0], sink.data(), sink.size());
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(got, total);
  });
  const std::vector<char> payload(total, 'y');
  EXPECT_EQ(write_all(fds[1], payload.data(), total),
            static_cast<ssize_t>(total));
  reader.join();
  close_quiet(fds[0]);
  close_quiet(fds[1]);
}

TEST(SyscallRetry, ReadAndWriteReportRealErrors) {
  char c = 0;
  EXPECT_EQ(retry_read(-1, &c, 1), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(retry_write(-1, &c, 1), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(read_exact(-1, &c, 1), -1);
  EXPECT_EQ(write_all(-1, &c, 1), -1);
}

TEST(SyscallRetry, WaitpidReapsAForkedChild) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) _exit(7);
  int status = 0;
  EXPECT_EQ(retry_waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7);
  // Already reaped: the wrapper passes the -1/ECHILD verdict through.
  EXPECT_EQ(retry_waitpid(pid, &status, 0), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(SyscallRetry, ShmOpenExclusiveDrawsDistinctUsableNames) {
  std::set<std::string> names;
  std::vector<ShmHandle> handles;
  for (int i = 0; i < 8; ++i) {
    ShmHandle handle = shm_open_exclusive("mpcalloc-test");
    ASSERT_GE(handle.fd, 0);
    EXPECT_TRUE(handle.name.rfind("/mpcalloc-test-", 0) == 0) << handle.name;
    names.insert(handle.name);
    handles.push_back(std::move(handle));
  }
  EXPECT_EQ(names.size(), 8u) << "names must be collision-free while open";
  for (const ShmHandle& handle : handles) {
    // The object is real and mappable until unlinked.
    ASSERT_EQ(ftruncate(handle.fd, 4096), 0);
    void* map = mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED,
                     handle.fd, 0);
    ASSERT_NE(map, MAP_FAILED);
    static_cast<char*>(map)[0] = 1;
    EXPECT_EQ(munmap(map, 4096), 0);
    EXPECT_EQ(shm_unlink(handle.name.c_str()), 0);
    close_quiet(handle.fd);
  }
}

TEST(SyscallRetry, MonotonicClockAdvancesAndSleepElapsesInFull) {
  const std::uint64_t t0 = monotonic_now_ns();
  sleep_ns(2'000'000);  // 2 ms
  const std::uint64_t t1 = monotonic_now_ns();
  EXPECT_GE(t1 - t0, 2'000'000u)
      << "sleep_ns must not return early (EINTR remainder handling)";
}

}  // namespace
}  // namespace mpcalloc
