// Shared fixtures/factories for the mpc-alloc test suite.
#pragma once

#include "alloc/api.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcalloc::testing {

/// A small matrix of instance shapes used by parameterized suites.
struct InstanceSpec {
  std::string name;
  std::size_t num_left;
  std::size_t num_right;
  std::uint32_t lambda;      ///< arboricity knob for union_of_forests
  std::uint32_t cap_lo;      ///< uniform capacity range
  std::uint32_t cap_hi;
  std::uint64_t seed;
};

inline AllocationInstance make_instance(const InstanceSpec& spec) {
  Xoshiro256pp rng(spec.seed);
  AllocationInstance instance;
  instance.graph =
      union_of_forests(spec.num_left, spec.num_right, spec.lambda, rng);
  instance.capacities =
      spec.cap_lo == spec.cap_hi
          ? Capacities(spec.num_right, spec.cap_lo)
          : uniform_capacities(spec.num_right, spec.cap_lo, spec.cap_hi, rng);
  return instance;
}

inline std::vector<InstanceSpec> default_specs() {
  return {
      {"tiny_unit", 40, 20, 1, 1, 1, 11},
      {"small_forest", 200, 80, 1, 1, 3, 12},
      {"small_lam4", 300, 120, 4, 1, 4, 13},
      {"medium_lam8", 800, 300, 8, 1, 6, 14},
      {"wide_caps", 500, 50, 4, 2, 20, 15},
      {"skewed", 600, 200, 2, 1, 2, 16},
  };
}

/// Look up a default spec by name; throws if absent so that renaming or
/// reordering the matrix fails loudly instead of silently retargeting tests.
inline InstanceSpec spec_by_name(const std::string& name) {
  for (const auto& spec : default_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("no default spec named " + name);
}

/// An instance with OPT == num_left by construction.
inline PlantedInstance make_planted(std::size_t num_left = 500,
                                    std::size_t num_right = 120,
                                    std::uint32_t capacity = 5,
                                    std::uint32_t noise = 3,
                                    std::uint64_t seed = 7) {
  Xoshiro256pp rng(seed);
  return planted_instance(num_left, num_right, capacity, noise, rng);
}

}  // namespace mpcalloc::testing
