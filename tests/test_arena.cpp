// Arena image + `.mpcb` format tests: round-trips through heap/mmap/copy
// loads, corruption rejection naming the offending field, edge-id
// permutations, and the heap-vs-mmap solver identity matrix.
#include "alloc/api.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace mpcalloc {
namespace {

AllocationInstance make_instance(std::size_t num_left, std::size_t num_right,
                                 std::uint32_t lambda, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  AllocationInstance instance;
  instance.graph = union_of_forests(num_left, num_right, lambda, rng);
  instance.capacities = uniform_capacities(num_right, 1, 5, rng);
  return instance;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mpcalloc_arena_" + std::to_string(::getpid()) +
         "_" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

/// Removes the file on scope exit so failing tests do not litter TempDir.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

void expect_same_instance(const AllocationInstance& a,
                          const AllocationInstance& b) {
  ASSERT_EQ(a.graph.num_left(), b.graph.num_left());
  ASSERT_EQ(a.graph.num_right(), b.graph.num_right());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.capacities, b.capacities);
  EXPECT_EQ(a.graph.max_left_degree(), b.graph.max_left_degree());
  EXPECT_EQ(a.graph.max_right_degree(), b.graph.max_right_degree());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    ASSERT_EQ(a.graph.edge(e), b.graph.edge(e));
  }
  for (Vertex u = 0; u < a.graph.num_left(); ++u) {
    const auto an = a.graph.left_neighbors(u);
    const auto bn = b.graph.left_neighbors(u);
    ASSERT_EQ(an.size(), bn.size());
    for (std::size_t i = 0; i < an.size(); ++i) {
      ASSERT_EQ(an[i].to, bn[i].to);
      ASSERT_EQ(an[i].edge, bn[i].edge);
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(ArenaRoundTrip, MmapAndCopyLoadsReproduceGeneratorInstances) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const AllocationInstance original = make_instance(300, 120, 3, seed);
    const FileGuard file{temp_path("rt_" + std::to_string(seed) + ".mpcb")};
    save_instance_mpcb(file.path, original);

    const AllocationInstance mapped = load_instance_mmap(file.path);
    EXPECT_EQ(mapped.graph.arena()->backing(), InstanceArena::Backing::kMmap);
    expect_same_instance(original, mapped);
    mapped.validate();
    mapped.graph.arena()->verify_checksums();

    const AllocationInstance copied = load_instance_mpcb_copy(file.path);
    EXPECT_EQ(copied.graph.arena()->backing(), InstanceArena::Backing::kHeap);
    expect_same_instance(original, copied);
  }
}

TEST(ArenaRoundTrip, EmptyAndIsolatedVertexInstances) {
  for (const auto& [nl, nr] : {std::pair<std::size_t, std::size_t>{0, 1},
                               {5, 3}}) {
    AllocationInstance original;
    original.graph = BipartiteGraphBuilder(nl, nr).build();
    original.capacities.assign(nr, 2);
    const FileGuard file{temp_path("empty.mpcb")};
    save_instance_mpcb(file.path, original);
    const AllocationInstance mapped = load_instance_mmap(file.path);
    expect_same_instance(original, mapped);
    mapped.validate();
  }
}

TEST(ArenaRoundTrip, LoadInstanceSniffsBinaryImages) {
  const AllocationInstance original = make_instance(100, 40, 2, 3);
  const FileGuard binary{temp_path("sniff.mpcb")};
  const FileGuard text{temp_path("sniff.alloc")};
  save_instance_mpcb(binary.path, original);
  save_instance(text.path, original);
  EXPECT_TRUE(is_mpcb_file(binary.path));
  EXPECT_FALSE(is_mpcb_file(text.path));
  // Same entry point, either format.
  expect_same_instance(original, load_instance(binary.path));
  expect_same_instance(original, load_instance(text.path));
}

TEST(ArenaRoundTrip, WideOffsetsPackAndLoad) {
  const AllocationInstance original = make_instance(200, 80, 3, 5);
  PackOptions options;
  options.force_wide_offsets = true;
  const FileGuard file{temp_path("wide.mpcb")};
  save_instance_mpcb(file.path, original, options);
  const AllocationInstance mapped = load_instance_mmap(file.path);
  EXPECT_EQ(mapped.graph.arena()->header().offset_width, 8);
  expect_same_instance(original, mapped);
  mapped.validate();
}

TEST(ArenaRoundTrip, CachedDegreesSurviveTheImage) {
  const AllocationInstance original = make_instance(400, 150, 4, 11);
  std::size_t want_left = 0, want_right = 0;
  for (Vertex u = 0; u < original.graph.num_left(); ++u) {
    want_left = std::max(want_left, original.graph.left_degree(u));
  }
  for (Vertex v = 0; v < original.graph.num_right(); ++v) {
    want_right = std::max(want_right, original.graph.right_degree(v));
  }
  EXPECT_EQ(original.graph.max_left_degree(), want_left);
  EXPECT_EQ(original.graph.max_right_degree(), want_right);

  const FileGuard file{temp_path("degrees.mpcb")};
  save_instance_mpcb(file.path, original);
  const AllocationInstance mapped = load_instance_mmap(file.path);
  EXPECT_EQ(mapped.graph.max_left_degree(), want_left);
  EXPECT_EQ(mapped.graph.max_right_degree(), want_right);
}

TEST(ArenaRoundTrip, GraphOnlyArenaHasNoCapacities) {
  const BipartiteGraph g = make_instance(50, 20, 2, 1).graph;
  ASSERT_NE(g.arena(), nullptr);
  try {
    (void)instance_from_arena(g.arena());
    FAIL() << "expected ArenaFormatError";
  } catch (const ArenaFormatError& error) {
    EXPECT_EQ(error.field(), "capacities");
  }
}

// ---------------------------------------------------------------------------
// Corruption / rejection — every rejection must name the offending field
// ---------------------------------------------------------------------------

class MpcbCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = make_instance(120, 50, 2, 9);
    path_ = temp_path("corrupt.mpcb");
    save_instance_mpcb(path_, instance_);
    bytes_ = slurp(path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Rewrites the image with `bytes_` and expects the mmap load to throw an
  /// ArenaFormatError naming `field`.
  void expect_rejected(const std::string& field) {
    dump(path_, bytes_);
    try {
      (void)load_instance_mmap(path_);
      FAIL() << "expected ArenaFormatError for field '" << field << "'";
    } catch (const ArenaFormatError& error) {
      EXPECT_EQ(error.field(), field);
      EXPECT_NE(std::string(error.what()).find(field), std::string::npos);
    }
  }

  AllocationInstance instance_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(MpcbCorruption, BadMagic) {
  bytes_[0] ^= 0x5A;
  expect_rejected("magic");
}

TEST_F(MpcbCorruption, UnsupportedVersion) {
  bytes_[offsetof(ArenaHeader, version)] = 99;
  expect_rejected("version");
}

TEST_F(MpcbCorruption, BadOffsetWidth) {
  bytes_[offsetof(ArenaHeader, offset_width)] = 3;
  expect_rejected("offset_width");
}

TEST_F(MpcbCorruption, WrongIdWidth) {
  bytes_[offsetof(ArenaHeader, id_width)] = 8;
  expect_rejected("id_width");
}

TEST_F(MpcbCorruption, TruncatedFile) {
  bytes_.resize(bytes_.size() - 7);
  expect_rejected("total_bytes");
}

TEST_F(MpcbCorruption, FileShorterThanHeader) {
  bytes_.resize(sizeof(ArenaHeader) / 2);
  expect_rejected("total_bytes");
}

TEST_F(MpcbCorruption, TamperedHeaderFailsChecksum) {
  bytes_[offsetof(ArenaHeader, max_left_degree)] ^= 0x01;
  expect_rejected("header_checksum");
}

TEST_F(MpcbCorruption, ImplausibleSectionCount) {
  bytes_[offsetof(ArenaHeader, section_count)] = 0;
  expect_rejected("section_count");
}

TEST_F(MpcbCorruption, FlippedPayloadByteFailsChecksumVerify) {
  // Header validation cannot see payload damage (it is O(header) by
  // design); verify_checksums must catch it and name the section.
  const auto arena = InstanceArena::map_file(path_);
  const ArenaSectionEntry* edges =
      arena->find_section(ArenaSectionKind::kEdges);
  ASSERT_NE(edges, nullptr);
  bytes_[edges->offset] ^= 0x01;
  dump(path_, bytes_);

  const auto corrupted = InstanceArena::map_file(path_);  // header still ok
  try {
    corrupted->verify_checksums();
    FAIL() << "expected ArenaFormatError";
  } catch (const ArenaFormatError& error) {
    EXPECT_EQ(error.field(), "edges checksum");
  }
}

// ---------------------------------------------------------------------------
// Edge-id permutations
// ---------------------------------------------------------------------------

TEST(MpcbPermutation, LeftCsrNumbersEdgesInScanOrder) {
  const AllocationInstance original = make_instance(150, 60, 3, 13);
  PackOptions options;
  options.order = EdgeOrder::kLeftCsr;
  const AllocationInstance packed =
      instance_from_arena(pack_instance(original, options));
  packed.validate();
  EdgeId expected = 0;
  for (Vertex u = 0; u < packed.graph.num_left(); ++u) {
    for (const Incidence& inc : packed.graph.left_neighbors(u)) {
      EXPECT_EQ(inc.edge, expected++);
    }
  }
  // The remap translates back to the original numbering.
  const auto remap = packed.graph.edge_remap();
  ASSERT_EQ(remap.size(), packed.graph.num_edges());
  for (EdgeId e = 0; e < packed.graph.num_edges(); ++e) {
    EXPECT_EQ(packed.graph.edge(e), original.graph.edge(remap[e]));
  }
}

TEST(MpcbPermutation, DegreeSortedGroupsHighDegreeVerticesFirst) {
  const AllocationInstance original = make_instance(150, 60, 3, 17);
  PackOptions options;
  options.order = EdgeOrder::kDegreeSorted;
  const AllocationInstance packed =
      instance_from_arena(pack_instance(original, options));
  packed.validate();  // validates the remap is a permutation
  // The left vertex owning edge id 0 must have maximum degree.
  const Edge first = packed.graph.edge(0);
  EXPECT_EQ(packed.graph.left_degree(first.u),
            packed.graph.max_left_degree());
}

TEST(MpcbPermutation, SolverResultsAreIdenticalUpToRemap) {
  const AllocationInstance original = make_instance(800, 300, 3, 19);
  PackOptions options;
  options.order = EdgeOrder::kDegreeSorted;
  const FileGuard file{temp_path("perm.mpcb")};
  save_instance_mpcb(file.path, original, options);
  const AllocationInstance permuted = load_instance_mmap(file.path);

  SolveOptions solve_options;
  solve_options.method = SolveMethod::kAdaptive;
  solve_options.epsilon = 0.25;
  const SolveResult a = Solver(solve_options).solve(original);
  const SolveResult b = Solver(solve_options).solve(permuted);

  // Vertex-indexed outputs are bitwise identical: adjacency order never
  // changes, so every incidence-order reduction sums in the same order.
  EXPECT_EQ(a.match_weight, b.match_weight);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.final_levels, b.final_levels);
  EXPECT_EQ(a.final_alloc, b.final_alloc);
  // Edge-indexed outputs translate through the remap.
  const auto remap = permuted.graph.edge_remap();
  ASSERT_EQ(a.allocation.x.size(), b.allocation.x.size());
  for (EdgeId e = 0; e < b.allocation.x.size(); ++e) {
    EXPECT_EQ(a.allocation.x[remap[e]], b.allocation.x[e]);
  }
}

// ---------------------------------------------------------------------------
// Solver identity matrix: heap vs mmap must be bitwise indistinguishable
// ---------------------------------------------------------------------------

TEST(MpcbSolverIdentity, HeapAndMmapMatchAcrossMethodsAndThreads) {
  const AllocationInstance heap = make_instance(1200, 400, 3, 23);
  const FileGuard file{temp_path("identity.mpcb")};
  save_instance_mpcb(file.path, heap);
  const AllocationInstance mapped = load_instance_mmap(file.path);

  for (const SolveMethod method :
       {SolveMethod::kProportional, SolveMethod::kAdaptive,
        SolveMethod::kMpcNaive}) {
    for (const std::size_t threads : {1, 2, 4}) {
      SolveOptions options;
      options.method = method;
      options.num_threads = threads;
      options.epsilon = 0.25;
      options.lambda = 3.0;
      options.max_rounds = method == SolveMethod::kProportional ? 12 : 0;
      options.seed = 5;
      const SolveResult a = Solver(options).solve(heap);
      const SolveResult b = Solver(options).solve(mapped);
      EXPECT_EQ(a.match_weight, b.match_weight)
          << "method=" << static_cast<int>(method) << " threads=" << threads;
      EXPECT_EQ(a.rounds_executed, b.rounds_executed);
      EXPECT_EQ(a.final_levels, b.final_levels);
      EXPECT_EQ(a.final_alloc, b.final_alloc);
      EXPECT_EQ(a.allocation.x, b.allocation.x);
    }
  }
}

// ---------------------------------------------------------------------------
// mmap sharing across fork (the process-backend startup story)
// ---------------------------------------------------------------------------

TEST(MpcbSharing, ForkedChildReadsTheSameMapping) {
  const AllocationInstance original = make_instance(500, 200, 3, 29);
  const FileGuard file{temp_path("fork.mpcb")};
  save_instance_mpcb(file.path, original);
  const AllocationInstance mapped = load_instance_mmap(file.path);

  std::uint64_t parent_sum = 0;
  for (const Edge& e : mapped.graph.edges()) parent_sum += e.u + e.v;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the MAP_SHARED pages arrive with the address space — no load,
    // no copy. Exit 0 iff the image reads back identically.
    std::uint64_t child_sum = 0;
    for (const Edge& e : mapped.graph.edges()) child_sum += e.u + e.v;
    _exit(child_sum == parent_sum && mapped.graph.num_edges() ==
                                         original.graph.num_edges()
              ? 0
              : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace mpcalloc
