#include "graph/generators.hpp"
#include "local/network.hpp"

#include <gtest/gtest.h>

namespace mpcalloc {
namespace {

using local::LocalNetwork;
using local::Message;
using local::ProcessorContext;
using local::Side;

BipartiteGraph path_graph() {
  // u0 - v0 - u1 (bipartite path of 3 vertices)
  BipartiteGraphBuilder b(2, 1);
  b.add_edge(0, 0);
  b.add_edge(1, 0);
  return b.build();
}

TEST(LocalNetwork, MessagesArriveNextRound) {
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  std::vector<double> received;

  // Round 1: u0 sends 42 to v0. v0 must see nothing yet.
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kLeft && ctx.vertex() == 0) {
      ctx.send(0, Message{42.0});
    }
    if (ctx.side() == Side::kRight) {
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        EXPECT_TRUE(ctx.incoming(i).empty());
      }
    }
  });

  // Round 2: v0 sees the message.
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kRight) {
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        if (!ctx.incoming(i).empty()) received.push_back(ctx.incoming(i)[0]);
      }
    }
  });
  ASSERT_EQ(received.size(), 1u);
  EXPECT_DOUBLE_EQ(received[0], 42.0);
  EXPECT_EQ(net.rounds(), 2u);
}

TEST(LocalNetwork, DoubleBufferingPreventsSameRoundDelivery) {
  // Both endpoints of an edge send in the same round; each must see only
  // the *previous* round's (empty) inbox, then both receive next round.
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  int seen_in_round1 = 0;
  net.step([&](ProcessorContext& ctx) {
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      if (!ctx.incoming(i).empty()) ++seen_in_round1;
      ctx.send(i, Message{1.0});
    }
  });
  EXPECT_EQ(seen_in_round1, 0);
  int seen_in_round2 = 0;
  net.step([&](ProcessorContext& ctx) {
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      if (!ctx.incoming(i).empty()) ++seen_in_round2;
    }
  });
  // 2 edges × 2 directions = 4 deliveries.
  EXPECT_EQ(seen_in_round2, 4);
}

TEST(LocalNetwork, MessagesClearAfterOneRound) {
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kLeft) ctx.send(0, Message{7.0});
  });
  net.step([](ProcessorContext&) {});  // consume round: nobody resends
  int seen = 0;
  net.step([&](ProcessorContext& ctx) {
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      if (!ctx.incoming(i).empty()) ++seen;
    }
  });
  EXPECT_EQ(seen, 0);
}

TEST(LocalNetwork, AccountingCountsWordsAndMessages) {
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kLeft) {
      ctx.send(0, Message{1.0, 2.0, 3.0});  // 3 words
    }
  });
  EXPECT_EQ(net.messages_sent(), 2u);  // two L vertices
  EXPECT_EQ(net.words_sent(), 6u);
  EXPECT_EQ(net.max_message_words(), 3u);
}

TEST(LocalNetwork, ContextExposesTopology) {
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kRight) {
      EXPECT_EQ(ctx.degree(), 2u);
      EXPECT_EQ(ctx.neighbor(0), 0u);
      EXPECT_EQ(ctx.neighbor(1), 1u);
    } else {
      EXPECT_EQ(ctx.degree(), 1u);
      EXPECT_EQ(ctx.neighbor(0), 0u);
    }
  });
}

TEST(LocalNetwork, RunExecutesRequestedRounds) {
  const BipartiteGraph g = path_graph();
  LocalNetwork net(g);
  int calls = 0;
  net.run(5, [&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kLeft && ctx.vertex() == 0) ++calls;
  });
  EXPECT_EQ(net.rounds(), 5u);
  EXPECT_EQ(calls, 5);
}

TEST(LocalNetwork, FloodingReachesDiameterHops) {
  // A longer path: u0-v0-u1-v1-u2; flood a token from u0 and count rounds
  // until u2 hears it — must equal the graph distance (4 hops).
  BipartiteGraphBuilder b(3, 2);
  b.add_edge(0, 0);
  b.add_edge(1, 0);
  b.add_edge(1, 1);
  b.add_edge(2, 1);
  const BipartiteGraph g = b.build();
  LocalNetwork net(g);

  std::vector<std::uint8_t> left_has(3, 0), right_has(2, 0);
  left_has[0] = 1;
  int rounds_until_reached = -1;
  for (int round = 1; round <= 10 && rounds_until_reached < 0; ++round) {
    net.step([&](ProcessorContext& ctx) {
      auto& has = (ctx.side() == Side::kLeft ? left_has : right_has)[ctx.vertex()];
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        if (!ctx.incoming(i).empty()) has = 1;
      }
      if (has) {
        for (std::size_t i = 0; i < ctx.degree(); ++i) ctx.send(i, Message{1.0});
      }
    });
    if (left_has[2]) rounds_until_reached = round;
  }
  EXPECT_EQ(rounds_until_reached, 5);  // 4 hops + 1 delivery round
}

}  // namespace
}  // namespace mpcalloc
