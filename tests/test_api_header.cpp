// Umbrella-header completeness test: this TU includes ONLY alloc/api.hpp
// (plus gtest and the standard library) and exercises every public entry
// point of the library, so any header the umbrella forgets to pull in — or
// any entry point that stops compiling through it — fails this test at
// build time. Runtime assertions are deliberately light; the point is the
// compile against the full public surface.
#include "alloc/api.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

namespace mpcalloc {
namespace {

AllocationInstance tiny_instance(std::uint64_t seed = 5) {
  Xoshiro256pp rng(seed);
  AllocationInstance instance;
  instance.graph = union_of_forests(60, 24, /*lambda=*/2, rng);
  instance.capacities = uniform_capacities(24, 1, 3, rng);
  return instance;
}

TEST(ApiHeader, GraphModule) {
  Xoshiro256pp rng(1);
  (void)union_of_forests(20, 8, 1, rng);
  (void)dense_core_sparse_fringe(20, 8, 4, rng);
  (void)star_graph(5);
  (void)left_regular(20, 8, 2, rng);
  (void)erdos_renyi_bipartite(20, 8, 16, rng);
  (void)power_law_bipartite(20, 8, 30, 2.0, rng);
  (void)oversubscribed_core_instance(4, 2);
  (void)planted_instance(20, 8, 4, 1, rng);
  (void)unit_capacities(8);
  (void)uniform_capacities(8, 1, 4, rng);
  (void)degree_proportional_capacities(star_graph(5), 1.0);
  (void)zipf_capacities(8, 6, 1.1, rng);

  const AllocationInstance instance = tiny_instance();
  instance.validate();
  const ArboricityEstimate arb = estimate_arboricity(instance.graph);
  EXPECT_GE(arb.upper_bound, arb.lower_bound);
  (void)is_forest(instance.graph);

  std::stringstream ss;
  write_instance(ss, instance);
  const AllocationInstance round_trip = read_instance(ss);
  EXPECT_EQ(round_trip.graph.num_edges(), instance.graph.num_edges());
}

TEST(ApiHeader, FlowModule) {
  const AllocationInstance instance = tiny_instance();
  Xoshiro256pp rng(2);
  const IntegralAllocation greedy = greedy_allocation(instance);
  (void)randomized_greedy_allocation(instance, rng);
  (void)degree_aware_greedy_allocation(instance);

  const OptimalAllocationResult opt = solve_optimal_allocation(instance);
  EXPECT_EQ(opt.value, optimal_allocation_value(instance));
  EXPECT_EQ(opt.value, certified_optimal_value(instance).value);
  EXPECT_GE(opt.value, greedy.size());

  std::stringstream ss;
  write_solution(ss, instance, greedy);
  const IntegralAllocation parsed = read_solution(ss, instance);
  EXPECT_EQ(parsed.size(), greedy.size());
}

TEST(ApiHeader, SolverFacadeAndLegacyShims) {
  const AllocationInstance instance = tiny_instance();
  SolveOptions adaptive;
  adaptive.method = SolveMethod::kAdaptive;
  adaptive.epsilon = 0.25;
  const SolveResult frac = Solver(adaptive).solve(instance);
  EXPECT_GT(frac.match_weight, 0.0);

  ProportionalConfig config;
  config.max_rounds = 6;
  (void)run_proportional(instance, config);
  (void)solve_two_plus_eps(instance, 2.0, 0.25);
  (void)solve_adaptive(instance, 0.25);
  (void)tau_for_arboricity(2.0, 0.25);
  (void)tau_for_one_plus_eps(2.0, 0.25);

  SampledConfig sampled;
  sampled.max_rounds = 6;
  Xoshiro256pp rng(3);
  (void)run_sampled(instance, sampled, rng);

  MpcDriverConfig mpc;
  mpc.lambda = 2.0;
  (void)run_mpc_naive(instance, mpc);
  (void)run_mpc_phased(instance, mpc);
  mpc.lambda = 0.0;
  (void)run_mpc_unknown_lambda(instance, mpc);

  config.stop_rule = StopRule::kFixedRounds;
  const LocalHostResult local = run_proportional_local(instance, config);
  EXPECT_EQ(local.result.rounds_executed, config.max_rounds);
}

TEST(ApiHeader, RoundingBoostingVerifySampling) {
  const AllocationInstance instance = tiny_instance();
  Xoshiro256pp rng(4);
  SolveOptions adaptive;
  adaptive.method = SolveMethod::kAdaptive;
  adaptive.epsilon = 0.25;
  const SolveResult frac = Solver(adaptive).solve(instance);

  const IntegralAllocation rounded =
      round_fractional(instance, frac.allocation, rng);
  BestOfRoundingResult best = round_best_of(instance, frac.allocation, rng);
  make_maximal(instance, best.best);
  (void)boost_path_limited(instance, best.best, 3);
  (void)boost_to_one_plus_eps(instance, best.best, 0.5);
  (void)boost_ggm22(instance, best.best, 0.5, 2, rng);

  (void)approximation_ratio(10, 9.0);
  (void)certified_fractional_ratio(instance, frac.allocation);
  (void)certified_integral_ratio(instance, rounded);
  EXPECT_GT(fractional_ratio(instance, frac.allocation), 0.0);
  (void)integral_ratio(instance, rounded);

  const std::vector<double> values(32, 1.0);
  const SumEstimate est = estimate_sum(values, 8, rng);
  EXPECT_EQ(est.samples_used, 8u);
  (void)lemma11_sample_count(2.0, 0.5, 100);

  const SplitGraph split = split_capacities(instance);
  (void)lift_matching(instance, split, IntegralAllocation{});

  (void)PowTable(0.25);  // levels.hpp
}

TEST(ApiHeader, BMatchingModule) {
  Xoshiro256pp rng(6);
  BMatchingInstance instance;
  instance.graph = union_of_forests(30, 12, 2, rng);
  instance.left_capacities = uniform_capacities(30, 1, 2, rng);
  instance.right_capacities = uniform_capacities(12, 1, 3, rng);

  const BMatching greedy = greedy_bmatching(instance);
  greedy.check_valid(instance);
  const OptimalBMatchingResult opt = solve_optimal_bmatching(instance);
  EXPECT_EQ(opt.value, optimal_bmatching_value(instance));
  (void)boost_bmatching(instance, greedy, 3);

  ProportionalBMatchingConfig config;
  config.rounds = 6;
  const ProportionalBMatchingResult prop =
      run_proportional_bmatching(instance, config);
  EXPECT_EQ(prop.rounds_executed, 6u);
}

TEST(ApiHeader, ServeModule) {
  serve::ServiceOptions options;
  options.solve.method = SolveMethod::kProportional;
  options.solve.max_rounds = 8;
  serve::AllocationService service(tiny_instance(), options);

  serve::MutationSet batch;
  batch.set_capacities.push_back({0, 2});
  const auto snap = service.apply(batch);
  EXPECT_EQ(snap->generation(), 1u);
  EXPECT_EQ(service.counters().generations_published, 2u);

  const std::vector<Vertex> vertices{0, 1};
  (void)snap->query_allocations(vertices);
  (void)snap->marginal_value(0);
  const serve::SnapshotStats stats = snap->stats();
  EXPECT_EQ(stats.generation, 1u);

  // warm_restart.hpp's surface is reachable too (the service exercises it
  // internally; here we only need the names to resolve through api.hpp).
  const serve::WarmRestartStats& warm = snap->warm();
  EXPECT_TRUE(warm.used);
  EXPECT_EQ(serve::kNoPriorEdge,
            std::numeric_limits<EdgeId>::max());
}

TEST(ApiHeader, UtilAndParallel) {
  const std::size_t threads = resolve_num_threads(0);
  EXPECT_GE(threads, 1u);
  std::vector<double> data(100, 1.0);
  const double sum = parallel_reduce(
      std::size_t{0}, data.size(), /*tile_size=*/16, threads, 0.0,
      [&data](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += data[i];
        return acc;
      },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(sum, 100.0);
}

}  // namespace
}  // namespace mpcalloc
