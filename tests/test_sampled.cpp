#include "alloc/proportional.hpp"
#include "alloc/sampled.hpp"
#include "alloc/verify.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mpcalloc {
namespace {

using mpcalloc::testing::InstanceSpec;
using mpcalloc::testing::default_specs;
using mpcalloc::testing::make_instance;

SampledConfig base_config(std::size_t rounds) {
  SampledConfig config;
  config.epsilon = 0.25;
  config.phase_length = 3;
  config.samples_per_group = 1u << 20;  // larger than any degree ⇒ exact
  config.max_rounds = rounds;
  return config;
}

TEST(Sampled, RejectsBadConfig) {
  AllocationInstance instance{star_graph(3), {1}};
  Xoshiro256pp rng(1);
  SampledConfig config = base_config(5);
  config.max_rounds = 0;
  EXPECT_THROW((void)run_sampled(instance, config, rng), std::invalid_argument);
  config = base_config(5);
  config.phase_length = 0;
  EXPECT_THROW((void)run_sampled(instance, config, rng), std::invalid_argument);
  config = base_config(5);
  config.samples_per_group = 0;
  EXPECT_THROW((void)run_sampled(instance, config, rng), std::invalid_argument);
}

class SampledSuite : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(SampledSuite, ExactSamplingReproducesEngineTrajectory) {
  // With samples_per_group larger than every group, each "sample" is the
  // whole group with weight 1, so the executor must follow Algorithm 1's
  // trajectory level-for-level.
  const AllocationInstance instance = make_instance(GetParam());
  Xoshiro256pp rng(GetParam().seed);

  const std::size_t rounds = 15;
  const SampledResult sampled =
      run_sampled(instance, base_config(rounds), rng);

  ProportionalConfig engine_config;
  engine_config.epsilon = 0.25;
  engine_config.max_rounds = rounds;
  const ProportionalResult engine = run_proportional(instance, engine_config);

  ASSERT_EQ(sampled.final_levels.size(), engine.final_levels.size());
  for (Vertex v = 0; v < engine.final_levels.size(); ++v) {
    EXPECT_EQ(sampled.final_levels[v], engine.final_levels[v]) << "v=" << v;
  }
}

TEST_P(SampledSuite, OutputIsAlwaysFeasibleEvenWithTinySamples) {
  const AllocationInstance instance = make_instance(GetParam());
  Xoshiro256pp rng(GetParam().seed + 5);
  SampledConfig config = base_config(20);
  config.samples_per_group = 2;  // aggressively noisy
  const SampledResult result = run_sampled(instance, config, rng);
  result.allocation.check_valid(instance);
}

TEST_P(SampledSuite, ModerateSamplingStaysConstantFactor) {
  // Appendix A (Theorem 17): estimate noise amounts to Algorithm 3 with
  // k ∈ [1/4, 4], so with enough rounds the result is still a constant
  // approximation. We check a generous constant against exact OPT.
  const AllocationInstance instance = make_instance(GetParam());
  Xoshiro256pp rng(GetParam().seed + 9);
  SampledConfig config = base_config(
      tau_for_arboricity(GetParam().lambda, 0.25) + 10);
  config.samples_per_group = 16;
  const SampledResult result = run_sampled(instance, config, rng);
  const double ratio = fractional_ratio(instance, result.allocation);
  // Theorem 17's bound at ε=0.25 is 2+16ε = 6; empirically it is far lower.
  EXPECT_LE(ratio, 6.0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Instances, SampledSuite,
                         ::testing::ValuesIn(default_specs()),
                         [](const ::testing::TestParamInfo<InstanceSpec>& param_info) {
                           return param_info.param.name;
                         });

TEST(Sampled, PhaseCountMatchesCeiling) {
  const AllocationInstance instance = make_instance(default_specs()[1]);
  Xoshiro256pp rng(7);
  SampledConfig config = base_config(10);
  config.phase_length = 4;
  const SampledResult result = run_sampled(instance, config, rng);
  EXPECT_EQ(result.phases_executed, 3u);  // ⌈10/4⌉
  EXPECT_EQ(result.rounds_executed, 10u);
}

TEST(Sampled, ObserverSeesOnePhaseSubgraphPerPhase) {
  const AllocationInstance instance = make_instance(default_specs()[2]);
  Xoshiro256pp rng(8);
  SampledConfig config = base_config(9);
  config.phase_length = 3;
  std::size_t calls = 0;
  std::size_t total_vertices = 0;
  config.on_phase_subgraph =
      [&](const std::vector<std::vector<std::uint32_t>>& adjacency) {
        ++calls;
        total_vertices = adjacency.size();
        // Adjacency must be symmetric and deduplicated.
        for (std::uint32_t v = 0; v < adjacency.size(); ++v) {
          for (const std::uint32_t w : adjacency[v]) {
            ASSERT_LT(w, adjacency.size());
            EXPECT_TRUE(std::binary_search(adjacency[w].begin(),
                                           adjacency[w].end(), v));
          }
          EXPECT_TRUE(std::is_sorted(adjacency[v].begin(), adjacency[v].end()));
        }
      };
  (void)run_sampled(instance, config, rng);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(total_vertices,
            instance.graph.num_left() + instance.graph.num_right());
}

TEST(Sampled, SampledSubgraphDegreeIsBounded) {
  // Per round per group at most t samples; the union over a phase of B
  // rounds has degree ≤ B · t · (#groups) on each side of every vertex.
  const AllocationInstance instance = make_instance(default_specs()[3]);
  Xoshiro256pp rng(9);
  SampledConfig config = base_config(6);
  config.phase_length = 3;
  config.samples_per_group = 4;
  std::size_t max_degree = 0;
  config.on_phase_subgraph =
      [&](const std::vector<std::vector<std::uint32_t>>& adjacency) {
        for (const auto& list : adjacency) {
          max_degree = std::max(max_degree, list.size());
        }
      };
  (void)run_sampled(instance, config, rng);
  // Level groups possible at round ≤ 6 span ≤ 13 levels; the bound below is
  // deliberately loose but still far below the max graph degree.
  EXPECT_LE(max_degree, 3u * 4u * 13u * 2u);
}

TEST(Sampled, AdaptiveTerminationStopsEarly) {
  AllocationInstance instance{star_graph(40), {8}};
  Xoshiro256pp rng(10);
  SampledConfig config = base_config(200);
  config.adaptive_termination = true;
  const SampledResult result = run_sampled(instance, config, rng);
  EXPECT_TRUE(result.stopped_by_condition);
  EXPECT_LT(result.rounds_executed, 200u);
  const double ratio = fractional_ratio(instance, result.allocation);
  EXPECT_LE(ratio, 4.5);
}

TEST(Sampled, SamplesDrawnAccumulate) {
  const AllocationInstance instance = make_instance(default_specs()[1]);
  Xoshiro256pp rng(11);
  SampledConfig config = base_config(5);
  const SampledResult result = run_sampled(instance, config, rng);
  EXPECT_GT(result.samples_drawn, 0u);
}

}  // namespace
}  // namespace mpcalloc
