// Randomized property sweep for the MPC substrate: sort/reduce/prefix-sum
// against their sequential references over random cluster geometries,
// record widths, and key distributions — including the skew regimes that
// stress bucket balance.
#include "mpc/cluster.hpp"
#include "mpc/exponentiation.hpp"
#include "mpc/primitives.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace mpcalloc::mpc {
namespace {

class MpcPrimitiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpcPrimitiveSweep, SampleSortMatchesStdSort) {
  Xoshiro256pp rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t machines = 1 + rng.uniform(16);
    const std::size_t records = rng.uniform(400);
    const std::size_t width = 1 + rng.uniform(3);
    // Cluster sized generously so geometry, not capacity, is under test.
    Cluster cluster(machines, 16 * (records + 4) * width);

    std::vector<Word> flat(records * width);
    const std::uint64_t key_space = 1 + rng.uniform(50);  // forces ties
    for (std::size_t r = 0; r < records; ++r) {
      flat[r * width] = rng.uniform(key_space);
      for (std::size_t w = 1; w < width; ++w) flat[r * width + w] = rng();
    }
    DistVec data = cluster.scatter(flat, width);
    sample_sort(cluster, data, rng);

    const std::vector<Word> out = data.gather();
    ASSERT_EQ(out.size(), flat.size());
    // Keys globally non-decreasing.
    for (std::size_t r = 1; r < records; ++r) {
      EXPECT_LE(out[(r - 1) * width], out[r * width]);
    }
    // Same multiset of records.
    auto canonicalize = [width, records](std::vector<Word> v) {
      std::vector<std::vector<Word>> recs(records);
      for (std::size_t r = 0; r < records; ++r) {
        recs[r].assign(v.begin() + static_cast<std::ptrdiff_t>(r * width),
                       v.begin() + static_cast<std::ptrdiff_t>((r + 1) * width));
      }
      std::sort(recs.begin(), recs.end());
      return recs;
    };
    EXPECT_EQ(canonicalize(out), canonicalize(flat));
  }
}

TEST_P(MpcPrimitiveSweep, SumByKeyMatchesReferenceMap) {
  Xoshiro256pp rng(GetParam() + 100);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t machines = 1 + rng.uniform(12);
    const std::size_t records = rng.uniform(600);
    // Skew knob: small key spaces concentrate everything on few keys.
    const std::uint64_t key_space = 1 + rng.uniform(trial % 2 == 0 ? 3 : 200);
    Cluster cluster(machines, 8 * (records + 8) * 2);

    std::vector<Word> flat;
    std::map<Word, Word> expected;
    for (std::size_t r = 0; r < records; ++r) {
      const Word key = rng.uniform(key_space);
      const Word value = rng.uniform(1000);
      flat.push_back(key);
      flat.push_back(value);
      expected[key] += value;
    }
    DistVec data = cluster.scatter(flat, 2);
    sum_by_key(cluster, data, rng);

    std::map<Word, Word> got;
    const std::vector<Word> out = data.gather();
    for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
      EXPECT_TRUE(got.emplace(out[i], out[i + 1]).second)
          << "duplicate key after reduce";
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(MpcPrimitiveSweep, PrefixSumMatchesReference) {
  Xoshiro256pp rng(GetParam() + 200);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t machines = 1 + rng.uniform(8);
    const std::size_t records = rng.uniform(300);
    Cluster cluster(machines, 8 * (records + 8));

    std::vector<Word> flat(records);
    for (auto& w : flat) w = rng.uniform(100);
    DistVec data = cluster.scatter(flat, 1);
    exclusive_prefix_sum(cluster, data);

    const std::vector<Word> out = data.gather();
    Word running = 0;
    for (std::size_t r = 0; r < records; ++r) {
      EXPECT_EQ(out[r], running) << "position " << r;
      running += flat[r];
    }
  }
}

TEST_P(MpcPrimitiveSweep, BallsMatchReferenceBfs) {
  Xoshiro256pp rng(GetParam() + 300);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 2 + rng.uniform(60);
    std::vector<std::vector<std::uint32_t>> adjacency(n);
    const std::size_t arcs = rng.uniform(3 * n);
    for (std::size_t i = 0; i < arcs; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.uniform(n));
      const auto b = static_cast<std::uint32_t>(rng.uniform(n));
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    }
    const auto radius = static_cast<std::uint32_t>(1 + rng.uniform(4));
    Cluster cluster(4, 1u << 20);
    const BallCollection balls = collect_balls(cluster, adjacency, radius);

    // Reference BFS per vertex.
    for (std::uint32_t v = 0; v < n; ++v) {
      std::vector<std::uint32_t> dist(n, UINT32_MAX);
      std::vector<std::uint32_t> queue{v};
      dist[v] = 0;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::uint32_t u = queue[head];
        if (dist[u] == radius) continue;
        for (const std::uint32_t w : adjacency[u]) {
          if (dist[w] == UINT32_MAX) {
            dist[w] = dist[u] + 1;
            queue.push_back(w);
          }
        }
      }
      std::vector<std::uint32_t> expected;
      for (std::uint32_t w = 0; w < n; ++w) {
        if (dist[w] <= radius) expected.push_back(w);
      }
      EXPECT_EQ(balls.balls[v], expected) << "ball of " << v;
    }
  }
}

TEST_P(MpcPrimitiveSweep, ShuffleConservesRecords) {
  Xoshiro256pp rng(GetParam() + 400);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t machines = 1 + rng.uniform(10);
    const std::size_t records = rng.uniform(200);
    Cluster cluster(machines, 8 * (records + 4) * 2);
    std::vector<Word> flat(records * 2);
    for (auto& w : flat) w = rng();
    DistVec data = cluster.scatter(flat, 2);

    std::vector<std::uint32_t> destination(records);
    for (auto& d : destination) {
      d = static_cast<std::uint32_t>(rng.uniform(machines));
    }
    cluster.shuffle(data, destination);
    EXPECT_EQ(data.num_records(), records);

    auto sorted = data.gather();
    auto reference = flat;
    // Compare as multisets of 2-word records.
    auto canon = [](std::vector<Word>& v) {
      std::vector<std::pair<Word, Word>> pairs;
      for (std::size_t i = 0; i + 1 < v.size(); i += 2) {
        pairs.emplace_back(v[i], v[i + 1]);
      }
      std::sort(pairs.begin(), pairs.end());
      return pairs;
    };
    EXPECT_EQ(canon(sorted), canon(reference));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpcPrimitiveSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace mpcalloc::mpc
