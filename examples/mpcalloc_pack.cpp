// mpcalloc_pack — convert allocation instances between the text format
// (graph/io.hpp) and the binary `.mpcb` arena image (graph/mpcb.hpp), and
// validate existing images.
//
//   # text → binary (the input format is sniffed, not named)
//   ./build/examples/mpcalloc_pack --input=inst.alloc --output=inst.mpcb
//
//   # binary → text
//   ./build/examples/mpcalloc_pack --input=inst.mpcb --output=inst.alloc --to=text
//
//   # repack with a locality-friendly edge numbering
//   ./build/examples/mpcalloc_pack --input=inst.alloc --output=inst.mpcb \
//       --order=degree-sorted
//
//   # deep-check an image: header, per-section checksums, offsets, remap
//   ./build/examples/mpcalloc_pack --input=inst.mpcb --validate
//
// Every conversion ends with a round-trip self-check: the written file is
// reloaded and compared against the source instance (edge sets translated
// through the remap table when the numbering changed), so a conversion that
// prints "ok" is known-good, not merely written.
#include "alloc/api.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace {

using namespace mpcalloc;

EdgeOrder parse_order(const std::string& name) {
  if (name == "preserve") return EdgeOrder::kPreserve;
  if (name == "left-csr") return EdgeOrder::kLeftCsr;
  if (name == "degree-sorted") return EdgeOrder::kDegreeSorted;
  throw std::invalid_argument(
      "--order must be preserve, left-csr, or degree-sorted (got '" + name +
      "')");
}

/// Throws unless `packed` is the same instance as `source` up to the
/// edge-id renumbering recorded in `packed`'s remap table. (`source` may
/// carry its own remap relative to an earlier ancestor; that is irrelevant
/// here — a conversion is checked against its immediate input.)
void check_equivalent(const AllocationInstance& source,
                      const AllocationInstance& packed) {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error("round-trip self-check failed: " + what);
  };
  const BipartiteGraph& a = source.graph;
  const BipartiteGraph& b = packed.graph;
  if (a.num_left() != b.num_left() || a.num_right() != b.num_right() ||
      a.num_edges() != b.num_edges()) {
    fail("graph dimensions changed");
  }
  if (source.capacities != packed.capacities) fail("capacities changed");
  const auto remap = b.edge_remap();
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const Edge& orig = a.edge(remap.empty() ? e : remap[e]);
    if (!(b.edge(e) == orig)) fail("edge endpoints changed under remap");
  }
  for (Vertex u = 0; u < a.num_left(); ++u) {
    const auto an = a.left_neighbors(u);
    const auto bn = b.left_neighbors(u);
    if (an.size() != bn.size()) fail("left adjacency length changed");
    for (std::size_t i = 0; i < an.size(); ++i) {
      if (an[i].to != bn[i].to) fail("left adjacency order changed");
    }
  }
}

int validate_image(const std::string& path) {
  if (!is_mpcb_file(path)) {
    std::fprintf(stderr, "%s: not an .mpcb image (bad magic)\n", path.c_str());
    return 1;
  }
  // Structural pass: mmap runs validate_header (magic, version, widths,
  // counts, section table bounds, header checksum).
  const auto arena = InstanceArena::map_file(path);
  const ArenaHeader& h = arena->header();
  std::printf("%s: version %u, %u-byte offsets, %u-byte ids, %u sections, "
              "%llu bytes\n",
              path.c_str(), h.version, h.offset_width, h.id_width,
              h.section_count,
              static_cast<unsigned long long>(h.total_bytes));
  std::printf("  n_L=%llu n_R=%llu m=%llu max_deg_L=%llu max_deg_R=%llu%s\n",
              static_cast<unsigned long long>(h.num_left),
              static_cast<unsigned long long>(h.num_right),
              static_cast<unsigned long long>(h.num_edges),
              static_cast<unsigned long long>(h.max_left_degree),
              static_cast<unsigned long long>(h.max_right_degree),
              (h.flags & kPermutedEdges) ? ", permuted edge ids" : "");
  // Payload pass: every section checksum must match.
  arena->verify_checksums();
  std::printf("  section checksums: ok\n");
  // Semantic pass: CSR offsets monotone, incidences consistent with edge
  // records, remap a permutation, capacities ≥ 1.
  const AllocationInstance instance = instance_from_arena(arena);
  instance.validate();
  std::printf("  structure (offsets, incidences, remap, capacities): ok\n");
  return 0;
}

int convert(const CliParser& cli) {
  const std::string input = cli.get("input");
  const std::string output = cli.get("output");
  const std::string to = cli.get("to");
  if (to != "mpcb" && to != "text") {
    throw std::invalid_argument("--to must be mpcb or text (got '" + to + "')");
  }
  PackOptions options;
  options.order = parse_order(cli.get("order"));
  options.force_wide_offsets = cli.get_flag("wide-offsets");

  WallTimer timer;
  const AllocationInstance source = load_instance(input);
  std::printf("loaded %s: %s\n", input.c_str(),
              source.graph.describe().c_str());

  if (to == "mpcb") {
    save_instance_mpcb(output, source, options);
  } else {
    save_instance(output, source);
  }

  const AllocationInstance reloaded = load_instance(output);
  check_equivalent(source, reloaded);
  std::printf("wrote %s (%s, order=%s): round-trip ok  (%.2fs)\n",
              output.c_str(), to.c_str(), cli.get("order").c_str(),
              timer.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcalloc;
  CliParser cli("text ↔ .mpcb instance converter and image validator");
  cli.option("input", "", "instance file (text or .mpcb; format is sniffed)");
  cli.option("output", "", "write the converted instance here");
  cli.option("to", "mpcb", "output format: mpcb|text");
  cli.option("order", "preserve",
             "edge-id numbering for mpcb output: "
             "preserve|left-csr|degree-sorted");
  cli.flag("wide-offsets", "pack 64-bit CSR offsets (testing aid)");
  cli.flag("validate", "deep-check an .mpcb image instead of converting");
  if (!cli.parse(argc, argv)) return 0;

  try {
    if (cli.get("input").empty()) {
      std::fprintf(stderr, "need --input=<file>\n");
      return 1;
    }
    if (cli.get_flag("validate")) return validate_image(cli.get("input"));
    if (cli.get("output").empty()) {
      std::fprintf(stderr, "need --output=<file> (or --validate)\n");
      return 1;
    }
    return convert(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
