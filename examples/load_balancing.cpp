// Server-client load balancing ([ALPZ21] uses the allocation problem as its
// core subroutine): clients (L) may be served by a subset of servers (R)
// with slot capacities; maximize served clients, in parallel.
//
// This example runs the full *MPC* pipeline of Theorem 3 — the phased
// Algorithm-2 driver with graph exponentiation on the accounting cluster,
// without knowing the arboricity — and prints the model-level costs (MPC
// rounds, per-machine memory, total memory) next to the solution quality.
//
// Build & run:  ./build/examples/load_balancing [--clients=3000]
#include "alloc/api.hpp"
#include "util/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace mpcalloc;

  CliParser cli("load balancing example (MPC pipeline)");
  cli.option("clients", "3000", "number of clients (L side)");
  cli.option("servers", "600", "number of servers (R side)");
  cli.option("lambda", "8", "arboricity of the eligibility graph");
  cli.option("slots", "6", "max slots per server");
  cli.option("alpha", "0.8", "machine memory exponent (S = input^alpha)");
  cli.option("seed", "11", "RNG seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto clients = static_cast<std::size_t>(cli.get_int("clients"));
  const auto servers = static_cast<std::size_t>(cli.get_int("servers"));
  const auto lambda = static_cast<std::uint32_t>(cli.get_int("lambda"));
  Xoshiro256pp rng(cli.get_size("seed"));

  AllocationInstance instance;
  instance.graph = union_of_forests(clients, servers, lambda, rng);
  instance.capacities = uniform_capacities(
      servers, 1, static_cast<std::uint32_t>(cli.get_int("slots")), rng);

  std::printf("eligibility graph: %s, %llu total slots\n",
              instance.graph.describe().c_str(),
              static_cast<unsigned long long>(instance.total_capacity()));

  MpcDriverConfig config;
  config.epsilon = 0.25;
  config.alpha = cli.get_double("alpha");
  config.samples_per_group = 4;
  config.seed = cli.get_size("seed");

  // λ-oblivious MPC run: doubling guesses + Section-4 certificate.
  const MpcRunResult result = run_mpc_unknown_lambda(instance, config);
  const auto opt = optimal_allocation_value(instance);

  std::printf("\nMPC execution (sublinear regime, alpha=%.2f):\n",
              config.alpha);
  std::printf("  machines          : %zu x %zu words\n", result.num_machines,
              result.machine_words);
  std::printf("  MPC rounds        : %zu (simulating %zu LOCAL rounds in %zu "
              "phases, %zu lambda-guess trials)\n",
              result.mpc_rounds, result.local_rounds, result.phases,
              result.trials);
  std::printf("  peak machine load : %llu words (S = %zu)\n",
              static_cast<unsigned long long>(result.peak_machine_words),
              result.machine_words);
  std::printf("  peak total memory : %llu words\n",
              static_cast<unsigned long long>(result.peak_total_words));
  std::printf("  certificate       : %s\n",
              result.stopped_by_condition ? "Section-4 condition fired"
                                          : "round budget exhausted");

  std::printf("\nquality: fractional weight %.1f vs OPT %llu (ratio %.4f, "
              "guarantee <= %.2f w.h.p.)\n",
              result.allocation.weight(),
              static_cast<unsigned long long>(opt),
              approximation_ratio(opt, result.allocation.weight()),
              2.0 + 16.0 * config.epsilon);

  // Hand the fractional solution to the integral pipeline.
  BestOfRoundingResult rounded =
      round_best_of(instance, result.allocation, rng);
  make_maximal(instance, rounded.best);
  std::printf("served clients after rounding+completion: %zu / %llu\n",
              rounded.best.size(), static_cast<unsigned long long>(opt));
  return 0;
}
