// alloc_solve — command-line allocation solver over the instance/solution
// file formats of graph/io.hpp. The entry point a downstream user scripts
// against without writing C++.
//
//   # generate a test instance, solve it, verify the solution
//   ./build/examples/alloc_solve --generate=out.alloc --n=5000 --lambda=8
//   ./build/examples/alloc_solve --instance=out.alloc --algorithm=pipeline --solution=out.sol
//   ./build/examples/alloc_solve --instance=out.alloc --verify=out.sol
//
// Algorithms: greedy | proportional (fractional report only) | pipeline
// (proportional → round → maximal → boost) | exact (Dinic).
#include "alloc/api.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

#include <cstdio>
#include <string>

namespace {

using namespace mpcalloc;

int generate(const CliParser& cli) {
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto lambda = static_cast<std::uint32_t>(cli.get_int("lambda"));
  Xoshiro256pp rng(cli.get_size("seed"));
  AllocationInstance instance;
  instance.graph = union_of_forests(n, n / 3, lambda, rng);
  instance.capacities = uniform_capacities(
      n / 3, 1, static_cast<std::uint32_t>(cli.get_int("max-capacity")), rng);
  const std::string format = cli.get("format");
  if (format == "mpcb") {
    // Streamed straight to the binary image — no text intermediary, so
    // generating huge benchmark instances skips the parse cost entirely.
    save_instance_mpcb(cli.get("generate"), instance);
  } else if (format == "text") {
    save_instance(cli.get("generate"), instance);
  } else {
    std::fprintf(stderr, "unknown --format=%s (text|mpcb)\n", format.c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", cli.get("generate").c_str(),
              instance.graph.describe().c_str());
  return 0;
}

int verify(const CliParser& cli, const AllocationInstance& instance) {
  const IntegralAllocation solution =
      load_solution(cli.get("verify"), instance);
  const auto opt = optimal_allocation_value(instance);
  std::printf("solution %s: %zu pairs, valid; OPT = %llu, ratio = %.4f\n",
              cli.get("verify").c_str(), solution.size(),
              static_cast<unsigned long long>(opt),
              approximation_ratio(opt, static_cast<double>(solution.size())));
  return 0;
}

int solve(const CliParser& cli, const AllocationInstance& instance) {
  const std::string algorithm = cli.get("algorithm");
  const double eps = cli.get_double("eps");
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));
  Xoshiro256pp rng(cli.get_size("seed"));
  WallTimer timer;

  IntegralAllocation solution;
  if (algorithm == "greedy") {
    solution = greedy_allocation(instance);
  } else if (algorithm == "exact") {
    solution = solve_optimal_allocation(instance).allocation;
  } else if (algorithm == "proportional" || algorithm == "pipeline") {
    const ProportionalResult frac =
        solve_adaptive(instance, eps, /*safety_cap=*/0, threads);
    std::printf("fractional: weight %.1f after %zu rounds (certified: %s)\n",
                frac.allocation.weight(), frac.rounds_executed,
                frac.stopped_by_condition ? "yes" : "no");
    std::printf(
        "round engine: %zu dense + %zu sparse rounds "
        "(%llu left / %llu right entries refreshed incrementally)\n",
        frac.stats.dense_rounds, frac.stats.sparse_rounds,
        static_cast<unsigned long long>(frac.stats.recomputed_left_total),
        static_cast<unsigned long long>(frac.stats.recomputed_right_total));
    if (algorithm == "proportional") {
      const auto opt = optimal_allocation_value(instance);
      std::printf("fractional ratio vs OPT %llu: %.4f (%.2fs)\n",
                  static_cast<unsigned long long>(opt),
                  approximation_ratio(opt, frac.allocation.weight()),
                  timer.seconds());
      return 0;
    }
    BestOfRoundingResult rounded =
        round_best_of(instance, frac.allocation, rng);
    make_maximal(instance, rounded.best);
    solution = boost_to_one_plus_eps(instance, rounded.best, eps).allocation;
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 1;
  }

  const auto opt = optimal_allocation_value(instance);
  std::printf("%s: %zu pairs, ratio %.4f vs OPT %llu  (%.2fs)\n",
              algorithm.c_str(), solution.size(),
              approximation_ratio(opt, static_cast<double>(solution.size())),
              static_cast<unsigned long long>(opt), timer.seconds());
  if (!cli.get("solution").empty()) {
    save_solution(cli.get("solution"), instance, solution);
    std::printf("wrote %s\n", cli.get("solution").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcalloc;
  CliParser cli("mpc-alloc command-line solver");
  cli.option("instance", "", "instance file to solve");
  cli.option("algorithm", "pipeline", "greedy|proportional|pipeline|exact");
  cli.option("solution", "", "write the integral solution here");
  cli.option("verify", "", "verify this solution file against --instance");
  cli.option("generate", "", "write a generated instance to this path");
  cli.option("format", "text", "--generate output format: text|mpcb");
  cli.option("n", "5000", "generated |L|");
  cli.option("lambda", "8", "generated arboricity");
  cli.option("max-capacity", "6", "generated capacity upper bound");
  cli.option("eps", "0.25", "accuracy parameter");
  cli.option("seed", "1", "RNG seed");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;

  try {
    if (!cli.get("generate").empty()) return generate(cli);
    if (cli.get("instance").empty()) {
      std::fprintf(stderr, "need --instance=<file> or --generate=<file>\n");
      return 1;
    }
    const AllocationInstance instance = load_instance(cli.get("instance"));
    if (!cli.get("verify").empty()) return verify(cli, instance);
    return solve(cli, instance);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
