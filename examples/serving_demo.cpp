// Serving demo: the always-on allocation service under live graph churn.
//
//   1. solve an initial instance once (generation 0),
//   2. pin that generation from a "reader" while a "writer" applies batched
//      mutations (capacity retargets, edge churn, vertex growth),
//   3. show that the pinned snapshot is immutable while the service moves
//      on, and that every new generation was produced by a warm restart —
//      bitwise identical to a cold solve at a fraction of its volume.
//
// Build & run:  ./build/examples/serving_demo [--n=3000] [--batches=6]
#include "alloc/api.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::serve;

  CliParser cli("always-on allocation service demo");
  cli.option("n", "3000", "number of L-side vertices");
  cli.option("batches", "6", "mutation batches to publish");
  cli.option("seed", "7", "RNG seed");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_size("n"));
  const auto batches = static_cast<std::size_t>(cli.get_size("batches"));
  Xoshiro256pp rng(cli.get_size("seed"));

  // Generation 0: a sparse instance with capacity slack, solved cold.
  AllocationInstance instance;
  instance.graph = union_of_forests(n, n / 2, /*lambda=*/2, rng);
  instance.capacities = uniform_capacities(n / 2, 4, 8, rng);

  ServiceOptions options;
  options.solve.method = SolveMethod::kProportional;
  options.solve.epsilon = 0.25;
  options.solve.max_rounds = 24;
  options.solve.num_threads = cli.get_size("threads");
  AllocationService service(std::move(instance), options);

  const auto pinned = service.snapshot();  // a reader pins generation 0
  std::printf("generation 0: %s, match weight %.1f in %zu rounds\n",
              pinned->instance().graph.describe().c_str(),
              pinned->result().match_weight, pinned->result().rounds_executed);

  // Write traffic: small batches (~10 ops each) against a ~6k-edge graph.
  for (std::size_t b = 0; b < batches; ++b) {
    MutationSet batch;
    const auto& graph = service.snapshot()->instance().graph;
    for (int k = 0; k < 3; ++k) {
      batch.remove_edges.push_back(
          graph.edges()[rng.uniform(graph.num_edges())]);
      batch.add_edges.push_back(
          {static_cast<Vertex>(rng.uniform(graph.num_left())),
           static_cast<Vertex>(rng.uniform(graph.num_right()))});
      batch.set_capacities.push_back(
          {static_cast<Vertex>(rng.uniform(graph.num_right())),
           static_cast<std::uint32_t>(4 + rng.uniform(5))});
    }
    if (b + 1 == batches) batch.add_right_vertices = 2;  // grow the fleet

    try {
      service.apply(batch);
    } catch (const std::invalid_argument&) {
      continue;  // e.g. duplicate add — a throwing batch publishes nothing
    }
    const SnapshotStats s = service.snapshot()->stats();
    std::printf("generation %llu: %zu edges, weight %.1f  [%s, recompute "
                "%llu of %llu dense]\n",
                static_cast<unsigned long long>(s.generation), s.num_edges,
                s.match_weight, s.warm_restarted ? "warm" : "cold",
                static_cast<unsigned long long>(s.recompute_volume),
                static_cast<unsigned long long>(s.dense_equiv_volume));
  }

  // The reader's generation 0 is untouched by everything above.
  const std::vector<Vertex> probe{0, 1, 2};
  const std::vector<double> old_loads = pinned->query_allocations(probe);
  const std::vector<double> new_loads =
      service.snapshot()->query_allocations(probe);
  std::printf("\npinned generation %llu vs live generation %llu: "
              "load at R-vertex 0 is %.3f vs %.3f (marginal value %.3f)\n",
              static_cast<unsigned long long>(pinned->generation()),
              static_cast<unsigned long long>(service.generation()),
              old_loads[0], new_loads[0],
              service.snapshot()->marginal_value(0));

  const ServiceCounters& counters = service.counters();
  std::printf("counters: %llu generations (%llu warm, %llu cold), "
              "%llu edges added / %llu removed / %llu capacity changes, "
              "warm recompute %llu of %llu dense-equivalent words\n",
              static_cast<unsigned long long>(counters.generations_published),
              static_cast<unsigned long long>(counters.warm_restarts),
              static_cast<unsigned long long>(counters.cold_solves),
              static_cast<unsigned long long>(counters.edges_added),
              static_cast<unsigned long long>(counters.edges_removed),
              static_cast<unsigned long long>(counters.capacity_changes),
              static_cast<unsigned long long>(counters.warm_recompute_volume),
              static_cast<unsigned long long>(counters.warm_dense_equiv_volume));
  return 0;
}
