// λ-oblivious execution (Section 3.2.2 + the Section-4 remark).
//
// The paper's termination condition lets the algorithm *detect* convergence
// without knowing λ: either |N(L_top)| ≤ |L_bottom|, or almost all of
// N(L_top)'s fractional mass avoids the bottom level. This example traces
// the condition round by round on the adversarial oversubscribed-core
// gadget, then shows the MPC-level doubling strategy picking the right
// phase length within a constant-factor round overhead.
//
// Build & run:  ./build/examples/unknown_arboricity [--core=64]
#include "alloc/api.hpp"
#include "util/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace mpcalloc;

  CliParser cli("lambda-oblivious allocation");
  cli.option("core", "64", "gadget core size (lambda ~ core/2)");
  cli.option("eps", "0.25", "accuracy parameter");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;

  const auto core = static_cast<std::size_t>(cli.get_int("core"));
  const double eps = cli.get_double("eps");
  const auto threads =
      resolve_num_threads(static_cast<std::size_t>(cli.get_size("threads")));

  const AllocationInstance instance = oversubscribed_core_instance(core, 4, 1);
  const ArboricityEstimate est = estimate_arboricity(instance.graph);
  std::printf("gadget: %s, degeneracy %u, certified lambda in [%u, %u]\n",
              instance.graph.describe().c_str(), est.degeneracy,
              est.lower_bound, est.upper_bound);
  std::printf("Theorem 9 budget tau(lambda=%u) = %zu rounds\n\n",
              est.lower_bound,
              tau_for_arboricity(est.lower_bound, eps));

  // Trace the termination condition round by round.
  const PowTable pow_table(eps);
  std::vector<std::int32_t> levels(instance.graph.num_right(), 0);
  std::printf("round | |N(L_top)| | |L_bottom| | mass>bottom | certified\n");
  TerminationScratch scratch;
  for (std::size_t round = 1; round <= 64; ++round) {
    const LeftAggregate left =
        compute_left_aggregate(instance.graph, levels, pow_table, threads);
    const std::vector<double> alloc =
        compute_alloc(instance.graph, levels, left, pow_table, threads);
    apply_level_update(instance, alloc, eps, round, nullptr, levels, threads);
    const TerminationCheck check =
        check_termination(instance, levels, alloc, round, eps, scratch, threads);
    std::printf("%5zu | %10zu | %10zu | %11.1f | %s\n", round,
                check.neighbors_of_top, check.bottom_size,
                check.mass_above_bottom, check.satisfied ? "YES" : "no");
    if (check.satisfied) break;
  }

  // The packaged λ-oblivious solver (identical loop + safety cap).
  const ProportionalResult result =
      solve_adaptive(instance, eps, /*safety_cap=*/0, threads);
  std::printf("\nsolve_adaptive: %zu rounds, weight %.1f, ratio %.4f vs OPT\n",
              result.rounds_executed, result.allocation.weight(),
              fractional_ratio(instance, result.allocation));

  // MPC-level doubling (guessing sqrt(log lambda) = 2^i).
  MpcDriverConfig config;
  config.epsilon = eps;
  config.alpha = 0.8;
  config.samples_per_group = 4;
  config.seed = 3;
  const MpcRunResult mpc = run_mpc_unknown_lambda(instance, config);
  std::printf("MPC doubling: %zu trials, %zu MPC rounds total, certificate "
              "%s, ratio %.4f\n",
              mpc.trials, mpc.mpc_rounds,
              mpc.stopped_by_condition ? "fired" : "missed",
              fractional_ratio(instance, mpc.allocation));
  return 0;
}
