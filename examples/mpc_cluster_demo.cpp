// Raw MPC substrate demo: the accounting cluster and its primitives,
// independent of the allocation algorithm. Useful as a template for hosting
// other MPC algorithms on src/mpc/.
//
// Shows: scatter, shuffle capacity enforcement, distributed sample sort,
// reduce-by-key under heavy key skew, and graph exponentiation with the
// per-machine ball-volume constraint.
//
// Build & run:  ./build/examples/mpc_cluster_demo
//               ./build/examples/mpc_cluster_demo --input-words=250000 --alpha=0.5
#include "mpc/cluster.hpp"
#include "mpc/exponentiation.hpp"
#include "mpc/primitives.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::mpc;

  // Strict parsing: malformed values ("1e5", "0.6x") throw with the option
  // name instead of silently truncating.
  CliParser cli("Raw MPC substrate demo: sort, reduce-by-key, exponentiation");
  cli.option("input-words", "100000", "input size the cluster is sized for");
  cli.option("alpha", "0.6", "memory exponent: S = input^alpha");
  cli.option("ball-radius", "3", "radius for the graph-exponentiation demo");
  cli.option("seed", "123", "RNG seed for records and graphs");
  cli.transport_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto input_words = static_cast<std::size_t>(cli.get_size("input-words"));
  const double alpha = cli.get_double("alpha");
  const auto ball_radius =
      static_cast<std::size_t>(cli.get_size("ball-radius"));

  Xoshiro256pp rng(cli.get_size("seed"));

  // A cluster in the sublinear regime for the requested input size.
  Cluster cluster = Cluster::for_input(input_words, alpha);
  cluster.set_transport_kind(transport_kind_from_cli(cli.get("transport")));
  std::printf("cluster: %zu machines x %zu words (S = input^%.2f), %s transport\n",
              cluster.num_machines(), cluster.machine_words(), alpha,
              transport_kind_name(cluster.transport_kind()));

  // --- distributed sort ---------------------------------------------------
  std::vector<Word> records;
  for (int i = 0; i < 20'000; ++i) {
    records.push_back(rng.uniform(1'000'000));  // key
    records.push_back(static_cast<Word>(i));    // payload
  }
  DistVec data = cluster.scatter(records, 2);
  sample_sort(cluster, data, rng);
  const std::vector<Word> sorted = data.gather();
  bool ordered = true;
  for (std::size_t i = 2; i < sorted.size(); i += 2) {
    ordered &= sorted[i - 2] <= sorted[i];
  }
  std::printf("sample sort: 10k records globally %s after %zu rounds\n",
              ordered ? "sorted" : "NOT SORTED", cluster.rounds());

  // --- reduce-by-key with skew ---------------------------------------------
  records.clear();
  for (int i = 0; i < 30'000; ++i) {
    records.push_back(i % 2 == 0 ? 7 : rng.uniform(50));  // heavy key 7
    records.push_back(1);
  }
  DistVec counts = cluster.scatter(records, 2);
  const std::size_t before = cluster.rounds();
  sum_by_key(cluster, counts, rng);
  std::printf("reduce-by-key: 15k-record heavy key handled in %zu rounds "
              "(local pre-combine keeps buckets under S)\n",
              cluster.rounds() - before);

  // --- graph exponentiation -------------------------------------------------
  // A 3-regular-ish random graph: radius-3 balls stay machine-sized.
  const std::size_t n = 2000;
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (int k = 0; k < 2; ++k) {
      const auto w = static_cast<std::uint32_t>(rng.uniform(n));
      adjacency[v].push_back(w);
      adjacency[w].push_back(v);
    }
  }
  const BallCollection balls = collect_balls(cluster, adjacency, ball_radius);
  std::printf("exponentiation: radius-%zu balls collected in %zu charged "
              "rounds; largest ball %zu vertices, total ball volume %llu "
              "words\n",
              ball_radius, balls.rounds_charged, balls.max_ball_vertices,
              static_cast<unsigned long long>(balls.total_ball_words));

  // --- capacity enforcement -------------------------------------------------
  try {
    Cluster tiny(4, 32);
    std::vector<Word> too_much(64, 1);
    DistVec d = tiny.scatter(too_much, 1);
    const std::vector<std::uint32_t> all_to_zero(64, 0);
    tiny.shuffle(d, all_to_zero);
    std::printf("capacity enforcement: UNEXPECTEDLY PASSED\n");
  } catch (const MpcCapacityError& error) {
    std::printf("capacity enforcement: caught expected violation — %s\n",
                error.what());
  }

  std::printf("\nfinal accounting: %zu rounds, %llu words moved, peak machine "
              "%llu words, peak total %llu words\n",
              cluster.rounds(),
              static_cast<unsigned long long>(cluster.total_words_moved()),
              static_cast<unsigned long long>(cluster.peak_machine_words()),
              static_cast<unsigned long long>(cluster.peak_total_words()));
  return 0;
}
