// Online-ads scenario (the paper's motivating application, §1): impressions
// (L side) must be assigned to advertisers (R side) whose budgets are the
// capacities. Impression-advertiser eligibility follows a skewed power-law
// graph — a few broad-targeting advertisers see most impressions.
//
// The example contrasts the proportional-allocation pipeline against the
// greedy baseline on fill rate (fraction of budget spent) and allocation
// size, and prints the per-advertiser fill distribution, since AZM18's
// original motivation was *diverse* (high-entropy) allocations.
//
// Build & run:  ./build/examples/ad_allocation [--impressions=20000]
#include "alloc/api.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

int main(int argc, char** argv) {
  using namespace mpcalloc;

  CliParser cli("ad allocation example");
  cli.option("impressions", "20000", "number of impressions (L side)");
  cli.option("advertisers", "400", "number of advertisers (R side)");
  cli.option("eps", "0.25", "accuracy parameter");
  cli.option("seed", "7", "RNG seed");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;

  const auto impressions = static_cast<std::size_t>(cli.get_int("impressions"));
  const auto advertisers = static_cast<std::size_t>(cli.get_int("advertisers"));
  const double eps = cli.get_double("eps");
  Xoshiro256pp rng(cli.get_size("seed"));

  // Eligibility graph: power-law on both sides (broad advertisers early).
  AllocationInstance instance;
  instance.graph = power_law_bipartite(impressions, advertisers,
                                       impressions * 4, 0.8, rng);
  // Budgets proportional to reach, at ~40% of eligible volume.
  instance.capacities = degree_proportional_capacities(instance.graph, 0.4);

  const auto opt = optimal_allocation_value(instance);
  const auto budget = instance.total_capacity();
  std::printf("eligibility graph: %s\n", instance.graph.describe().c_str());
  std::printf("total budget %llu, max sellable (OPT) %llu\n",
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(opt));

  // Proportional pipeline.
  const ProportionalResult frac = solve_adaptive(instance, eps, /*safety_cap=*/0,
                     static_cast<std::size_t>(cli.get_size("threads")));
  BestOfRoundingResult rounded = round_best_of(instance, frac.allocation, rng);
  make_maximal(instance, rounded.best);
  const BoostResult boosted = boost_to_one_plus_eps(instance, rounded.best, eps);

  // Greedy baseline.
  const IntegralAllocation greedy = greedy_allocation(instance);

  auto fill_rates = [&](const IntegralAllocation& m) {
    std::vector<double> used(advertisers, 0.0);
    for (const EdgeId e : m.edges) used[instance.graph.edge(e).v] += 1.0;
    std::vector<double> rates;
    for (Vertex v = 0; v < advertisers; ++v) {
      rates.push_back(used[v] / static_cast<double>(instance.capacities[v]));
    }
    return rates;
  };

  Table table("impressions sold and budget fill");
  table.header({"method", "sold", "ratio vs OPT", "mean fill", "p10 fill",
                "p90 fill"});
  auto add_row = [&](const char* name, const IntegralAllocation& m) {
    const Summary s = summarize(fill_rates(m));
    table.row({name, Table::integer(static_cast<long long>(m.size())),
               Table::num(approximation_ratio(opt,
                                              static_cast<double>(m.size())),
                          4),
               Table::pct(s.mean, 1), Table::pct(s.p10, 1),
               Table::pct(s.p90, 1)});
  };
  add_row("greedy", greedy);
  add_row("proportional+rounding", rounded.best);
  add_row("proportional+boost", boosted.allocation);
  table.print(std::cout);

  std::printf("\nproportional converged in %zu rounds (lambda-oblivious); "
              "greedy needs a full sequential pass over all impressions.\n",
              frac.rounds_executed);
  return 0;
}
