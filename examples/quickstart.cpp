// Quickstart: the full mpc-alloc pipeline on a small synthetic instance.
//
//   1. generate a uniformly sparse bipartite instance (known arboricity),
//   2. run the O(log λ)-round proportional allocation (Theorem 2) without
//      knowing λ (adaptive termination, Section 4 remark),
//   3. round the fractional solution to an integral one (Section 6),
//   4. boost to a (1+ε) certificate (Theorem 1 / Appendix B),
//   5. compare every stage against the exact max-flow optimum.
//
// Build & run:  ./build/examples/quickstart [--n=4000] [--lambda=8] [--eps=0.25]
#include "alloc/api.hpp"
#include "util/cli.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace mpcalloc;

  CliParser cli("mpc-alloc quickstart");
  cli.option("n", "4000", "number of L-side vertices");
  cli.option("lambda", "8", "arboricity of the generated instance");
  cli.option("eps", "0.25", "accuracy parameter");
  cli.option("seed", "42", "RNG seed");
  cli.threads_option();
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto lambda = static_cast<std::uint32_t>(cli.get_int("lambda"));
  const double eps = cli.get_double("eps");
  Xoshiro256pp rng(cli.get_size("seed"));

  // 1. Instance: union of `lambda` random forests, capacities U[1,6].
  AllocationInstance instance;
  instance.graph = union_of_forests(n, n / 3, lambda, rng);
  instance.capacities = uniform_capacities(n / 3, 1, 6, rng);
  std::printf("instance: %s, total capacity %llu\n",
              instance.graph.describe().c_str(),
              static_cast<unsigned long long>(instance.total_capacity()));

  const auto opt = optimal_allocation_value(instance);
  std::printf("exact OPT (Dinic oracle): %llu\n",
              static_cast<unsigned long long>(opt));

  // 2. Proportional allocation, λ-oblivious.
  const ProportionalResult frac = solve_adaptive(instance, eps, /*safety_cap=*/0,
                     static_cast<std::size_t>(cli.get_size("threads")));
  std::printf("proportional allocation: weight %.1f after %zu rounds "
              "(certified: %s)  ratio %.4f\n",
              frac.allocation.weight(), frac.rounds_executed,
              frac.stopped_by_condition ? "yes" : "no",
              approximation_ratio(opt, frac.allocation.weight()));

  // 3. Randomized rounding, best of O(log n) copies, greedily completed.
  BestOfRoundingResult rounded = round_best_of(instance, frac.allocation, rng);
  make_maximal(instance, rounded.best);
  std::printf("rounded + maximal: |M| = %zu  ratio %.4f  (%zu copies)\n",
              rounded.best.size(),
              approximation_ratio(opt, static_cast<double>(rounded.best.size())),
              rounded.copies);

  // 4. Boost to 1+ε.
  const BoostResult boosted = boost_to_one_plus_eps(instance, rounded.best, eps);
  std::printf("boosted (walk length <= %zu): |M| = %zu  ratio %.4f  "
              "(target <= %.2f)\n",
              2 * static_cast<std::size_t>(std::ceil(1.0 / eps)) + 1,
              boosted.allocation.size(),
              approximation_ratio(opt,
                                  static_cast<double>(boosted.allocation.size())),
              1.0 + eps);
  return 0;
}
