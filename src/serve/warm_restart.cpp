#include "serve/warm_restart.hpp"

#include "alloc/levels.hpp"
#include "alloc/proportional.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mpcalloc::serve {

namespace {

/// Merge sorted `add` (no duplicates, disjoint from `list`) into sorted
/// `list`, keeping it ascending.
void merge_sorted(std::vector<Vertex>& list, std::vector<Vertex>& add) {
  if (add.empty()) return;
  const auto mid = static_cast<std::ptrdiff_t>(list.size());
  list.insert(list.end(), add.begin(), add.end());
  std::inplace_merge(list.begin(), list.begin() + mid, list.end());
}

std::int8_t taped_delta_of(const std::vector<TrajectoryTape::Change>& round,
                           Vertex v) {
  const auto it = std::lower_bound(
      round.begin(), round.end(), v,
      [](const TrajectoryTape::Change& c, Vertex x) { return c.v < x; });
  return (it != round.end() && it->v == v) ? it->delta : 0;
}

}  // namespace

SolveResult warm_solve(const AllocationInstance& instance,
                       const SolveResult& prev, const TrajectoryTape& prev_tape,
                       const MutationApplyResult& delta, double epsilon,
                       std::size_t num_threads, TrajectoryTape* record_tape,
                       WarmRestartStats& stats) {
  const BipartiteGraph& g = instance.graph;
  const std::size_t n_left = g.num_left();
  const std::size_t n_right = g.num_right();
  const std::size_t old_right = prev.final_levels.size();
  const std::size_t tau = prev_tape.num_rounds();
  if (tau == 0) {
    throw std::invalid_argument("warm_solve: previous tape is empty");
  }
  if (prev.final_alloc.size() != old_right) {
    throw std::invalid_argument("warm_solve: prev lacks final_alloc");
  }
  if (delta.dirty_left.size() != n_left || delta.dirty_right.size() != n_right ||
      delta.prior_edge.size() != g.num_edges() || old_right > n_right) {
    throw std::invalid_argument("warm_solve: delta does not match instance");
  }
  const std::size_t threads = resolve_num_threads(num_threads);
  const PowTable pow_table(epsilon);
  const std::span<const std::uint32_t> caps(instance.capacities);

  stats = WarmRestartStats{};
  stats.used = true;
  stats.dense_equiv_volume =
      static_cast<std::uint64_t>(tau) * 2 * g.num_edges() + g.num_edges();

  // The active cone. Both lists stay ascending so the parallel sweeps tile
  // them exactly like the incremental engine tiles its touched sets.
  std::vector<std::uint8_t> in_active_left(n_left, 0);
  std::vector<std::uint8_t> in_active_right(n_right, 0);
  std::vector<Vertex> active_left, active_right;
  std::vector<Vertex> pending_right, pending_left;
  std::uint64_t left_volume = 0, right_volume = 0;

  const auto queue_right = [&](Vertex v) {
    if (!in_active_right[v]) {
      in_active_right[v] = 1;
      pending_right.push_back(v);
    }
  };
  const auto integrate_pending = [&] {
    if (pending_right.empty()) return;
    std::sort(pending_right.begin(), pending_right.end());
    for (const Vertex v : pending_right) {
      right_volume += g.right_degree(v);
      for (const Incidence& inc : g.right_neighbors(v)) {
        if (!in_active_left[inc.to]) {
          in_active_left[inc.to] = 1;
          left_volume += g.left_degree(inc.to);
          pending_left.push_back(inc.to);
        }
      }
    }
    merge_sorted(active_right, pending_right);
    pending_right.clear();
    std::sort(pending_left.begin(), pending_left.end());
    merge_sorted(active_left, pending_left);
    pending_left.clear();
  };

  // Seed: every dirty right vertex, plus every right vertex that reads a
  // dirty left vertex's aggregate (active_left follows as N(active_right)).
  for (Vertex v = 0; v < n_right; ++v) {
    if (delta.dirty_right[v]) queue_right(v);
  }
  for (Vertex u = 0; u < n_left; ++u) {
    if (!delta.dirty_left[u]) continue;
    for (const Incidence& inc : g.left_neighbors(u)) queue_right(inc.to);
  }
  integrate_pending();

  // Exact replay state. `alloc` starts as the previous generation's final
  // alloc: inactive entries are only ever read after round τ, where that is
  // exactly the cold value; active entries are recomputed every round.
  std::vector<std::int32_t> levels(n_right, 0);
  std::vector<double> alloc(n_right, 0.0);
  std::copy(prev.final_alloc.begin(), prev.final_alloc.end(), alloc.begin());
  LeftAggregate left;
  left.max_level.assign(n_left, std::numeric_limits<std::int32_t>::min());
  left.inv_scaled_denominator.assign(n_left, 0.0);
  std::vector<std::int8_t> deltas(n_right, 0);
  std::vector<Vertex> changed;             // this round's nonzero-step set
  std::vector<std::uint8_t> expanded(old_right, 0);
  std::vector<Vertex> diverged_this_round;

  SolveResult result;
  if (record_tape) {
    record_tape->rounds.clear();
    record_tape->rounds.reserve(tau);
  }

  for (std::size_t round = 1; round <= tau; ++round) {
    for (const Vertex v : changed) deltas[v] = 0;
    changed.clear();
    diverged_this_round.clear();

    // Aggregate + alloc refresh on the cone only, via the kernels shared
    // with the dense sweeps — bitwise the dense values for these entries.
    parallel_for_each_vertex(active_left, threads, [&](Vertex u) {
      recompute_left_entry(g, levels, pow_table, u, left);
    });
    parallel_for_each_vertex(active_right, threads, [&](Vertex v) {
      alloc[v] = recompute_alloc_entry(g, levels, left, pow_table, v);
    });
    stats.recompute_volume += left_volume + right_volume;

    // Steps: taped verbatim off the cone, computed on it. A computed step
    // that disagrees with the tape (or a step by a vertex the tape has
    // fallen silent on) schedules the one-time 2-hop expansion.
    const auto& taped = prev_tape.rounds[round - 1];
    for (const TrajectoryTape::Change& c : taped) {
      assert(c.v < n_right && c.delta != 0);
      if (!in_active_right[c.v]) {
        levels[c.v] += c.delta;
        deltas[c.v] = c.delta;
        changed.push_back(c.v);
        ++stats.taped_replays;
      }
    }
    for (const Vertex v : active_right) {
      const std::int8_t d =
          level_step(alloc[v], static_cast<double>(caps[v]), 1.0, epsilon);
      levels[v] += d;
      if (d != 0) {
        deltas[v] = d;
        changed.push_back(v);
      }
      // Vertices beyond the old side have no tape, but every vertex their
      // level can influence is already seeded through their (all-new)
      // incident edges' dirty left endpoints — no expansion needed.
      if (v < old_right && !expanded[v] && d != taped_delta_of(taped, v)) {
        expanded[v] = 1;
        ++stats.divergences;
        diverged_this_round.push_back(v);
      }
    }

    // The new generation's tape: the old tape with the cone's taped entries
    // superseded by the computed steps, merged back in ascending order.
    if (record_tape) {
      auto& out = record_tape->rounds.emplace_back();
      out.reserve(taped.size() + active_right.size());
      auto ti = taped.begin();
      for (const Vertex v : active_right) {
        for (; ti != taped.end() && ti->v < v; ++ti) {
          if (!in_active_right[ti->v]) out.push_back(*ti);
        }
        if (ti != taped.end() && ti->v == v) ++ti;
        if (deltas[v] != 0) out.push_back({v, deltas[v]});
      }
      for (; ti != taped.end(); ++ti) {
        if (!in_active_right[ti->v]) out.push_back(*ti);
      }
    }

    RoundStats round_stats;
    round_stats.sparse = true;
    round_stats.recomputed_left = active_left.size();
    round_stats.recomputed_right = active_right.size();
    round_stats.frontier_size = changed.size();
    for (const Vertex v : changed) {
      round_stats.frontier_volume += g.right_degree(v);
    }
    result.stats.record_round(round_stats);

    // Divergences first take effect on round+1's aggregates, so the cone
    // grows *after* this round — and not at all after the last round, where
    // the pre-expansion cone is exactly the set of entries whose
    // materialisation inputs can differ from the previous generation.
    if (round < tau) {
      for (const Vertex w : diverged_this_round) {
        for (const Incidence& inc_w : g.right_neighbors(w)) {
          for (const Incidence& inc_u : g.left_neighbors(inc_w.to)) {
            queue_right(inc_u.to);
          }
        }
      }
      integrate_pending();
    }
  }

  // Materialise from round τ's start levels and its (cone-fresh) aggregate:
  // recompute x_e where the left endpoint is on the cone, copy the previous
  // generation's value bitwise everywhere else.
  std::vector<std::int32_t> start_levels(levels);
  for (const Vertex v : changed) start_levels[v] -= deltas[v];
  result.allocation.x.assign(g.num_edges(), 0.0);
  const std::vector<double>& prev_x = prev.allocation.x;
  parallel_for(0, g.num_edges(), kParallelTile, threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (EdgeId e = static_cast<EdgeId>(tile_begin); e < tile_end; ++e) {
      const Edge& ed = g.edge(e);
      if (in_active_left[ed.u]) {
        const double x =
            pow_table.pow(start_levels[ed.v] - left.max_level[ed.u]) *
            left.inv_scaled_denominator[ed.u];
        const double cap = static_cast<double>(caps[ed.v]);
        const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
        result.allocation.x[e] = x * scale;
      } else {
        assert(delta.prior_edge[e] != kNoPriorEdge);
        result.allocation.x[e] = prev_x[delta.prior_edge[e]];
      }
    }
  });
  stats.recompute_volume += left_volume;
  stats.final_active_left = active_left.size();
  stats.final_active_right = active_right.size();

  result.match_weight = match_weight(instance, alloc, threads);
  result.rounds_executed = tau;
  result.final_levels = std::move(levels);
  result.final_alloc = std::move(alloc);
  return result;
}

}  // namespace mpcalloc::serve
