#include "serve/mutation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mpcalloc::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("apply_mutations: " + what);
}

std::string edge_str(const Edge& e) {
  return "(" + std::to_string(e.u) + ", " + std::to_string(e.v) + ")";
}

}  // namespace

MutationApplyResult apply_mutations(const AllocationInstance& base,
                                    const MutationSet& batch) {
  const BipartiteGraph& g = base.graph;
  const std::size_t new_left = g.num_left() + batch.add_left_vertices;
  const std::size_t new_right = g.num_right() + batch.add_right_vertices;
  if (new_left > std::numeric_limits<Vertex>::max() ||
      new_right > std::numeric_limits<Vertex>::max()) {
    fail("vertex side overflows the Vertex id space");
  }

  MutationApplyResult out;
  out.dirty_left.assign(new_left, 0);
  out.dirty_right.assign(new_right, 0);
  std::fill(out.dirty_left.begin() + static_cast<std::ptrdiff_t>(g.num_left()),
            out.dirty_left.end(), 1);
  std::fill(out.dirty_right.begin() + static_cast<std::ptrdiff_t>(g.num_right()),
            out.dirty_right.end(), 1);

  // Capacities: appended vertices default to 1, then apply the explicit
  // sets. A set that lands on the current value is validated but not marked
  // dirty — it cannot move any trajectory.
  Capacities capacities = base.capacities;
  capacities.resize(new_right, 1);
  for (const MutationSet::CapacityChange& c : batch.set_capacities) {
    if (c.v >= new_right) fail("set_capacity: right vertex out of range");
    if (c.capacity == 0) fail("set_capacity: capacities must be >= 1");
    if (capacities[c.v] != c.capacity) {
      capacities[c.v] = c.capacity;
      out.dirty_right[c.v] = 1;
    }
  }

  // Removes: sorted for the O(log) membership probe the surviving-edge scan
  // does; duplicates in the batch are rejected up front.
  std::vector<Edge> removes = batch.remove_edges;
  std::sort(removes.begin(), removes.end());
  if (const auto dup = std::adjacent_find(removes.begin(), removes.end());
      dup != removes.end()) {
    fail("remove_edge: duplicate removal of " + edge_str(*dup));
  }
  for (const Edge& e : removes) {
    if (e.u >= g.num_left() || e.v >= g.num_right()) {
      fail("remove_edge: " + edge_str(e) + " names an out-of-range vertex");
    }
  }
  const auto is_removed = [&removes](const Edge& e) {
    return std::binary_search(removes.begin(), removes.end(), e);
  };

  // Adds: reject duplicates within the batch, out-of-range endpoints, and
  // collisions with a surviving base edge. Re-adding a removed edge is
  // legal (the batch is a net modification).
  for (const Edge& e : batch.add_edges) {
    if (e.u >= new_left || e.v >= new_right) {
      fail("add_edge: " + edge_str(e) + " names an out-of-range vertex");
    }
    if (e.u < g.num_left() && e.v < g.num_right() && !is_removed(e)) {
      for (const Incidence& inc : g.left_neighbors(e.u)) {
        if (inc.to == e.v) {
          fail("add_edge: " + edge_str(e) + " already exists");
        }
      }
    }
  }
  {
    std::vector<Edge> adds = batch.add_edges;
    std::sort(adds.begin(), adds.end());
    if (const auto dup = std::adjacent_find(adds.begin(), adds.end());
        dup != adds.end()) {
      fail("add_edge: duplicate addition of " + edge_str(*dup));
    }
  }

  // Rebuild: surviving base edges in base-id order (preserving every
  // untouched adjacency list's scan order), then the additions. The
  // builder assigns edge ids in insertion order, so prior_edge is filled in
  // lockstep.
  BipartiteGraphBuilder builder(new_left, new_right);
  out.prior_edge.reserve(g.num_edges() - removes.size() +
                         batch.add_edges.size());
  std::size_t removed_found = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (is_removed(ed)) {
      ++removed_found;
      out.dirty_left[ed.u] = 1;
      out.dirty_right[ed.v] = 1;
      continue;
    }
    builder.add_edge(ed.u, ed.v);
    out.prior_edge.push_back(e);
  }
  if (removed_found != removes.size()) {
    for (const Edge& e : removes) {
      bool exists = false;
      for (const Incidence& inc : g.left_neighbors(e.u)) {
        exists = exists || inc.to == e.v;
      }
      if (!exists) fail("remove_edge: " + edge_str(e) + " does not exist");
    }
  }
  for (const Edge& e : batch.add_edges) {
    builder.add_edge(e.u, e.v);
    out.prior_edge.push_back(kNoPriorEdge);
    out.dirty_left[e.u] = 1;
    out.dirty_right[e.v] = 1;
  }

  out.instance.graph = builder.build();
  out.instance.capacities = std::move(capacities);
  out.edges_removed = removes.size();
  out.edges_added = batch.add_edges.size();
  return out;
}

}  // namespace mpcalloc::serve
