// One immutable generation of the always-on allocation service.
//
// A snapshot owns the instance it was solved on, the solve result, and the
// trajectory tape the *next* generation's warm restart replays against.
// Snapshots are handed out as shared_ptr<const AllocationSnapshot>: readers
// pin a generation for as long as they hold the pointer, entirely
// unaffected by writers publishing newer generations (see
// serve/service.hpp for the swap protocol).
#pragma once

#include "alloc/solver.hpp"
#include "serve/warm_restart.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace mpcalloc::serve {

/// O(1) summary of a generation, for dashboards and the serving bench.
struct SnapshotStats {
  std::uint64_t generation = 0;
  std::size_t num_left = 0;
  std::size_t num_right = 0;
  std::size_t num_edges = 0;
  std::uint64_t total_capacity = 0;
  double match_weight = 0.0;
  std::size_t rounds_executed = 0;
  bool warm_restarted = false;        ///< false ⇒ solved cold
  std::uint64_t recompute_volume = 0;  ///< WarmRestartStats, 0 when cold
  std::uint64_t dense_equiv_volume = 0;
};

class AllocationSnapshot {
 public:
  AllocationSnapshot(std::uint64_t generation, AllocationInstance instance,
                     SolveResult result, TrajectoryTape tape,
                     WarmRestartStats warm)
      : generation_(generation),
        instance_(std::move(instance)),
        result_(std::move(result)),
        tape_(std::move(tape)),
        warm_(warm) {}

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const AllocationInstance& instance() const { return instance_; }
  [[nodiscard]] const SolveResult& result() const { return result_; }
  [[nodiscard]] const TrajectoryTape& tape() const { return tape_; }
  [[nodiscard]] const WarmRestartStats& warm() const { return warm_; }

  /// The load served at v: min(C_v, alloc_v), which equals Σ_{u∈N_v} x_{u,v}
  /// of the materialised allocation up to rounding (line 6's clamp).
  [[nodiscard]] double allocation_of(Vertex v) const {
    return std::min(result_.final_alloc[v],
                    static_cast<double>(instance_.capacities[v]));
  }

  /// Batched point queries: allocation_of over `vertices`, in order.
  [[nodiscard]] std::vector<double> query_allocations(
      std::span<const Vertex> vertices) const {
    std::vector<double> out;
    out.reserve(vertices.size());
    for (const Vertex v : vertices) out.push_back(allocation_of(v));
    return out;
  }

  /// How much extra load one additional unit of capacity at v would serve
  /// under the current priorities: the unserved demand alloc_v − C_v,
  /// clamped to [0, 1]. 0 ⇒ v is not saturated; 1 ⇒ a full unit waits.
  [[nodiscard]] double marginal_value(Vertex v) const {
    const double spill = result_.final_alloc[v] -
                         static_cast<double>(instance_.capacities[v]);
    return std::clamp(spill, 0.0, 1.0);
  }

  [[nodiscard]] SnapshotStats stats() const {
    SnapshotStats s;
    s.generation = generation_;
    s.num_left = instance_.graph.num_left();
    s.num_right = instance_.graph.num_right();
    s.num_edges = instance_.graph.num_edges();
    s.total_capacity = instance_.total_capacity();
    s.match_weight = result_.match_weight;
    s.rounds_executed = result_.rounds_executed;
    s.warm_restarted = warm_.used;
    s.recompute_volume = warm_.recompute_volume;
    s.dense_equiv_volume = warm_.dense_equiv_volume;
    return s;
  }

 private:
  std::uint64_t generation_;
  AllocationInstance instance_;
  SolveResult result_;
  TrajectoryTape tape_;
  WarmRestartStats warm_;
};

}  // namespace mpcalloc::serve
