// The always-on allocation service: generation-pinned snapshots, live graph
// churn, warm restarts.
//
// One AllocationService owns a sequence of immutable AllocationSnapshot
// generations. Reads and writes never block each other:
//
//  * Readers call snapshot() — a lock-free atomic shared_ptr load — and
//    query the pinned generation for as long as they hold the pointer,
//    regardless of how many newer generations writers publish meanwhile.
//  * Writers call apply(MutationSet): the batch is validated and applied to
//    a fresh copy of the current instance (apply_mutations), the mutated
//    instance is re-solved, and the new snapshot is published with one
//    atomic store. Writers are serialized by an internal mutex; a throwing
//    batch publishes nothing.
//
// Re-solves go through the unified Solver facade with the service's fixed
// SolveOptions. When the options describe a fixed-round Algorithm-1 run
// (kProportional / kTwoPlusEps, no custom thresholds, no weight history),
// every generation after the first is produced by serve/warm_restart —
// bitwise identical to the cold solve of the mutated instance, at a small
// fraction of its recompute volume. Anything else (adaptive stop, sampled
// or MPC methods, threshold schedules) falls back to a cold facade solve
// per generation, transparently.
#pragma once

#include "alloc/solver.hpp"
#include "serve/mutation.hpp"
#include "serve/snapshot.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace mpcalloc::serve {

struct ServiceOptions {
  /// Solve configuration applied to every generation. `record_tape` is
  /// owned by the service (any caller-provided pointer is ignored).
  SolveOptions solve;

  /// Allow trajectory-diff warm restarts when the method is eligible.
  /// Disabling forces a cold facade solve per generation (the serving
  /// bench uses this to measure the warm path's saving).
  bool enable_warm_restart = true;
};

/// Writer-side accounting, cumulative over the service's lifetime.
struct ServiceCounters {
  std::uint64_t generations_published = 0;  ///< includes generation 0
  std::uint64_t warm_restarts = 0;
  std::uint64_t cold_solves = 0;          ///< generation 0 + fallbacks
  std::uint64_t empty_batches = 0;        ///< no-op applies (no publish)
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t capacity_changes = 0;
  std::uint64_t warm_recompute_volume = 0;    ///< Σ over warm generations
  std::uint64_t warm_dense_equiv_volume = 0;  ///< Σ of their cold-dense cost
  std::uint64_t warm_divergences = 0;
};

class AllocationService {
 public:
  /// Solves `initial` (generation 0) through the facade and publishes it.
  /// Throws whatever the facade throws on invalid options/instance.
  AllocationService(AllocationInstance initial, ServiceOptions options);

  /// Pin the current generation. Lock-free; never blocks on writers. The
  /// returned snapshot stays valid (and immutable) for the life of the
  /// pointer, even as newer generations are published.
  [[nodiscard]] std::shared_ptr<const AllocationSnapshot> snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Current generation number (the snapshot()'s generation()).
  [[nodiscard]] std::uint64_t generation() const {
    return snapshot()->generation();
  }

  /// Apply one mutation batch, re-solve, and publish the next generation,
  /// returning its snapshot. An empty batch publishes nothing and returns
  /// the current snapshot (generation unchanged). Throws
  /// std::invalid_argument on an invalid batch, leaving the published
  /// generation untouched. Thread-safe: concurrent writers serialize.
  std::shared_ptr<const AllocationSnapshot> apply(const MutationSet& batch);

  /// Copy of the cumulative writer counters (thread-safe).
  [[nodiscard]] ServiceCounters counters() const;

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  [[nodiscard]] bool warm_eligible() const;

  ServiceOptions options_;
  mutable std::mutex writer_mutex_;
  std::atomic<std::shared_ptr<const AllocationSnapshot>> current_;
  ServiceCounters counters_;  ///< guarded by writer_mutex_
};

}  // namespace mpcalloc::serve
