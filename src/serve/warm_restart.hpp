// Warm restart of the proportional dynamics after a mutation batch.
//
// The headline invariant: warm_solve is **bitwise identical** to a cold
// fixed-round solve of the mutated instance — same final levels, alloc
// values, materialised x_e, and MatchWeight, at every thread count — while
// recomputing only the neighbourhood the mutation actually perturbs.
//
// Mechanism: trajectory-diff replay against the previous generation's
// TrajectoryTape. The replay runs the same τ rounds from all-zero levels
// and maintains the *exact* level vector every round, but splits R into an
// active cone and its complement:
//
//  * Inactive vertices take their taped ±1 step verbatim — O(1) per taped
//    change, no adjacency scan. This is sound because a vertex stays
//    inactive only while every aggregate input it depends on (its own
//    capacity + neighbourhood, its 2-hop neighbourhood's levels and
//    adjacency) provably matches the previous run, in which case the dense
//    sweep would reproduce the taped step bit-for-bit (the per-entry
//    kernels recompute_left_entry / recompute_alloc_entry / level_step are
//    shared with the dense engine).
//  * Active vertices are recomputed with those shared full-neighbourhood
//    kernels. The cone starts from the mutation's dirty sets
//    (active_R ⊇ dirty_R ∪ N(dirty_L), active_L = N(active_R)) and grows
//    monotonically: whenever an active vertex's computed step diverges from
//    its tape, its 2-hop neighbourhood N(N(v)) joins the cone from the next
//    round — exactly when the divergence can first influence them.
//
// Final materialisation recomputes x_e only for edges with an active left
// endpoint; every other edge copies the previous generation's value through
// the MutationApplyResult edge map (its formula inputs are all
// unperturbed). The replay emits the new generation's tape by merging the
// previous tape with the active vertices' computed steps, so generations
// chain indefinitely.
//
// Requirements (the service falls back to a cold solve otherwise): the
// previous result must come from the same fixed-round schedule (tape rounds
// == rounds executed; no adaptive stop, whose global floating-point
// termination sums the replay cannot reproduce from a cone), Algorithm-1
// unit thresholds, and no weight-history tracking.
#pragma once

#include "alloc/solver.hpp"
#include "serve/mutation.hpp"

#include <cstdint>

namespace mpcalloc::serve {

/// Replay accounting, surfaced on the snapshot and the serving bench. The
/// volume counters are in adjacency entries scanned (the unit of the dense
/// sweeps): a cold dense solve costs τ·2m for the round sweeps plus m to
/// materialise, which is `dense_equiv_volume`.
struct WarmRestartStats {
  bool used = false;  ///< false ⇒ the generation was solved cold

  std::uint64_t recompute_volume = 0;    ///< adjacency entries rescanned
  std::uint64_t dense_equiv_volume = 0;  ///< τ·2m + m of the cold dense solve
  std::uint64_t taped_replays = 0;       ///< O(1) steps taken from the tape
  std::size_t divergences = 0;     ///< active vertices that left their tape
  std::size_t final_active_left = 0;
  std::size_t final_active_right = 0;
};

/// Warm-solve `instance` (the output of apply_mutations) against the
/// previous generation. `prev` must carry final_levels/final_alloc/
/// allocation of a fixed-round run whose tape is `prev_tape`; `delta` must
/// be the MutationApplyResult that produced `instance` from the previous
/// generation's instance. Runs exactly prev_tape.num_rounds() rounds.
/// `record_tape` (optional) receives the new generation's tape;
/// SolveResult.method is left at its default for the caller to stamp.
[[nodiscard]] SolveResult warm_solve(const AllocationInstance& instance,
                                     const SolveResult& prev,
                                     const TrajectoryTape& prev_tape,
                                     const MutationApplyResult& delta,
                                     double epsilon, std::size_t num_threads,
                                     TrajectoryTape* record_tape,
                                     WarmRestartStats& stats);

}  // namespace mpcalloc::serve
