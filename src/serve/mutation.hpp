// Batched graph churn for the always-on allocation service.
//
// A MutationSet is the unit of write traffic: grow either vertex side,
// add/remove edges, and retarget R-side capacities, applied as one atomic
// batch against an immutable base instance. apply_mutations never touches
// the base — it materialises a fresh AllocationInstance (vertices are
// append-only; surviving edges keep their relative order, so untouched
// adjacency lists keep their CSR scan order, which is what lets the warm
// restart copy their per-edge values bitwise) plus the bookkeeping the
// warm-restart engine consumes: a new-edge → old-edge id map and the dirty
// vertex sets whose round trajectories the mutation can perturb.
//
// Validation is strict and throws std::invalid_argument before any state is
// published: removes must name existing edges, adds must not duplicate a
// surviving or just-added edge, capacities must stay ≥ 1 (Definition 5),
// and every referenced vertex must be in range after the side growth.
#pragma once

#include "graph/bipartite_graph.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace mpcalloc::serve {

/// One batched write against the current generation. Ops are applied in a
/// fixed order regardless of field order: vertex growth → capacity sets →
/// edge removes → edge adds; added edges may reference just-added vertices.
struct MutationSet {
  struct CapacityChange {
    Vertex v = 0;
    std::uint32_t capacity = 1;  ///< must stay ≥ 1 (Definition 5)
  };

  std::size_t add_left_vertices = 0;
  std::size_t add_right_vertices = 0;  ///< new capacities default to 1
  std::vector<CapacityChange> set_capacities;
  std::vector<Edge> remove_edges;
  std::vector<Edge> add_edges;

  [[nodiscard]] bool empty() const {
    return add_left_vertices == 0 && add_right_vertices == 0 &&
           set_capacities.empty() && remove_edges.empty() && add_edges.empty();
  }
};

/// prior_edge value for edges introduced by the batch (no predecessor).
inline constexpr EdgeId kNoPriorEdge = std::numeric_limits<EdgeId>::max();

/// The mutated instance plus the diff bookkeeping the warm restart needs.
struct MutationApplyResult {
  AllocationInstance instance;

  /// New edge id → the same edge's id in the base graph; kNoPriorEdge for
  /// edges added by the batch. Surviving edges appear first, in base-id
  /// order, followed by the added edges in MutationSet order.
  std::vector<EdgeId> prior_edge;

  /// Vertices whose neighbourhood or capacity changed (sized to the new
  /// sides; includes the appended vertices). These seed the warm restart's
  /// active cone.
  std::vector<std::uint8_t> dirty_left;
  std::vector<std::uint8_t> dirty_right;

  std::size_t edges_removed = 0;
  std::size_t edges_added = 0;
};

/// Apply `batch` to `base`. Throws std::invalid_argument on any invalid op
/// (see file comment); `base` is never modified, so a throwing apply leaves
/// the caller's published state untouched.
[[nodiscard]] MutationApplyResult apply_mutations(const AllocationInstance& base,
                                                  const MutationSet& batch);

}  // namespace mpcalloc::serve
