#include "serve/service.hpp"

#include <utility>

namespace mpcalloc::serve {

AllocationService::AllocationService(AllocationInstance initial,
                                     ServiceOptions options)
    : options_(std::move(options)) {
  TrajectoryTape tape;
  SolveOptions solve = options_.solve;
  solve.record_tape = &tape;
  SolveResult result = Solver(std::move(solve)).solve(initial);
  counters_.generations_published = 1;
  counters_.cold_solves = 1;
  current_.store(std::make_shared<const AllocationSnapshot>(
                     0, std::move(initial), std::move(result), std::move(tape),
                     WarmRestartStats{}),
                 std::memory_order_release);
}

bool AllocationService::warm_eligible() const {
  const SolveOptions& s = options_.solve;
  return options_.enable_warm_restart &&
         (s.method == SolveMethod::kProportional ||
          s.method == SolveMethod::kTwoPlusEps) &&
         !s.threshold_k && !s.track_weight_history;
}

std::shared_ptr<const AllocationSnapshot> AllocationService::apply(
    const MutationSet& batch) {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  std::shared_ptr<const AllocationSnapshot> prev =
      current_.load(std::memory_order_acquire);
  if (batch.empty()) {
    // A no-op batch is not a generation: readers keep seeing the same
    // snapshot and no recompute happens.
    ++counters_.empty_batches;
    return prev;
  }
  MutationApplyResult applied = apply_mutations(prev->instance(), batch);

  TrajectoryTape tape;
  SolveResult result;
  WarmRestartStats warm;
  // Beyond the method gate, the previous generation must actually carry a
  // full fixed-round tape to replay against (it always does on the warm
  // path's own output, so warm generations chain).
  const bool replay = warm_eligible() && prev->tape().num_rounds() > 0 &&
                      prev->result().rounds_executed ==
                          prev->tape().num_rounds() &&
                      prev->result().final_alloc.size() ==
                          prev->instance().graph.num_right();
  if (replay) {
    result = warm_solve(applied.instance, prev->result(), prev->tape(),
                        applied, options_.solve.epsilon,
                        options_.solve.num_threads, &tape, warm);
    result.method = options_.solve.method;
    ++counters_.warm_restarts;
    counters_.warm_recompute_volume += warm.recompute_volume;
    counters_.warm_dense_equiv_volume += warm.dense_equiv_volume;
    counters_.warm_divergences += warm.divergences;
  } else {
    SolveOptions solve = options_.solve;
    solve.record_tape = &tape;
    result = Solver(std::move(solve)).solve(applied.instance);
    ++counters_.cold_solves;
  }
  counters_.edges_added += applied.edges_added;
  counters_.edges_removed += applied.edges_removed;
  counters_.capacity_changes += batch.set_capacities.size();
  ++counters_.generations_published;

  auto next = std::make_shared<const AllocationSnapshot>(
      prev->generation() + 1, std::move(applied.instance), std::move(result),
      std::move(tape), warm);
  current_.store(next, std::memory_order_release);
  return next;
}

ServiceCounters AllocationService::counters() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return counters_;
}

}  // namespace mpcalloc::serve
