#include "bmatch/proportional_bmatching.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

namespace {

/// Per-round L-side aggregation, as in alloc/proportional.cpp but weighted
/// by b_u at consumption time.
struct LeftAgg {
  std::vector<std::int32_t> max_level;
  std::vector<double> scaled_denominator;
};

LeftAgg left_aggregate(const BipartiteGraph& g,
                       const std::vector<std::int32_t>& levels,
                       const PowTable& pow_table) {
  LeftAgg agg;
  agg.max_level.assign(g.num_left(), std::numeric_limits<std::int32_t>::min());
  agg.scaled_denominator.assign(g.num_left(), 0.0);
  for (Vertex u = 0; u < g.num_left(); ++u) {
    const auto neighbors = g.left_neighbors(u);
    if (neighbors.empty()) continue;
    std::int32_t max_level = std::numeric_limits<std::int32_t>::min();
    for (const Incidence& inc : neighbors) {
      max_level = std::max(max_level, levels[inc.to]);
    }
    double denom = 0.0;
    for (const Incidence& inc : neighbors) {
      denom += pow_table.pow(levels[inc.to] - max_level);
    }
    agg.max_level[u] = max_level;
    agg.scaled_denominator[u] = denom;
  }
  return agg;
}

}  // namespace

ProportionalBMatchingResult run_proportional_bmatching(
    const BMatchingInstance& instance,
    const ProportionalBMatchingConfig& config) {
  instance.validate();
  if (config.rounds == 0) {
    throw std::invalid_argument("run_proportional_bmatching: rounds >= 1");
  }
  const auto& g = instance.graph;
  const PowTable pow_table(config.epsilon);

  ProportionalBMatchingResult result;
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<std::int32_t> start_levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);

  auto edge_x = [&](EdgeId e, const LeftAgg& agg,
                    const std::vector<std::int32_t>& lv) {
    const Edge& ed = g.edge(e);
    const double proportional =
        static_cast<double>(instance.left_capacities[ed.u]) *
        pow_table.pow(lv[ed.v] - agg.max_level[ed.u]) /
        agg.scaled_denominator[ed.u];
    return std::min(1.0, proportional);  // per-edge LP cap x_e <= 1
  };

  LeftAgg agg;
  for (std::size_t round = 1; round <= config.rounds; ++round) {
    start_levels = levels;
    agg = left_aggregate(g, levels, pow_table);
    std::fill(alloc.begin(), alloc.end(), 0.0);
    for (Vertex v = 0; v < g.num_right(); ++v) {
      for (const Incidence& inc : g.right_neighbors(v)) {
        alloc[v] += edge_x(inc.edge, agg, levels);
      }
    }
    for (Vertex v = 0; v < g.num_right(); ++v) {
      const auto cap = static_cast<double>(instance.right_capacities[v]);
      if (alloc[v] <= cap / (1.0 + config.epsilon)) {
        ++levels[v];
      } else if (alloc[v] >= cap * (1.0 + config.epsilon)) {
        --levels[v];
      }
    }
    result.rounds_executed = round;
  }

  // Materialise: scale each v's incoming mass to its capacity; the per-edge
  // clamp and the b_u-proportional split keep the L side feasible.
  const LeftAgg final_agg = left_aggregate(g, start_levels, pow_table);
  result.matching.x.assign(g.num_edges(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (g.left_degree(ed.u) == 0) continue;
    const double x = edge_x(e, final_agg, start_levels);
    const auto cap = static_cast<double>(instance.right_capacities[ed.v]);
    const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
    result.matching.x[e] = x * scale;
  }
  double weight = 0.0;
  for (Vertex v = 0; v < g.num_right(); ++v) {
    weight += std::min(alloc[v],
                       static_cast<double>(instance.right_capacities[v]));
  }
  result.match_weight = weight;
  result.final_levels = std::move(levels);
  return result;
}

}  // namespace mpcalloc
