#include "bmatch/proportional_bmatching.hpp"

#include "alloc/proportional.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

ProportionalBMatchingResult run_proportional_bmatching(
    const BMatchingInstance& instance,
    const ProportionalBMatchingConfig& config) {
  instance.validate();
  if (config.rounds == 0) {
    throw std::invalid_argument("run_proportional_bmatching: rounds >= 1");
  }
  if (!(config.dense_switch_fraction >= 0.0)) {
    throw std::invalid_argument(
        "run_proportional_bmatching: dense_switch_fraction must be >= 0");
  }
  const auto& g = instance.graph;
  const std::size_t num_threads = resolve_num_threads(config.num_threads);
  const RoundEngine engine = resolve_round_engine(config.engine);
  const PowTable pow_table(config.epsilon);

  ProportionalBMatchingResult result;
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);

  // The L-side aggregation is identical to Algorithm 1's (the b_u weight is
  // applied at consumption time), so the engine's sweep is reused directly.
  auto edge_x = [&](EdgeId e, const LeftAggregate& agg,
                    const std::vector<std::int32_t>& lv) {
    const Edge& ed = g.edge(e);
    const double proportional =
        static_cast<double>(instance.left_capacities[ed.u]) *
        pow_table.pow(lv[ed.v] - agg.max_level[ed.u]) *
        agg.inv_scaled_denominator[ed.u];
    return std::min(1.0, proportional);  // per-edge LP cap x_e <= 1
  };
  // Per-vertex body shared by the dense sweep and the incremental refresh,
  // so both paths sum the identical terms in incidence order.
  auto alloc_entry = [&](Vertex v, const LeftAggregate& agg) {
    double total = 0.0;
    for (const Incidence& inc : g.right_neighbors(v)) {
      total += edge_x(inc.edge, agg, levels);
    }
    return total;
  };

  LeftAggregate agg;
  RoundWorkspace ws;
  ws.init(g);
  bool have_frontier = false;
  for (std::size_t round = 1; round <= config.rounds; ++round) {
    RoundStats round_stats;
    round_stats.sparse = ws.choose_sparse(g, engine, have_frontier,
                                          config.dense_switch_fraction);
    if (round_stats.sparse) {
      parallel_for_each_vertex(ws.touched_left(), num_threads, [&](Vertex u) {
        recompute_left_entry(g, levels, pow_table, u, agg);
      });
      parallel_for_each_vertex(ws.touched_right(), num_threads, [&](Vertex v) {
        alloc[v] = alloc_entry(v, agg);
      });
      round_stats.recomputed_left = ws.touched_left().size();
      round_stats.recomputed_right = ws.touched_right().size();
    } else {
      compute_left_aggregate_into(g, levels, pow_table, num_threads, agg);
      parallel_for(0, g.num_right(), kParallelTile, num_threads,
                   [&](std::size_t tile_begin, std::size_t tile_end) {
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          alloc[v] = alloc_entry(v, agg);
        }
      });
    }
    apply_level_update(std::span<const std::uint32_t>(instance.right_capacities),
                       alloc, config.epsilon, round, nullptr, levels,
                       num_threads, &ws.deltas);
    ws.derive_frontier(g, ws.deltas, num_threads);
    have_frontier = true;
    round_stats.frontier_size = ws.frontier().size();
    round_stats.frontier_volume = ws.frontier_volume();
    result.stats.record_round(round_stats);
    result.rounds_executed = round;
  }

  // Materialise: scale each v's incoming mass to its capacity; the per-edge
  // clamp and the b_u-proportional split keep the L side feasible. `agg` is
  // the final round's aggregate, computed from that round's start levels —
  // recover them by undoing the final update instead of snapshotting the
  // level vector every round.
  const std::vector<std::int32_t> start_levels =
      reconstruct_start_levels(levels, ws.deltas, num_threads);
  result.matching.x.assign(g.num_edges(), 0.0);
  parallel_for(0, g.num_edges(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (EdgeId e = static_cast<EdgeId>(tile_begin); e < tile_end; ++e) {
      const Edge& ed = g.edge(e);
      if (g.left_degree(ed.u) == 0) continue;
      const double x = edge_x(e, agg, start_levels);
      const auto cap = static_cast<double>(instance.right_capacities[ed.v]);
      const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
      result.matching.x[e] = x * scale;
    }
  });
  result.match_weight = parallel_reduce<double>(
      0, g.num_right(), kParallelTile, num_threads, 0.0,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        double weight = 0.0;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          weight += std::min(
              alloc[v], static_cast<double>(instance.right_capacities[v]));
        }
        return weight;
      },
      std::plus<>());
  result.final_levels = std::move(levels);
  return result;
}

}  // namespace mpcalloc
