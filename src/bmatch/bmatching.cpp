#include "bmatch/bmatching.hpp"

#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>

namespace mpcalloc {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

[[noreturn]] void fail(const std::string& what) {
  throw std::logic_error("b-matching validity: " + what);
}
}  // namespace

std::uint64_t BMatchingInstance::total_left_capacity() const {
  std::uint64_t total = 0;
  for (const auto b : left_capacities) total += b;
  return total;
}

std::uint64_t BMatchingInstance::total_right_capacity() const {
  std::uint64_t total = 0;
  for (const auto b : right_capacities) total += b;
  return total;
}

void BMatchingInstance::validate() const {
  if (left_capacities.size() != graph.num_left() ||
      right_capacities.size() != graph.num_right()) {
    throw std::invalid_argument("BMatchingInstance: capacity size mismatch");
  }
  for (const auto b : left_capacities) {
    if (b == 0) throw std::invalid_argument("BMatchingInstance: b_u >= 1");
  }
  for (const auto b : right_capacities) {
    if (b == 0) throw std::invalid_argument("BMatchingInstance: b_v >= 1");
  }
  graph.validate();
}

BMatchingInstance BMatchingInstance::from_allocation(
    const AllocationInstance& instance) {
  BMatchingInstance out;
  out.graph = instance.graph;
  out.left_capacities.assign(instance.graph.num_left(), 1);
  out.right_capacities = instance.capacities;
  return out;
}

bool BMatching::is_valid(const BMatchingInstance& instance) const {
  try {
    check_valid(instance);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void BMatching::check_valid(const BMatchingInstance& instance) const {
  const auto& g = instance.graph;
  std::vector<std::uint32_t> left_use(g.num_left(), 0);
  std::vector<std::uint32_t> right_use(g.num_right(), 0);
  std::vector<std::uint8_t> used(g.num_edges(), 0);
  for (const EdgeId e : edges) {
    if (e >= g.num_edges()) fail("edge id out of range");
    if (used[e]) fail("edge repeated");
    used[e] = 1;
    const Edge& ed = g.edge(e);
    if (++left_use[ed.u] > instance.left_capacities[ed.u]) {
      fail("left vertex " + std::to_string(ed.u) + " exceeds b_u");
    }
    if (++right_use[ed.v] > instance.right_capacities[ed.v]) {
      fail("right vertex " + std::to_string(ed.v) + " exceeds b_v");
    }
  }
}

double FractionalBMatching::weight() const {
  double total = 0.0;
  for (const double value : x) total += value;
  return total;
}

bool FractionalBMatching::is_valid(const BMatchingInstance& instance,
                                   double tolerance) const {
  try {
    check_valid(instance, tolerance);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void FractionalBMatching::check_valid(const BMatchingInstance& instance,
                                      double tolerance) const {
  const auto& g = instance.graph;
  if (x.size() != g.num_edges()) fail("x size mismatch");
  std::vector<double> left_load(g.num_left(), 0.0);
  std::vector<double> right_load(g.num_right(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!(x[e] >= -tolerance) || !(x[e] <= 1.0 + tolerance)) {
      fail("x outside [0,1]");
    }
    left_load[g.edge(e).u] += x[e];
    right_load[g.edge(e).v] += x[e];
  }
  for (Vertex u = 0; u < g.num_left(); ++u) {
    const auto cap = static_cast<double>(instance.left_capacities[u]);
    if (left_load[u] > cap + tolerance * std::max(1.0, cap)) {
      fail("left load exceeds b_u at " + std::to_string(u));
    }
  }
  for (Vertex v = 0; v < g.num_right(); ++v) {
    const auto cap = static_cast<double>(instance.right_capacities[v]);
    if (right_load[v] > cap + tolerance * std::max(1.0, cap)) {
      fail("right load exceeds b_v at " + std::to_string(v));
    }
  }
}

OptimalBMatchingResult solve_optimal_bmatching(
    const BMatchingInstance& instance) {
  instance.validate();
  const auto& g = instance.graph;
  const std::size_t nl = g.num_left(), nr = g.num_right();
  const std::size_t source = 0, sink = 1 + nl + nr;
  DinicMaxFlow flow(sink + 1);
  for (Vertex u = 0; u < nl; ++u) {
    flow.add_edge(source, 1 + u, instance.left_capacities[u]);
  }
  std::vector<std::size_t> handles;
  handles.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    handles.push_back(flow.add_edge(1 + g.edge(e).u, 1 + nl + g.edge(e).v, 1));
  }
  for (Vertex v = 0; v < nr; ++v) {
    flow.add_edge(1 + nl + v, sink, instance.right_capacities[v]);
  }
  OptimalBMatchingResult result;
  result.value = static_cast<std::uint64_t>(flow.solve(source, sink));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (flow.flow_on(handles[e]) > 0) result.matching.edges.push_back(e);
  }
  result.matching.check_valid(instance);
  return result;
}

std::uint64_t optimal_bmatching_value(const BMatchingInstance& instance) {
  return solve_optimal_bmatching(instance).value;
}

BMatching greedy_bmatching(const BMatchingInstance& instance) {
  instance.validate();
  const auto& g = instance.graph;
  std::vector<std::uint32_t> left_residual(instance.left_capacities);
  std::vector<std::uint32_t> right_residual(instance.right_capacities);
  BMatching out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (left_residual[ed.u] > 0 && right_residual[ed.v] > 0) {
      --left_residual[ed.u];
      --right_residual[ed.v];
      out.edges.push_back(e);
    }
  }
  return out;
}

namespace {

/// Mutable b-matching with O(1) edge attach/detach. Residuals may go
/// transiently negative on the L side during walk replay (the booster
/// re-checks global validity at the end).
class BMatchState {
 public:
  BMatchState(const BMatchingInstance& instance, const BMatching& initial)
      : instance_(instance),
        matched_(instance.graph.num_edges(), 0),
        left_used_(instance.graph.num_left(), 0),
        right_used_(instance.graph.num_right(), 0),
        matched_at_(instance.graph.num_right()),
        position_(instance.graph.num_edges(), 0) {
    initial.check_valid(instance);
    for (const EdgeId e : initial.edges) attach(e);
  }

  [[nodiscard]] bool is_matched(EdgeId e) const { return matched_[e] != 0; }
  [[nodiscard]] std::int64_t left_residual(Vertex u) const {
    return static_cast<std::int64_t>(instance_.left_capacities[u]) -
           left_used_[u];
  }
  [[nodiscard]] std::int64_t right_residual(Vertex v) const {
    return static_cast<std::int64_t>(instance_.right_capacities[v]) -
           right_used_[v];
  }
  [[nodiscard]] const std::vector<EdgeId>& matched_at(Vertex v) const {
    return matched_at_[v];
  }

  void attach(EdgeId e) {
    const Edge& ed = instance_.graph.edge(e);
    matched_[e] = 1;
    ++left_used_[ed.u];
    ++right_used_[ed.v];
    position_[e] = matched_at_[ed.v].size();
    matched_at_[ed.v].push_back(e);
  }

  void detach(EdgeId e) {
    const Edge& ed = instance_.graph.edge(e);
    matched_[e] = 0;
    --left_used_[ed.u];
    --right_used_[ed.v];
    auto& list = matched_at_[ed.v];
    const std::size_t pos = position_[e];
    list[pos] = list.back();
    position_[list[pos]] = pos;
    list.pop_back();
  }

  [[nodiscard]] BMatching extract() const {
    BMatching out;
    for (EdgeId e = 0; e < matched_.size(); ++e) {
      if (matched_[e]) out.edges.push_back(e);
    }
    return out;
  }

 private:
  const BMatchingInstance& instance_;
  std::vector<std::uint8_t> matched_;
  std::vector<std::uint32_t> left_used_;
  std::vector<std::uint32_t> right_used_;
  std::vector<std::vector<EdgeId>> matched_at_;
  std::vector<std::size_t> position_;
};

/// One Hopcroft–Karp-style phase of the b-matching booster.
class BMatchPhase {
 public:
  BMatchPhase(BMatchState& state, const BMatchingInstance& instance,
              std::uint32_t max_pairs)
      : state_(state),
        graph_(instance.graph),
        max_pairs_(max_pairs),
        dist_(graph_.num_left(), kUnreached),
        visited_(graph_.num_left(), 0) {}

  std::size_t run() {
    if (!bfs()) return 0;
    std::size_t augmented = 0;
    for (Vertex u = 0; u < graph_.num_left(); ++u) {
      // Roots: L vertices with residual capacity (may augment several times
      // if b_u > used; each dfs claims one unit).
      while (state_.left_residual(u) > 0 && dist_[u] == 0 && !visited_[u]) {
        if (!dfs(u)) {
          visited_[u] = 1;
          break;
        }
        ++augmented;
      }
    }
    return augmented;
  }

 private:
  bool bfs() {
    std::fill(dist_.begin(), dist_.end(), kUnreached);
    std::queue<Vertex> queue;
    for (Vertex u = 0; u < graph_.num_left(); ++u) {
      if (state_.left_residual(u) > 0) {
        dist_[u] = 0;
        queue.push(u);
      }
    }
    bool reachable = false;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      for (const Incidence& inc : graph_.left_neighbors(u)) {
        if (state_.is_matched(inc.edge)) continue;
        if (state_.right_residual(inc.to) > 0) reachable = true;
        if (dist_[u] >= max_pairs_) continue;
        for (const EdgeId f : state_.matched_at(inc.to)) {
          const Vertex w = graph_.edge(f).u;
          if (dist_[w] == kUnreached) {
            dist_[w] = dist_[u] + 1;
            queue.push(w);
          }
        }
      }
    }
    return reachable;
  }

  bool dfs(Vertex u) {
    for (const Incidence& inc : graph_.left_neighbors(u)) {
      if (state_.is_matched(inc.edge)) continue;
      if (state_.right_residual(inc.to) > 0) {
        state_.attach(inc.edge);
        return true;
      }
    }
    if (dist_[u] >= max_pairs_) return false;
    for (const Incidence& inc : graph_.left_neighbors(u)) {
      if (state_.is_matched(inc.edge)) continue;
      const Vertex v = inc.to;
      const std::vector<EdgeId> partners(state_.matched_at(v).begin(),
                                         state_.matched_at(v).end());
      for (const EdgeId f : partners) {
        if (!state_.is_matched(f)) continue;  // displaced earlier in the loop
        const Vertex w = graph_.edge(f).u;
        if (visited_[w] || dist_[w] != dist_[u] + 1) continue;
        visited_[w] = 1;
        if (dfs(w)) {
          // w gained a unit elsewhere; hand its unit of v to u.
          state_.detach(f);
          state_.attach(inc.edge);
          return true;
        }
      }
    }
    return false;
  }

  BMatchState& state_;
  const BipartiteGraph& graph_;
  std::uint32_t max_pairs_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint8_t> visited_;
};

}  // namespace

BMatchBoostResult boost_bmatching(const BMatchingInstance& instance,
                                  const BMatching& initial,
                                  std::size_t max_walk_length) {
  instance.validate();
  if (max_walk_length % 2 == 0 || max_walk_length == 0) {
    throw std::invalid_argument("boost_bmatching: walk length must be odd");
  }
  const auto max_pairs = static_cast<std::uint32_t>((max_walk_length - 1) / 2);
  BMatchState state(instance, initial);

  BMatchBoostResult result;
  for (;;) {
    BMatchPhase phase(state, instance, max_pairs);
    const std::size_t augmented = phase.run();
    if (augmented == 0) break;
    ++result.phases;
    result.augmentations_per_phase.push_back(augmented);
  }
  result.matching = state.extract();
  result.matching.check_valid(instance);
  return result;
}

}  // namespace mpcalloc
