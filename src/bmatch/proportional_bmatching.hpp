// EXPERIMENTAL: two-sided proportional dynamics for general b-matching.
//
// Section 1.2.1 of the paper leaves open whether Θ(1)-approximate
// b-matching is solvable in o(log n) (or o(log λ)) sublinear-MPC rounds and
// calls the allocation result "the first step towards answering that
// question in the affirmative". This module takes the natural next step the
// paper hints at: run the AZM18 priority dynamics with every u ∈ L spreading
// b_u units proportionally to the R-side priorities,
//
//     x_{u,v} = min(1, b_u · β_v / Σ_{v'∈N_u} β_{v'}),
//
// and the usual multiplicative β update against the C_v thresholds. There
// is no proven bound for this generalization — bench_bmatching measures the
// empirical approximation ratio against the exact flow oracle across
// arboricity and round budgets, and the booster supplies a certified
// integral (1+ε) endpoint for comparison.
#pragma once

#include "alloc/levels.hpp"
#include "alloc/options.hpp"
#include "alloc/round_engine.hpp"
#include "bmatch/bmatching.hpp"

#include <cstdint>
#include <vector>

namespace mpcalloc {

/// Deprecated spellings: `num_threads`, `engine`, and
/// `dense_switch_fraction` used to be declared directly here; they now come
/// from the CommonOptions base (alloc/options.hpp) with unchanged names,
/// defaults, and semantics (bitwise-deterministic across thread counts and
/// engine choices, as in ProportionalConfig). The dynamics draw no
/// randomness, so the inherited `seed` is ignored.
struct ProportionalBMatchingConfig : CommonOptions {
  double epsilon = 0.25;
  std::size_t rounds = 0;  ///< must be ≥ 1
};

struct ProportionalBMatchingResult {
  FractionalBMatching matching;  ///< feasible (clamped + scaled) output
  double match_weight = 0.0;     ///< Σ_v min(C_v, alloc_v)
  std::size_t rounds_executed = 0;
  std::vector<std::int32_t> final_levels;  ///< R-side priority levels
  SolveStats stats;              ///< per-round frontier/engine counters
};

[[nodiscard]] ProportionalBMatchingResult run_proportional_bmatching(
    const BMatchingInstance& instance,
    const ProportionalBMatchingConfig& config);

}  // namespace mpcalloc
