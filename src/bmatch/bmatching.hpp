// General bipartite b-matching (Definition 21) — the paper's allocation
// problem with capacities on *both* sides.
//
// Section 1.2.1 poses the open question whether Θ(1)-approximate b-matching
// is solvable in o(log n) (or o(log λ)) sublinear-MPC rounds; the paper's
// allocation result is "the first step towards answering that question in
// the affirmative". This module supplies the substrate for that step —
// exact oracle, greedy seeds, a length-bounded booster — plus an
// *experimental* two-sided generalization of the proportional dynamics
// (see proportional_bmatching.hpp) that bench_bmatching evaluates
// empirically.
#pragma once

#include "graph/bipartite_graph.hpp"

#include <cstdint>
#include <vector>

namespace mpcalloc {

/// A b-matching instance: capacities b_u on L and b_v on R (all ≥ 1).
/// Allocation (Definition 5) is the special case left_capacities ≡ 1.
struct BMatchingInstance {
  BipartiteGraph graph;
  Capacities left_capacities;   ///< size == graph.num_left()
  Capacities right_capacities;  ///< size == graph.num_right()

  [[nodiscard]] std::uint64_t total_left_capacity() const;
  [[nodiscard]] std::uint64_t total_right_capacity() const;

  /// Throws std::invalid_argument on size mismatch or zero capacities.
  void validate() const;

  /// View an allocation instance as a b-matching instance (b_u ≡ 1).
  [[nodiscard]] static BMatchingInstance from_allocation(
      const AllocationInstance& instance);
};

/// An integral b-matching: a multiset-free edge subset respecting both
/// capacity vectors.
struct BMatching {
  std::vector<EdgeId> edges;

  [[nodiscard]] std::size_t size() const { return edges.size(); }
  [[nodiscard]] bool is_valid(const BMatchingInstance& instance) const;
  void check_valid(const BMatchingInstance& instance) const;
};

/// A fractional b-matching: x_e ∈ [0,1], Σ_{v} x_{u,v} ≤ b_u, Σ_u x ≤ b_v.
struct FractionalBMatching {
  std::vector<double> x;

  [[nodiscard]] double weight() const;
  [[nodiscard]] bool is_valid(const BMatchingInstance& instance,
                              double tolerance = 1e-9) const;
  void check_valid(const BMatchingInstance& instance,
                   double tolerance = 1e-9) const;
};

/// Exact maximum b-matching via max flow (LP-integral, so this is also the
/// fractional optimum).
struct OptimalBMatchingResult {
  std::uint64_t value = 0;
  BMatching matching;
};
[[nodiscard]] OptimalBMatchingResult solve_optimal_bmatching(
    const BMatchingInstance& instance);
[[nodiscard]] std::uint64_t optimal_bmatching_value(
    const BMatchingInstance& instance);

/// Maximal greedy b-matching (scan edges; take while both endpoints have
/// residual capacity). Any maximal b-matching is a 2-approximation.
[[nodiscard]] BMatching greedy_bmatching(const BMatchingInstance& instance);

/// Eliminate every augmenting walk of length ≤ max_walk_length (odd) in the
/// b-matching residual structure; with 2⌈1/ε⌉+1 this certifies (1+ε).
/// Generalizes alloc/boosting.cpp's booster to capacities on both sides.
struct BMatchBoostResult {
  BMatching matching;
  std::size_t phases = 0;
  std::vector<std::size_t> augmentations_per_phase;
};
[[nodiscard]] BMatchBoostResult boost_bmatching(
    const BMatchingInstance& instance, const BMatching& initial,
    std::size_t max_walk_length);

}  // namespace mpcalloc
