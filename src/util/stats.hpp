// Descriptive statistics and simple regression fits used by the benchmark
// harness to report experiment tables (means, spreads, scaling slopes).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mpcalloc {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};

/// Compute summary statistics. Empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Percentile via linear interpolation on the sorted sample; q in [0,1].
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Ordinary least-squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Fit y = a + b*log2(x). Useful for verifying O(log λ) round-count claims:
/// the slope b is the per-doubling round increment.
[[nodiscard]] LinearFit log2_fit(std::span<const double> x,
                                 std::span<const double> y);

/// Pearson correlation coefficient.
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

/// Human-readable "mean ± stddev" with the given precision.
[[nodiscard]] std::string mean_pm_std(const Summary& s, int precision = 2);

}  // namespace mpcalloc
