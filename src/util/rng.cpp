#include "util/rng.hpp"

#include <unordered_set>

namespace mpcalloc {

std::vector<std::uint32_t> Xoshiro256pp::sample_indices(std::uint32_t n,
                                                        std::uint32_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::uint32_t> result;
  result.reserve(k);
  if (k == 0) return result;
  // For dense requests, a partial Fisher–Yates over an index array is
  // cheaper than rejection; for sparse requests use Floyd's algorithm.
  if (k * 3 >= n) {
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(uniform(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(uniform(j + 1));
    if (!chosen.insert(t).second) {
      chosen.insert(j);
      t = j;
    }
    result.push_back(t);
  }
  return result;
}

}  // namespace mpcalloc
