#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mpcalloc {

namespace {
// Set while a thread owns a submitted job, so a nested run() from a tile
// body on that same thread goes inline instead of calling try_lock on a
// mutex it already holds (UB for std::mutex).
thread_local bool tl_owns_pool_job = false;
}  // namespace

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MPCALLOC_THREADS")) {
    // A set-but-broken value is a configuration error, not a request for
    // the default: silently falling back would run every sweep on a thread
    // count the user never asked for.
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (errno == ERANGE || end == env || *end != '\0' || value <= 0) {
      throw std::invalid_argument(
          std::string("MPCALLOC_THREADS must be a positive integer, got \"") +
          env + "\"");
    }
    return static_cast<std::size_t>(value);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

// One tile-indexed job. Lifetime is managed by shared_ptr so a worker that
// observes the job after the caller already returned (all tiles claimed)
// still holds valid memory.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t num_tiles = 0;
  std::atomic<std::size_t> next{0};     ///< next unclaimed tile
  std::atomic<std::size_t> done{0};     ///< completed (or cancelled) tiles
  std::atomic<std::ptrdiff_t> tickets{0};  ///< worker participation budget
  std::mutex error_mutex;
  std::exception_ptr error;             ///< first exception thrown by a tile
};

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::credit_done(Job& job, std::size_t tiles) {
  if (tiles == 0) return;
  if (job.done.fetch_add(tiles) + tiles == job.num_tiles) {
    const std::lock_guard<std::mutex> lock(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::execute_tile(Job& job, std::size_t tile) {
  // Exceptions must not escape to worker_loop (std::terminate) or unwind
  // the caller while workers still hold job.fn: record the first one,
  // cancel the unclaimed remainder (crediting it as done so the completion
  // count still converges), and let the caller rethrow after the wait.
  try {
    (*job.fn)(tile);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    const std::size_t cancelled_from = job.next.exchange(job.num_tiles);
    if (cancelled_from < job.num_tiles) {
      credit_done(job, job.num_tiles - cancelled_from);
    }
  }
  credit_done(job, 1);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock,
                    [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    // The ticket bound keeps the *number* of participating threads at the
    // caller's request; which workers win tickets never affects results.
    if (!job || job->tickets.fetch_sub(1) <= 0) continue;
    for (;;) {
      const std::size_t tile = job->next.fetch_add(1);
      if (tile >= job->num_tiles) break;
      execute_tile(*job, tile);
    }
  }
}

void ThreadPool::run(std::size_t num_tiles, std::size_t max_parallelism,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tiles == 0) return;
  const std::size_t helpers =
      std::min(max_parallelism > 0 ? max_parallelism - 1 : 0, workers_.size());
  if (num_tiles == 1 || helpers == 0) {
    for (std::size_t tile = 0; tile < num_tiles; ++tile) fn(tile);
    return;
  }
  // One job at a time: a reentrant call from this thread's own tile body or
  // a second concurrent caller falls back to running its tiles inline
  // instead of clobbering the published job (results are identical either
  // way — only the parallelism degrades).
  if (tl_owns_pool_job) {
    for (std::size_t tile = 0; tile < num_tiles; ++tile) fn(tile);
    return;
  }
  const std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (!submit.owns_lock()) {
    for (std::size_t tile = 0; tile < num_tiles; ++tile) fn(tile);
    return;
  }
  tl_owns_pool_job = true;
  struct OwnerFlagReset {
    ~OwnerFlagReset() { tl_owns_pool_job = false; }
  } owner_flag_reset;

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tiles = num_tiles;
  job->tickets.store(static_cast<std::ptrdiff_t>(helpers));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  cv_work_.notify_all();

  // The caller is always one of the executing threads.
  for (;;) {
    const std::size_t tile = job->next.fetch_add(1);
    if (tile >= num_tiles) break;
    execute_tile(*job, tile);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return job->done.load() == num_tiles; });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global() {
  // Sized by the hardware, not by resolve_num_threads: MPCALLOC_THREADS
  // only chooses the *default* request, it must not cap an explicit
  // num_threads larger than it.
  static ThreadPool pool([] {
    const unsigned hardware = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hardware > 0 ? hardware : 1);
  }());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t tile_size,
                  std::size_t num_threads,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (tile_size == 0) tile_size = 1;
  if (num_threads == 0) num_threads = resolve_num_threads(0);
  const std::size_t num_tiles = (end - begin + tile_size - 1) / tile_size;
  const auto run_tile = [&](std::size_t tile) {
    const std::size_t tile_begin = begin + tile * tile_size;
    body(tile_begin, std::min(end, tile_begin + tile_size));
  };
  if (num_threads <= 1 || num_tiles == 1) {
    for (std::size_t tile = 0; tile < num_tiles; ++tile) run_tile(tile);
    return;
  }
  ThreadPool::global().run(num_tiles, num_threads, run_tile);
}

}  // namespace mpcalloc
