#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mpcalloc {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

CliParser& CliParser::option(std::string name, std::string default_value,
                             std::string help) {
  options_[std::move(name)] =
      Option{std::move(default_value), std::move(help), /*is_flag=*/false};
  return *this;
}

CliParser& CliParser::flag(std::string name, std::string help) {
  options_[std::move(name)] = Option{"0", std::move(help), /*is_flag=*/true};
  return *this;
}

CliParser& CliParser::threads_option() {
  return option("threads", "0",
                "solver worker threads (0 = MPCALLOC_THREADS env or "
                "hardware concurrency)");
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
    }
    const auto it = options_.find(key);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option: --" + key);
    }
    if (it->second.is_flag) {
      if (eq != std::string::npos) {
        throw std::invalid_argument("flag --" + key + " does not take a value");
      }
      // Materialise the literal as a std::string before it reaches the map:
      // GCC 12 emits a spurious -Wrestrict (PR105329) when the char* assign
      // path is inlined into a map-held string.
      values_.insert_or_assign(key, std::string("1"));
    } else if (eq != std::string::npos) {
      values_[key] = value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
      values_[key] = std::string(argv[++i]);
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto declared = options_.find(name);
  if (declared == options_.end()) {
    throw std::logic_error("option not declared: --" + name);
  }
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : declared->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "1";
}

std::vector<std::int64_t> CliParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

void CliParser::print_usage() const {
  std::printf("%s\n\nUsage: %s [options]\n\nOptions:\n", description_.c_str(),
              program_name_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::printf("  --%-24s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-24s %s (default: %s)\n", (name + "=<v>").c_str(),
                  opt.help.c_str(), opt.default_value.c_str());
    }
  }
}

}  // namespace mpcalloc
