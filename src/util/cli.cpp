#include "util/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mpcalloc {

namespace {

/// Strict base-10 integer parse of the *entire* string. std::stoll would
/// happily accept "8x" (dropping the suffix) and silently truncate; here a
/// trailing character, an empty value, or an out-of-range magnitude all
/// throw with the option name in the message — the same fail-loudly
/// contract resolve_num_threads applies to MPCALLOC_THREADS.
std::int64_t parse_int_strict(const std::string& value,
                              const std::string& option) {
  std::int64_t out = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("option --" + option + ": value '" + value +
                                "' is out of range for a 64-bit integer");
  }
  if (ec != std::errc() || ptr != last || value.empty()) {
    throw std::invalid_argument("option --" + option + ": expected an " +
                                "integer, got '" + value + "'");
  }
  return out;
}

double parse_double_strict(const std::string& value,
                           const std::string& option) {
  if (value.empty()) {
    throw std::invalid_argument("option --" + option + ": expected a number, "
                                "got an empty value");
  }
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("option --" + option + ": expected a number, "
                                "got '" + value + "'");
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("option --" + option + ": value '" + value +
                                "' is out of range for a double");
  }
  if (consumed != value.size()) {
    throw std::invalid_argument("option --" + option + ": trailing garbage "
                                "in '" + value + "'");
  }
  if (!std::isfinite(out)) {
    throw std::invalid_argument("option --" + option + ": value '" + value +
                                "' is not finite");
  }
  return out;
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

CliParser& CliParser::option(std::string name, std::string default_value,
                             std::string help) {
  options_[std::move(name)] =
      Option{std::move(default_value), std::move(help), /*is_flag=*/false};
  return *this;
}

CliParser& CliParser::flag(std::string name, std::string help) {
  options_[std::move(name)] = Option{"0", std::move(help), /*is_flag=*/true};
  return *this;
}

CliParser& CliParser::threads_option() {
  return option("threads", "0",
                "solver worker threads (0 = MPCALLOC_THREADS env or "
                "hardware concurrency)");
}

CliParser& CliParser::transport_option() {
  return option("transport", "auto",
                "MPC exchange backend: inprocess (same address space), "
                "process (forked workers over shared-memory rings), or auto "
                "(defer to MPCALLOC_TRANSPORT)");
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
    }
    const auto it = options_.find(key);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option: --" + key);
    }
    if (it->second.is_flag) {
      if (eq != std::string::npos) {
        throw std::invalid_argument("flag --" + key + " does not take a value");
      }
      // Materialise the literal as a std::string before it reaches the map:
      // GCC 12 emits a spurious -Wrestrict (PR105329) when the char* assign
      // path is inlined into a map-held string.
      values_.insert_or_assign(key, std::string("1"));
    } else if (eq != std::string::npos) {
      values_[key] = value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
      values_[key] = std::string(argv[++i]);
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto declared = options_.find(name);
  if (declared == options_.end()) {
    throw std::logic_error("option not declared: --" + name);
  }
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : declared->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return parse_int_strict(get(name), name);
}

std::uint64_t CliParser::get_size(const std::string& name) const {
  const std::int64_t value = parse_int_strict(get(name), name);
  if (value < 0) {
    throw std::invalid_argument("option --" + name + ": must be >= 0, got " +
                                std::to_string(value));
  }
  return static_cast<std::uint64_t>(value);
}

double CliParser::get_double(const std::string& name) const {
  return parse_double_strict(get(name), name);
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "1";
}

std::vector<std::int64_t> CliParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_int_strict(item, name));
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_double_strict(item, name));
  }
  return out;
}

void CliParser::print_usage() const {
  std::printf("%s\n\nUsage: %s [options]\n\nOptions:\n", description_.c_str(),
              program_name_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::printf("  --%-24s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-24s %s (default: %s)\n", (name + "=<v>").c_str(),
                  opt.help.c_str(), opt.default_value.c_str());
    }
  }
}

}  // namespace mpcalloc
