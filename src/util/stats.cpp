#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mpcalloc {

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.stddev = values.size() > 1
                 ? std::sqrt(ss / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.median = percentile(values, 0.5);
  s.p10 = percentile(values, 0.1);
  s.p90 = percentile(values, 0.9);
  return s;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("linear_fit: size mismatch");
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit log2_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0) throw std::invalid_argument("log2_fit: x must be positive");
    lx[i] = std::log2(x[i]);
  }
  return linear_fit(lx, y);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::string mean_pm_std(const Summary& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.mean << " ± " << s.stddev;
  return os.str();
}

}  // namespace mpcalloc
