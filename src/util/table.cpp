#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mpcalloc {

Table& Table::header(std::vector<std::string> columns) {
  if (!rows_.empty()) throw std::logic_error("Table::header after rows added");
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw std::invalid_argument("Table::row: arity mismatch with header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t ncols = header.size();
  for (const auto& r : rows) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> w(ncols, 0);
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  }
  return w;
}

void print_rule(std::ostream& os, const std::vector<std::size_t>& w) {
  os << '+';
  for (std::size_t width : w) {
    for (std::size_t i = 0; i < width + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::size_t>& w,
                 const std::vector<std::string>& cells) {
  os << '|';
  for (std::size_t c = 0; c < w.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << cell;
    for (std::size_t i = cell.size(); i < w[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}
}  // namespace

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  const auto w = column_widths(header_, rows_);
  if (w.empty()) return;
  print_rule(os, w);
  if (!header_.empty()) {
    print_cells(os, w, header_);
    print_rule(os, w);
  }
  for (const auto& r : rows_) print_cells(os, w, r);
  print_rule(os, w);
}

void Table::print_markdown(std::ostream& os) const {
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  if (header_.empty() && rows_.empty()) return;
  auto emit = [&os](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << (c + 1 < cells.size() ? " | " : " |");
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
    os << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

}  // namespace mpcalloc
