// EINTR-safe syscall wrappers and the monotonic deadline clock used by the
// real-process MPC backend (mpc/process_transport.*).
//
// Every blocking syscall the backend issues can be interrupted by a signal
// — and the backend *lives* among signals: its supervision layer SIGCONTs
// stopped workers, tests SIGKILL children mid-exchange, and gtest installs
// its own handlers. A raw `read` that returns -1/EINTR at the wrong moment
// would surface as a phantom worker failure, so the rule is: the backend
// never calls a retryable syscall directly, only through these wrappers.
//
// The retry loop itself is `retry_eintr`, a template over any callable with
// the `-1 + errno` convention, so the loop can be unit-tested against an
// interposed failing "fd" (a lambda scripting EINTR failures) without
// having to synthesise real signal timing — see tests/test_syscall.cpp.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpcalloc {

/// Run `fn()` (returning a signed count with the -1/errno convention) until
/// it returns something other than -1/EINTR. Every other outcome — success,
/// EOF, or a real error — is handed straight back to the caller.
template <typename Fn>
auto retry_eintr(const Fn& fn) -> decltype(fn());

/// One `read(fd, buf, count)` retried across EINTR. Returns what read
/// returns: bytes read (possibly short), 0 at EOF, or -1 with errno set to
/// a non-EINTR error.
[[nodiscard]] ssize_t retry_read(int fd, void* buf, std::size_t count);

/// One `write(fd, buf, count)` retried across EINTR (may still be short).
[[nodiscard]] ssize_t retry_write(int fd, const void* buf, std::size_t count);

/// Loop retry_read until `count` bytes arrived or EOF/error. Returns bytes
/// actually read (== count unless EOF hit early); -1 on error.
[[nodiscard]] ssize_t read_exact(int fd, void* buf, std::size_t count);

/// Loop retry_write until every byte is out. Returns count, or -1 on error.
[[nodiscard]] ssize_t write_all(int fd, const void* buf, std::size_t count);

/// waitpid retried across EINTR. Same contract as waitpid otherwise
/// (0 with WNOHANG when nothing changed, -1/ECHILD when already reaped).
[[nodiscard]] pid_t retry_waitpid(pid_t pid, int* status, int options);

/// close(2) that swallows EINTR/EIO instead of retrying: POSIX leaves the
/// fd state unspecified after EINTR, so retrying risks closing a recycled
/// descriptor. Safe for the cleanup paths this codebase uses it on.
void close_quiet(int fd);

/// A freshly created POSIX shared-memory object: the open fd plus the name
/// it was created under (needed for shm_unlink).
struct ShmHandle {
  int fd = -1;
  std::string name;
};

/// shm_open with O_CREAT|O_EXCL|O_RDWR under "/<prefix>-<pid>-<random>",
/// drawing a new random suffix on every EEXIST collision. Throws
/// std::system_error when the open fails for any other reason (e.g. a
/// container without /dev/shm — the caller degrades to the in-process
/// backend). The caller owns both the fd and the unlink; the process
/// backend unlinks immediately after mmap ("unlink-on-map"), so no name
/// outlives the mapping even if the coordinator dies.
[[nodiscard]] ShmHandle shm_open_exclusive(const std::string& prefix);

/// CLOCK_MONOTONIC in nanoseconds — the deadline clock for heartbeat
/// staleness and exchange supervision (immune to wall-clock steps).
[[nodiscard]] std::uint64_t monotonic_now_ns();

/// clock_nanosleep on CLOCK_MONOTONIC, retried across EINTR so the full
/// duration elapses (supervision backs off with this between polls).
void sleep_ns(std::uint64_t ns);

// ---------------------------------------------------------------------------
// template definition
// ---------------------------------------------------------------------------

template <typename Fn>
auto retry_eintr(const Fn& fn) -> decltype(fn()) {
  for (;;) {
    const auto result = fn();
    if (result >= 0) return result;
    if (errno != EINTR) return result;
  }
}

}  // namespace mpcalloc
