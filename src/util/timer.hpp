// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace mpcalloc {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mpcalloc
