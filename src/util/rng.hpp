// Deterministic pseudo-random number generation for all simulators.
//
// Everything stochastic in this repository (graph generators, the sampled
// MPC executor of Algorithm 2, the Section-6 rounding step, the GGM22
// layered-graph booster) draws from a seeded Xoshiro256++ stream so that
// every experiment is reproducible from the seed it prints.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace mpcalloc {

/// SplitMix64 — used to expand a single 64-bit seed into a full
/// Xoshiro256++ state, and occasionally as a cheap standalone mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ by Blackman & Vigna. Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive. Uses Lemire's
  /// nearly-divisionless method.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("uniform: bound must be > 0");
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: empty range");
    const auto width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (width == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(uniform(width));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_double() < p;
  }

  /// Fisher–Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> data) {
    for (std::size_t i = data.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(data[i - 1], data[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& data) {
    shuffle(std::span<T>(data));
  }

  /// Sample `k` distinct indices from [0, n) uniformly at random.
  /// Uses Floyd's algorithm; O(k) expected time, result unsorted.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, std::uint32_t k);

  /// Fork an independent stream (for per-copy parallel experiments).
  Xoshiro256pp fork() { return Xoshiro256pp((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mpcalloc
