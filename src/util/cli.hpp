// Minimal command-line option parser shared by examples and benches.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
// Unknown options are an error so that typos in experiment sweeps fail
// loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpcalloc {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Declare an option with a default value (all values carried as strings).
  CliParser& option(std::string name, std::string default_value,
                    std::string help);
  CliParser& flag(std::string name, std::string help);

  /// Declare the shared `--threads=N` option with the conventional meaning
  /// (0 = auto: MPCALLOC_THREADS env or hardware concurrency), so every
  /// binary documents the knob identically.
  CliParser& threads_option();

  /// Declare the shared `--transport={auto,inprocess,process}` option
  /// (default auto: defer to MPCALLOC_TRANSPORT, unset means inprocess).
  /// Values are validated strictly at the use site by
  /// mpc::transport_kind_from_cli — garbage throws, naming the option.
  CliParser& transport_option();

  /// Parse argv. Returns false (after printing usage) when --help was given.
  /// Throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  /// Strict integer: the whole value must be a base-10 integer that fits
  /// std::int64_t. Garbage suffixes ("8x"), empty values, and out-of-range
  /// magnitudes throw std::invalid_argument naming the option — no silent
  /// truncation.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  /// Strict non-negative integer (for count-like flags such as --threads or
  /// --seed): get_int plus a negativity check with a clear message.
  [[nodiscard]] std::uint64_t get_size(const std::string& name) const;
  /// Strict finite double: the whole value must parse and be finite.
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Parse a comma-separated list of integers ("1,2,4,8"); every element is
  /// validated like get_int.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name) const;
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name) const;

  void print_usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string description_;
  std::string program_name_ = "program";
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace mpcalloc
