#include "util/syscall.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <system_error>

namespace mpcalloc {

ssize_t retry_read(int fd, void* buf, std::size_t count) {
  return retry_eintr([&] { return ::read(fd, buf, count); });
}

ssize_t retry_write(int fd, const void* buf, std::size_t count) {
  return retry_eintr([&] { return ::write(fd, buf, count); });
}

ssize_t read_exact(int fd, void* buf, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got = retry_read(fd, static_cast<char*>(buf) + done,
                                   count - done);
    if (got < 0) return -1;
    if (got == 0) break;  // EOF
    done += static_cast<std::size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

ssize_t write_all(int fd, const void* buf, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t put = retry_write(fd, static_cast<const char*>(buf) + done,
                                    count - done);
    if (put < 0) return -1;
    done += static_cast<std::size_t>(put);
  }
  return static_cast<ssize_t>(done);
}

pid_t retry_waitpid(pid_t pid, int* status, int options) {
  return retry_eintr([&] { return ::waitpid(pid, status, options); });
}

void close_quiet(int fd) {
  if (fd >= 0) (void)::close(fd);
}

ShmHandle shm_open_exclusive(const std::string& prefix) {
  // The suffix only needs to dodge same-named leftovers and concurrent
  // creators; the O_EXCL loop is what guarantees exclusivity. Seed from the
  // pid and the monotonic clock, then march a SplitMix64-style step per
  // collision.
  std::uint64_t nonce =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ monotonic_now_ns();
  for (int attempt = 0; attempt < 64; ++attempt) {
    nonce += 0x9e3779b97f4a7c15ULL;
    std::uint64_t mixed = nonce;
    mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
    mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
    mixed ^= mixed >> 31;
    // The creator's pid is part of the name so a leak can be attributed
    // (and filtered per-process) by inspection of /dev/shm alone.
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), "%ld-%016llx",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(mixed));
    ShmHandle handle;
    handle.name = "/" + prefix + "-" + suffix;
    const int fd = retry_eintr([&] {
      return ::shm_open(handle.name.c_str(), O_CREAT | O_EXCL | O_RDWR,
                        S_IRUSR | S_IWUSR);
    });
    if (fd >= 0) {
      handle.fd = fd;
      return handle;
    }
    if (errno != EEXIST) {
      throw std::system_error(errno, std::generic_category(),
                              "shm_open(" + handle.name + ")");
    }
  }
  throw std::system_error(EEXIST, std::generic_category(),
                          "shm_open_exclusive: could not find a free name "
                          "under prefix " + prefix);
}

std::uint64_t monotonic_now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void sleep_ns(std::uint64_t ns) {
  timespec req{};
  req.tv_sec = static_cast<time_t>(ns / 1'000'000'000ULL);
  req.tv_nsec = static_cast<long>(ns % 1'000'000'000ULL);
  timespec rem{};
  while (::clock_nanosleep(CLOCK_MONOTONIC, 0, &req, &rem) == EINTR) {
    req = rem;
  }
}

}  // namespace mpcalloc
