// ASCII / markdown table printer for the benchmark harness. Every bench
// binary prints its experiment as one or more of these tables so that
// EXPERIMENTS.md rows can be regenerated verbatim.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpcalloc {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  Table& header(std::vector<std::string> columns);

  /// Append a row; pads or throws on arity mismatch per `strict`.
  Table& row(std::vector<std::string> cells);

  /// Convenience: formatted cell helpers.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string pct(double fraction, int precision = 1);

  /// Render with box-drawing alignment.
  void print(std::ostream& os) const;

  /// Render as a GitHub-flavoured markdown table.
  void print_markdown(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpcalloc
