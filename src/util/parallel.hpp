// Deterministic parallel execution for the per-round sweeps.
//
// Every hot loop in this codebase is a sweep over a CSR vertex (or edge)
// range whose per-element work is independent, plus the occasional
// reduction (MatchWeight, the termination statistics). Parallelising them
// must not break tests/test_determinism.cpp's bitwise-reproducibility
// contract, so the executor follows the communication-avoiding recipe
// (fixed decomposition + ordered combination, cf. the 2.5D SpGEMM line of
// work in PAPERS.md):
//
//  * The iteration range is cut into tiles of a *fixed* size that does not
//    depend on the thread count. Which thread executes which tile is
//    scheduling noise; what is computed per tile is not.
//  * `parallel_reduce` materialises one partial per tile and combines the
//    partials left-to-right on the calling thread. The float additions are
//    therefore grouped identically whether the sweep ran on 1 or 64
//    threads — results are bitwise independent of parallelism.
//
// The sequential path (num_threads <= 1) runs the *same* tile
// decomposition inline, so a single-threaded run reproduces a 64-thread
// run bit-for-bit, not just approximately.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mpcalloc {

/// Fixed tile size shared by all sweeps. Small enough that the modest test
/// instances still span several tiles (so the determinism matrix genuinely
/// exercises cross-tile combination), large enough that per-tile dispatch
/// overhead is negligible against the per-edge work.
inline constexpr std::size_t kParallelTile = 1024;

/// Resolve a requested thread count: a positive request wins; 0 means
/// "auto" — the MPCALLOC_THREADS environment variable if set, otherwise
/// std::thread::hardware_concurrency(). A set MPCALLOC_THREADS that is not
/// a positive integer (garbage, negative, zero, out of range) throws
/// std::invalid_argument instead of silently falling back.
[[nodiscard]] std::size_t resolve_num_threads(std::size_t requested);

/// A persistent pool of worker threads executing tile-indexed jobs.
/// Workers grab tile indices from a shared atomic counter, so any subset of
/// them may serve a job — callers get determinism by making per-tile work a
/// function of the tile index only (see parallel_for / parallel_reduce).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Run fn(t) for every t in [0, num_tiles), on at most max_parallelism
  /// threads including the caller (which always participates; effective
  /// parallelism is min(max_parallelism, num_workers() + 1)). Blocks until
  /// every tile completed. Safe to call from multiple threads: the pool
  /// serves one job at a time and a concurrent caller runs its tiles
  /// inline, which changes scheduling but not results. If a tile body
  /// throws, remaining tiles are cancelled and the first exception is
  /// rethrown here (as the sequential sweep would have).
  void run(std::size_t num_tiles, std::size_t max_parallelism,
           const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, created on first use with hardware_concurrency()
  /// workers. Jobs cap their own parallelism via max_parallelism, so one
  /// shared pool serves every thread-count configuration without respawning
  /// threads.
  static ThreadPool& global();

 private:
  struct Job;
  void worker_loop();
  void execute_tile(Job& job, std::size_t tile);
  void credit_done(Job& job, std::size_t tiles);

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  ///< held by the caller owning the current job
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Apply body(tile_begin, tile_end) over [begin, end) cut into kParallelTile
/// -sized tiles (the last tile may be short), on up to num_threads threads
/// (0 = auto via resolve_num_threads; <= 1 runs inline). The body must only
/// write state disjoint across tiles.
void parallel_for(std::size_t begin, std::size_t end, std::size_t tile_size,
                  std::size_t num_threads,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Tiled reduction with deterministic combination order: map_tile(b, e)
/// produces one partial per tile, and the partials are folded left-to-right
/// as combine(acc, partial) starting from `identity` — the same grouping
/// regardless of thread count (including the inline num_threads <= 1 path).
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t tile_size, std::size_t num_threads,
                                T identity, const MapFn& map_tile,
                                const CombineFn& combine) {
  if (begin >= end) return identity;
  if (tile_size == 0) tile_size = 1;
  const std::size_t num_tiles = (end - begin + tile_size - 1) / tile_size;
  std::vector<T> partials(num_tiles, identity);
  parallel_for(begin, end, tile_size, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
                 partials[(tile_begin - begin) / tile_size] =
                     map_tile(tile_begin, tile_end);
               });
  T acc = identity;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

}  // namespace mpcalloc
