// Bipartite graph representation for the allocation problem.
//
// The allocation problem (Definition 5 of the paper) is defined on a
// bipartite graph G = (L ∪ R, E) with capacities C_v ≥ 1 on the R side and
// implicit capacity 1 on the L side. Vertices on each side are indexed
// independently: u ∈ [0, num_left) and v ∈ [0, num_right).
//
// The graph is stored in CSR form for *both* sides, with every adjacency
// entry carrying the global edge id, so per-edge quantities (the fractional
// values x_{u,v}) are plain arrays indexed by edge id.
//
// Storage: every BipartiteGraph is a view over one contiguous, 64-byte-
// aligned InstanceArena (graph/arena.hpp) holding both offset arrays, both
// adjacency arrays, and the edge-endpoint array — one allocation, no
// per-vector slack, and byte-identical to the on-disk `.mpcb` image, so a
// graph can be mmap'd from a file as cheaply as it is built in memory.
// Offsets are stored 32-bit when every offset fits (m < 2^32 — always true
// for this build's 32-bit EdgeId) and 64-bit otherwise; OffsetSpan
// dispatches on the width so `left_neighbors`/`right_neighbors` call sites
// are unchanged. Graph copies share the arena (it is immutable).
#pragma once

#include "graph/arena.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mpcalloc {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

/// An undirected bipartite edge (u on the L side, v on the R side).
struct Edge {
  Vertex u = 0;  ///< index into the L side
  Vertex v = 0;  ///< index into the R side

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 8 && alignof(Edge) == 4,
              "Edge is stored raw inside arena images");

/// Adjacency entry: neighbouring vertex on the opposite side + edge id.
struct Incidence {
  Vertex to = 0;
  EdgeId edge = 0;
};
static_assert(sizeof(Incidence) == 8 && alignof(Incidence) == 4,
              "Incidence is stored raw inside arena images");

/// Width-typed view over a CSR offset array living inside an arena: one
/// predictable null test selects the 32-bit or 64-bit stride, so the
/// narrow (universal in practice) layout pays no conversion and the wide
/// layout needs no second code path at call sites.
class OffsetSpan {
 public:
  OffsetSpan() = default;
  explicit OffsetSpan(const std::uint32_t* narrow) : narrow_(narrow) {}
  explicit OffsetSpan(const std::uint64_t* wide) : wide_(wide) {}

  [[nodiscard]] std::size_t operator[](std::size_t i) const {
    return narrow_ ? std::size_t{narrow_[i]} : std::size_t{wide_[i]};
  }
  /// Both bounds of slot i with a single width dispatch.
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(std::size_t i) const {
    if (narrow_) return {narrow_[i], narrow_[i + 1]};
    return {wide_[i], wide_[i + 1]};
  }

 private:
  const std::uint32_t* narrow_ = nullptr;
  const std::uint64_t* wide_ = nullptr;
};

/// Immutable CSR bipartite graph over an InstanceArena. Construct through
/// BipartiteGraphBuilder (heap arena) or from_arena (e.g. an mmap'd file).
class BipartiteGraph {
 public:
  BipartiteGraph() = default;
  BipartiteGraph(const BipartiteGraph&) = default;
  BipartiteGraph& operator=(const BipartiteGraph&) = default;
  BipartiteGraph(BipartiteGraph&& other) noexcept { swap(other); }
  BipartiteGraph& operator=(BipartiteGraph&& other) noexcept {
    if (this != &other) {
      BipartiteGraph empty;
      swap(empty);  // release our state
      swap(other);  // take theirs; other is left default-constructed
    }
    return *this;
  }

  /// Wrap an arena image (heap or mmap) as a graph view. The arena must
  /// pass validate_header(); throws ArenaFormatError otherwise.
  [[nodiscard]] static BipartiteGraph from_arena(
      std::shared_ptr<const InstanceArena> arena);

  [[nodiscard]] std::size_t num_left() const { return num_left_; }
  [[nodiscard]] std::size_t num_right() const { return num_right_; }
  [[nodiscard]] std::size_t num_vertices() const {
    return num_left_ + num_right_;
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }
  [[nodiscard]] std::span<const Edge> edges() const {
    return {edges_, num_edges_};
  }

  [[nodiscard]] std::span<const Incidence> left_neighbors(Vertex u) const {
    const auto [begin, end] = left_offsets_.range(u);
    return {adj_left_ + begin, adj_left_ + end};
  }
  [[nodiscard]] std::span<const Incidence> right_neighbors(Vertex v) const {
    const auto [begin, end] = right_offsets_.range(v);
    return {adj_right_ + begin, adj_right_ + end};
  }

  [[nodiscard]] std::size_t left_degree(Vertex u) const {
    const auto [begin, end] = left_offsets_.range(u);
    return end - begin;
  }
  [[nodiscard]] std::size_t right_degree(Vertex v) const {
    const auto [begin, end] = right_offsets_.range(v);
    return end - begin;
  }

  /// CSR offsets (adjacency positions); i ∈ [0, side size]. Used by the
  /// packers; algorithm code should prefer the neighbor spans.
  [[nodiscard]] std::size_t left_offset(std::size_t i) const {
    return left_offsets_[i];
  }
  [[nodiscard]] std::size_t right_offset(std::size_t i) const {
    return right_offsets_[i];
  }

  /// Cached at build/load time (the header records them) — O(1), safe to
  /// call inside per-round driver logic.
  [[nodiscard]] std::size_t max_left_degree() const { return max_left_degree_; }
  [[nodiscard]] std::size_t max_right_degree() const {
    return max_right_degree_;
  }
  [[nodiscard]] double average_degree() const {
    const std::size_t n = num_vertices();
    if (n == 0) return 0.0;
    return 2.0 * static_cast<double>(num_edges_) / static_cast<double>(n);
  }

  /// The backing arena (never null for a non-default-constructed graph).
  [[nodiscard]] const std::shared_ptr<const InstanceArena>& arena() const {
    return arena_;
  }

  /// New edge id → original edge id, for arenas packed with a reordered
  /// edge numbering (PackOptions::order != kPreserve); empty for the
  /// identity ordering. Per-edge arrays of the original instance translate
  /// as original_array[edge_remap()[e]] == this_array[e].
  [[nodiscard]] std::span<const EdgeId> edge_remap() const {
    return {edge_remap_, edge_remap_ ? num_edges_ : 0};
  }

  /// Structural self-check (offsets monotone, edge ids consistent, no
  /// duplicate edges). Throws std::logic_error on violation; used by tests
  /// and generator post-conditions.
  void validate() const;

  /// Human-readable one-line description ("n_L=..., n_R=..., m=...").
  [[nodiscard]] std::string describe() const;

 private:
  friend class BipartiteGraphBuilder;

  void swap(BipartiteGraph& other) noexcept {
    std::swap(arena_, other.arena_);
    std::swap(left_offsets_, other.left_offsets_);
    std::swap(right_offsets_, other.right_offsets_);
    std::swap(adj_left_, other.adj_left_);
    std::swap(adj_right_, other.adj_right_);
    std::swap(edges_, other.edges_);
    std::swap(edge_remap_, other.edge_remap_);
    std::swap(num_left_, other.num_left_);
    std::swap(num_right_, other.num_right_);
    std::swap(num_edges_, other.num_edges_);
    std::swap(max_left_degree_, other.max_left_degree_);
    std::swap(max_right_degree_, other.max_right_degree_);
  }

  std::shared_ptr<const InstanceArena> arena_;
  OffsetSpan left_offsets_;
  OffsetSpan right_offsets_;
  const Incidence* adj_left_ = nullptr;
  const Incidence* adj_right_ = nullptr;
  const Edge* edges_ = nullptr;
  const EdgeId* edge_remap_ = nullptr;
  std::size_t num_left_ = 0;
  std::size_t num_right_ = 0;
  std::size_t num_edges_ = 0;
  std::size_t max_left_degree_ = 0;
  std::size_t max_right_degree_ = 0;
};

/// Mutable edge accumulator; `build()` packs the CSR arena.
class BipartiteGraphBuilder {
 public:
  /// Sides must fit the 32-bit Vertex id space.
  BipartiteGraphBuilder(std::size_t num_left, std::size_t num_right);

  /// Add an edge; out-of-range endpoints throw.
  void add_edge(Vertex u, Vertex v);

  /// Number of edges currently accumulated (before dedup).
  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Remove duplicate edges (keeps first occurrence order-independent).
  void deduplicate();

  /// Build the immutable CSR graph (edge ids in insertion order). The
  /// builder is reset to a documented empty 0×0 state: pending_edges() is
  /// 0, any further add_edge throws, and a second build() returns the
  /// empty graph — construct a fresh builder for a new graph.
  [[nodiscard]] BipartiteGraph build();

 private:
  std::size_t num_left_;
  std::size_t num_right_;
  std::vector<Edge> edges_;
};

/// Capacity vector for the R side; values are ≥ 1 per Definition 5.
using Capacities = std::vector<std::uint32_t>;

/// A full instance of the allocation problem.
struct AllocationInstance {
  BipartiteGraph graph;
  Capacities capacities;  ///< size == graph.num_right()

  [[nodiscard]] std::uint64_t total_capacity() const;

  /// Throws std::invalid_argument if sizes disagree or any C_v == 0.
  void validate() const;
};

}  // namespace mpcalloc
