// Bipartite graph representation for the allocation problem.
//
// The allocation problem (Definition 5 of the paper) is defined on a
// bipartite graph G = (L ∪ R, E) with capacities C_v ≥ 1 on the R side and
// implicit capacity 1 on the L side. Vertices on each side are indexed
// independently: u ∈ [0, num_left) and v ∈ [0, num_right).
//
// The graph is stored in CSR form for *both* sides, with every adjacency
// entry carrying the global edge id, so per-edge quantities (the fractional
// values x_{u,v}) are plain arrays indexed by edge id.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mpcalloc {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

/// An undirected bipartite edge (u on the L side, v on the R side).
struct Edge {
  Vertex u = 0;  ///< index into the L side
  Vertex v = 0;  ///< index into the R side

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Adjacency entry: neighbouring vertex on the opposite side + edge id.
struct Incidence {
  Vertex to = 0;
  EdgeId edge = 0;
};

/// Immutable CSR bipartite graph. Construct through BipartiteGraphBuilder.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  [[nodiscard]] std::size_t num_left() const { return left_offsets_.empty() ? 0 : left_offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_right() const { return right_offsets_.empty() ? 0 : right_offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_vertices() const { return num_left() + num_right(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  [[nodiscard]] std::span<const Incidence> left_neighbors(Vertex u) const {
    return {adj_left_.data() + left_offsets_[u],
            adj_left_.data() + left_offsets_[u + 1]};
  }
  [[nodiscard]] std::span<const Incidence> right_neighbors(Vertex v) const {
    return {adj_right_.data() + right_offsets_[v],
            adj_right_.data() + right_offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t left_degree(Vertex u) const {
    return left_offsets_[u + 1] - left_offsets_[u];
  }
  [[nodiscard]] std::size_t right_degree(Vertex v) const {
    return right_offsets_[v + 1] - right_offsets_[v];
  }

  [[nodiscard]] std::size_t max_left_degree() const;
  [[nodiscard]] std::size_t max_right_degree() const;
  [[nodiscard]] double average_degree() const;

  /// Structural self-check (offsets monotone, edge ids consistent, no
  /// duplicate edges). Throws std::logic_error on violation; used by tests
  /// and generator post-conditions.
  void validate() const;

  /// Human-readable one-line description ("n_L=..., n_R=..., m=...").
  [[nodiscard]] std::string describe() const;

 private:
  friend class BipartiteGraphBuilder;

  std::vector<Edge> edges_;
  std::vector<std::size_t> left_offsets_;
  std::vector<std::size_t> right_offsets_;
  std::vector<Incidence> adj_left_;
  std::vector<Incidence> adj_right_;
};

/// Mutable edge accumulator; `build()` produces the CSR structure.
class BipartiteGraphBuilder {
 public:
  BipartiteGraphBuilder(std::size_t num_left, std::size_t num_right);

  /// Add an edge; out-of-range endpoints throw.
  void add_edge(Vertex u, Vertex v);

  /// Number of edges currently accumulated (before dedup).
  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Remove duplicate edges (keeps first occurrence order-independent).
  void deduplicate();

  /// Build the immutable CSR graph. The builder is left empty.
  [[nodiscard]] BipartiteGraph build();

 private:
  std::size_t num_left_;
  std::size_t num_right_;
  std::vector<Edge> edges_;
};

/// Capacity vector for the R side; values are ≥ 1 per Definition 5.
using Capacities = std::vector<std::uint32_t>;

/// A full instance of the allocation problem.
struct AllocationInstance {
  BipartiteGraph graph;
  Capacities capacities;  ///< size == graph.num_right()

  [[nodiscard]] std::uint64_t total_capacity() const;

  /// Throws std::invalid_argument if sizes disagree or any C_v == 0.
  void validate() const;
};

}  // namespace mpcalloc
