// Contiguous arena layout for allocation instances.
//
// An InstanceArena is one 64-byte-aligned memory block holding a versioned
// header, a section table, and the instance payload sections (both CSR
// sides, adjacency, edge endpoints, capacities, and an optional edge-id
// remap table). The block is *position independent*: every section is
// located by an offset from the block start, so the same image works on the
// heap, inside a file, or mmap'd read-only — the on-disk `.mpcb` format
// (graph/mpcb.hpp) is exactly this image, byte for byte. That is what makes
// `load_instance_mmap` an mmap + header validation: no parsing, no
// per-element conversion, and the page cache shares the instance across
// every process that maps it (the forked workers of the process MPC
// backend inherit the mapping for free).
//
// Index widths are chosen when the arena is built: offsets are stored as
// 32-bit values when every offset fits (m < 2^32 — always true for this
// build's 32-bit EdgeId) and as 64-bit values otherwise; the header records
// the choice and readers dispatch through width-typed accessors
// (graph/bipartite_graph.hpp's OffsetSpan). Vertex/edge ids are 32-bit in
// this build; images recording 64-bit ids are rejected at load with an
// error naming the field.
//
// Layout (all offsets from the block start, every section 64-byte aligned):
//
//   [0, 128)                  ArenaHeader
//   [128, 128 + 32·sections)  section table (ArenaSectionEntry each)
//   ...                       payload sections, in table order
//
// Checksums: the header checksum (FNV-1a 64 over the header prefix and the
// section table) is always present and always validated. Per-section
// payload checksums are computed when an image is packed for disk
// (ArenaFlags::kHasChecksums); in-memory builds skip them so constructing
// a graph never pays a second pass over the image.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcalloc {

inline constexpr std::uint32_t kArenaMagic = 0x4243504Du;  // "MPCB" (LE)
inline constexpr std::uint32_t kArenaVersion = 1;
inline constexpr std::size_t kArenaAlign = 64;

enum class ArenaSectionKind : std::uint32_t {
  kLeftOffsets = 1,   ///< (num_left + 1) entries of offset_width bytes
  kRightOffsets = 2,  ///< (num_right + 1) entries of offset_width bytes
  kAdjLeft = 3,       ///< num_edges × Incidence (to, edge)
  kAdjRight = 4,      ///< num_edges × Incidence
  kEdges = 5,         ///< num_edges × Edge (u, v)
  kCapacities = 6,    ///< num_right × u32 (instance arenas; absent for
                      ///< graph-only arenas built in memory)
  kEdgeRemap = 7,     ///< num_edges × id_width: new edge id → original id
                      ///< (present iff ArenaFlags::kPermutedEdges)
};

/// Human-readable section name ("left_offsets", ...) for error messages.
[[nodiscard]] const char* arena_section_name(ArenaSectionKind kind);

enum ArenaFlags : std::uint32_t {
  kPermutedEdges = 1u << 0,  ///< edge ids were reordered; kEdgeRemap present
  kHasChecksums = 1u << 1,   ///< per-section payload checksums are filled in
};

/// Fixed 128-byte image header. All fields little-endian on disk; the
/// magic doubles as an endianness sentinel (a foreign-endian file fails the
/// magic check).
struct ArenaHeader {
  std::uint32_t magic = kArenaMagic;
  std::uint32_t version = kArenaVersion;
  std::uint16_t offset_width = 4;  ///< bytes per CSR offset: 4 or 8
  std::uint16_t id_width = 4;      ///< bytes per vertex/edge id: 4 (8 reserved)
  std::uint32_t flags = 0;         ///< ArenaFlags bits
  std::uint64_t num_left = 0;
  std::uint64_t num_right = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t max_left_degree = 0;   ///< cached at build (O(1) getters)
  std::uint64_t max_right_degree = 0;  ///< cached at build
  std::uint64_t total_bytes = 0;       ///< whole image, header included
  std::uint32_t section_count = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t header_checksum = 0;  ///< FNV-1a 64 over the header bytes
                                      ///< before this field, then the
                                      ///< section table
  std::uint8_t reserved1[48] = {};
};
static_assert(sizeof(ArenaHeader) == 128);

/// One section-table row. `offset` is from the image start and 64-byte
/// aligned; `bytes` is the unpadded payload size.
struct ArenaSectionEntry {
  std::uint32_t kind = 0;  ///< ArenaSectionKind
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 of the payload (kHasChecksums)
};
static_assert(sizeof(ArenaSectionEntry) == 32);

/// Malformed or unsupported arena image. `field()` names the offending
/// header field or section ("magic", "offset_width", "left_offsets
/// checksum", ...), and the what() string embeds it.
class ArenaFormatError : public std::runtime_error {
 public:
  ArenaFormatError(std::string field, const std::string& detail);
  [[nodiscard]] const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// FNV-1a 64 over a byte range — the arena's checksum function
/// (deterministic across platforms, no dependencies).
[[nodiscard]] std::uint64_t arena_checksum(std::span<const std::byte> bytes);

/// Immutable owner of one contiguous arena image. Heap-backed (built in
/// memory or read from a file) or mmap-backed (`map_file`); destruction
/// releases the block / unmaps the file. Always held by shared_ptr: graphs
/// and instances loaded from the same arena share the block.
class InstanceArena {
 public:
  enum class Backing : std::uint8_t { kHeap, kMmap };

  ~InstanceArena();
  InstanceArena(const InstanceArena&) = delete;
  InstanceArena& operator=(const InstanceArena&) = delete;

  /// Zero-initialised heap block of `bytes` (64-byte aligned). The caller
  /// (a packer) fills it through mutable_data() before publishing it as
  /// shared_ptr<const InstanceArena>.
  [[nodiscard]] static std::shared_ptr<InstanceArena> allocate(
      std::size_t bytes);

  /// mmap the file read-only (PROT_READ, MAP_SHARED — pages are clean and
  /// page-cache-shared across every process mapping the same file) and
  /// validate the header. Throws std::runtime_error on I/O failure,
  /// ArenaFormatError on a malformed image.
  [[nodiscard]] static std::shared_ptr<const InstanceArena> map_file(
      const std::string& path);

  /// Read the whole file into a heap block and validate the header — the
  /// non-mmap load path (private writable copy).
  [[nodiscard]] static std::shared_ptr<const InstanceArena> read_file(
      const std::string& path);

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::byte* mutable_data();
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Backing backing() const { return backing_; }

  [[nodiscard]] const ArenaHeader& header() const {
    return *reinterpret_cast<const ArenaHeader*>(data_);
  }
  [[nodiscard]] std::span<const ArenaSectionEntry> sections() const;

  /// nullptr when the section is absent.
  [[nodiscard]] const ArenaSectionEntry* find_section(
      ArenaSectionKind kind) const;
  /// Payload bytes of a section that must exist (ArenaFormatError if not).
  [[nodiscard]] std::span<const std::byte> section_bytes(
      ArenaSectionKind kind) const;

  /// Structural validation: magic, version, widths, counts, section table
  /// bounds/alignment/sizes, and the header checksum. O(header), no
  /// payload pass — this is all `load_instance_mmap` runs. Throws
  /// ArenaFormatError naming the offending field.
  void validate_header() const;

  /// Full payload pass: every section checksum must be present
  /// (kHasChecksums) and match. Throws ArenaFormatError naming the section.
  void verify_checksums() const;

 private:
  InstanceArena(std::byte* data, std::size_t size, Backing backing)
      : data_(data), size_(size), backing_(backing) {}

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  Backing backing_ = Backing::kHeap;
};

/// Incremental arena assembler used by the graph builder and the packers:
/// declare the sections up front (kind + payload bytes), then fill each
/// returned span; finalize() writes the header + table (and, on request,
/// the per-section payload checksums) and returns the immutable arena.
class ArenaWriter {
 public:
  struct Counts {
    std::uint64_t num_left = 0;
    std::uint64_t num_right = 0;
    std::uint64_t num_edges = 0;
    std::uint64_t max_left_degree = 0;
    std::uint64_t max_right_degree = 0;
  };

  /// `sections` fixes the table order; payload offsets are assigned
  /// 64-byte aligned in that order.
  ArenaWriter(const Counts& counts, std::uint16_t offset_width,
              std::uint32_t extra_flags,
              std::span<const std::pair<ArenaSectionKind, std::uint64_t>>
                  sections);

  /// Writable payload span of a declared section.
  [[nodiscard]] std::span<std::byte> section(ArenaSectionKind kind);

  /// Typed convenience over section().
  template <typename T>
  [[nodiscard]] std::span<T> section_as(ArenaSectionKind kind) {
    const std::span<std::byte> raw = section(kind);
    return {reinterpret_cast<T*>(raw.data()), raw.size() / sizeof(T)};
  }

  /// Compute checksums (payload checksums only with `with_checksums`; the
  /// header checksum always) and seal the image.
  [[nodiscard]] std::shared_ptr<const InstanceArena> finalize(
      bool with_checksums);

 private:
  std::shared_ptr<InstanceArena> arena_;
  std::vector<ArenaSectionEntry> entries_;
  bool finalized_ = false;
};

}  // namespace mpcalloc
