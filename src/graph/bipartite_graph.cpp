#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <sstream>

namespace mpcalloc {

namespace {

OffsetSpan offset_view(const InstanceArena& arena, ArenaSectionKind kind) {
  const std::span<const std::byte> raw = arena.section_bytes(kind);
  if (arena.header().offset_width == 4) {
    return OffsetSpan(reinterpret_cast<const std::uint32_t*>(raw.data()));
  }
  return OffsetSpan(reinterpret_cast<const std::uint64_t*>(raw.data()));
}

template <typename T>
const T* section_ptr(const InstanceArena& arena, ArenaSectionKind kind) {
  return reinterpret_cast<const T*>(arena.section_bytes(kind).data());
}

}  // namespace

BipartiteGraph BipartiteGraph::from_arena(
    std::shared_ptr<const InstanceArena> arena) {
  if (!arena) {
    throw std::invalid_argument("BipartiteGraph::from_arena: null arena");
  }
  arena->validate_header();
  const ArenaHeader& h = arena->header();

  BipartiteGraph g;
  g.num_left_ = static_cast<std::size_t>(h.num_left);
  g.num_right_ = static_cast<std::size_t>(h.num_right);
  g.num_edges_ = static_cast<std::size_t>(h.num_edges);
  g.max_left_degree_ = static_cast<std::size_t>(h.max_left_degree);
  g.max_right_degree_ = static_cast<std::size_t>(h.max_right_degree);
  g.left_offsets_ = offset_view(*arena, ArenaSectionKind::kLeftOffsets);
  g.right_offsets_ = offset_view(*arena, ArenaSectionKind::kRightOffsets);
  g.adj_left_ = section_ptr<Incidence>(*arena, ArenaSectionKind::kAdjLeft);
  g.adj_right_ = section_ptr<Incidence>(*arena, ArenaSectionKind::kAdjRight);
  g.edges_ = section_ptr<Edge>(*arena, ArenaSectionKind::kEdges);
  if (h.flags & kPermutedEdges) {
    g.edge_remap_ = section_ptr<EdgeId>(*arena, ArenaSectionKind::kEdgeRemap);
  }
  g.arena_ = std::move(arena);
  return g;
}

void BipartiteGraph::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::logic_error(std::string("BipartiteGraph::validate: ") + what);
  };
  if (!arena_) {
    check(num_left_ == 0 && num_right_ == 0 && num_edges_ == 0,
          "default-constructed graph with nonzero counts");
    return;
  }
  check(left_offsets_[0] == 0 && right_offsets_[0] == 0,
        "offsets must start at 0");
  for (std::size_t i = 0; i < num_left_; ++i) {
    check(left_offsets_[i] <= left_offsets_[i + 1], "left offsets not monotone");
  }
  for (std::size_t i = 0; i < num_right_; ++i) {
    check(right_offsets_[i] <= right_offsets_[i + 1],
          "right offsets not monotone");
  }
  check(left_offsets_[num_left_] == num_edges_, "left adjacency size mismatch");
  check(right_offsets_[num_right_] == num_edges_,
        "right adjacency size mismatch");

  std::size_t max_left = 0, max_right = 0;
  std::vector<std::uint8_t> seen(num_edges_, 0);
  for (Vertex u = 0; u < num_left_; ++u) {
    max_left = std::max(max_left, left_degree(u));
    for (const Incidence& inc : left_neighbors(u)) {
      check(inc.edge < num_edges_, "edge id out of range");
      check(edges_[inc.edge].u == u && edges_[inc.edge].v == inc.to,
            "left incidence does not match edge record");
      check(!seen[inc.edge], "edge id repeated in left adjacency");
      seen[inc.edge] = 1;
    }
  }
  std::fill(seen.begin(), seen.end(), 0);
  for (Vertex v = 0; v < num_right_; ++v) {
    max_right = std::max(max_right, right_degree(v));
    for (const Incidence& inc : right_neighbors(v)) {
      check(inc.edge < num_edges_, "edge id out of range");
      check(edges_[inc.edge].v == v && edges_[inc.edge].u == inc.to,
            "right incidence does not match edge record");
      check(!seen[inc.edge], "edge id repeated in right adjacency");
      seen[inc.edge] = 1;
    }
  }
  check(max_left == max_left_degree_, "cached max_left_degree is stale");
  check(max_right == max_right_degree_, "cached max_right_degree is stale");

  // No duplicate (u,v) pairs.
  std::vector<Edge> sorted(edges_, edges_ + num_edges_);
  std::sort(sorted.begin(), sorted.end());
  check(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate edges present");

  // A remap table, when present, must be a permutation of the edge ids.
  if (edge_remap_ != nullptr) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::size_t e = 0; e < num_edges_; ++e) {
      check(edge_remap_[e] < num_edges_, "edge remap entry out of range");
      check(!seen[edge_remap_[e]], "edge remap is not a permutation");
      seen[edge_remap_[e]] = 1;
    }
  }
}

std::string BipartiteGraph::describe() const {
  std::ostringstream os;
  os << "BipartiteGraph{n_L=" << num_left() << ", n_R=" << num_right()
     << ", m=" << num_edges() << "}";
  return os.str();
}

BipartiteGraphBuilder::BipartiteGraphBuilder(std::size_t num_left,
                                             std::size_t num_right)
    : num_left_(num_left), num_right_(num_right) {
  constexpr std::size_t kMaxSide = std::numeric_limits<Vertex>::max();
  if (num_left > kMaxSide || num_right > kMaxSide) {
    throw std::invalid_argument(
        "BipartiteGraphBuilder: side exceeds the 32-bit vertex id space");
  }
}

void BipartiteGraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= num_left_) throw std::out_of_range("add_edge: left vertex out of range");
  if (v >= num_right_) throw std::out_of_range("add_edge: right vertex out of range");
  edges_.push_back(Edge{u, v});
}

void BipartiteGraphBuilder::deduplicate() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

BipartiteGraph BipartiteGraphBuilder::build() {
  if (edges_.size() > std::numeric_limits<EdgeId>::max()) {
    throw std::invalid_argument(
        "BipartiteGraphBuilder: edge count exceeds the 32-bit edge id space");
  }
  const std::size_t m = edges_.size();

  // Degree counting pass (also yields the cached max degrees).
  std::vector<std::uint32_t> ldeg(num_left_, 0), rdeg(num_right_, 0);
  std::uint64_t max_ldeg = 0, max_rdeg = 0;
  for (const Edge& e : edges_) {
    ++ldeg[e.u];
    ++rdeg[e.v];
  }
  for (const std::uint32_t d : ldeg) max_ldeg = std::max<std::uint64_t>(max_ldeg, d);
  for (const std::uint32_t d : rdeg) max_rdeg = std::max<std::uint64_t>(max_rdeg, d);

  // Every offset is ≤ m < 2^32 in this build, so the arena always packs
  // 32-bit offsets here; the wide path is reachable through
  // pack_instance(PackOptions{.force_wide_offsets = true}).
  ArenaWriter::Counts counts;
  counts.num_left = num_left_;
  counts.num_right = num_right_;
  counts.num_edges = m;
  counts.max_left_degree = max_ldeg;
  counts.max_right_degree = max_rdeg;
  const std::array<std::pair<ArenaSectionKind, std::uint64_t>, 5> sections{{
      {ArenaSectionKind::kLeftOffsets, (num_left_ + 1) * sizeof(std::uint32_t)},
      {ArenaSectionKind::kRightOffsets,
       (num_right_ + 1) * sizeof(std::uint32_t)},
      {ArenaSectionKind::kAdjLeft, m * sizeof(Incidence)},
      {ArenaSectionKind::kAdjRight, m * sizeof(Incidence)},
      {ArenaSectionKind::kEdges, m * sizeof(Edge)},
  }};
  ArenaWriter writer(counts, /*offset_width=*/4, /*extra_flags=*/0, sections);

  const std::span<std::uint32_t> loff =
      writer.section_as<std::uint32_t>(ArenaSectionKind::kLeftOffsets);
  const std::span<std::uint32_t> roff =
      writer.section_as<std::uint32_t>(ArenaSectionKind::kRightOffsets);
  loff[0] = 0;
  for (std::size_t u = 0; u < num_left_; ++u) loff[u + 1] = loff[u] + ldeg[u];
  roff[0] = 0;
  for (std::size_t v = 0; v < num_right_; ++v) roff[v + 1] = roff[v] + rdeg[v];

  const std::span<Incidence> adj_left =
      writer.section_as<Incidence>(ArenaSectionKind::kAdjLeft);
  const std::span<Incidence> adj_right =
      writer.section_as<Incidence>(ArenaSectionKind::kAdjRight);
  // Reuse the degree arrays as fill cursors (they hold per-vertex counts
  // already consumed into the offsets).
  std::fill(ldeg.begin(), ldeg.end(), 0);
  std::fill(rdeg.begin(), rdeg.end(), 0);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = edges_[e];
    adj_left[loff[ed.u] + ldeg[ed.u]++] = Incidence{ed.v, e};
    adj_right[roff[ed.v] + rdeg[ed.v]++] = Incidence{ed.u, e};
  }
  if (m > 0) {
    std::memcpy(writer.section(ArenaSectionKind::kEdges).data(), edges_.data(),
                m * sizeof(Edge));
  }

  // Reset to the documented empty state before wiring the view, so an
  // exception above leaves the builder untouched but success always
  // empties it.
  edges_.clear();
  edges_.shrink_to_fit();
  num_left_ = 0;
  num_right_ = 0;

  return BipartiteGraph::from_arena(writer.finalize(/*with_checksums=*/false));
}

std::uint64_t AllocationInstance::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto c : capacities) total += c;
  return total;
}

void AllocationInstance::validate() const {
  if (capacities.size() != graph.num_right()) {
    throw std::invalid_argument(
        "AllocationInstance: capacity vector size != num_right");
  }
  for (const auto c : capacities) {
    if (c == 0) {
      throw std::invalid_argument(
          "AllocationInstance: capacities must be >= 1 (Definition 5)");
    }
  }
  graph.validate();
}

}  // namespace mpcalloc
