#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace mpcalloc {

std::size_t BipartiteGraph::max_left_degree() const {
  std::size_t best = 0;
  for (Vertex u = 0; u < num_left(); ++u) best = std::max(best, left_degree(u));
  return best;
}

std::size_t BipartiteGraph::max_right_degree() const {
  std::size_t best = 0;
  for (Vertex v = 0; v < num_right(); ++v) best = std::max(best, right_degree(v));
  return best;
}

double BipartiteGraph::average_degree() const {
  const std::size_t n = num_vertices();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n);
}

void BipartiteGraph::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::logic_error(std::string("BipartiteGraph::validate: ") + what);
  };
  check(left_offsets_.empty() == right_offsets_.empty(), "offset arrays inconsistent");
  if (left_offsets_.empty()) {
    check(edges_.empty(), "edges without offsets");
    return;
  }
  check(left_offsets_.front() == 0 && right_offsets_.front() == 0, "offsets must start at 0");
  check(std::is_sorted(left_offsets_.begin(), left_offsets_.end()), "left offsets not monotone");
  check(std::is_sorted(right_offsets_.begin(), right_offsets_.end()), "right offsets not monotone");
  check(left_offsets_.back() == edges_.size(), "left adjacency size mismatch");
  check(right_offsets_.back() == edges_.size(), "right adjacency size mismatch");
  check(adj_left_.size() == edges_.size(), "adj_left size");
  check(adj_right_.size() == edges_.size(), "adj_right size");

  std::vector<std::uint8_t> seen(edges_.size(), 0);
  for (Vertex u = 0; u < num_left(); ++u) {
    for (const Incidence& inc : left_neighbors(u)) {
      check(inc.edge < edges_.size(), "edge id out of range");
      check(edges_[inc.edge].u == u && edges_[inc.edge].v == inc.to,
            "left incidence does not match edge record");
      check(!seen[inc.edge], "edge id repeated in left adjacency");
      seen[inc.edge] = 1;
    }
  }
  std::fill(seen.begin(), seen.end(), 0);
  for (Vertex v = 0; v < num_right(); ++v) {
    for (const Incidence& inc : right_neighbors(v)) {
      check(inc.edge < edges_.size(), "edge id out of range");
      check(edges_[inc.edge].v == v && edges_[inc.edge].u == inc.to,
            "right incidence does not match edge record");
      check(!seen[inc.edge], "edge id repeated in right adjacency");
      seen[inc.edge] = 1;
    }
  }
  // No duplicate (u,v) pairs.
  std::vector<Edge> sorted(edges_);
  std::sort(sorted.begin(), sorted.end());
  check(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate edges present");
}

std::string BipartiteGraph::describe() const {
  std::ostringstream os;
  os << "BipartiteGraph{n_L=" << num_left() << ", n_R=" << num_right()
     << ", m=" << num_edges() << "}";
  return os.str();
}

BipartiteGraphBuilder::BipartiteGraphBuilder(std::size_t num_left,
                                             std::size_t num_right)
    : num_left_(num_left), num_right_(num_right) {}

void BipartiteGraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= num_left_) throw std::out_of_range("add_edge: left vertex out of range");
  if (v >= num_right_) throw std::out_of_range("add_edge: right vertex out of range");
  edges_.push_back(Edge{u, v});
}

void BipartiteGraphBuilder::deduplicate() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

BipartiteGraph BipartiteGraphBuilder::build() {
  BipartiteGraph g;
  g.edges_ = std::move(edges_);
  edges_.clear();

  g.left_offsets_.assign(num_left_ + 1, 0);
  g.right_offsets_.assign(num_right_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.left_offsets_[e.u + 1];
    ++g.right_offsets_[e.v + 1];
  }
  std::partial_sum(g.left_offsets_.begin(), g.left_offsets_.end(),
                   g.left_offsets_.begin());
  std::partial_sum(g.right_offsets_.begin(), g.right_offsets_.end(),
                   g.right_offsets_.begin());

  g.adj_left_.resize(g.edges_.size());
  g.adj_right_.resize(g.edges_.size());
  std::vector<std::size_t> lpos(g.left_offsets_.begin(), g.left_offsets_.end() - 1);
  std::vector<std::size_t> rpos(g.right_offsets_.begin(), g.right_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const Edge& ed = g.edges_[e];
    g.adj_left_[lpos[ed.u]++] = Incidence{ed.v, e};
    g.adj_right_[rpos[ed.v]++] = Incidence{ed.u, e};
  }
  return g;
}

std::uint64_t AllocationInstance::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto c : capacities) total += c;
  return total;
}

void AllocationInstance::validate() const {
  if (capacities.size() != graph.num_right()) {
    throw std::invalid_argument(
        "AllocationInstance: capacity vector size != num_right");
  }
  for (const auto c : capacities) {
    if (c == 0) {
      throw std::invalid_argument(
          "AllocationInstance: capacities must be >= 1 (Definition 5)");
    }
  }
  graph.validate();
}

}  // namespace mpcalloc
