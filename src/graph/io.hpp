// Plain-text serialization of allocation instances.
//
// Format (line-oriented, '#' comments allowed):
//   alloc <num_left> <num_right> <num_edges>
//   c <v> <capacity>          (one per R vertex; missing vertices get C=1)
//   e <u> <v>                 (one per edge)
//
// Readers accept CRLF line endings and skip blank / whitespace-only lines,
// but reject trailing garbage after the expected fields of a line — a
// malformed file fails loudly rather than being silently reinterpreted.
#pragma once

#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

#include <iosfwd>
#include <string>

namespace mpcalloc {

void write_instance(std::ostream& os, const AllocationInstance& instance);
[[nodiscard]] AllocationInstance read_instance(std::istream& is);

void save_instance(const std::string& path, const AllocationInstance& instance);
/// Loads either format: files starting with the `.mpcb` magic are mmap'd
/// through load_instance_mmap (graph/mpcb.hpp); everything else is parsed
/// as the text format above.
[[nodiscard]] AllocationInstance load_instance(const std::string& path);

// Solution format (one matched pair per line):
//   solution <num_pairs>
//   m <u> <v>
void write_solution(std::ostream& os, const AllocationInstance& instance,
                    const IntegralAllocation& allocation);
/// Reads a solution and resolves each (u,v) pair to its edge id; throws if
/// a pair is not an edge of the instance, appears more than once, or the
/// solution is infeasible.
[[nodiscard]] IntegralAllocation read_solution(
    std::istream& is, const AllocationInstance& instance);

void save_solution(const std::string& path, const AllocationInstance& instance,
                   const IntegralAllocation& allocation);
[[nodiscard]] IntegralAllocation load_solution(
    const std::string& path, const AllocationInstance& instance);

}  // namespace mpcalloc
