// Synthetic workload generators.
//
// The paper's guarantees are parameterised by n, m, the arboricity λ, the
// accuracy ε, and the capacity profile {C_v}. These generators sweep exactly
// those parameters:
//
//  * union_of_forests          — arboricity ≤ λ by construction (Def. 4)
//  * dense_core_sparse_fringe  — arboricity Θ(λ): a K_{λ,λ} core forces
//                                λ(G) ≥ ⌈λ²/(2λ−1)⌉ ≈ λ/2, a forest fringe
//                                keeps the rest uniformly sparse
//  * star_instance             — Remark 1's adversarial example for the
//                                matching reduction (center capacity n−1)
//  * left_regular              — every L vertex has degree d
//  * erdos_renyi_bipartite     — m uniform random distinct edges
//  * power_law_bipartite       — Chung–Lu with weight exponent `beta`
//  * planted_instance          — instance with a known perfect allocation
//                                (OPT = |L|), plus distractor edges
//
// Capacity profiles: unit, uniform range, degree-proportional, Zipf.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/rng.hpp"

#include <cstdint>

namespace mpcalloc {

/// Union of `lambda` independent uniformly random bipartite forests over
/// (num_left + num_right) vertices, deduplicated. Guarantees λ(G) ≤ lambda.
[[nodiscard]] BipartiteGraph union_of_forests(std::size_t num_left,
                                              std::size_t num_right,
                                              std::uint32_t lambda,
                                              Xoshiro256pp& rng);

/// A complete bipartite K_{core,core} "dense core" embedded in a forest
/// fringe. The core pins arboricity to Θ(core); the fringe is trees.
[[nodiscard]] BipartiteGraph dense_core_sparse_fringe(std::size_t num_left,
                                                      std::size_t num_right,
                                                      std::uint32_t core,
                                                      Xoshiro256pp& rng);

/// Remark 1's star: one R-side center adjacent to all `leaves` L vertices.
/// Arboricity 1. Pair with capacity C_center = leaves (or any value) to
/// exhibit the Θ(n) arboricity blow-up of the vertex-splitting reduction.
[[nodiscard]] BipartiteGraph star_graph(std::size_t leaves);

/// Every L vertex picks `degree` distinct R neighbours uniformly at random.
[[nodiscard]] BipartiteGraph left_regular(std::size_t num_left,
                                          std::size_t num_right,
                                          std::uint32_t degree,
                                          Xoshiro256pp& rng);

/// `num_edges` distinct uniform random edges.
[[nodiscard]] BipartiteGraph erdos_renyi_bipartite(std::size_t num_left,
                                                   std::size_t num_right,
                                                   std::size_t num_edges,
                                                   Xoshiro256pp& rng);

/// Chung–Lu bipartite graph: vertex weights w_i ∝ (i+1)^{-beta} scaled so
/// the expected edge count is `target_edges`.
[[nodiscard]] BipartiteGraph power_law_bipartite(std::size_t num_left,
                                                 std::size_t num_right,
                                                 std::size_t target_edges,
                                                 double beta,
                                                 Xoshiro256pp& rng);

/// The adversarial instance on which Theorem 9's Θ(log λ) convergence is
/// tight: `copies` disjoint gadgets, each a K_{load·core, core} core of
/// unit-capacity R vertices (over-subscribed by a factor load·core) plus a
/// private unit-capacity partner for every L vertex. The proportional
/// dynamics start by drowning the core and need Θ(log_{1+ε} core) rounds of
/// multiplicative updates before the private partners absorb the load;
/// λ(G) = Θ(core) while OPT = |L| (everyone matches their private partner).
[[nodiscard]] AllocationInstance oversubscribed_core_instance(
    std::size_t core, std::size_t load_factor, std::size_t copies = 1);

/// Instance with a planted perfect allocation: every u ∈ L is assigned a
/// planted partner v with spare capacity, then `noise_per_left` distractor
/// edges are added per L vertex. OPT == num_left by construction.
struct PlantedInstance {
  AllocationInstance instance;
  std::vector<Vertex> planted_partner;  ///< planted v for each u
};
[[nodiscard]] PlantedInstance planted_instance(std::size_t num_left,
                                               std::size_t num_right,
                                               std::uint32_t capacity,
                                               std::uint32_t noise_per_left,
                                               Xoshiro256pp& rng);

// ---------------------------------------------------------------------------
// Capacity profiles
// ---------------------------------------------------------------------------

/// All capacities 1 (the allocation problem degenerates to bipartite
/// maximum matching).
[[nodiscard]] Capacities unit_capacities(std::size_t num_right);

/// Uniform in [lo, hi].
[[nodiscard]] Capacities uniform_capacities(std::size_t num_right,
                                            std::uint32_t lo, std::uint32_t hi,
                                            Xoshiro256pp& rng);

/// C_v = max(1, round(fraction * deg(v))).
[[nodiscard]] Capacities degree_proportional_capacities(
    const BipartiteGraph& graph, double fraction);

/// Zipf-distributed capacities over [1, max_capacity] with exponent s.
[[nodiscard]] Capacities zipf_capacities(std::size_t num_right,
                                         std::uint32_t max_capacity, double s,
                                         Xoshiro256pp& rng);

}  // namespace mpcalloc
