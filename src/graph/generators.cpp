#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace mpcalloc {

namespace {

/// Key for an edge in a hash set (u in the high word, v in the low word).
constexpr std::uint64_t edge_key(Vertex u, Vertex v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Append one uniformly random bipartite forest's edges to the builder.
///
/// Vertices are inserted in random order; each newly inserted vertex
/// attaches to a uniformly random previously inserted vertex of the
/// *opposite* side (if any exists yet). Every vertex gains at most one edge
/// towards earlier vertices, so the result is acyclic, i.e. a forest.
void add_random_forest(BipartiteGraphBuilder& builder, std::size_t num_left,
                       std::size_t num_right, Xoshiro256pp& rng) {
  // Encode L vertices as [0, num_left) and R vertices as
  // [num_left, num_left+num_right) in a single insertion order.
  std::vector<std::uint32_t> order(num_left + num_right);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  std::vector<Vertex> placed_left;
  std::vector<Vertex> placed_right;
  placed_left.reserve(num_left);
  placed_right.reserve(num_right);

  for (const std::uint32_t id : order) {
    const bool is_left = id < num_left;
    if (is_left) {
      const Vertex u = id;
      if (!placed_right.empty()) {
        const Vertex v = placed_right[rng.uniform(placed_right.size())];
        builder.add_edge(u, v);
      }
      placed_left.push_back(u);
    } else {
      const Vertex v = id - static_cast<Vertex>(num_left);
      if (!placed_left.empty()) {
        const Vertex u = placed_left[rng.uniform(placed_left.size())];
        builder.add_edge(u, v);
      }
      placed_right.push_back(v);
    }
  }
}

/// Cumulative-weight sampler: picks index i with probability w_i / Σw.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    for (std::size_t i = 1; i < cumulative_.size(); ++i) {
      cumulative_[i] += cumulative_[i - 1];
    }
    if (cumulative_.empty() || cumulative_.back() <= 0.0) {
      throw std::invalid_argument("WeightedSampler: weights must be positive");
    }
  }

  std::size_t sample(Xoshiro256pp& rng) const {
    const double target = rng.uniform_double() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    return std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_.begin()),
        cumulative_.size() - 1);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

namespace {

/// Entry validation shared by the generators: a zero-vertex side never makes
/// a usable allocation instance, so fail loudly instead of building a
/// degenerate graph the solvers choke on later.
void require_nonempty_sides(const char* who, std::size_t num_left,
                            std::size_t num_right) {
  if (num_left == 0 || num_right == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": both vertex sides must be non-empty (got "
                                "|L| = " + std::to_string(num_left) +
                                ", |R| = " + std::to_string(num_right) + ")");
  }
}

}  // namespace

BipartiteGraph union_of_forests(std::size_t num_left, std::size_t num_right,
                                std::uint32_t lambda, Xoshiro256pp& rng) {
  require_nonempty_sides("union_of_forests", num_left, num_right);
  if (lambda == 0) throw std::invalid_argument("union_of_forests: lambda >= 1");
  BipartiteGraphBuilder builder(num_left, num_right);
  for (std::uint32_t f = 0; f < lambda; ++f) {
    add_random_forest(builder, num_left, num_right, rng);
  }
  builder.deduplicate();
  return builder.build();
}

BipartiteGraph dense_core_sparse_fringe(std::size_t num_left,
                                        std::size_t num_right,
                                        std::uint32_t core,
                                        Xoshiro256pp& rng) {
  require_nonempty_sides("dense_core_sparse_fringe", num_left, num_right);
  const auto c = static_cast<std::uint32_t>(
      std::min<std::size_t>({core, num_left, num_right}));
  if (c == 0) {
    throw std::invalid_argument("dense_core_sparse_fringe: empty core");
  }
  BipartiteGraphBuilder builder(num_left, num_right);
  // Complete bipartite core on the first c vertices of each side.
  for (Vertex u = 0; u < c; ++u) {
    for (Vertex v = 0; v < c; ++v) builder.add_edge(u, v);
  }
  // Forest fringe: every remaining vertex hangs off one random vertex of the
  // opposite side among those already wired in.
  for (Vertex u = c; u < num_left; ++u) {
    builder.add_edge(u, static_cast<Vertex>(rng.uniform(num_right)));
  }
  for (Vertex v = c; v < num_right; ++v) {
    builder.add_edge(static_cast<Vertex>(rng.uniform(num_left)), v);
  }
  builder.deduplicate();
  return builder.build();
}

BipartiteGraph star_graph(std::size_t leaves) {
  if (leaves == 0) {
    throw std::invalid_argument("star_graph: need >= 1 leaf");
  }
  BipartiteGraphBuilder builder(leaves, 1);
  for (Vertex u = 0; u < leaves; ++u) builder.add_edge(u, 0);
  return builder.build();
}

BipartiteGraph left_regular(std::size_t num_left, std::size_t num_right,
                            std::uint32_t degree, Xoshiro256pp& rng) {
  require_nonempty_sides("left_regular", num_left, num_right);
  if (degree == 0) {
    throw std::invalid_argument("left_regular: degree >= 1 (an edgeless "
                                "instance is degenerate)");
  }
  if (degree > num_right) {
    throw std::invalid_argument("left_regular: degree " +
                                std::to_string(degree) + " exceeds |R| = " +
                                std::to_string(num_right));
  }
  BipartiteGraphBuilder builder(num_left, num_right);
  for (Vertex u = 0; u < num_left; ++u) {
    for (const auto v :
         rng.sample_indices(static_cast<std::uint32_t>(num_right), degree)) {
      builder.add_edge(u, v);
    }
  }
  return builder.build();
}

BipartiteGraph erdos_renyi_bipartite(std::size_t num_left,
                                     std::size_t num_right,
                                     std::size_t num_edges,
                                     Xoshiro256pp& rng) {
  require_nonempty_sides("erdos_renyi_bipartite", num_left, num_right);
  const std::uint64_t possible =
      static_cast<std::uint64_t>(num_left) * num_right;
  if (num_edges > possible) {
    throw std::invalid_argument("erdos_renyi_bipartite: " +
                                std::to_string(num_edges) +
                                " edges requested but only " +
                                std::to_string(possible) + " are possible");
  }
  BipartiteGraphBuilder builder(num_left, num_right);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(num_edges * 2);
  while (chosen.size() < num_edges) {
    const auto u = static_cast<Vertex>(rng.uniform(num_left));
    const auto v = static_cast<Vertex>(rng.uniform(num_right));
    if (chosen.insert(edge_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

BipartiteGraph power_law_bipartite(std::size_t num_left, std::size_t num_right,
                                   std::size_t target_edges, double beta,
                                   Xoshiro256pp& rng) {
  require_nonempty_sides("power_law_bipartite", num_left, num_right);
  if (!std::isfinite(beta)) {
    throw std::invalid_argument("power_law_bipartite: beta must be finite");
  }
  const std::uint64_t possible =
      static_cast<std::uint64_t>(num_left) * num_right;
  if (target_edges > possible) {
    throw std::invalid_argument("power_law_bipartite: " +
                                std::to_string(target_edges) +
                                " edges requested but only " +
                                std::to_string(possible) + " are possible");
  }
  auto make_weights = [beta](std::size_t n) {
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = std::pow(static_cast<double>(i + 1), -beta);
    }
    return w;
  };
  const WeightedSampler left_sampler(make_weights(num_left));
  const WeightedSampler right_sampler(make_weights(num_right));

  BipartiteGraphBuilder builder(num_left, num_right);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(target_edges * 2);
  // Pair independent weighted draws; duplicates are rejected. Cap the number
  // of attempts so adversarial parameters (tiny graphs, huge targets) cannot
  // loop forever — the achieved edge count is then below target, which is
  // the standard Chung–Lu behaviour anyway.
  const std::size_t max_attempts = 20 * target_edges + 1000;
  for (std::size_t attempt = 0;
       attempt < max_attempts && chosen.size() < target_edges; ++attempt) {
    const auto u = static_cast<Vertex>(left_sampler.sample(rng));
    const auto v = static_cast<Vertex>(right_sampler.sample(rng));
    if (chosen.insert(edge_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

AllocationInstance oversubscribed_core_instance(std::size_t core,
                                                std::size_t load_factor,
                                                std::size_t copies) {
  if (core == 0 || load_factor == 0 || copies == 0) {
    throw std::invalid_argument(
        "oversubscribed_core_instance: core, load_factor, copies >= 1");
  }
  const std::size_t left_per_copy = load_factor * core;
  const std::size_t right_per_copy = core + left_per_copy;  // core + privates
  BipartiteGraphBuilder builder(left_per_copy * copies,
                                right_per_copy * copies);
  for (std::size_t copy = 0; copy < copies; ++copy) {
    const auto l0 = static_cast<Vertex>(copy * left_per_copy);
    const auto r0 = static_cast<Vertex>(copy * right_per_copy);
    for (Vertex u = 0; u < left_per_copy; ++u) {
      for (Vertex v = 0; v < core; ++v) {
        builder.add_edge(l0 + u, r0 + v);
      }
      // Private partner: R index core + u within the copy.
      builder.add_edge(l0 + u, r0 + static_cast<Vertex>(core) + u);
    }
  }
  AllocationInstance instance;
  instance.graph = builder.build();
  instance.capacities = unit_capacities(right_per_copy * copies);
  return instance;
}

PlantedInstance planted_instance(std::size_t num_left, std::size_t num_right,
                                 std::uint32_t capacity,
                                 std::uint32_t noise_per_left,
                                 Xoshiro256pp& rng) {
  require_nonempty_sides("planted_instance", num_left, num_right);
  if (capacity == 0) throw std::invalid_argument("planted_instance: capacity >= 1");
  if (static_cast<std::uint64_t>(num_right) * capacity < num_left) {
    throw std::invalid_argument(
        "planted_instance: total capacity below |L|; no perfect allocation");
  }
  // Build the multiset of capacity slots, shuffle, and hand one to each u.
  std::vector<Vertex> slots;
  slots.reserve(num_right * capacity);
  for (Vertex v = 0; v < num_right; ++v) {
    for (std::uint32_t k = 0; k < capacity; ++k) slots.push_back(v);
  }
  rng.shuffle(slots);

  PlantedInstance out;
  out.planted_partner.resize(num_left);
  BipartiteGraphBuilder builder(num_left, num_right);
  for (Vertex u = 0; u < num_left; ++u) {
    out.planted_partner[u] = slots[u];
    builder.add_edge(u, slots[u]);
    for (std::uint32_t k = 0; k < noise_per_left; ++k) {
      builder.add_edge(u, static_cast<Vertex>(rng.uniform(num_right)));
    }
  }
  builder.deduplicate();
  out.instance.graph = builder.build();
  out.instance.capacities.assign(num_right, capacity);
  return out;
}

Capacities unit_capacities(std::size_t num_right) {
  return Capacities(num_right, 1);
}

Capacities uniform_capacities(std::size_t num_right, std::uint32_t lo,
                              std::uint32_t hi, Xoshiro256pp& rng) {
  if (lo == 0 || lo > hi) {
    throw std::invalid_argument("uniform_capacities: need 1 <= lo <= hi");
  }
  Capacities caps(num_right);
  for (auto& c : caps) {
    c = lo + static_cast<std::uint32_t>(rng.uniform(hi - lo + 1));
  }
  return caps;
}

Capacities degree_proportional_capacities(const BipartiteGraph& graph,
                                          double fraction) {
  // !(x > 0) rather than x <= 0: NaN compares false both ways and must be
  // rejected too.
  if (!(fraction > 0.0) || !std::isfinite(fraction)) {
    throw std::invalid_argument(
        "degree_proportional_capacities: fraction must be finite and > 0");
  }
  Capacities caps(graph.num_right());
  for (Vertex v = 0; v < graph.num_right(); ++v) {
    const double target = fraction * static_cast<double>(graph.right_degree(v));
    caps[v] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(target)));
  }
  return caps;
}

Capacities zipf_capacities(std::size_t num_right, std::uint32_t max_capacity,
                           double s, Xoshiro256pp& rng) {
  if (max_capacity == 0) {
    throw std::invalid_argument("zipf_capacities: max_capacity >= 1");
  }
  if (!std::isfinite(s)) {
    throw std::invalid_argument("zipf_capacities: s must be finite");
  }
  std::vector<double> weights(max_capacity);
  for (std::uint32_t k = 0; k < max_capacity; ++k) {
    weights[k] = std::pow(static_cast<double>(k + 1), -s);
  }
  const WeightedSampler sampler(std::move(weights));
  Capacities caps(num_right);
  for (auto& c : caps) {
    c = static_cast<std::uint32_t>(sampler.sample(rng)) + 1;
  }
  return caps;
}

}  // namespace mpcalloc
