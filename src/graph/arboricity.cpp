#include "graph/arboricity.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc {

namespace {

/// Flattened undirected adjacency over global vertex ids:
/// L vertices are [0, n_L), R vertices are [n_L, n_L + n_R).
struct FlatGraph {
  std::size_t n = 0;
  std::vector<std::size_t> offsets;
  std::vector<Vertex> neighbors;
};

FlatGraph flatten(const BipartiteGraph& g) {
  FlatGraph f;
  const auto nl = g.num_left();
  f.n = g.num_vertices();
  f.offsets.assign(f.n + 1, 0);
  for (Vertex u = 0; u < nl; ++u) f.offsets[u + 1] = g.left_degree(u);
  for (Vertex v = 0; v < g.num_right(); ++v) {
    f.offsets[nl + v + 1] = g.right_degree(v);
  }
  for (std::size_t i = 1; i <= f.n; ++i) f.offsets[i] += f.offsets[i - 1];
  f.neighbors.resize(2 * g.num_edges());
  std::vector<std::size_t> pos(f.offsets.begin(), f.offsets.end() - 1);
  for (Vertex u = 0; u < nl; ++u) {
    for (const Incidence& inc : g.left_neighbors(u)) {
      f.neighbors[pos[u]++] = static_cast<Vertex>(nl + inc.to);
    }
  }
  for (Vertex v = 0; v < g.num_right(); ++v) {
    for (const Incidence& inc : g.right_neighbors(v)) {
      f.neighbors[pos[nl + v]++] = inc.to;
    }
  }
  return f;
}

}  // namespace

ArboricityEstimate estimate_arboricity(const BipartiteGraph& g) {
  ArboricityEstimate est;
  const FlatGraph f = flatten(g);
  const std::size_t n = f.n;
  if (n == 0 || g.num_edges() == 0) {
    est.peel_order.resize(n);
    for (Vertex i = 0; i < n; ++i) est.peel_order[i] = i;
    return est;
  }

  // Matula–Beck bucket-queue core decomposition.
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(f.offsets[v + 1] - f.offsets[v]);
    max_degree = std::max(max_degree, degree[v]);
  }
  // bucket[d] holds vertices whose current degree is d.
  std::vector<std::vector<Vertex>> bucket(max_degree + 1);
  for (std::size_t v = 0; v < n; ++v) {
    bucket[degree[v]].push_back(static_cast<Vertex>(v));
  }

  std::vector<std::uint8_t> removed(n, 0);
  est.peel_order.reserve(n);
  std::uint64_t edges_remaining = g.num_edges();
  std::size_t vertices_remaining = n;
  std::uint32_t degeneracy = 0;
  double best_density = 0.0;
  std::uint32_t cursor = 0;

  for (std::size_t iter = 0; iter < n; ++iter) {
    // Find the minimum non-empty bucket. The cursor only needs to back up by
    // at most 1 per removed edge, so total work is O(n + m).
    while (cursor <= max_degree && bucket[cursor].empty()) ++cursor;
    // Stale entries (vertices whose degree dropped) may still sit in higher
    // buckets; pop until a live vertex with matching degree appears.
    Vertex v = 0;
    for (;;) {
      auto& b = bucket[cursor];
      if (b.empty()) {
        ++cursor;
        while (cursor <= max_degree && bucket[cursor].empty()) ++cursor;
        continue;
      }
      v = b.back();
      b.pop_back();
      if (!removed[v] && degree[v] == cursor) break;
    }

    // Density witness for the still-remaining induced subgraph (before
    // removing v): Nash–Williams gives λ ≥ ⌈m_H/(n_H−1)⌉.
    if (vertices_remaining >= 2) {
      best_density = std::max(
          best_density, static_cast<double>(edges_remaining) /
                            static_cast<double>(vertices_remaining - 1));
    }

    degeneracy = std::max(degeneracy, cursor);
    removed[v] = 1;
    est.peel_order.push_back(v);
    --vertices_remaining;
    for (std::size_t i = f.offsets[v]; i < f.offsets[v + 1]; ++i) {
      const Vertex w = f.neighbors[i];
      if (removed[w]) continue;
      --edges_remaining;
      --degree[w];
      bucket[degree[w]].push_back(w);
      if (degree[w] < cursor) cursor = degree[w];
    }
  }

  est.degeneracy = degeneracy;
  est.max_subgraph_density = best_density;
  const auto density_lb = static_cast<std::uint32_t>(std::ceil(best_density - 1e-12));
  const std::uint32_t degen_lb = (degeneracy + 1) / 2;
  est.lower_bound = std::max<std::uint32_t>({1, density_lb, degen_lb});
  est.upper_bound = std::max<std::uint32_t>(1, degeneracy);
  return est;
}

bool is_forest(const BipartiteGraph& g) {
  return g.num_edges() == 0 || estimate_arboricity(g).degeneracy <= 1;
}

}  // namespace mpcalloc
