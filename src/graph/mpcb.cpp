#include "graph/mpcb.hpp"

#include "util/syscall.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <system_error>
#include <utility>
#include <vector>

namespace mpcalloc {

namespace {

/// old edge id → new edge id for the requested ordering (empty == identity).
std::vector<EdgeId> edge_numbering(const BipartiteGraph& g, EdgeOrder order) {
  const std::size_t m = g.num_edges();
  std::vector<EdgeId> old_to_new;
  if (order == EdgeOrder::kPreserve || m == 0) return old_to_new;

  std::vector<Vertex> left(g.num_left());
  std::iota(left.begin(), left.end(), Vertex{0});
  if (order == EdgeOrder::kDegreeSorted) {
    std::stable_sort(left.begin(), left.end(), [&g](Vertex a, Vertex b) {
      return g.left_degree(a) > g.left_degree(b);
    });
  }

  old_to_new.assign(m, 0);
  EdgeId next = 0;
  for (const Vertex u : left) {
    for (const Incidence& inc : g.left_neighbors(u)) {
      old_to_new[inc.edge] = next++;
    }
  }
  return old_to_new;
}

template <typename OffsetT>
void fill_offsets(ArenaWriter& writer, ArenaSectionKind kind,
                  const BipartiteGraph& g, bool left_side) {
  const std::span<OffsetT> out = writer.section_as<OffsetT>(kind);
  const std::size_t n = left_side ? g.num_left() : g.num_right();
  for (std::size_t i = 0; i <= n; ++i) {
    out[i] = static_cast<OffsetT>(left_side ? g.left_offset(i)
                                            : g.right_offset(i));
  }
}

}  // namespace

std::shared_ptr<const InstanceArena> pack_instance(
    const AllocationInstance& instance, const PackOptions& options) {
  instance.validate();
  const BipartiteGraph& g = instance.graph;
  const std::size_t m = g.num_edges();
  const std::uint16_t width = options.force_wide_offsets ? 8 : 4;

  const std::vector<EdgeId> old_to_new = edge_numbering(g, options.order);
  const bool permuted = !old_to_new.empty();

  ArenaWriter::Counts counts;
  counts.num_left = g.num_left();
  counts.num_right = g.num_right();
  counts.num_edges = m;
  counts.max_left_degree = g.max_left_degree();
  counts.max_right_degree = g.max_right_degree();

  std::vector<std::pair<ArenaSectionKind, std::uint64_t>> sections{
      {ArenaSectionKind::kLeftOffsets, (g.num_left() + 1) * width},
      {ArenaSectionKind::kRightOffsets, (g.num_right() + 1) * width},
      {ArenaSectionKind::kAdjLeft, m * sizeof(Incidence)},
      {ArenaSectionKind::kAdjRight, m * sizeof(Incidence)},
      {ArenaSectionKind::kEdges, m * sizeof(Edge)},
      {ArenaSectionKind::kCapacities,
       g.num_right() * sizeof(std::uint32_t)},
  };
  if (permuted) {
    sections.emplace_back(ArenaSectionKind::kEdgeRemap, m * sizeof(EdgeId));
  }
  ArenaWriter writer(counts, width, permuted ? kPermutedEdges : 0u, sections);

  if (width == 4) {
    fill_offsets<std::uint32_t>(writer, ArenaSectionKind::kLeftOffsets, g, true);
    fill_offsets<std::uint32_t>(writer, ArenaSectionKind::kRightOffsets, g,
                                false);
  } else {
    fill_offsets<std::uint64_t>(writer, ArenaSectionKind::kLeftOffsets, g, true);
    fill_offsets<std::uint64_t>(writer, ArenaSectionKind::kRightOffsets, g,
                                false);
  }

  // Adjacency keeps its list order; only the edge-id field is renumbered.
  const std::span<Incidence> adj_left =
      writer.section_as<Incidence>(ArenaSectionKind::kAdjLeft);
  const std::span<Incidence> adj_right =
      writer.section_as<Incidence>(ArenaSectionKind::kAdjRight);
  const auto renumber = [&old_to_new](EdgeId e) {
    return old_to_new.empty() ? e : old_to_new[e];
  };
  std::size_t k = 0;
  for (Vertex u = 0; u < g.num_left(); ++u) {
    for (const Incidence& inc : g.left_neighbors(u)) {
      adj_left[k++] = Incidence{inc.to, renumber(inc.edge)};
    }
  }
  k = 0;
  for (Vertex v = 0; v < g.num_right(); ++v) {
    for (const Incidence& inc : g.right_neighbors(v)) {
      adj_right[k++] = Incidence{inc.to, renumber(inc.edge)};
    }
  }

  const std::span<Edge> edges = writer.section_as<Edge>(ArenaSectionKind::kEdges);
  if (permuted) {
    const std::span<EdgeId> remap =
        writer.section_as<EdgeId>(ArenaSectionKind::kEdgeRemap);
    for (EdgeId old = 0; old < m; ++old) {
      edges[old_to_new[old]] = g.edge(old);
      remap[old_to_new[old]] = old;
    }
  } else if (m > 0) {
    std::memcpy(edges.data(), g.edges().data(), m * sizeof(Edge));
  }

  if (g.num_right() > 0) {
    std::memcpy(writer.section(ArenaSectionKind::kCapacities).data(),
                instance.capacities.data(),
                g.num_right() * sizeof(std::uint32_t));
  }

  return writer.finalize(/*with_checksums=*/true);
}

AllocationInstance instance_from_arena(
    std::shared_ptr<const InstanceArena> arena) {
  AllocationInstance out;
  const std::span<const std::byte> caps =
      arena->section_bytes(ArenaSectionKind::kCapacities);
  out.capacities.resize(caps.size() / sizeof(std::uint32_t));
  if (!out.capacities.empty()) {
    std::memcpy(out.capacities.data(), caps.data(), caps.size());
  }
  out.graph = BipartiteGraph::from_arena(std::move(arena));
  return out;
}

void save_instance_mpcb(const std::string& path,
                        const AllocationInstance& instance,
                        const PackOptions& options) {
  const std::shared_ptr<const InstanceArena> arena =
      pack_instance(instance, options);
  const int fd = retry_eintr(
      [&] { return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644); });
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "save_instance_mpcb: cannot open " + path);
  }
  const ssize_t wrote = write_all(fd, arena->data(), arena->size());
  const int err = errno;
  close_quiet(fd);
  if (wrote != static_cast<ssize_t>(arena->size())) {
    throw std::system_error(err, std::generic_category(),
                            "save_instance_mpcb: short write to " + path);
  }
}

AllocationInstance load_instance_mmap(const std::string& path) {
  return instance_from_arena(InstanceArena::map_file(path));
}

AllocationInstance load_instance_mpcb_copy(const std::string& path) {
  return instance_from_arena(InstanceArena::read_file(path));
}

bool is_mpcb_file(const std::string& path) {
  const int fd = retry_eintr([&] { return ::open(path.c_str(), O_RDONLY); });
  if (fd < 0) return false;
  std::uint32_t magic = 0;
  const ssize_t got = read_exact(fd, &magic, sizeof(magic));
  close_quiet(fd);
  return got == static_cast<ssize_t>(sizeof(magic)) && magic == kArenaMagic;
}

}  // namespace mpcalloc
