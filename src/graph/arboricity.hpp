// Arboricity and degeneracy estimation (Definition 4).
//
// Exact arboricity is computable in polynomial time (matroid union) but is
// unnecessary here: the paper's bounds only need the order of magnitude, and
// the classical sandwich
//
//      ⌈(d+1)/2⌉  ≤  λ(G)  ≤  d          (d = degeneracy)
//
// together with the Nash–Williams density witness
//
//      λ(G) ≥ ⌈ m_H / (n_H − 1) ⌉        for any subgraph H
//
// brackets λ within a factor 2. We compute the degeneracy exactly with the
// linear-time bucket-queue core decomposition (Matula–Beck), and extract the
// best density witness from the peeling order as a certified lower bound.
#pragma once

#include "graph/bipartite_graph.hpp"

#include <cstdint>

namespace mpcalloc {

struct ArboricityEstimate {
  std::uint32_t degeneracy = 0;          ///< exact degeneracy d
  std::uint32_t lower_bound = 0;         ///< certified λ lower bound
  std::uint32_t upper_bound = 0;         ///< certified λ upper bound (= d, or 1 for forests)
  double max_subgraph_density = 0.0;     ///< max m_H/(n_H−1) over peel suffixes
  std::vector<Vertex> peel_order;        ///< global ids (L: u, R: num_left+v)
};

/// Degeneracy + arboricity bracketing for the bipartite graph viewed as a
/// general undirected graph. O(n + m) time.
[[nodiscard]] ArboricityEstimate estimate_arboricity(const BipartiteGraph& g);

/// True iff the graph is a forest (m < n over every component; equivalently
/// no peel suffix has average degree ≥ 2). Forests have arboricity ≤ 1.
[[nodiscard]] bool is_forest(const BipartiteGraph& g);

}  // namespace mpcalloc
