#include "graph/io.hpp"

#include "graph/mpcb.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mpcalloc {

namespace {

// Line-oriented parsing shared by read_instance/read_solution: tolerate
// CRLF files and whitespace-only lines, reject anything unparsed after the
// expected fields instead of silently ignoring it.

/// Strips a trailing '\r' (CRLF input) in place.
void strip_carriage_return(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// True for lines holding no content: empty, whitespace-only, or comments
/// (leading whitespace before '#' allowed).
bool is_blank_or_comment(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t");
  return first == std::string::npos || line[first] == '#';
}

/// Throws unless the stream is exhausted apart from whitespace.
void require_line_end(std::istringstream& ls, const char* function,
                      const std::string& line) {
  std::string extra;
  if (ls >> extra) {
    throw std::runtime_error(std::string(function) + ": trailing garbage '" +
                             extra + "' in line '" + line + "'");
  }
}

}  // namespace

void write_instance(std::ostream& os, const AllocationInstance& instance) {
  instance.validate();
  const auto& g = instance.graph;
  os << "# mpc-alloc allocation instance\n";
  os << "alloc " << g.num_left() << ' ' << g.num_right() << ' '
     << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_right(); ++v) {
    if (instance.capacities[v] != 1) {
      os << "c " << v << ' ' << instance.capacities[v] << '\n';
    }
  }
  for (const Edge& e : g.edges()) {
    os << "e " << e.u << ' ' << e.v << '\n';
  }
}

AllocationInstance read_instance(std::istream& is) {
  std::string line;
  std::size_t num_left = 0, num_right = 0, num_edges = 0;
  bool saw_header = false;
  AllocationInstance out;
  BipartiteGraphBuilder builder(0, 0);
  std::size_t edges_seen = 0;

  while (std::getline(is, line)) {
    strip_carriage_return(line);
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "alloc") {
      if (saw_header) throw std::runtime_error("read_instance: duplicate header");
      if (!(ls >> num_left >> num_right >> num_edges)) {
        throw std::runtime_error("read_instance: malformed header");
      }
      require_line_end(ls, "read_instance", line);
      saw_header = true;
      builder = BipartiteGraphBuilder(num_left, num_right);
      out.capacities.assign(num_right, 1);
    } else if (tag == "c") {
      if (!saw_header) throw std::runtime_error("read_instance: 'c' before header");
      std::size_t v = 0;
      std::uint32_t cap = 0;
      if (!(ls >> v >> cap) || v >= num_right || cap == 0) {
        throw std::runtime_error("read_instance: malformed capacity line");
      }
      require_line_end(ls, "read_instance", line);
      out.capacities[v] = cap;
    } else if (tag == "e") {
      if (!saw_header) throw std::runtime_error("read_instance: 'e' before header");
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v) || u >= num_left || v >= num_right) {
        throw std::runtime_error("read_instance: malformed edge line");
      }
      require_line_end(ls, "read_instance", line);
      builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
      ++edges_seen;
    } else {
      throw std::runtime_error("read_instance: unknown line tag '" + tag + "'");
    }
  }
  if (!saw_header) throw std::runtime_error("read_instance: missing header");
  if (edges_seen != num_edges) {
    throw std::runtime_error("read_instance: edge count mismatch with header");
  }
  out.graph = builder.build();
  out.validate();
  return out;
}

void write_solution(std::ostream& os, const AllocationInstance& instance,
                    const IntegralAllocation& allocation) {
  allocation.check_valid(instance);
  os << "# mpc-alloc solution\n";
  os << "solution " << allocation.edges.size() << '\n';
  for (const EdgeId e : allocation.edges) {
    const Edge& ed = instance.graph.edge(e);
    os << "m " << ed.u << ' ' << ed.v << '\n';
  }
}

IntegralAllocation read_solution(std::istream& is,
                                 const AllocationInstance& instance) {
  // Pair → edge id lookup.
  std::map<std::pair<Vertex, Vertex>, EdgeId> by_pair;
  for (EdgeId e = 0; e < instance.graph.num_edges(); ++e) {
    const Edge& ed = instance.graph.edge(e);
    by_pair[{ed.u, ed.v}] = e;
  }

  IntegralAllocation out;
  std::vector<bool> seen(instance.graph.num_edges(), false);
  std::string line;
  bool saw_header = false;
  std::size_t expected = 0;
  while (std::getline(is, line)) {
    strip_carriage_return(line);
    if (is_blank_or_comment(line)) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "solution") {
      if (saw_header) throw std::runtime_error("read_solution: duplicate header");
      if (!(ls >> expected)) {
        throw std::runtime_error("read_solution: malformed header");
      }
      require_line_end(ls, "read_solution", line);
      saw_header = true;
    } else if (tag == "m") {
      if (!saw_header) throw std::runtime_error("read_solution: 'm' before header");
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v)) throw std::runtime_error("read_solution: malformed pair");
      require_line_end(ls, "read_solution", line);
      const auto it = by_pair.find({static_cast<Vertex>(u), static_cast<Vertex>(v)});
      if (it == by_pair.end()) {
        throw std::runtime_error("read_solution: pair (" + std::to_string(u) +
                                 "," + std::to_string(v) + ") is not an edge");
      }
      if (seen[it->second]) {
        throw std::runtime_error("read_solution: duplicate pair (" +
                                 std::to_string(u) + "," + std::to_string(v) +
                                 ")");
      }
      seen[it->second] = true;
      out.edges.push_back(it->second);
    } else {
      throw std::runtime_error("read_solution: unknown tag '" + tag + "'");
    }
  }
  if (!saw_header) throw std::runtime_error("read_solution: missing header");
  if (out.edges.size() != expected) {
    throw std::runtime_error("read_solution: pair count mismatch with header");
  }
  out.check_valid(instance);
  return out;
}

void save_solution(const std::string& path, const AllocationInstance& instance,
                   const IntegralAllocation& allocation) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_solution: cannot open " + path);
  write_solution(os, instance, allocation);
}

IntegralAllocation load_solution(const std::string& path,
                                 const AllocationInstance& instance) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_solution: cannot open " + path);
  return read_solution(is, instance);
}

void save_instance(const std::string& path, const AllocationInstance& instance) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(os, instance);
}

AllocationInstance load_instance(const std::string& path) {
  // Binary images are routed to the mmap loader by their magic, so every
  // tool that takes an instance path accepts both formats transparently.
  if (is_mpcb_file(path)) return load_instance_mmap(path);
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_instance: cannot open " + path);
  return read_instance(is);
}

}  // namespace mpcalloc
