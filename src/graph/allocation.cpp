#include "graph/allocation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace mpcalloc {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw std::logic_error("allocation validity: " + what);
}
}  // namespace

bool IntegralAllocation::is_valid(const AllocationInstance& instance) const {
  try {
    check_valid(instance);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void IntegralAllocation::check_valid(const AllocationInstance& instance) const {
  const auto& g = instance.graph;
  std::vector<std::uint32_t> left_use(g.num_left(), 0);
  std::vector<std::uint32_t> right_use(g.num_right(), 0);
  std::vector<std::uint8_t> used(g.num_edges(), 0);
  for (const EdgeId e : edges) {
    if (e >= g.num_edges()) fail("edge id out of range");
    if (used[e]) fail("edge " + std::to_string(e) + " repeated");
    used[e] = 1;
    const Edge& ed = g.edge(e);
    if (++left_use[ed.u] > 1) {
      fail("left vertex " + std::to_string(ed.u) + " matched twice");
    }
    if (++right_use[ed.v] > instance.capacities[ed.v]) {
      fail("right vertex " + std::to_string(ed.v) + " exceeds capacity");
    }
  }
}

double FractionalAllocation::weight() const {
  double total = 0.0;
  for (const double value : x) total += value;
  return total;
}

std::vector<double> FractionalAllocation::right_loads(
    const AllocationInstance& instance) const {
  const auto& g = instance.graph;
  std::vector<double> loads(g.num_right(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) loads[g.edge(e).v] += x[e];
  return loads;
}

std::vector<double> FractionalAllocation::left_loads(
    const AllocationInstance& instance) const {
  const auto& g = instance.graph;
  std::vector<double> loads(g.num_left(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) loads[g.edge(e).u] += x[e];
  return loads;
}

bool FractionalAllocation::is_valid(const AllocationInstance& instance,
                                    double tolerance) const {
  try {
    check_valid(instance, tolerance);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void FractionalAllocation::check_valid(const AllocationInstance& instance,
                                       double tolerance) const {
  const auto& g = instance.graph;
  if (x.size() != g.num_edges()) fail("x size != num_edges");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!(x[e] >= -tolerance) || !(x[e] <= 1.0 + tolerance) || std::isnan(x[e])) {
      fail("x[" + std::to_string(e) + "] outside [0,1]");
    }
  }
  const auto lload = left_loads(instance);
  for (Vertex u = 0; u < g.num_left(); ++u) {
    if (lload[u] > 1.0 + tolerance * std::max(1.0, lload[u])) {
      fail("left vertex " + std::to_string(u) + " load " +
           std::to_string(lload[u]) + " exceeds 1");
    }
  }
  const auto rload = right_loads(instance);
  for (Vertex v = 0; v < g.num_right(); ++v) {
    const auto cap = static_cast<double>(instance.capacities[v]);
    if (rload[v] > cap + tolerance * std::max(1.0, cap)) {
      fail("right vertex " + std::to_string(v) + " load " +
           std::to_string(rload[v]) + " exceeds capacity " +
           std::to_string(instance.capacities[v]));
    }
  }
}

}  // namespace mpcalloc
