#include "graph/arena.hpp"

#include "util/syscall.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <system_error>

namespace mpcalloc {

namespace {

constexpr std::size_t kMaxSections = 16;

std::size_t align_up(std::size_t value) {
  return (value + (kArenaAlign - 1)) & ~(kArenaAlign - 1);
}

/// Bytes of the header covered by the header checksum: everything up to
/// the checksum field itself.
constexpr std::size_t kHeaderChecksumPrefix = offsetof(ArenaHeader, header_checksum);

std::uint64_t header_table_checksum(const std::byte* image,
                                    std::size_t section_count) {
  // FNV-1a over the header prefix, continued over the section table.
  std::uint64_t h = arena_checksum({image, kHeaderChecksumPrefix});
  const std::span<const std::byte> table{
      image + sizeof(ArenaHeader), section_count * sizeof(ArenaSectionEntry)};
  for (const std::byte b : table) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const char* arena_section_name(ArenaSectionKind kind) {
  switch (kind) {
    case ArenaSectionKind::kLeftOffsets: return "left_offsets";
    case ArenaSectionKind::kRightOffsets: return "right_offsets";
    case ArenaSectionKind::kAdjLeft: return "adj_left";
    case ArenaSectionKind::kAdjRight: return "adj_right";
    case ArenaSectionKind::kEdges: return "edges";
    case ArenaSectionKind::kCapacities: return "capacities";
    case ArenaSectionKind::kEdgeRemap: return "edge_remap";
  }
  return "unknown";
}

ArenaFormatError::ArenaFormatError(std::string field, const std::string& detail)
    : std::runtime_error("arena format: field '" + field + "': " + detail),
      field_(std::move(field)) {}

std::uint64_t arena_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// InstanceArena
// ---------------------------------------------------------------------------

InstanceArena::~InstanceArena() {
  if (data_ == nullptr) return;
  if (backing_ == Backing::kMmap) {
    ::munmap(data_, size_);
  } else {
    ::operator delete[](data_, std::align_val_t(kArenaAlign));
  }
}

std::shared_ptr<InstanceArena> InstanceArena::allocate(std::size_t bytes) {
  if (bytes < sizeof(ArenaHeader)) {
    throw std::invalid_argument("InstanceArena::allocate: image too small");
  }
  auto* data = static_cast<std::byte*>(
      ::operator new[](bytes, std::align_val_t(kArenaAlign)));
  std::memset(data, 0, bytes);
  return std::shared_ptr<InstanceArena>(
      new InstanceArena(data, bytes, Backing::kHeap));
}

std::shared_ptr<const InstanceArena> InstanceArena::map_file(
    const std::string& path) {
  const int fd = retry_eintr([&] { return ::open(path.c_str(), O_RDONLY); });
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "load_instance_mmap: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    close_quiet(fd);
    throw std::system_error(err, std::generic_category(),
                            "load_instance_mmap: fstat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(ArenaHeader)) {
    close_quiet(fd);
    throw ArenaFormatError("total_bytes", path + " is smaller than the header (" +
                                              std::to_string(size) + " bytes)");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  const int map_errno = errno;
  close_quiet(fd);  // the mapping keeps the file referenced
  if (map == MAP_FAILED) {
    throw std::system_error(map_errno, std::generic_category(),
                            "load_instance_mmap: mmap " + path);
  }
  std::shared_ptr<const InstanceArena> arena(
      new InstanceArena(static_cast<std::byte*>(map), size, Backing::kMmap));
  arena->validate_header();
  return arena;
}

std::shared_ptr<const InstanceArena> InstanceArena::read_file(
    const std::string& path) {
  const int fd = retry_eintr([&] { return ::open(path.c_str(), O_RDONLY); });
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "load_instance: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    close_quiet(fd);
    throw std::system_error(err, std::generic_category(),
                            "load_instance: fstat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(ArenaHeader)) {
    close_quiet(fd);
    throw ArenaFormatError("total_bytes", path + " is smaller than the header (" +
                                              std::to_string(size) + " bytes)");
  }
  std::shared_ptr<InstanceArena> arena = allocate(size);
  const ssize_t got = read_exact(fd, arena->mutable_data(), size);
  close_quiet(fd);
  if (got != static_cast<ssize_t>(size)) {
    throw std::runtime_error("load_instance: short read from " + path);
  }
  arena->validate_header();
  return arena;
}

std::byte* InstanceArena::mutable_data() {
  if (backing_ != Backing::kHeap) {
    throw std::logic_error("InstanceArena: mmap-backed arenas are read-only");
  }
  return data_;
}

std::span<const ArenaSectionEntry> InstanceArena::sections() const {
  const std::size_t count = header().section_count;
  return {reinterpret_cast<const ArenaSectionEntry*>(data_ + sizeof(ArenaHeader)),
          count};
}

const ArenaSectionEntry* InstanceArena::find_section(
    ArenaSectionKind kind) const {
  for (const ArenaSectionEntry& entry : sections()) {
    if (entry.kind == static_cast<std::uint32_t>(kind)) return &entry;
  }
  return nullptr;
}

std::span<const std::byte> InstanceArena::section_bytes(
    ArenaSectionKind kind) const {
  const ArenaSectionEntry* entry = find_section(kind);
  if (entry == nullptr) {
    throw ArenaFormatError(arena_section_name(kind), "section missing");
  }
  return {data_ + entry->offset, entry->bytes};
}

void InstanceArena::validate_header() const {
  const auto fail = [](const char* field, const std::string& detail) {
    throw ArenaFormatError(field, detail);
  };
  const ArenaHeader& h = header();
  if (h.magic != kArenaMagic) {
    fail("magic", "not an .mpcb arena image (got 0x" +
                      [&] {
                        char buf[16];
                        std::snprintf(buf, sizeof(buf), "%08x", h.magic);
                        return std::string(buf);
                      }() +
                      ")");
  }
  if (h.version != kArenaVersion) {
    fail("version", "unsupported format version " + std::to_string(h.version) +
                        " (this build reads version " +
                        std::to_string(kArenaVersion) + ")");
  }
  if (h.offset_width != 4 && h.offset_width != 8) {
    fail("offset_width",
         "must be 4 or 8 bytes, got " + std::to_string(h.offset_width));
  }
  if (h.id_width != 4) {
    fail("id_width", "this build uses 32-bit vertex/edge ids; got " +
                         std::to_string(h.id_width) + "-byte ids");
  }
  if (h.offset_width == 4 && h.num_edges > 0xFFFFFFFFull) {
    fail("offset_width", "4-byte offsets cannot address " +
                             std::to_string(h.num_edges) + " edges");
  }
  if (h.num_left > 0xFFFFFFFFull || h.num_right > 0xFFFFFFFFull ||
      h.num_edges > 0xFFFFFFFFull) {
    fail("id_width", "vertex/edge counts exceed the 32-bit id space");
  }
  if (h.total_bytes != size_) {
    fail("total_bytes", "header records " + std::to_string(h.total_bytes) +
                            " bytes but the image holds " +
                            std::to_string(size_) + " (truncated file?)");
  }
  if (h.section_count == 0 || h.section_count > kMaxSections) {
    fail("section_count", "implausible count " + std::to_string(h.section_count));
  }
  const std::size_t table_end =
      sizeof(ArenaHeader) + h.section_count * sizeof(ArenaSectionEntry);
  if (table_end > size_) {
    fail("section_count", "section table overruns the image");
  }
  if (h.header_checksum != header_table_checksum(data_, h.section_count)) {
    fail("header_checksum", "header/section-table checksum mismatch");
  }

  // Per-section structural checks: known unique kinds, aligned in-bounds
  // payloads, and sizes consistent with the header counts.
  const auto expect_bytes = [&fail](const ArenaSectionEntry& entry,
                                    std::uint64_t want) {
    if (entry.bytes != want) {
      fail(arena_section_name(static_cast<ArenaSectionKind>(entry.kind)),
           "section holds " + std::to_string(entry.bytes) +
               " bytes, expected " + std::to_string(want));
    }
  };
  std::uint32_t seen_mask = 0;
  for (const ArenaSectionEntry& entry : sections()) {
    const auto kind = static_cast<ArenaSectionKind>(entry.kind);
    if (entry.kind < 1 ||
        entry.kind > static_cast<std::uint32_t>(ArenaSectionKind::kEdgeRemap)) {
      fail("section_table", "unknown section kind " + std::to_string(entry.kind));
    }
    if (seen_mask & (1u << entry.kind)) {
      fail(arena_section_name(kind), "section appears twice");
    }
    seen_mask |= 1u << entry.kind;
    if (entry.offset % kArenaAlign != 0) {
      fail(arena_section_name(kind), "payload offset not 64-byte aligned");
    }
    if (entry.offset < table_end || entry.offset > size_ ||
        entry.bytes > size_ - entry.offset) {
      fail(arena_section_name(kind), "payload overruns the image");
    }
    switch (kind) {
      case ArenaSectionKind::kLeftOffsets:
        expect_bytes(entry, (h.num_left + 1) * h.offset_width);
        break;
      case ArenaSectionKind::kRightOffsets:
        expect_bytes(entry, (h.num_right + 1) * h.offset_width);
        break;
      case ArenaSectionKind::kAdjLeft:
      case ArenaSectionKind::kAdjRight:
        expect_bytes(entry, h.num_edges * 2 * h.id_width);
        break;
      case ArenaSectionKind::kEdges:
        expect_bytes(entry, h.num_edges * 2 * h.id_width);
        break;
      case ArenaSectionKind::kCapacities:
        expect_bytes(entry, h.num_right * 4);
        break;
      case ArenaSectionKind::kEdgeRemap:
        expect_bytes(entry, h.num_edges * h.id_width);
        break;
    }
  }
  for (const ArenaSectionKind required :
       {ArenaSectionKind::kLeftOffsets, ArenaSectionKind::kRightOffsets,
        ArenaSectionKind::kAdjLeft, ArenaSectionKind::kAdjRight,
        ArenaSectionKind::kEdges}) {
    if (!(seen_mask & (1u << static_cast<std::uint32_t>(required)))) {
      fail(arena_section_name(required), "required section missing");
    }
  }
  const bool has_remap =
      seen_mask & (1u << static_cast<std::uint32_t>(ArenaSectionKind::kEdgeRemap));
  if (static_cast<bool>(h.flags & kPermutedEdges) != has_remap) {
    fail("flags", has_remap
                      ? "edge_remap section present without the permuted flag"
                      : "permuted flag set but edge_remap section missing");
  }
}

void InstanceArena::verify_checksums() const {
  if (!(header().flags & kHasChecksums)) {
    throw ArenaFormatError("flags", "image carries no payload checksums");
  }
  for (const ArenaSectionEntry& entry : sections()) {
    const std::span<const std::byte> payload{data_ + entry.offset, entry.bytes};
    if (arena_checksum(payload) != entry.checksum) {
      throw ArenaFormatError(
          std::string(arena_section_name(
              static_cast<ArenaSectionKind>(entry.kind))) + " checksum",
          "payload does not match its recorded checksum");
    }
  }
}

// ---------------------------------------------------------------------------
// ArenaWriter
// ---------------------------------------------------------------------------

ArenaWriter::ArenaWriter(
    const Counts& counts, std::uint16_t offset_width, std::uint32_t extra_flags,
    std::span<const std::pair<ArenaSectionKind, std::uint64_t>> sections) {
  if (sections.size() > kMaxSections) {
    throw std::invalid_argument("ArenaWriter: too many sections");
  }
  std::size_t cursor = align_up(sizeof(ArenaHeader) +
                                sections.size() * sizeof(ArenaSectionEntry));
  entries_.reserve(sections.size());
  for (const auto& [kind, bytes] : sections) {
    ArenaSectionEntry entry;
    entry.kind = static_cast<std::uint32_t>(kind);
    entry.offset = cursor;
    entry.bytes = bytes;
    entries_.push_back(entry);
    cursor = align_up(cursor + bytes);
  }
  arena_ = InstanceArena::allocate(cursor);

  auto* h = reinterpret_cast<ArenaHeader*>(arena_->mutable_data());
  *h = ArenaHeader{};
  h->offset_width = offset_width;
  h->flags = extra_flags;
  h->num_left = counts.num_left;
  h->num_right = counts.num_right;
  h->num_edges = counts.num_edges;
  h->max_left_degree = counts.max_left_degree;
  h->max_right_degree = counts.max_right_degree;
  h->total_bytes = cursor;
  h->section_count = static_cast<std::uint32_t>(entries_.size());
  std::memcpy(arena_->mutable_data() + sizeof(ArenaHeader), entries_.data(),
              entries_.size() * sizeof(ArenaSectionEntry));
}

std::span<std::byte> ArenaWriter::section(ArenaSectionKind kind) {
  if (finalized_) throw std::logic_error("ArenaWriter: already finalized");
  for (const ArenaSectionEntry& entry : entries_) {
    if (entry.kind == static_cast<std::uint32_t>(kind)) {
      return {arena_->mutable_data() + entry.offset, entry.bytes};
    }
  }
  throw std::logic_error(std::string("ArenaWriter: undeclared section ") +
                         arena_section_name(kind));
}

std::shared_ptr<const InstanceArena> ArenaWriter::finalize(
    bool with_checksums) {
  if (finalized_) throw std::logic_error("ArenaWriter: already finalized");
  finalized_ = true;
  std::byte* image = arena_->mutable_data();
  auto* h = reinterpret_cast<ArenaHeader*>(image);
  if (with_checksums) {
    h->flags |= kHasChecksums;
    for (ArenaSectionEntry& entry : entries_) {
      entry.checksum = arena_checksum({image + entry.offset, entry.bytes});
    }
    std::memcpy(image + sizeof(ArenaHeader), entries_.data(),
                entries_.size() * sizeof(ArenaSectionEntry));
  }
  h->header_checksum = header_table_checksum(image, entries_.size());
  std::shared_ptr<const InstanceArena> sealed = std::move(arena_);
  sealed->validate_header();  // a packer bug fails loudly at build time
  return sealed;
}

}  // namespace mpcalloc
