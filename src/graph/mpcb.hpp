// `.mpcb` — the binary on-disk format for allocation instances.
//
// An `.mpcb` file is byte-for-byte an InstanceArena image (graph/arena.hpp):
// 128-byte header, section table, and 64-byte-aligned payload sections.
// Saving is pack + one write(); loading is either
//
//   load_instance_mmap       mmap(PROT_READ, MAP_SHARED) + header validation
//                            — O(header) startup regardless of m, pages are
//                            demand-faulted and shared through the page
//                            cache by every process mapping the file (the
//                            forked workers of the process MPC backend), or
//   load_instance_mpcb_copy  read the image into a private heap block — the
//                            portable fallback and the ASan-friendly path.
//
// Packing always records per-section payload checksums
// (ArenaFlags::kHasChecksums); loaders do not verify them (startup stays
// O(header)) but `mpcalloc_pack --validate`, the tests, and bench_load do.
//
// Edge ordering: pack_instance can renumber edge ids (EdgeOrder) to improve
// locality of per-edge arrays. Only the *ids* change — adjacency list order
// is untouched — so every incidence-order traversal (and therefore every
// solver result keyed by vertices) is bitwise identical to the unpermuted
// instance; per-edge arrays translate through BipartiteGraph::edge_remap().
// kPreserve emits no remap table and the image is bitwise identical to the
// in-memory build of the same instance (plus checksums).
#pragma once

#include "graph/arena.hpp"
#include "graph/bipartite_graph.hpp"

#include <memory>
#include <string>

namespace mpcalloc {

/// Edge-id numbering of a packed image.
enum class EdgeOrder {
  kPreserve,      ///< keep the instance's edge ids (identity; no remap table)
  kLeftCsr,       ///< ids follow the left-CSR scan: adj_left[k].edge == k
  kDegreeSorted,  ///< ids grouped by left vertex, highest-degree vertices
                  ///< first (ties by vertex id) — hot vertices' per-edge
                  ///< entries share cache blocks
};

struct PackOptions {
  EdgeOrder order = EdgeOrder::kPreserve;
  /// Pack 64-bit CSR offsets even when 32-bit ones suffice. Real images
  /// only need this once m ≥ 2^32; the option keeps the wide read path
  /// honest in tests without a 4-billion-edge fixture.
  bool force_wide_offsets = false;
};

/// Pack an instance into a fresh arena image (with payload checksums).
[[nodiscard]] std::shared_ptr<const InstanceArena> pack_instance(
    const AllocationInstance& instance, const PackOptions& options = {});

/// Wrap an arena image (heap or mmap) as an instance. The graph views the
/// arena in place; capacities are copied into the instance's vector
/// (O(num_right), negligible next to m). Throws ArenaFormatError if the
/// image lacks a capacities section.
[[nodiscard]] AllocationInstance instance_from_arena(
    std::shared_ptr<const InstanceArena> arena);

/// pack_instance + one write_all to `path`.
void save_instance_mpcb(const std::string& path,
                        const AllocationInstance& instance,
                        const PackOptions& options = {});

/// mmap `path` read-only and wrap it — the instant-startup load path.
[[nodiscard]] AllocationInstance load_instance_mmap(const std::string& path);

/// Read `path` into a private heap block and wrap it.
[[nodiscard]] AllocationInstance load_instance_mpcb_copy(
    const std::string& path);

/// True when `path` starts with the arena magic (an `.mpcb` image rather
/// than a text instance). False for unreadable or short files.
[[nodiscard]] bool is_mpcb_file(const std::string& path);

}  // namespace mpcalloc
