// Solution types for the allocation problem (Definitions 5 and 6) and their
// validity / quality checkers. These live next to the graph types because
// every layer (flow oracle, LOCAL/MPC algorithms, boosting) consumes them.
#pragma once

#include "graph/bipartite_graph.hpp"

#include <cstdint>
#include <vector>

namespace mpcalloc {

/// An integral allocation: a subset of edges M ⊆ E such that every u ∈ L is
/// incident to ≤ 1 edge of M and every v ∈ R to ≤ C_v edges (Definition 5).
struct IntegralAllocation {
  std::vector<EdgeId> edges;

  [[nodiscard]] std::size_t size() const { return edges.size(); }

  /// True iff M satisfies both degree constraints for `instance`.
  [[nodiscard]] bool is_valid(const AllocationInstance& instance) const;

  /// Throws std::logic_error naming the first violated constraint.
  void check_valid(const AllocationInstance& instance) const;
};

/// A fractional allocation: x_e ∈ [0,1] per edge with Σ_{v∈N_u} x_{u,v} ≤ 1
/// and Σ_{u∈N_v} x_{u,v} ≤ C_v (Definition 6).
struct FractionalAllocation {
  std::vector<double> x;  ///< indexed by EdgeId; size == graph.num_edges()

  /// Total weight Σ_e x_e (the objective of Definition 6).
  [[nodiscard]] double weight() const;

  /// Feasibility with a small numeric slack (default 1e-9 relative).
  [[nodiscard]] bool is_valid(const AllocationInstance& instance,
                              double tolerance = 1e-9) const;
  void check_valid(const AllocationInstance& instance,
                   double tolerance = 1e-9) const;

  /// Per-vertex loads: alloc_v = Σ_{u∈N_v} x_{u,v} and load_u = Σ_v x_{u,v}.
  [[nodiscard]] std::vector<double> right_loads(
      const AllocationInstance& instance) const;
  [[nodiscard]] std::vector<double> left_loads(
      const AllocationInstance& instance) const;
};

}  // namespace mpcalloc
