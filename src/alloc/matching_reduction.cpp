#include "alloc/matching_reduction.hpp"

#include <map>
#include <stdexcept>

namespace mpcalloc {

SplitGraph split_capacities(const AllocationInstance& instance,
                            std::size_t max_edges) {
  instance.validate();
  const auto& g = instance.graph;

  std::uint64_t total_copies = 0;
  std::uint64_t total_edges = 0;
  for (Vertex v = 0; v < g.num_right(); ++v) {
    total_copies += instance.capacities[v];
    total_edges +=
        static_cast<std::uint64_t>(instance.capacities[v]) * g.right_degree(v);
  }
  if (total_edges > max_edges) {
    throw std::length_error(
        "split_capacities: reduced graph would have " +
        std::to_string(total_edges) + " edges (limit " +
        std::to_string(max_edges) + ") — this blow-up is Remark 1's point");
  }

  SplitGraph out;
  out.first_copy.resize(g.num_right());
  out.copy_owner.reserve(total_copies);
  for (Vertex v = 0; v < g.num_right(); ++v) {
    out.first_copy[v] = out.copy_owner.size();
    for (std::uint32_t c = 0; c < instance.capacities[v]; ++c) {
      out.copy_owner.push_back(v);
    }
  }

  BipartiteGraphBuilder builder(g.num_left(), out.copy_owner.size());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const std::size_t first = out.first_copy[ed.v];
    for (std::uint32_t c = 0; c < instance.capacities[ed.v]; ++c) {
      builder.add_edge(ed.u, static_cast<Vertex>(first + c));
    }
  }
  out.graph = builder.build();
  return out;
}

IntegralAllocation lift_matching(const AllocationInstance& instance,
                                 const SplitGraph& split,
                                 const IntegralAllocation& split_matching) {
  // Map each matched split edge (u, copy) back to the original (u, v) edge.
  // Distinct copies of the same v may match distinct u's — each becomes one
  // unit of v's capacity, exactly the allocation semantics.
  std::map<std::pair<Vertex, Vertex>, EdgeId> original_edge;
  const auto& g = instance.graph;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    original_edge[{g.edge(e).u, g.edge(e).v}] = e;
  }

  IntegralAllocation out;
  for (const EdgeId se : split_matching.edges) {
    const Edge& sed = split.graph.edge(se);
    const Vertex v = split.copy_owner[sed.v];
    const auto it = original_edge.find({sed.u, v});
    if (it == original_edge.end()) {
      throw std::logic_error("lift_matching: split edge has no original");
    }
    out.edges.push_back(it->second);
  }
  out.check_valid(instance);
  return out;
}

}  // namespace mpcalloc
