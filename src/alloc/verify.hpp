// Quality verification helpers: true approximation ratios against the
// exact flow oracle, used by tests and every bench table.
#pragma once

#include "flow/optimal_allocation.hpp"
#include "graph/allocation.hpp"

namespace mpcalloc {

/// OPT / achieved (≥ 1 for any feasible solution; 1 = optimal). A weight of
/// zero with OPT > 0 yields +infinity.
[[nodiscard]] double approximation_ratio(std::uint64_t opt, double achieved);

/// Convenience wrappers that solve OPT internally (O(flow) cost).
[[nodiscard]] double fractional_ratio(const AllocationInstance& instance,
                                      const FractionalAllocation& fractional);
[[nodiscard]] double integral_ratio(const AllocationInstance& instance,
                                    const IntegralAllocation& integral);

}  // namespace mpcalloc
