// Quality verification helpers: true approximation ratios against the
// exact flow oracle, used by tests and every bench table.
//
// The oracle emits a min-cut certificate with every solve (see
// flow/optimal_allocation.hpp), so the `certified_*` entry points return
// the ratio together with the certificate fields — benches forward them to
// the perf-gate JSON, where compare_bench.py fails any run whose
// certificate does not verify.
#pragma once

#include "flow/optimal_allocation.hpp"
#include "graph/allocation.hpp"

#include <cstdint>

namespace mpcalloc {

/// An approximation ratio backed by a certified optimum.
struct CertifiedRatio {
  double ratio = 1.0;              ///< OPT / achieved, clamped to ≥ 1
  std::uint64_t opt = 0;           ///< the certified |OPT|
  std::uint64_t cut_capacity = 0;  ///< min-cut witness for `opt`
  bool certificate_ok = false;     ///< opt == cut_capacity
};

/// OPT / achieved (≥ 1 for any feasible solution; 1 = optimal). A weight of
/// zero with OPT > 0 yields +infinity. Clamped below at 1.0 so floating-
/// point noise in `achieved` can never report a super-optimal ratio.
[[nodiscard]] double approximation_ratio(std::uint64_t opt, double achieved);

/// Convenience wrappers that solve OPT internally (O(flow) cost). The
/// plain-double forms delegate to the certified ones.
[[nodiscard]] CertifiedRatio certified_fractional_ratio(
    const AllocationInstance& instance, const FractionalAllocation& fractional);
[[nodiscard]] CertifiedRatio certified_integral_ratio(
    const AllocationInstance& instance, const IntegralAllocation& integral);

[[nodiscard]] double fractional_ratio(const AllocationInstance& instance,
                                      const FractionalAllocation& fractional);
[[nodiscard]] double integral_ratio(const AllocationInstance& instance,
                                    const IntegralAllocation& integral);

}  // namespace mpcalloc
