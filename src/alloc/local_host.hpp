// Algorithm 1 hosted on the LOCAL message-passing runtime.
//
// This is the paper's algorithm *as a distributed protocol*: one algorithm
// round costs two LOCAL rounds (L-side fan-out of fractional terms, R-side
// fan-out of updated priorities) plus one initial priority announcement.
// Every message is O(1) words, which is what lets AZM18's algorithm port to
// sublinear MPC (Section 1.2.1); tests assert both the message bound and
// bit-for-bit agreement with the vectorised engine in proportional.cpp.
#pragma once

#include "alloc/proportional.hpp"
#include "graph/allocation.hpp"
#include "local/network.hpp"

namespace mpcalloc {

struct LocalHostResult {
  ProportionalResult result;
  std::size_t local_rounds = 0;        ///< LOCAL rounds consumed (2τ+1)
  std::uint64_t messages_sent = 0;
  std::size_t max_message_words = 0;   ///< should stay O(1)
};

/// Run `rounds` algorithm rounds of Algorithm 1 (threshold_k from config is
/// honoured, stop rule must be kFixedRounds) through a LocalNetwork.
[[nodiscard]] LocalHostResult run_proportional_local(
    const AllocationInstance& instance, const ProportionalConfig& config);

}  // namespace mpcalloc
