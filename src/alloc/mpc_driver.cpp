#include "alloc/mpc_driver.hpp"

#include "alloc/proportional.hpp"
#include "alloc/solver.hpp"
#include "mpc/exponentiation.hpp"
#include "mpc/primitives.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

namespace {

using mpc::Cluster;
using mpc::DistVec;
using mpc::Word;

/// Input footprint in words: every edge appears in both endpoint adjacency
/// lists, plus one word per vertex of state.
std::uint64_t input_words(const AllocationInstance& instance) {
  return 2 * static_cast<std::uint64_t>(instance.graph.num_edges()) +
         instance.graph.num_vertices();
}

double effective_lambda(const AllocationInstance& instance, double lambda) {
  if (lambda >= 1.0) return lambda;
  return static_cast<double>(std::max<std::size_t>(
      instance.graph.num_vertices(), 2));
}

/// Double <-> Word bit bridging for DistVec payloads.
Word pack(double d) { return std::bit_cast<Word>(d); }
double unpack(Word w) { return std::bit_cast<double>(w); }

void add_doubles(std::span<Word> accum, std::span<const Word> next) {
  for (std::size_t i = 1; i < accum.size(); ++i) {
    accum[i] = pack(unpack(accum[i]) + unpack(next[i]));
  }
}

void accumulate_recovery(mpc::MpcRecoveryStats& into,
                         const mpc::MpcRecoveryStats& r) {
  into.faults_injected += r.faults_injected;
  into.exchange_retries += r.exchange_retries;
  into.replayed_exchanges += r.replayed_exchanges;
  into.restored_words += r.restored_words;
  into.backoff_rounds += r.backoff_rounds;
  into.replayed_rounds += r.replayed_rounds;
  into.discarded_words_moved += r.discarded_words_moved;
  into.checkpoints_taken += r.checkpoints_taken;
  into.checkpoint_restores += r.checkpoint_restores;
  into.split_exchanges += r.split_exchanges;
  into.split_extra_rounds += r.split_extra_rounds;
  into.process_crashes += r.process_crashes;
  into.deadline_misses += r.deadline_misses;
  into.worker_respawns += r.worker_respawns;
  into.backend_degradations += r.backend_degradations;
}

}  // namespace

std::size_t phase_length_for(double lambda, double epsilon, double alpha,
                             std::size_t n) {
  const double log_n = std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  const double log_lambda = std::log2(std::max(lambda, 2.0));
  const double budget = std::min(alpha * log_n, log_lambda);
  const double b = std::sqrt(budget) / std::sqrt(8.0 * epsilon);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::floor(b)));
}

MpcRunResult detail::run_mpc_naive_impl(const AllocationInstance& instance,
                                        const MpcDriverConfig& config) {
  instance.validate();
  const auto& g = instance.graph;
  const double lambda = effective_lambda(instance, config.lambda);
  const std::size_t tau = tau_for_arboricity(lambda, config.epsilon);
  const PowTable pow_table(config.epsilon);
  Xoshiro256pp rng(config.seed);

  Cluster cluster = Cluster::for_input(input_words(instance), config.alpha);
  cluster.set_num_threads(config.num_threads);
  cluster.set_transport_kind(config.transport, config.process_options);
  // A process backend arms the cluster's recovery loop by itself (its
  // faults are real); the driver's checkpoint/replay tier must arm with it
  // or a worker crash would escape.
  const bool fault_tolerant =
      config.fault_plan.active() || cluster.fault_tolerant();
  if (config.fault_plan.active()) cluster.set_fault_plan(config.fault_plan);
  cluster.set_overflow_policy(config.overflow_policy);
  MpcRunResult result;
  result.machine_words = cluster.machine_words();
  result.num_machines = cluster.num_machines();

  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<std::int32_t> start_levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);

  // Host-side record maintenance is frontier-driven: the (u, β_v) and
  // (v, β_v/β_u) edge records are built once and then only the entries an
  // incident level/denominator change can have moved are rewritten (the
  // rewritten value is produced by the same expression as a dense rebuild,
  // so the record streams — and therefore every cluster outcome — are
  // bitwise unchanged). The *cluster* cost per round is the same scatter/
  // reduce traffic as before; the saving is the O(m) host-side rebuild.
  std::vector<double> beta_right(g.num_right(), 1.0);
  std::vector<double> denom(g.num_left(), 0.0);
  std::vector<Word> records1;  ///< (u, β_v) per edge
  std::vector<Word> records2;  ///< (v, β_v/β_u) per edge
  std::vector<Vertex> changed_denoms;
  changed_denoms.reserve(g.num_left());
  RoundWorkspace ws;
  ws.init(g);
  bool have_records = false;
  const auto refresh_record2 = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    records2[2 * e + 1] =
        pack(denom[ed.u] > 0.0 ? beta_right[ed.v] / denom[ed.u] : 0.0);
  };

  // Checkpoint/replay: each LOCAL round of this driver is a pure function
  // of the host state below plus the cluster state, so a fault that escapes
  // the cluster's exchange-level recovery (a worker crash wipes arenas
  // across datasets) is handled by rolling everything back to the last
  // checkpoint and re-running the rounds since. The replay recomputes
  // byte-identical records and re-charges identical counters, which is what
  // makes the final result bitwise equal to the fault-free run; the
  // discarded work is folded into cluster.recovery_stats().
  struct NaiveCheckpoint {
    std::size_t round = 1;  ///< next LOCAL round to execute
    std::vector<std::int32_t> levels;
    std::vector<std::int32_t> start_levels;
    std::vector<double> alloc;
    std::vector<double> beta_right;
    std::vector<double> denom;
    std::vector<Word> records1;
    std::vector<Word> records2;
    bool have_records = false;
    Xoshiro256pp rng;
    RoundWorkspace ws;
    std::uint64_t host_record_updates = 0;
    SolveStats stats;
    std::size_t local_rounds = 0;
    mpc::ClusterCheckpoint cluster_cp;
  };
  const std::size_t checkpoint_every =
      fault_tolerant ? std::max<std::size_t>(config.checkpoint_every, 1) : 0;
  std::optional<NaiveCheckpoint> cp;
  std::uint32_t restores = 0;

  // The naive regime never runs longer than O(log λ) rounds at constant ε,
  // so raw β values stay comfortably within double range and the records
  // can carry them directly.
  for (std::size_t round = 1; round <= tau; ++round) {
    if (fault_tolerant && (!cp || round - cp->round >= checkpoint_every)) {
      NaiveCheckpoint next;
      next.round = round;
      next.levels = levels;
      next.start_levels = start_levels;
      next.alloc = alloc;
      next.beta_right = beta_right;
      next.denom = denom;
      next.records1 = records1;
      next.records2 = records2;
      next.have_records = have_records;
      next.rng = rng;
      next.ws = ws;
      next.host_record_updates = result.host_record_updates;
      next.stats = result.stats;
      next.local_rounds = result.local_rounds;
      next.cluster_cp = cluster.checkpoint();
      cp = std::move(next);
    }
    try {
    start_levels = levels;

    // Aggregation 1: denominators β_u = Σ_{v∈N_u} β_v via (key=u, β_v)
    // records flowing through the cluster. 3 MPC rounds (sample sort +
    // boundary merge inside sum_by_key).
    RoundStats round_stats;
    round_stats.sparse = have_records;
    if (!have_records) {
      for (Vertex v = 0; v < g.num_right(); ++v) {
        beta_right[v] =
            std::pow(1.0 + config.epsilon, static_cast<double>(levels[v]));
      }
      records1.reserve(2 * g.num_edges());
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        records1.push_back(g.edge(e).u);
        records1.push_back(pack(beta_right[g.edge(e).v]));
      }
      result.host_record_updates += g.num_edges();
    } else {
      for (const Vertex v : ws.frontier()) {
        beta_right[v] =
            std::pow(1.0 + config.epsilon, static_cast<double>(levels[v]));
        for (const Incidence& inc : g.right_neighbors(v)) {
          records1[2 * inc.edge + 1] = pack(beta_right[v]);
          ++result.host_record_updates;
        }
      }
    }
    DistVec denom_vec = cluster.scatter(records1, 2);
    mpc::reduce_by_key(cluster, denom_vec, add_doubles, rng);
    changed_denoms.clear();
    {
      const std::vector<Word> flat = denom_vec.gather(config.num_threads);
      for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
        const auto u = static_cast<Vertex>(flat[i]);
        const double value = unpack(flat[i + 1]);
        if (!have_records || denom[u] != value) {
          denom[u] = value;
          changed_denoms.push_back(u);
        }
      }
    }
    // Join: ship β_u back to the edge records — 1 round.
    cluster.charge_rounds(1);

    // Aggregation 2: alloc_v = Σ_{u∈N_v} β_v/β_u via (key=v, term) records.
    if (!have_records) {
      records2.reserve(2 * g.num_edges());
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        records2.push_back(g.edge(e).v);
        records2.push_back(0);
      }
      for (EdgeId e = 0; e < g.num_edges(); ++e) refresh_record2(e);
      result.host_record_updates += g.num_edges();
      have_records = true;
    } else {
      // An entry moves iff its β_v or its β_u denominator moved; refreshing
      // twice is an idempotent overwrite with the same value.
      for (const Vertex v : ws.frontier()) {
        for (const Incidence& inc : g.right_neighbors(v)) {
          refresh_record2(inc.edge);
          ++result.host_record_updates;
        }
      }
      for (const Vertex u : changed_denoms) {
        for (const Incidence& inc : g.left_neighbors(u)) {
          refresh_record2(inc.edge);
          ++result.host_record_updates;
        }
      }
    }
    DistVec alloc_vec = cluster.scatter(records2, 2);
    mpc::reduce_by_key(cluster, alloc_vec, add_doubles, rng);
    std::fill(alloc.begin(), alloc.end(), 0.0);
    {
      const std::vector<Word> flat = alloc_vec.gather(config.num_threads);
      for (std::size_t i = 0; i + 1 < flat.size(); i += 2) {
        alloc[static_cast<Vertex>(flat[i])] = unpack(flat[i + 1]);
      }
    }
    // Join alloc_v back to the R-vertex records — 1 round; the level update
    // itself is machine-local (vertices are records).
    cluster.charge_rounds(1);
    apply_level_update(instance, alloc, config.epsilon, round, nullptr, levels,
                       config.num_threads, &ws.deltas);
    ws.derive_frontier(g, ws.deltas, config.num_threads);
    round_stats.frontier_size = ws.frontier().size();
    round_stats.frontier_volume = ws.frontier_volume();
    result.stats.record_round(round_stats);
    result.local_rounds = round;

    if (config.adaptive_termination) {
      // The §4 test is O(1) MPC rounds (two aggregations + a broadcast).
      cluster.charge_rounds(2);
      const TerminationCheck check = check_termination(
          instance, levels, alloc, round, config.epsilon);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
    } catch (const mpc::TransportFault&) {
      // A fault the cluster's exchange-level recovery could not absorb
      // (worker crash, or retries exhausted). Roll the cluster and the host
      // state back to the checkpoint and replay the LOCAL rounds since —
      // bounded by max_restores so a scripted unrecoverable schedule still
      // escalates instead of spinning.
      if (!cp || restores >= config.fault_plan.max_restores) throw;
      ++restores;
      cluster.restore(cp->cluster_cp);
      levels = cp->levels;
      start_levels = cp->start_levels;
      alloc = cp->alloc;
      beta_right = cp->beta_right;
      denom = cp->denom;
      records1 = cp->records1;
      records2 = cp->records2;
      have_records = cp->have_records;
      rng = cp->rng;
      ws = cp->ws;
      result.host_record_updates = cp->host_record_updates;
      result.stats = cp->stats;
      result.local_rounds = cp->local_rounds;
      round = cp->round - 1;  // the for's ++round re-enters at cp->round
    }
  }

  result.allocation = materialize_allocation(instance, start_levels, alloc,
                                             pow_table, config.num_threads);
  cluster.charge_rounds(2);  // materialisation = one more aggregation pass
  result.match_weight = match_weight(instance, alloc, config.num_threads);
  result.mpc_rounds = cluster.rounds();
  result.words_moved = cluster.total_words_moved();
  result.peak_machine_words = cluster.peak_machine_words();
  result.peak_total_words = cluster.peak_total_words();
  result.recovery = cluster.recovery_stats();
  return result;
}

MpcRunResult detail::run_mpc_phased_impl(const AllocationInstance& instance,
                                         const MpcDriverConfig& config) {
  instance.validate();
  const double lambda = effective_lambda(instance, config.lambda);
  const std::size_t b =
      config.phase_length > 0
          ? config.phase_length
          : phase_length_for(lambda, config.epsilon, config.alpha,
                             instance.graph.num_vertices());
  const std::size_t tau = tau_for_arboricity(lambda, config.epsilon);

  Cluster cluster = Cluster::for_input(input_words(instance), config.alpha);
  cluster.set_num_threads(config.num_threads);
  cluster.set_transport_kind(config.transport, config.process_options);
  // Plumbed for parity with the naive driver; the phased pipeline's
  // exchanges are charged analytically (no records flow through the
  // transport), so an active fault plan is inert here by construction.
  if (config.fault_plan.active()) cluster.set_fault_plan(config.fault_plan);
  cluster.set_overflow_policy(config.overflow_policy);
  MpcRunResult result;
  result.machine_words = cluster.machine_words();
  result.num_machines = cluster.num_machines();

  // The input edge list is resident on the cluster for the whole run
  // (input placement is free in the model, but the space it occupies is
  // not): scatter it so the arenas' per-machine high-watermarks and the
  // total space accounting reflect the Õ(λn)-word input, not just the
  // exponentiation balls.
  {
    std::vector<Word> flat;
    flat.reserve(2 * instance.graph.num_edges());
    for (const Edge& ed : instance.graph.edges()) {
      flat.push_back(ed.u);
      flat.push_back(ed.v);
    }
    (void)cluster.scatter(flat, 2);
  }

  Xoshiro256pp rng(config.seed);
  SampledConfig sampled;
  sampled.epsilon = config.epsilon;
  sampled.phase_length = b;
  sampled.samples_per_group = config.samples_per_group;
  sampled.max_rounds = tau;
  sampled.adaptive_termination = config.adaptive_termination;
  sampled.num_threads = config.num_threads;
  sampled.on_phase_subgraph =
      [&](const std::vector<std::vector<std::uint32_t>>& adjacency) {
        // Per phase: level grouping + sampling = one sort pass (3 rounds);
        // ball collection by exponentiation (charged inside, and each
        // ball's volume is checked against S); write-back of updated
        // priorities (1 round).
        cluster.charge_rounds(3);
        const mpc::BallCollection balls = mpc::collect_balls(
            cluster, adjacency, static_cast<std::uint32_t>(b));
        result.max_ball_volume =
            std::max(result.max_ball_volume,
                     static_cast<std::uint64_t>(balls.max_ball_vertices));
        cluster.charge_rounds(1);
        if (config.adaptive_termination) cluster.charge_rounds(2);
      };

  SampledResult run = detail::run_sampled_impl(instance, sampled, rng);
  cluster.charge_rounds(2);  // exact output materialisation pass

  result.allocation = std::move(run.allocation);
  result.match_weight = run.match_weight;
  result.local_rounds = run.rounds_executed;
  result.phases = run.phases_executed;
  result.stopped_by_condition = run.stopped_by_condition;
  result.mpc_rounds = cluster.rounds();
  result.words_moved = cluster.total_words_moved();
  result.peak_machine_words = cluster.peak_machine_words();
  result.peak_total_words = cluster.peak_total_words();
  result.recovery = cluster.recovery_stats();
  return result;
}

MpcRunResult detail::run_mpc_unknown_lambda_impl(
    const AllocationInstance& instance, const MpcDriverConfig& config) {
  instance.validate();
  const double n =
      static_cast<double>(std::max<std::size_t>(instance.graph.num_vertices(), 2));

  MpcRunResult total;
  std::size_t trial = 0;
  for (;;) {
    ++trial;
    // Trial i guesses √(log2 λ_i) = 2^i, i.e. log2 λ_i = 4^i.
    const double log2_lambda = std::pow(4.0, static_cast<double>(trial));
    const bool last_possible = log2_lambda >= std::log2(n);
    const double lambda = last_possible ? n : std::exp2(log2_lambda);

    MpcDriverConfig attempt = config;
    attempt.lambda = lambda;
    attempt.adaptive_termination = true;
    attempt.seed = config.seed + trial;

    MpcRunResult r = detail::run_mpc_phased_impl(instance, attempt);
    total.mpc_rounds += r.mpc_rounds;
    total.words_moved += r.words_moved;
    accumulate_recovery(total.recovery, r.recovery);
    total.local_rounds += r.local_rounds;
    total.phases += r.phases;
    total.peak_machine_words =
        std::max(total.peak_machine_words, r.peak_machine_words);
    total.peak_total_words = std::max(total.peak_total_words, r.peak_total_words);
    total.max_ball_volume = std::max(total.max_ball_volume, r.max_ball_volume);
    total.machine_words = r.machine_words;
    total.num_machines = r.num_machines;

    if (r.stopped_by_condition || last_possible) {
      total.allocation = std::move(r.allocation);
      total.match_weight = r.match_weight;
      total.stopped_by_condition = r.stopped_by_condition;
      total.trials = trial;
      return total;
    }
  }
}

}  // namespace mpcalloc
