// The sampled, phase-compressed executor (Algorithm 2 of the paper).
//
// Rounds are grouped into phases of B rounds. At the start of a phase every
// vertex partitions its neighbourhood into level groups L_x (neighbours
// whose priority lies in ((1+ε)^{x−1}, (1+ε)^x]) and draws, for each round
// of the phase and each group, a *fresh independent* uniform sample of up
// to t edges. During the phase, the Algorithm-1 aggregations
//   β_u    = Σ_{v∈N_u} β_v          (needed by L vertices)
//   alloc_v = β_v · Σ_{u∈N_v} 1/β_u  (needed by R vertices)
// are replaced by per-group rescaled-sample estimates (Lemma 11 with
// t = (1+ε)^B; the rescaling is per group — |N_w ∩ L_x|/|sample| — which is
// the form Lemma 11's proof actually supports). Appendix A shows the
// resulting trajectory equals Algorithm 3 with thresholds k_{v,r} ∈ [1/4,4],
// hence still O(1)-approximate (Theorem 17).
//
// The point of the construction: within a phase no communication crosses
// unsampled edges, so a vertex's B-round behaviour depends only on its
// radius-B ball in the *sampled* subgraph H — small enough to ship to one
// MPC machine by graph exponentiation (see mpc_driver.*). The executor
// reports each phase's sampled subgraph through `on_phase_subgraph` so the
// MPC driver can account ball volumes and rounds.
//
// Output materialisation: after the final round the feasible fractional
// allocation (lines 5–6 / line 8) is materialised *exactly* from the final
// levels — one extra exact aggregation pass, O(1) MPC rounds — so the
// returned allocation is always feasible even though the trajectory used
// estimates. (Algorithm 2's line 8 uses estimated β_u; the exact pass is
// the standard way to restore L-side feasibility and is accounted for in
// the driver.)
#pragma once

#include "alloc/options.hpp"
#include "alloc/proportional.hpp"
#include "graph/allocation.hpp"
#include "util/rng.hpp"

#include <functional>

namespace mpcalloc {

/// Deprecated spelling: `num_threads` used to be declared directly here; it
/// now comes from the CommonOptions base (alloc/options.hpp), same name and
/// meaning. Results stay bitwise independent of its value: sample draws run
/// on per-tile RNG streams keyed by (phase, round, tile), so the executor's
/// randomness never depends on scheduling. The executor takes its RNG as an
/// explicit argument, so the inherited `seed` is ignored here (the Solver
/// facade seeds the RNG from it); `engine`/`dense_switch_fraction` are
/// ignored — the estimation sweeps have no frontier engine yet (ROADMAP).
struct SampledConfig : CommonOptions {
  double epsilon = 0.25;
  std::size_t phase_length = 4;     ///< B
  std::size_t samples_per_group = 32;  ///< t (the paper's value is
                                       ///< (1+ε)^{2B}ε^{-5}log n; benches sweep)
  std::size_t max_rounds = 0;       ///< τ; must be ≥ 1
  bool adaptive_termination = false;  ///< check the §4 rule at phase ends
                                      ///< (uses one exact pass, as the MPC
                                      ///< termination test does)

  /// Optional observer invoked once per phase with the sampled communication
  /// subgraph as adjacency over global ids (u ∈ [0,n_L), v ∈ n_L + [0,n_R)).
  std::function<void(const std::vector<std::vector<std::uint32_t>>&)>
      on_phase_subgraph;
};

struct SampledResult {
  FractionalAllocation allocation;   ///< exact-materialised, always feasible
  double match_weight = 0.0;         ///< from the exact final pass
  std::size_t rounds_executed = 0;
  std::size_t phases_executed = 0;
  bool stopped_by_condition = false;
  std::vector<std::int32_t> final_levels;
  std::uint64_t samples_drawn = 0;   ///< total edge samples over the run
};

[[nodiscard]] SampledResult run_sampled(const AllocationInstance& instance,
                                        const SampledConfig& config,
                                        Xoshiro256pp& rng);

}  // namespace mpcalloc
