// Frontier-driven incremental round engine.
//
// Every round of the proportional dynamics only *moves* the vertices whose
// allocation sits outside the dead zone, and in the O(log λ) schedule that
// set collapses geometrically after the first few rounds — yet the dense
// sweeps keep paying O(n_L + m) + O(m) per round. This engine exploits the
// sparsity: after `apply_level_update` records the ±1 `level_deltas`, the
// changed right vertices form a *frontier* F; only
//
//   * the left entries u ∈ N(F)        (their max-level/denominator moved),
//   * the right entries v ∈ N(N(F))    (some incident inv-denominator moved,
//                                       or their own level moved)
//
// can have a different LeftAggregate / alloc value next round, so only
// those entries are recomputed. Each refreshed entry scans its *full* CSR
// neighborhood in the same left-to-right order as the dense sweep, so a
// sparse round is bitwise identical to a dense one at every thread count —
// the engine changes which entries are recomputed, never how.
//
// A direction-optimizing switch (à la push/pull BFS) falls back to the
// dense tiled sweep whenever the frontier volume exceeds a tunable fraction
// of m, since the two-hop recompute volume then approaches the dense cost
// anyway. `MPCALLOC_FORCE_DENSE=1` / `MPCALLOC_FORCE_SPARSE=1` pin the
// choice for testing (CI runs the determinism suite under both).
//
// The RoundWorkspace owns every per-round buffer (delta array, frontier
// queue, epoch-stamped touched sets, tile scratch); after the first two
// rounds warm its capacity the round loop performs no workspace
// (re)allocation — tests assert buffer-pointer stability.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/parallel.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace mpcalloc {

/// Which recompute path the round loop takes after round 1.
enum class RoundEngine : std::uint8_t {
  kAuto,    ///< per-round frontier-volume switch (the default)
  kDense,   ///< always the full tiled sweeps
  kSparse,  ///< always the incremental path (round 1 is dense regardless)
};

/// Per-round engine counters. `frontier_*` describe the set of right
/// vertices whose level changed in *this* round's update (driving the next
/// round); `recomputed_*` count the entries this round's sweep refreshed
/// (0/0 on dense rounds, which recompute everything).
struct RoundStats {
  std::uint64_t frontier_size = 0;
  std::uint64_t frontier_volume = 0;  ///< Σ right-degree over the frontier
  std::uint64_t recomputed_left = 0;
  std::uint64_t recomputed_right = 0;
  bool sparse = false;  ///< engine choice for this round's recompute

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

/// Aggregate engine counters for one solve, surfaced on the driver results
/// and the bench JSON so the dense/sparse split is measurable.
struct SolveStats {
  std::size_t dense_rounds = 0;
  std::size_t sparse_rounds = 0;
  std::uint64_t recomputed_left_total = 0;
  std::uint64_t recomputed_right_total = 0;
  std::vector<RoundStats> rounds;  ///< per executed round, in order

  /// Append one round's counters, folding them into the aggregates.
  void record_round(const RoundStats& round) {
    rounds.push_back(round);
    if (round.sparse) {
      ++sparse_rounds;
      recomputed_left_total += round.recomputed_left;
      recomputed_right_total += round.recomputed_right;
    } else {
      ++dense_rounds;
    }
  }

  friend bool operator==(const SolveStats&, const SolveStats&) = default;
};

/// Compact record of one solve's level trajectory: per executed round, the
/// right vertices whose level moved and the ±1 step each took — exactly the
/// round's frontier, so recording costs one copy of an already-derived
/// list. The serving layer (src/serve/) diffs a warm restart against the
/// previous generation's tape: a vertex off the active cone is guaranteed
/// to take the taped step, so its whole trajectory replays in O(1) per
/// change instead of O(deg) per round.
struct TrajectoryTape {
  struct Change {
    Vertex v = 0;
    std::int8_t delta = 0;  ///< ±1 level step taken this round

    friend bool operator==(const Change&, const Change&) = default;
  };

  /// rounds[r-1] = changes of round r, ascending by vertex.
  std::vector<std::vector<Change>> rounds;

  [[nodiscard]] std::size_t num_rounds() const { return rounds.size(); }
  [[nodiscard]] std::uint64_t total_changes() const {
    std::uint64_t total = 0;
    for (const auto& round : rounds) total += round.size();
    return total;
  }
};

/// Apply the environment overrides: MPCALLOC_FORCE_DENSE=1 /
/// MPCALLOC_FORCE_SPARSE=1 (any non-empty value other than "0") beat the
/// configured choice; both set throws std::invalid_argument.
[[nodiscard]] RoundEngine resolve_round_engine(RoundEngine configured);

/// The sparse path's work allowance: `fraction · 2m` edge visits (a dense
/// round performs one left-CSR and one right-CSR pass, 2m edge visits).
[[nodiscard]] std::uint64_t sparse_edge_budget(std::size_t num_edges,
                                               double dense_switch_fraction);

/// Owns all per-round scratch of the incremental engine. init() sizes every
/// buffer to its worst case once; derive_frontier/derive_touched only write
/// into that storage, so buffer addresses are stable across rounds.
class RoundWorkspace {
 public:
  /// Size (or resize) the buffers for `graph`. Clears the frontier.
  void init(const BipartiteGraph& graph);

  /// Compact {v : deltas[v] != 0} into the frontier queue, ascending, with
  /// a deterministic two-pass (per-tile count, prefix, per-tile fill) that
  /// parallelizes over the same fixed tiles as every other sweep. Also
  /// records the frontier volume (Σ right-degree).
  void derive_frontier(const BipartiteGraph& graph,
                       const std::vector<std::int8_t>& deltas,
                       std::size_t num_threads);

  /// Derive touched_left = N(frontier) and touched_right = N(N(frontier))
  /// with epoch-stamped marks (no per-round clearing), accumulating the
  /// recompute volume (Σ left-degree over touched_left + Σ right-degree
  /// over touched_right — the edge visits the incremental sweeps will pay).
  /// Returns false, leaving the touched sets unusable, as soon as that
  /// volume exceeds `edge_budget` — the direction-optimizing bail-out to
  /// the dense sweep, bounding the cost of a wrong sparse guess. Serial:
  /// the sparse path is only attempted when the frontier is small, and a
  /// serial derivation keeps the set *orders* scheduling-free too.
  [[nodiscard]] bool derive_touched(const BipartiteGraph& graph,
                                    std::uint64_t edge_budget);

  /// The drivers' per-round engine gate: decides whether this round's
  /// recompute may run sparse, deriving the touched sets when it may.
  /// kDense (or no frontier yet, i.e. round 1) ⇒ false; kSparse ⇒ derive
  /// with an unlimited budget; kAuto ⇒ pre-filter on the one-hop frontier
  /// volume, then derive under the sparse_edge_budget with the mid-
  /// derivation bail-out. Callers must not touch the sets when it returns
  /// false.
  [[nodiscard]] bool choose_sparse(const BipartiteGraph& graph,
                                   RoundEngine engine, bool have_frontier,
                                   double dense_switch_fraction);

  [[nodiscard]] std::span<const Vertex> frontier() const { return frontier_; }
  [[nodiscard]] std::uint64_t frontier_volume() const { return frontier_volume_; }
  [[nodiscard]] std::span<const Vertex> touched_left() const { return touched_left_; }
  [[nodiscard]] std::span<const Vertex> touched_right() const { return touched_right_; }

  /// ±1 level step per right vertex, written by apply_level_update.
  std::vector<std::int8_t> deltas;

 private:
  std::vector<Vertex> frontier_;
  std::vector<Vertex> touched_left_;
  std::vector<Vertex> touched_right_;
  std::vector<std::uint64_t> left_epoch_;
  std::vector<std::uint64_t> right_epoch_;
  std::uint64_t epoch_ = 0;
  std::uint64_t frontier_volume_ = 0;
  std::vector<std::size_t> tile_counts_;
};

/// Run fn(vertex) for every vertex in `list` on the deterministic executor.
/// Entries must be independent (each fn(v) writes only v's state), exactly
/// like the dense sweeps' per-vertex bodies.
template <typename Fn>
void parallel_for_each_vertex(std::span<const Vertex> list,
                              std::size_t num_threads, const Fn& fn) {
  parallel_for(0, list.size(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
                 for (std::size_t i = tile_begin; i < tile_end; ++i) fn(list[i]);
               });
}

}  // namespace mpcalloc
