#include "alloc/solver.hpp"

#include <stdexcept>
#include <utility>

namespace mpcalloc {

namespace {

SolveResult from_proportional(SolveMethod method, ProportionalResult r) {
  SolveResult out;
  out.method = method;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.final_alloc = std::move(r.final_alloc);
  out.weight_history = std::move(r.weight_history);
  out.stats = std::move(r.stats);
  return out;
}

SolveResult from_sampled(SampledResult r) {
  SolveResult out;
  out.method = SolveMethod::kSampled;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.phases = r.phases_executed;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.samples_drawn = r.samples_drawn;
  return out;
}

SolveResult from_mpc(SolveMethod method, MpcRunResult r) {
  SolveResult out;
  out.method = method;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.local_rounds;
  out.phases = r.phases;
  out.stopped_by_condition = r.stopped_by_condition;
  out.stats = std::move(r.stats);
  MpcSolveCounters counters;
  counters.mpc_rounds = r.mpc_rounds;
  counters.words_moved = r.words_moved;
  counters.peak_machine_words = r.peak_machine_words;
  counters.peak_total_words = r.peak_total_words;
  counters.machine_words = r.machine_words;
  counters.num_machines = r.num_machines;
  counters.trials = r.trials;
  counters.max_ball_volume = r.max_ball_volume;
  counters.host_record_updates = r.host_record_updates;
  counters.recovery = r.recovery;
  out.mpc = std::move(counters);
  return out;
}

ProportionalConfig proportional_config_from(const SolveOptions& options) {
  ProportionalConfig config;
  static_cast<CommonOptions&>(config) = options;  // threads/seed/engine slice
  config.epsilon = options.epsilon;
  config.threshold_k = options.threshold_k;
  config.track_weight_history = options.track_weight_history;
  config.record_tape = options.record_tape;
  switch (options.method) {
    case SolveMethod::kProportional:
      config.stop_rule = StopRule::kFixedRounds;
      config.max_rounds = options.max_rounds;
      break;
    case SolveMethod::kTwoPlusEps:
      // Theorem 2's τ(λ, ε); tau_for_arboricity clamps λ < 1 to 1, so
      // lambda ≤ 0 degrades to the λ = 1 budget rather than throwing.
      config.stop_rule = StopRule::kFixedRounds;
      config.max_rounds = tau_for_arboricity(options.lambda, options.epsilon);
      break;
    case SolveMethod::kAdaptive: {
      config.stop_rule = StopRule::kAdaptive;
      // λ ≤ n always, so τ(n, ε) is a valid hard cap for the adaptive loop.
      config.max_rounds = options.max_rounds;
      break;
    }
    default:
      throw std::logic_error("proportional_config_from: not an exact method");
  }
  return config;
}

SampledConfig sampled_config_from(const SolveOptions& options) {
  SampledConfig config;
  static_cast<CommonOptions&>(config) = options;
  config.epsilon = options.epsilon;
  config.max_rounds = options.max_rounds;
  if (options.phase_length != 0) config.phase_length = options.phase_length;
  if (options.samples_per_group != 0) {
    config.samples_per_group = options.samples_per_group;
  }
  config.adaptive_termination = options.adaptive_termination;
  config.on_phase_subgraph = options.on_phase_subgraph;
  return config;
}

MpcDriverConfig mpc_config_from(const SolveOptions& options) {
  MpcDriverConfig config;
  static_cast<CommonOptions&>(config) = options;
  config.epsilon = options.epsilon;
  config.alpha = options.alpha;
  if (options.samples_per_group != 0) {
    config.samples_per_group = options.samples_per_group;
  }
  config.phase_length = options.phase_length;
  config.lambda = options.lambda;
  config.adaptive_termination = options.adaptive_termination;
  config.fault_plan = options.fault_plan;
  config.checkpoint_every = options.checkpoint_every;
  config.overflow_policy = options.overflow_policy;
  config.transport = options.transport;
  config.process_options = options.process_options;
  return config;
}

}  // namespace

SolveResult Solver::solve(const AllocationInstance& instance,
                          Xoshiro256pp& rng) const {
  switch (options_.method) {
    case SolveMethod::kProportional:
    case SolveMethod::kTwoPlusEps:
      return from_proportional(
          options_.method,
          detail::run_proportional_impl(instance,
                                        proportional_config_from(options_)));
    case SolveMethod::kAdaptive: {
      ProportionalConfig config = proportional_config_from(options_);
      if (config.max_rounds == 0) {
        config.max_rounds = tau_for_arboricity(
            static_cast<double>(
                std::max<std::size_t>(instance.graph.num_vertices(), 2)),
            options_.epsilon);
      }
      return from_proportional(options_.method,
                               detail::run_proportional_impl(instance, config));
    }
    case SolveMethod::kSampled:
      return from_sampled(
          detail::run_sampled_impl(instance, sampled_config_from(options_), rng));
    case SolveMethod::kMpcNaive:
      return from_mpc(options_.method,
                      detail::run_mpc_naive_impl(instance,
                                                 mpc_config_from(options_)));
    case SolveMethod::kMpcPhased:
      return from_mpc(options_.method,
                      detail::run_mpc_phased_impl(instance,
                                                  mpc_config_from(options_)));
    case SolveMethod::kMpcUnknownLambda:
      return from_mpc(options_.method, detail::run_mpc_unknown_lambda_impl(
                                           instance, mpc_config_from(options_)));
  }
  throw std::invalid_argument("Solver::solve: unknown SolveMethod");
}

SolveResult Solver::solve(const AllocationInstance& instance) const {
  // Only kSampled consumes the stream; seeding it from the options makes
  // the no-rng overload a pure function of (options, instance).
  Xoshiro256pp rng(options_.seed);
  return solve(instance, rng);
}

// ---------------------------------------------------------------------------
// Legacy forwarding shims (one release of compatibility; see solver.hpp).
// ---------------------------------------------------------------------------

ProportionalResult run_proportional(const AllocationInstance& instance,
                                    const ProportionalConfig& config) {
  SolveOptions options;
  static_cast<CommonOptions&>(options) = config;
  options.method = config.stop_rule == StopRule::kAdaptive
                       ? SolveMethod::kAdaptive
                       : SolveMethod::kProportional;
  options.epsilon = config.epsilon;
  options.max_rounds = config.max_rounds;
  options.threshold_k = config.threshold_k;
  options.track_weight_history = config.track_weight_history;
  options.record_tape = config.record_tape;
  // kAdaptive with max_rounds == 0 would default the cap to τ(n, ε) inside
  // the facade, but run_proportional has always required an explicit
  // budget — keep that contract (and its exact message) here.
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_proportional: max_rounds must be >= 1");
  }
  SolveResult r = Solver(std::move(options)).solve(instance);
  ProportionalResult out;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.final_alloc = std::move(r.final_alloc);
  out.weight_history = std::move(r.weight_history);
  out.stats = std::move(r.stats);
  return out;
}

ProportionalResult solve_two_plus_eps(const AllocationInstance& instance,
                                      double lambda, double epsilon,
                                      std::size_t num_threads) {
  SolveOptions options;
  options.method = SolveMethod::kTwoPlusEps;
  options.epsilon = epsilon;
  options.lambda = lambda;
  options.num_threads = num_threads;
  SolveResult r = Solver(std::move(options)).solve(instance);
  ProportionalResult out;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.final_alloc = std::move(r.final_alloc);
  out.weight_history = std::move(r.weight_history);
  out.stats = std::move(r.stats);
  return out;
}

ProportionalResult solve_adaptive(const AllocationInstance& instance,
                                  double epsilon, std::size_t safety_cap,
                                  std::size_t num_threads) {
  SolveOptions options;
  options.method = SolveMethod::kAdaptive;
  options.epsilon = epsilon;
  options.max_rounds = safety_cap;  // 0 ⇒ τ(n, ε) inside the facade
  options.num_threads = num_threads;
  SolveResult r = Solver(std::move(options)).solve(instance);
  ProportionalResult out;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.final_alloc = std::move(r.final_alloc);
  out.weight_history = std::move(r.weight_history);
  out.stats = std::move(r.stats);
  return out;
}

SampledResult run_sampled(const AllocationInstance& instance,
                          const SampledConfig& config, Xoshiro256pp& rng) {
  // SolveOptions spells "method default" as 0 for these two knobs, so the
  // legacy reject-zero contract has to be enforced before translating.
  if (config.phase_length == 0) {
    throw std::invalid_argument("run_sampled: phase_length must be >= 1");
  }
  if (config.samples_per_group == 0) {
    throw std::invalid_argument("run_sampled: samples_per_group must be >= 1");
  }
  SolveOptions options;
  static_cast<CommonOptions&>(options) = config;
  options.method = SolveMethod::kSampled;
  options.epsilon = config.epsilon;
  options.max_rounds = config.max_rounds;
  options.phase_length = config.phase_length;
  options.samples_per_group = config.samples_per_group;
  options.adaptive_termination = config.adaptive_termination;
  options.on_phase_subgraph = config.on_phase_subgraph;
  SolveResult r = Solver(std::move(options)).solve(instance, rng);
  SampledResult out;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.rounds_executed = r.rounds_executed;
  out.phases_executed = r.phases;
  out.stopped_by_condition = r.stopped_by_condition;
  out.final_levels = std::move(r.final_levels);
  out.samples_drawn = r.samples_drawn;
  return out;
}

namespace {

SolveOptions mpc_options_from(SolveMethod method, const MpcDriverConfig& config) {
  SolveOptions options;
  static_cast<CommonOptions&>(options) = config;
  options.method = method;
  options.epsilon = config.epsilon;
  options.alpha = config.alpha;
  options.samples_per_group = config.samples_per_group;
  options.phase_length = config.phase_length;
  options.lambda = config.lambda;
  options.adaptive_termination = config.adaptive_termination;
  options.fault_plan = config.fault_plan;
  options.checkpoint_every = config.checkpoint_every;
  options.overflow_policy = config.overflow_policy;
  options.transport = config.transport;
  options.process_options = config.process_options;
  return options;
}

MpcRunResult mpc_result_from(SolveResult r) {
  MpcRunResult out;
  out.allocation = std::move(r.allocation);
  out.match_weight = r.match_weight;
  out.local_rounds = r.rounds_executed;
  out.phases = r.phases;
  out.stopped_by_condition = r.stopped_by_condition;
  out.stats = std::move(r.stats);
  if (r.mpc) {
    out.mpc_rounds = r.mpc->mpc_rounds;
    out.words_moved = r.mpc->words_moved;
    out.peak_machine_words = r.mpc->peak_machine_words;
    out.peak_total_words = r.mpc->peak_total_words;
    out.machine_words = r.mpc->machine_words;
    out.num_machines = r.mpc->num_machines;
    out.trials = r.mpc->trials;
    out.max_ball_volume = r.mpc->max_ball_volume;
    out.host_record_updates = r.mpc->host_record_updates;
    out.recovery = r.mpc->recovery;
  }
  return out;
}

}  // namespace

MpcRunResult run_mpc_naive(const AllocationInstance& instance,
                           const MpcDriverConfig& config) {
  return mpc_result_from(
      Solver(mpc_options_from(SolveMethod::kMpcNaive, config)).solve(instance));
}

MpcRunResult run_mpc_phased(const AllocationInstance& instance,
                            const MpcDriverConfig& config) {
  return mpc_result_from(
      Solver(mpc_options_from(SolveMethod::kMpcPhased, config)).solve(instance));
}

MpcRunResult run_mpc_unknown_lambda(const AllocationInstance& instance,
                                    const MpcDriverConfig& config) {
  return mpc_result_from(
      Solver(mpc_options_from(SolveMethod::kMpcUnknownLambda, config))
          .solve(instance));
}

}  // namespace mpcalloc
