// Umbrella public header for the mpc-alloc library.
//
// Typical use (see examples/quickstart.cpp):
//
//   #include "alloc/api.hpp"
//   using namespace mpcalloc;
//
//   Xoshiro256pp rng(42);
//   BipartiteGraph g = union_of_forests(10'000, 2'000, /*lambda=*/4, rng);
//   AllocationInstance instance{std::move(g), uniform_capacities(2'000, 1, 8, rng)};
//
//   // (2+ε)-approximate fractional allocation in O(log λ) rounds (Thm 2):
//   ProportionalResult frac = solve_adaptive(instance, /*epsilon=*/0.25);
//
//   // Round to an integral allocation (Section 6) and boost to 1+ε (Thm 1):
//   auto rounded = round_best_of(instance, frac.allocation, rng);
//   make_maximal(instance, rounded.best);
//   auto boosted = boost_to_one_plus_eps(instance, rounded.best, 0.1);
#pragma once

#include "alloc/boosting.hpp"
#include "alloc/levels.hpp"
#include "alloc/local_host.hpp"
#include "alloc/matching_reduction.hpp"
#include "alloc/mpc_driver.hpp"
#include "alloc/proportional.hpp"
#include "alloc/round_engine.hpp"
#include "alloc/rounding.hpp"
#include "alloc/sampled.hpp"
#include "alloc/sampling.hpp"
#include "alloc/verify.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/allocation.hpp"
#include "graph/arboricity.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/parallel.hpp"
