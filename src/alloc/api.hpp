// Umbrella public header for the mpc-alloc library.
//
// Typical use (see examples/quickstart.cpp):
//
//   #include "alloc/api.hpp"
//   using namespace mpcalloc;
//
//   Xoshiro256pp rng(42);
//   BipartiteGraph g = union_of_forests(10'000, 2'000, /*lambda=*/4, rng);
//   AllocationInstance instance{std::move(g), uniform_capacities(2'000, 1, 8, rng)};
//
//   // (2+ε)-approximate fractional allocation in O(log λ) rounds (Thm 2),
//   // through the unified Solver facade:
//   SolveResult frac =
//       Solver({.method = SolveMethod::kAdaptive, .epsilon = 0.25})
//           .solve(instance);
//
//   // Round to an integral allocation (Section 6) and boost to 1+ε (Thm 1):
//   auto rounded = round_best_of(instance, frac.allocation, rng);
//   make_maximal(instance, rounded.best);
//   auto boosted = boost_to_one_plus_eps(instance, rounded.best, 0.1);
//
// For live graph churn, wrap the instance in a serve::AllocationService
// (serve/service.hpp) instead of re-solving by hand.
//
// tests/test_api_header.cpp compiles a TU including only this header
// against every public entry point, so drift between the umbrella and the
// module headers fails CI.
#pragma once

#include "alloc/boosting.hpp"
#include "alloc/levels.hpp"
#include "alloc/local_host.hpp"
#include "alloc/matching_reduction.hpp"
#include "alloc/mpc_driver.hpp"
#include "alloc/options.hpp"
#include "alloc/proportional.hpp"
#include "alloc/round_engine.hpp"
#include "alloc/rounding.hpp"
#include "alloc/sampled.hpp"
#include "alloc/sampling.hpp"
#include "alloc/solver.hpp"
#include "alloc/verify.hpp"
#include "bmatch/bmatching.hpp"
#include "bmatch/proportional_bmatching.hpp"
#include "flow/greedy.hpp"
#include "flow/optimal_allocation.hpp"
#include "graph/allocation.hpp"
#include "graph/arboricity.hpp"
#include "graph/arena.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mpcb.hpp"
#include "local/network.hpp"
#include "serve/mutation.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/warm_restart.hpp"
#include "util/parallel.hpp"
