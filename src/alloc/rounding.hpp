// Fractional → integral rounding (Section 6 of the paper).
//
// Procedure: sample each edge e independently with probability x_e/6; call a
// vertex *heavy* if its sampled degree exceeds its capacity; drop every
// sampled edge incident to a heavy vertex. The paper shows E[|M|] ≥ wt(x)/9,
// hence a Θ(1)-approximate integral allocation in expectation, and a
// constant success probability for |M| ≥ |M*|/450; running O(log n)
// independent copies and keeping the best yields the w.h.p. guarantee in
// MPC (the copies are independent machines-local coin flips).
#pragma once

#include "graph/allocation.hpp"
#include "util/rng.hpp"

namespace mpcalloc {

struct RoundingConfig {
  double sample_divisor = 6.0;  ///< the paper's 1/6 sampling rate
};

/// One rounding trial. The result is always a valid integral allocation.
[[nodiscard]] IntegralAllocation round_fractional(
    const AllocationInstance& instance, const FractionalAllocation& fractional,
    Xoshiro256pp& rng, const RoundingConfig& config = {});

struct BestOfRoundingResult {
  IntegralAllocation best;
  std::size_t copies = 0;
  std::vector<std::size_t> copy_sizes;  ///< |M| per independent copy
};

/// Run `copies` independent trials (0 ⇒ ⌈log2 n⌉+1 copies, the paper's
/// O(log n) w.h.p. recipe) and keep the largest.
[[nodiscard]] BestOfRoundingResult round_best_of(
    const AllocationInstance& instance, const FractionalAllocation& fractional,
    Xoshiro256pp& rng, std::size_t copies = 0,
    const RoundingConfig& config = {});

/// Greedily extend an integral allocation to a maximal one (every free u is
/// given any neighbour with residual capacity). Never decreases |M| and
/// keeps validity; useful after rounding since dropped heavy-vertex edges
/// leave easy wins on the table.
void make_maximal(const AllocationInstance& instance, IntegralAllocation& m);

}  // namespace mpcalloc
