// The sublinear-MPC allocation pipeline (Theorems 3 and 10).
//
// Two drivers, both running against the shard-owned MPC runtime of
// src/mpc/ (per-worker shard arenas + record transport, orchestrated by
// Cluster — see mpc/cluster.hpp for the layer split):
//
//  * run_mpc_naive — the baseline the paper improves on (Section 1.2.1):
//    simulate Algorithm 1 one LOCAL round at a time; every round costs O(1)
//    MPC rounds of sorting/aggregation (the per-edge β sums really flow
//    through Cluster DistVecs), for O(log λ) (or O(log n)) MPC rounds total.
//
//  * run_mpc_phased — the paper's contribution: execute Algorithm 2 in
//    phases of B LOCAL rounds; per phase, sample level groups (O(1) MPC
//    rounds), collect radius-B balls of the sampled subgraph by graph
//    exponentiation (⌈log2 B⌉+1 rounds, *enforcing* that each ball fits in
//    S words — the constraint behind eq. (4)), simulate the B rounds
//    machine-locally (free), write back (1 round), and optionally test the
//    Section-4 termination condition (O(1) rounds). With B = Θ(√(log λ)),
//    the total is Õ(√log λ) MPC rounds.
//
//  * run_mpc_unknown_lambda — the λ-oblivious wrapper (Section 3.2.2):
//    trial i assumes √(log λ_i) = 2^i, runs the phased driver with the
//    adaptive termination test, and doubles the guess when the test fails;
//    total cost is a constant factor over the known-λ run.
#pragma once

#include "alloc/options.hpp"
#include "alloc/round_engine.hpp"
#include "alloc/sampled.hpp"
#include "graph/allocation.hpp"
#include "mpc/cluster.hpp"

#include <cstdint>
#include <optional>

namespace mpcalloc {

/// Deprecated spellings: `seed` and `num_threads` used to be declared
/// directly here; they now come from the CommonOptions base
/// (alloc/options.hpp) with unchanged names and defaults. `num_threads`
/// drives the simulator-side sweeps (sampled executor tiles, the cluster's
/// owner-compute shard passes, ball collection); all results — allocation,
/// rounds, peak_machine_words — are bitwise independent of the value (and
/// of the cluster's worker-ownership partition). The inherited
/// `engine`/`dense_switch_fraction` are ignored: the naive driver's
/// incremental record maintenance is always frontier-driven.
struct MpcDriverConfig : CommonOptions {
  double epsilon = 0.25;
  double alpha = 0.7;              ///< S = (input words)^alpha
  std::size_t samples_per_group = 8;  ///< t of Algorithm 2 (benches sweep)

  /// Phased driver: override B (0 ⇒ derive from eq. (4) given lambda).
  std::size_t phase_length = 0;
  /// Known arboricity for τ / B selection (naive + phased drivers).
  double lambda = 0.0;  ///< ≤ 0 ⇒ use n as the trivial upper bound
  /// Run the Section-4 adaptive termination test at phase ends.
  bool adaptive_termination = false;

  /// Fault tolerance (mpc/transport.hpp): an active plan wraps the
  /// cluster's transport in a FaultInjectingTransport and arms the recovery
  /// machinery — in-place retries in Cluster::shuffle plus round-level
  /// checkpoint/replay in the naive driver. The recovered run's allocation
  /// and model counters are bitwise identical to the fault-free run;
  /// overhead is reported on MpcRunResult::recovery. (The phased driver
  /// moves no records through the transport — its exchanges are charged
  /// analytically — so injection is inert there by construction.)
  mpc::FaultPlan fault_plan;
  /// Naive driver: checkpoint cluster + host state every k LOCAL rounds
  /// (0 ⇒ every round while a fault plan is active, never otherwise).
  /// Larger k = cheaper fault-free runs, more replayed rounds per restore.
  std::size_t checkpoint_every = 0;
  /// What an over-budget exchange does (mpc/cluster.hpp): fail fast with
  /// MpcCapacityError, or split into honestly-charged sub-rounds.
  mpc::OverflowPolicy overflow_policy = mpc::OverflowPolicy::kFailFast;

  /// Exchange backend (mpc/process_transport.hpp). kAuto defers to the
  /// MPCALLOC_TRANSPORT environment variable; kProcess runs every exchange
  /// through forked worker processes over shared-memory rings, with real
  /// crash/deadline supervision mapped onto the recovery tiers above. All
  /// results are bitwise identical across backends.
  mpc::TransportKind transport = mpc::TransportKind::kAuto;
  /// Process-backend tuning + real-fault injection (kill scripts).
  mpc::ProcessTransportOptions process_options;
};

struct MpcRunResult {
  FractionalAllocation allocation;
  double match_weight = 0.0;
  std::size_t local_rounds = 0;     ///< Algorithm-1 rounds simulated
  std::size_t phases = 0;           ///< phased driver only
  std::size_t mpc_rounds = 0;       ///< Cluster round counter
  std::uint64_t words_moved = 0;    ///< Cluster cross-machine word counter
  std::uint64_t peak_machine_words = 0;
  std::uint64_t peak_total_words = 0;
  std::size_t machine_words = 0;    ///< S
  std::size_t num_machines = 0;
  std::size_t trials = 1;           ///< λ-doubling trials (unknown-λ driver)
  bool stopped_by_condition = false;
  std::uint64_t max_ball_volume = 0;  ///< largest exponentiation ball (vertices);
                                      ///< its word volume is enforced ≤ S and
                                      ///< folded into peak_machine_words

  /// Naive driver only: host-side per-edge record rewrites performed by the
  /// incremental frontier maintenance (a dense per-round rebuild would cost
  /// 2m · local_rounds), and the per-round frontier counters.
  std::uint64_t host_record_updates = 0;
  SolveStats stats;

  /// Fault-recovery and degradation overhead, accounted separately from the
  /// model counters above (which stay bitwise identical to a fault-free
  /// run — the headline invariant of the fault-tolerance layer).
  mpc::MpcRecoveryStats recovery;
};

/// Derive eq. (4)'s phase length: B = max(1, ⌊min(√(α·log n), √(log λ))/√(8ε)⌋).
[[nodiscard]] std::size_t phase_length_for(double lambda, double epsilon,
                                           double alpha, std::size_t n);

[[nodiscard]] MpcRunResult run_mpc_naive(const AllocationInstance& instance,
                                         const MpcDriverConfig& config);

[[nodiscard]] MpcRunResult run_mpc_phased(const AllocationInstance& instance,
                                          const MpcDriverConfig& config);

[[nodiscard]] MpcRunResult run_mpc_unknown_lambda(
    const AllocationInstance& instance, const MpcDriverConfig& config);

}  // namespace mpcalloc
