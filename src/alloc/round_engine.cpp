#include "alloc/round_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

namespace mpcalloc {

namespace {

bool env_flag_set(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::string_view(value) != "0";
}

}  // namespace

RoundEngine resolve_round_engine(RoundEngine configured) {
  const bool force_dense = env_flag_set("MPCALLOC_FORCE_DENSE");
  const bool force_sparse = env_flag_set("MPCALLOC_FORCE_SPARSE");
  if (force_dense && force_sparse) {
    throw std::invalid_argument(
        "resolve_round_engine: MPCALLOC_FORCE_DENSE and "
        "MPCALLOC_FORCE_SPARSE are both set");
  }
  if (force_dense) return RoundEngine::kDense;
  if (force_sparse) return RoundEngine::kSparse;
  return configured;
}

std::uint64_t sparse_edge_budget(std::size_t num_edges,
                                 double dense_switch_fraction) {
  const double budget = dense_switch_fraction * 2.0 *
                        static_cast<double>(std::max<std::size_t>(num_edges, 1));
  // A fraction large (or infinite) enough to overflow the cast means
  // "always sparse"; clamp instead of invoking UB on the conversion.
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  if (!(budget < static_cast<double>(kMax))) return kMax;
  return static_cast<std::uint64_t>(budget);
}

bool RoundWorkspace::choose_sparse(const BipartiteGraph& graph,
                                   RoundEngine engine, bool have_frontier,
                                   double dense_switch_fraction) {
  if (!have_frontier || engine == RoundEngine::kDense) return false;
  if (engine == RoundEngine::kSparse) {
    return derive_touched(graph, std::numeric_limits<std::uint64_t>::max());
  }
  const std::uint64_t budget =
      sparse_edge_budget(graph.num_edges(), dense_switch_fraction);
  if (frontier_volume_ + frontier_.size() > budget) return false;
  return derive_touched(graph, budget);
}

void RoundWorkspace::init(const BipartiteGraph& graph) {
  const std::size_t num_right = graph.num_right();
  const std::size_t num_left = graph.num_left();
  deltas.assign(num_right, 0);
  frontier_.clear();
  frontier_.reserve(num_right);
  touched_left_.clear();
  touched_left_.reserve(num_left);
  touched_right_.clear();
  touched_right_.reserve(num_right);
  left_epoch_.assign(num_left, 0);
  right_epoch_.assign(num_right, 0);
  epoch_ = 0;
  frontier_volume_ = 0;
  const std::size_t num_tiles =
      (num_right + kParallelTile - 1) / kParallelTile;
  tile_counts_.assign(num_tiles, 0);
}

void RoundWorkspace::derive_frontier(const BipartiteGraph& graph,
                                     const std::vector<std::int8_t>& ds,
                                     std::size_t num_threads) {
  const std::size_t n = ds.size();
  // Pass 1: changed count per fixed-size tile.
  parallel_for(0, n, kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
                 std::size_t count = 0;
                 for (std::size_t v = tile_begin; v < tile_end; ++v) {
                   count += ds[v] != 0;
                 }
                 tile_counts_[tile_begin / kParallelTile] = count;
               });
  // Exclusive prefix over the (few) tiles, on the calling thread.
  std::size_t total = 0;
  for (std::size_t t = 0; t < tile_counts_.size(); ++t) {
    const std::size_t count = tile_counts_[t];
    tile_counts_[t] = total;
    total += count;
  }
  // Pass 2: fill each tile's slice; the result is ascending because tiles
  // are ascending and each tile scans ascending.
  frontier_.resize(total);
  parallel_for(0, n, kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
                 std::size_t out = tile_counts_[tile_begin / kParallelTile];
                 for (std::size_t v = tile_begin; v < tile_end; ++v) {
                   if (ds[v] != 0) frontier_[out++] = static_cast<Vertex>(v);
                 }
               });
  frontier_volume_ = 0;
  for (const Vertex v : frontier_) {
    frontier_volume_ += graph.right_degree(v);
  }
}

bool RoundWorkspace::derive_touched(const BipartiteGraph& graph,
                                    std::uint64_t edge_budget) {
  ++epoch_;
  std::uint64_t volume = 0;
  touched_left_.clear();
  for (const Vertex v : frontier_) {
    for (const Incidence& inc : graph.right_neighbors(v)) {
      if (left_epoch_[inc.to] != epoch_) {
        left_epoch_[inc.to] = epoch_;
        touched_left_.push_back(inc.to);
        volume += graph.left_degree(inc.to);
        if (volume > edge_budget) return false;
      }
    }
  }
  touched_right_.clear();
  for (const Vertex u : touched_left_) {
    for (const Incidence& inc : graph.left_neighbors(u)) {
      if (right_epoch_[inc.to] != epoch_) {
        right_epoch_[inc.to] = epoch_;
        touched_right_.push_back(inc.to);
        volume += graph.right_degree(inc.to);
        if (volume > edge_budget) return false;
      }
    }
  }
  return true;
}

}  // namespace mpcalloc
