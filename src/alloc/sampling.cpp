#include "alloc/sampling.hpp"

#include <cmath>

namespace mpcalloc {

SumEstimate estimate_sum(std::span<const double> values, std::size_t samples,
                         Xoshiro256pp& rng) {
  SumEstimate out;
  if (values.empty() || samples == 0) return out;
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    total += values[rng.uniform(values.size())];
  }
  out.estimate =
      total * static_cast<double>(values.size()) / static_cast<double>(samples);
  out.samples_used = samples;
  return out;
}

std::size_t lemma11_sample_count(double t, double epsilon, std::size_t n) {
  const double logn = std::log(static_cast<double>(n < 2 ? 2 : n));
  const double s = 20.0 * t * t * logn / std::pow(epsilon, 4.0);
  return static_cast<std::size_t>(std::ceil(s));
}

}  // namespace mpcalloc
