#include "alloc/rounding.hpp"

#include <cmath>
#include <stdexcept>

namespace mpcalloc {

IntegralAllocation round_fractional(const AllocationInstance& instance,
                                    const FractionalAllocation& fractional,
                                    Xoshiro256pp& rng,
                                    const RoundingConfig& config) {
  if (fractional.x.size() != instance.graph.num_edges()) {
    throw std::invalid_argument("round_fractional: size mismatch");
  }
  if (!(config.sample_divisor >= 1.0)) {
    throw std::invalid_argument("round_fractional: sample_divisor >= 1");
  }
  const auto& g = instance.graph;

  // Step 1: independent sampling at rate x_e / divisor.
  std::vector<EdgeId> sampled;
  std::vector<std::uint32_t> left_count(g.num_left(), 0);
  std::vector<std::uint32_t> right_count(g.num_right(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (fractional.x[e] <= 0.0) continue;
    if (rng.bernoulli(fractional.x[e] / config.sample_divisor)) {
      sampled.push_back(e);
      ++left_count[g.edge(e).u];
      ++right_count[g.edge(e).v];
    }
  }

  // Step 2: drop all sampled edges incident to a heavy vertex (sampled
  // degree exceeding capacity; L-side capacity is 1).
  IntegralAllocation out;
  out.edges.reserve(sampled.size());
  for (const EdgeId e : sampled) {
    const Edge& ed = g.edge(e);
    const bool left_heavy = left_count[ed.u] > 1;
    const bool right_heavy = right_count[ed.v] > instance.capacities[ed.v];
    if (!left_heavy && !right_heavy) out.edges.push_back(e);
  }
  return out;
}

BestOfRoundingResult round_best_of(const AllocationInstance& instance,
                                   const FractionalAllocation& fractional,
                                   Xoshiro256pp& rng, std::size_t copies,
                                   const RoundingConfig& config) {
  if (copies == 0) {
    const double n =
        static_cast<double>(std::max<std::size_t>(instance.graph.num_vertices(), 2));
    copies = static_cast<std::size_t>(std::ceil(std::log2(n))) + 1;
  }
  BestOfRoundingResult result;
  result.copies = copies;
  for (std::size_t c = 0; c < copies; ++c) {
    IntegralAllocation trial = round_fractional(instance, fractional, rng, config);
    result.copy_sizes.push_back(trial.size());
    if (trial.size() > result.best.size()) result.best = std::move(trial);
  }
  return result;
}

void make_maximal(const AllocationInstance& instance, IntegralAllocation& m) {
  const auto& g = instance.graph;
  std::vector<std::uint8_t> left_used(g.num_left(), 0);
  std::vector<std::uint32_t> residual(instance.capacities);
  for (const EdgeId e : m.edges) {
    const Edge& ed = g.edge(e);
    left_used[ed.u] = 1;
    --residual[ed.v];
  }
  for (Vertex u = 0; u < g.num_left(); ++u) {
    if (left_used[u]) continue;
    for (const Incidence& inc : g.left_neighbors(u)) {
      if (residual[inc.to] > 0) {
        --residual[inc.to];
        m.edges.push_back(inc.edge);
        break;
      }
    }
  }
}

}  // namespace mpcalloc
