// Shared solver knobs.
//
// Every driver config in the tree used to re-declare the same three
// execution knobs (worker threads, RNG seed, recompute engine) with
// per-struct doc comments that drifted apart. CommonOptions is the single
// spelling: the per-solver configs (ProportionalConfig, SampledConfig,
// MpcDriverConfig, ProportionalBMatchingConfig) inherit it as a base
// aggregate — existing field accesses (`config.num_threads`, `config.seed`,
// `config.engine`) keep compiling unchanged — and the unified SolveOptions
// (alloc/solver.hpp) embeds it for the facade path.
#pragma once

#include "alloc/round_engine.hpp"

#include <cstddef>
#include <cstdint>

namespace mpcalloc {

/// Execution knobs shared by every solver entry point. A solver that has no
/// use for a knob ignores it (documented per config): the exact
/// deterministic solvers draw no randomness and ignore `seed`; the sampled
/// executor and the MPC drivers run no frontier engine of their own and
/// ignore `engine` / `dense_switch_fraction`.
struct CommonOptions {
  /// Worker threads for the deterministic executor's sweeps. 0 = auto (the
  /// MPCALLOC_THREADS environment variable if set, else
  /// hardware_concurrency). Results are bitwise identical across thread
  /// counts everywhere in the tree: all sweeps use the fixed tile
  /// decomposition with ordered reductions of util/parallel.hpp.
  std::size_t num_threads = 0;

  /// Seed for everything stochastic in the solver (sampled executor draws,
  /// MPC splitter sampling). Deterministic solvers ignore it.
  std::uint64_t seed = 1;

  /// Recompute strategy for rounds after the first (round_engine.hpp).
  /// kAuto switches per round on the frontier volume; results are bitwise
  /// identical for every choice. MPCALLOC_FORCE_DENSE/SPARSE override.
  RoundEngine engine = RoundEngine::kAuto;

  /// kAuto's switch point: the sparse path may recompute at most this
  /// fraction of a dense round's 2m edge visits; the touched-set derivation
  /// bails out to the dense sweep when the budget is exceeded. Must be ≥ 0.
  double dense_switch_fraction = 0.2;
};

}  // namespace mpcalloc
