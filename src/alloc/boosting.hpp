// Boosting a constant-factor allocation to (1+ε) (Theorem 1 / Appendix B).
//
// The paper plugs its (2+ε) algorithm into the Ghaffari–Grunau–Mitrović
// [GGM22] b-matching framework, specialised to allocation in Appendix B.2:
// free L vertices populate layer 0, free R capacity populates layer k+1,
// matched edges land in a uniformly random intermediate layer (oriented
// R → L), unmatched edges (oriented L → R) are assigned a random slot and
// connect heads of layer i to tails of layer i+1; augmenting walks that
// survive the random layering are found by chaining per-layer allocations
// and applied.
//
// Two implementations are provided (see DESIGN.md §1 for the rationale):
//
//  * boost_path_limited — the deterministic certificate: eliminate every
//    augmenting walk of length ≤ 2k+1 by Hopcroft–Karp-style phases on the
//    residual structure. When none remain, |M| ≥ (k+1)/(k+2)·OPT, so
//    k = ⌈1/ε⌉ certifies a (1+ε)-approximation outright.
//
//  * boost_ggm22 — the randomized layered-graph iteration of Appendix B,
//    faithful in structure; its worst-case iteration count (exp(O(2^k))
//    walk survival) is astronomically conservative, so callers run it for
//    a fixed budget and bench E8 measures the actual convergence.
#pragma once

#include "graph/allocation.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace mpcalloc {

struct BoostResult {
  IntegralAllocation allocation;
  std::size_t iterations = 0;  ///< phases (path booster) / layer graphs (GGM22)
  std::vector<std::size_t> augmentations_per_iteration;
};

/// Deterministic booster: repeatedly eliminates augmenting walks of length
/// ≤ `max_walk_length` (odd; in edges). On return no such walk exists, so
/// with max_walk_length = 2k+1 the result is a (1+1/(k+1))-approximation.
[[nodiscard]] BoostResult boost_path_limited(const AllocationInstance& instance,
                                             const IntegralAllocation& initial,
                                             std::size_t max_walk_length);

/// Convenience: (1+ε) certificate via boost_path_limited with k = ⌈1/ε⌉.
[[nodiscard]] BoostResult boost_to_one_plus_eps(
    const AllocationInstance& instance, const IntegralAllocation& initial,
    double epsilon);

/// Randomized GGM22 layered-graph booster (Appendix B.2 specialisation),
/// run for `iterations` independent layer graphs with k = ⌈1/ε⌉ layers.
[[nodiscard]] BoostResult boost_ggm22(const AllocationInstance& instance,
                                      const IntegralAllocation& initial,
                                      double epsilon, std::size_t iterations,
                                      Xoshiro256pp& rng);

}  // namespace mpcalloc
