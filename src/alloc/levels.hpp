// Priority values in integer log-space.
//
// Algorithm 1 only ever multiplies or divides β_v by (1+ε), so every
// priority is exactly β_v = (1+ε)^{level_v} for an integer level_v. Storing
// the level instead of the float value has two payoffs:
//
//  1. The level sets L_j of the analysis (Section 4) are exact integer
//     buckets — no float-equality bucketing.
//  2. For the (1+ε) regime τ reaches Θ(log(|R|/ε)/ε²) ≈ 10⁴ rounds, where
//     (1+ε)^τ overflows double. All aggregations therefore exponentiate
//     *level differences relative to the neighbourhood maximum*, which are
//     ≤ 0, through a clamped lookup table.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mpcalloc {

/// Fast, safe evaluation of (1+ε)^d for integer d ≤ 0 (d > 0 allowed up to
/// a small positive range for estimator slack). Values below ~1e-300 clamp
/// to 0 — exactly the regime where the paper's analysis (Theorem 9) argues
/// the contribution is negligible (≤ ε/4λ per edge).
class PowTable {
 public:
  explicit PowTable(double epsilon, int positive_range = 64);

  [[nodiscard]] double epsilon() const { return epsilon_; }

  /// (1+ε)^d, clamped to 0 for very negative d; throws for d beyond the
  /// positive range (callers always normalise by the max level first).
  [[nodiscard]] double pow(std::int64_t d) const {
    if (d >= 0) {
      if (d > positive_range_) {
        throw std::out_of_range("PowTable::pow: positive exponent too large");
      }
      return positive_[static_cast<std::size_t>(d)];
    }
    const std::int64_t idx = -d;
    if (idx >= static_cast<std::int64_t>(negative_.size())) return 0.0;
    return negative_[static_cast<std::size_t>(idx)];
  }

  /// Number of representable negative steps before clamping to zero.
  [[nodiscard]] std::int64_t underflow_depth() const {
    return static_cast<std::int64_t>(negative_.size());
  }

 private:
  double epsilon_;
  int positive_range_;
  std::vector<double> negative_;  ///< negative_[k] = (1+ε)^{-k}
  std::vector<double> positive_;  ///< positive_[k] = (1+ε)^{+k}
};

inline PowTable::PowTable(double epsilon, int positive_range)
    : epsilon_(epsilon), positive_range_(positive_range) {
  if (!(epsilon > 0.0) || !(epsilon <= 1.0)) {
    throw std::invalid_argument("PowTable: epsilon must be in (0, 1]");
  }
  const double log1p_eps = std::log1p(epsilon);
  // (1+ε)^{-k} < 1e-300  ⇔  k > 300·ln(10)/ln(1+ε).
  const auto depth = static_cast<std::size_t>(
      std::ceil(300.0 * std::log(10.0) / log1p_eps)) + 2;
  negative_.resize(depth);
  positive_.resize(static_cast<std::size_t>(positive_range) + 1);
  negative_[0] = 1.0;
  for (std::size_t k = 1; k < depth; ++k) {
    negative_[k] = negative_[k - 1] / (1.0 + epsilon);
  }
  positive_[0] = 1.0;
  for (std::size_t k = 1; k < positive_.size(); ++k) {
    positive_[k] = positive_[k - 1] * (1.0 + epsilon);
  }
}

}  // namespace mpcalloc
