#include "alloc/verify.hpp"

#include <limits>

namespace mpcalloc {

double approximation_ratio(std::uint64_t opt, double achieved) {
  if (opt == 0) return 1.0;
  if (achieved <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(opt) / achieved;
}

double fractional_ratio(const AllocationInstance& instance,
                        const FractionalAllocation& fractional) {
  fractional.check_valid(instance);
  return approximation_ratio(optimal_allocation_value(instance),
                             fractional.weight());
}

double integral_ratio(const AllocationInstance& instance,
                      const IntegralAllocation& integral) {
  integral.check_valid(instance);
  return approximation_ratio(optimal_allocation_value(instance),
                             static_cast<double>(integral.size()));
}

}  // namespace mpcalloc
