#include "alloc/verify.hpp"

#include <algorithm>
#include <limits>

namespace mpcalloc {

double approximation_ratio(std::uint64_t opt, double achieved) {
  if (opt == 0) return 1.0;
  if (achieved <= 0.0) return std::numeric_limits<double>::infinity();
  // A feasible solution can only reach OPT, but `achieved` arrives through
  // floating-point summation and may overshoot by an ulp or two; clamp so a
  // ratio below 1 is impossible by construction.
  return std::max(1.0, static_cast<double>(opt) / achieved);
}

CertifiedRatio certified_fractional_ratio(
    const AllocationInstance& instance,
    const FractionalAllocation& fractional) {
  fractional.check_valid(instance);
  const CertifiedOptimum opt = certified_optimal_value(instance);
  return CertifiedRatio{approximation_ratio(opt.value, fractional.weight()),
                        opt.value, opt.cut_capacity, opt.certificate_ok};
}

CertifiedRatio certified_integral_ratio(const AllocationInstance& instance,
                                        const IntegralAllocation& integral) {
  integral.check_valid(instance);
  const CertifiedOptimum opt = certified_optimal_value(instance);
  return CertifiedRatio{
      approximation_ratio(opt.value, static_cast<double>(integral.size())),
      opt.value, opt.cut_capacity, opt.certificate_ok};
}

double fractional_ratio(const AllocationInstance& instance,
                        const FractionalAllocation& fractional) {
  return certified_fractional_ratio(instance, fractional).ratio;
}

double integral_ratio(const AllocationInstance& instance,
                      const IntegralAllocation& integral) {
  return certified_integral_ratio(instance, integral).ratio;
}

}  // namespace mpcalloc
