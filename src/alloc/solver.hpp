// Unified solver facade.
//
// Historically every execution model shipped its own free function and
// config struct: run_proportional / solve_adaptive / solve_two_plus_eps
// over ProportionalConfig, run_sampled over SampledConfig, and the
// run_mpc_* drivers over MpcDriverConfig — five public entry points whose
// shared knobs (threads, seed, engine) had drifted into per-struct copies.
// The Solver facade is the single entry point: one SolveOptions (a method
// enum plus the union of the per-method knobs, embedding the shared
// CommonOptions aggregate) and one SolveResult (the common output fields
// plus method-specific extras). The legacy free functions are retained as
// thin forwarding shims through this facade for one release; new code —
// including the always-on serving layer (src/serve/), which re-solves the
// same options against every mutated generation — should construct a
// Solver.
//
//   Solver solver({.method = SolveMethod::kAdaptive, .epsilon = 0.25});
//   SolveResult result = solver.solve(instance);
//
// Every method keeps its existing determinism contract: results are
// bitwise identical across thread counts and engine choices, and the
// stochastic methods are reproducible from `seed`.
#pragma once

#include "alloc/mpc_driver.hpp"
#include "alloc/options.hpp"
#include "alloc/proportional.hpp"
#include "alloc/round_engine.hpp"
#include "alloc/sampled.hpp"
#include "graph/allocation.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mpcalloc {

/// Which execution model Solver::solve runs. Each value corresponds to one
/// legacy free function (named in the comment), all of which now forward
/// through the facade.
enum class SolveMethod : std::uint8_t {
  kProportional,      ///< run_proportional: fixed `max_rounds` Algorithm-1 rounds
  kTwoPlusEps,        ///< solve_two_plus_eps: τ(λ, ε) rounds (Theorem 2)
  kAdaptive,          ///< solve_adaptive: λ-oblivious §4 stop rule
  kSampled,           ///< run_sampled: Algorithm-2 phase-compressed executor
  kMpcNaive,          ///< run_mpc_naive: round-at-a-time MPC simulation
  kMpcPhased,         ///< run_mpc_phased: Õ(√log λ)-round phased driver
  kMpcUnknownLambda,  ///< run_mpc_unknown_lambda: λ-doubling wrapper
};

/// The union of the per-method knobs. Fields a method does not use are
/// ignored (each field's comment names its consumers). CommonOptions
/// (threads/seed/engine) is embedded as the base aggregate.
struct SolveOptions : CommonOptions {
  SolveMethod method = SolveMethod::kAdaptive;
  double epsilon = 0.25;

  /// Known arboricity. kTwoPlusEps derives τ(λ, ε) from it; the MPC
  /// drivers use it for τ / phase-length selection. ≤ 0 ⇒ the trivial
  /// upper bound n where a bound is needed.
  double lambda = 0.0;

  /// kProportional / kSampled: the round budget (must be ≥ 1).
  /// kAdaptive: hard safety cap (0 ⇒ τ(n, ε)). MPC methods derive their
  /// own budget from `lambda` and ignore this.
  std::size_t max_rounds = 0;

  /// kSampled / kMpcPhased: phase length B. 0 ⇒ the method default
  /// (kSampled: 4; kMpcPhased: derive from eq. (4) given lambda).
  std::size_t phase_length = 0;
  /// kSampled / MPC methods: per-group sample budget t. 0 ⇒ the method
  /// default (kSampled: 32; MPC: 8).
  std::size_t samples_per_group = 0;
  /// kSampled / kMpcPhased: run the §4 termination test at phase ends.
  /// (kMpcUnknownLambda always enables it per trial.)
  bool adaptive_termination = false;

  /// MPC methods: machine-memory exponent, S = (input words)^alpha.
  double alpha = 0.7;
  /// MPC methods: fault injection + recovery (alloc/mpc_driver.hpp).
  mpc::FaultPlan fault_plan;
  std::size_t checkpoint_every = 0;
  mpc::OverflowPolicy overflow_policy = mpc::OverflowPolicy::kFailFast;
  /// MPC methods: exchange backend (kAuto defers to MPCALLOC_TRANSPORT)
  /// and the process backend's supervision knobs.
  mpc::TransportKind transport = mpc::TransportKind::kAuto;
  mpc::ProcessTransportOptions process_options;

  /// kProportional / kAdaptive: Algorithm 3's loose thresholds (empty ⇒
  /// Algorithm 1), MatchWeight history, and trajectory recording — see
  /// ProportionalConfig for the contracts.
  std::function<double(Vertex v, std::size_t round)> threshold_k;
  bool track_weight_history = false;
  TrajectoryTape* record_tape = nullptr;

  /// kSampled: per-phase sampled-subgraph observer (see SampledConfig).
  std::function<void(const std::vector<std::vector<std::uint32_t>>&)>
      on_phase_subgraph;
};

/// MPC-model accounting, present on SolveResult for the MPC methods only.
/// Field meanings as on the legacy MpcRunResult.
struct MpcSolveCounters {
  std::size_t mpc_rounds = 0;
  std::uint64_t words_moved = 0;
  std::uint64_t peak_machine_words = 0;
  std::uint64_t peak_total_words = 0;
  std::size_t machine_words = 0;
  std::size_t num_machines = 0;
  std::size_t trials = 1;
  std::uint64_t max_ball_volume = 0;
  std::uint64_t host_record_updates = 0;
  mpc::MpcRecoveryStats recovery;
};

/// Common output of every method, plus method-specific extras (empty /
/// nullopt when the method does not produce them).
struct SolveResult {
  SolveMethod method = SolveMethod::kAdaptive;
  FractionalAllocation allocation;  ///< feasible fractional allocation
  double match_weight = 0.0;        ///< Σ_v min(C_v, alloc_v)
  std::size_t rounds_executed = 0;  ///< Algorithm-1 (LOCAL) rounds
  std::size_t phases = 0;           ///< kSampled / phased MPC methods
  bool stopped_by_condition = false;

  /// Final R-side levels (β_v = (1+ε)^{level_v}). Exact + sampled methods;
  /// empty for the MPC drivers (which do not expose host levels).
  std::vector<std::int32_t> final_levels;
  /// Exact methods only: the last round's alloc values / per-round weights.
  std::vector<double> final_alloc;
  std::vector<double> weight_history;

  std::uint64_t samples_drawn = 0;  ///< kSampled
  SolveStats stats;                 ///< frontier/engine counters where tracked
  std::optional<MpcSolveCounters> mpc;  ///< MPC methods only
};

/// The facade. Construction validates nothing; solve() validates the
/// options against the chosen method exactly as the legacy entry point did
/// (same exception types and messages).
class Solver {
 public:
  Solver() = default;
  explicit Solver(SolveOptions options) : options_(std::move(options)) {}

  [[nodiscard]] const SolveOptions& options() const { return options_; }

  /// Run the configured method. Stochastic methods derive their RNG from
  /// options().seed, so equal options ⇒ bitwise equal results.
  [[nodiscard]] SolveResult solve(const AllocationInstance& instance) const;

  /// As above, but kSampled draws from the caller's RNG stream (advancing
  /// it) instead of seeding a fresh one — the legacy run_sampled contract.
  /// Other methods ignore `rng`.
  [[nodiscard]] SolveResult solve(const AllocationInstance& instance,
                                  Xoshiro256pp& rng) const;

 private:
  SolveOptions options_;
};

namespace detail {
// Canonical implementations (defined next to their legacy shims in
// proportional.cpp / sampled.cpp / mpc_driver.cpp). Internal: call the
// Solver facade or the legacy shims instead.
ProportionalResult run_proportional_impl(const AllocationInstance& instance,
                                         const ProportionalConfig& config);
SampledResult run_sampled_impl(const AllocationInstance& instance,
                               const SampledConfig& config, Xoshiro256pp& rng);
MpcRunResult run_mpc_naive_impl(const AllocationInstance& instance,
                                const MpcDriverConfig& config);
MpcRunResult run_mpc_phased_impl(const AllocationInstance& instance,
                                 const MpcDriverConfig& config);
MpcRunResult run_mpc_unknown_lambda_impl(const AllocationInstance& instance,
                                         const MpcDriverConfig& config);
}  // namespace detail

}  // namespace mpcalloc
