// The proportional allocation algorithm (Algorithm 1 of the paper, due to
// Agrawal–Zadimoghaddam–Mirrokni [AZM18]) and its loose-threshold variant
// (Algorithm 3, appendix A), in a vectorised engine.
//
// Per round r = 1..τ:
//   each u ∈ L:  x_{u,v} = β_v / Σ_{v'∈N_u} β_{v'}          (line 2)
//   each v ∈ R:  alloc_v = Σ_{u∈N_v} x_{u,v}                 (line 3)
//   each v ∈ R:  β_v *= (1+ε)  if alloc_v ≤ C_v/(1+k_{v,r}ε) (line 4)
//                β_v /= (1+ε)  if alloc_v ≥ C_v(1+k_{v,r}ε)
// then lines 5–6 scale each v's incoming fractions by min(1, C_v/alloc_v).
//
// The paper's two analyses of the same loop:
//   * Theorem 9:  τ ≥ log_{1+ε}(4λ/ε)+1  ⇒  (2+10ε)-approximation.
//   * Theorem 20 (AZM18 + appendix A.3): τ ≥ 2·log(2|R|/ε)/ε² + 1/ε ⇒
//     (1+18ε)-approximation.
//
// The engine also implements the Section-4 remark's λ-oblivious termination
// rule: stop as soon as |N(L_top)| ≤ |L_bottom| or the allocation mass from
// N(L_top) into non-bottom levels is ≥ (1−ε/2)|N(L_top)|; either certifies
// a (2+10ε)-approximation without knowing λ.
#pragma once

#include "alloc/levels.hpp"
#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mpcalloc {

/// How the round loop decides to stop.
enum class StopRule : std::uint8_t {
  kFixedRounds,   ///< run exactly `max_rounds` rounds
  kAdaptive,      ///< Section-4 remark's condition (λ-oblivious); max_rounds
                  ///< still acts as a hard safety cap
};

struct ProportionalConfig {
  double epsilon = 0.25;
  std::size_t max_rounds = 0;  ///< must be ≥ 1 for kFixedRounds
  StopRule stop_rule = StopRule::kFixedRounds;

  /// Algorithm 3's loose thresholds: k_{v,r} per vertex and round. Empty ⇒
  /// Algorithm 1 (k ≡ 1). Values must lie in [1/k_bound, k_bound] for the
  /// appendix-A guarantees to apply; the engine does not enforce this.
  std::function<double(Vertex v, std::size_t round)> threshold_k;

  /// Record MatchWeight after every round (costs one extra pass per round).
  bool track_weight_history = false;
};

struct ProportionalResult {
  FractionalAllocation allocation;      ///< feasible output of lines 5–6
  double match_weight = 0.0;            ///< Σ_v min(C_v, alloc_v)
  std::size_t rounds_executed = 0;
  bool stopped_by_condition = false;    ///< true iff kAdaptive triggered
  std::vector<std::int32_t> final_levels;  ///< β_v = (1+ε)^{level_v}, per v∈R
  std::vector<double> final_alloc;      ///< alloc_v of the last round
  std::vector<double> weight_history;   ///< per-round MatchWeight if tracked
};

/// Run the engine. Throws std::invalid_argument on bad config.
[[nodiscard]] ProportionalResult run_proportional(
    const AllocationInstance& instance, const ProportionalConfig& config);

/// τ(λ, ε) = ⌈log_{1+ε}(4λ/ε)⌉ + 1 — Theorem 9's round budget.
[[nodiscard]] std::size_t tau_for_arboricity(double lambda, double epsilon);

/// τ(|R|, ε) = ⌈2·log(2|R|/ε)/ε²⌉ + ⌈1/ε⌉ — Theorem 20's round budget.
[[nodiscard]] std::size_t tau_for_one_plus_eps(std::size_t num_right,
                                               double epsilon);

/// Convenience: Theorem 2 — (2+10ε) approximation with τ from λ.
[[nodiscard]] ProportionalResult solve_two_plus_eps(
    const AllocationInstance& instance, double lambda, double epsilon);

/// Convenience: λ-oblivious run with the adaptive stop rule (the Section-4
/// remark). `safety_cap` bounds the loop; 0 picks τ(|R| as λ upper bound).
[[nodiscard]] ProportionalResult solve_adaptive(
    const AllocationInstance& instance, double epsilon,
    std::size_t safety_cap = 0);

// ---------------------------------------------------------------------------
// Internals shared with the sampled executor (Algorithm 2) and hosts.
// ---------------------------------------------------------------------------

/// Per-round left-side aggregation: for each u, the maximum neighbour level
/// and the scaled denominator Σ_{v∈N_u} (1+ε)^{level_v − maxlevel_u} ∈ [1, deg].
struct LeftAggregate {
  std::vector<std::int32_t> max_level;   ///< per u; INT32_MIN for isolated u
  std::vector<double> scaled_denominator;  ///< per u
};

[[nodiscard]] LeftAggregate compute_left_aggregate(
    const BipartiteGraph& graph, const std::vector<std::int32_t>& levels,
    const PowTable& pow_table);

/// alloc_v = Σ_{u∈N_v} (1+ε)^{level_v − maxlevel_u} / denom_u, summed in
/// right-CSR incidence order (so independent hosts can reproduce it
/// bit-for-bit).
[[nodiscard]] std::vector<double> compute_alloc(
    const BipartiteGraph& graph, const std::vector<std::int32_t>& levels,
    const LeftAggregate& left, const PowTable& pow_table);

/// Apply line 4's threshold update in place; returns the number of vertices
/// whose level changed.
std::size_t apply_level_update(
    const AllocationInstance& instance, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels);

/// Materialise the feasible fractional allocation of lines 5–6 from the
/// levels at the *start* of the final round and that round's alloc values.
[[nodiscard]] FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels,
    const std::vector<double>& alloc, const PowTable& pow_table);

/// MatchWeight = Σ_v min(C_v, alloc_v).
[[nodiscard]] double match_weight(const AllocationInstance& instance,
                                  const std::vector<double>& alloc);

/// The Section-4 remark's termination test, evaluated on the levels *after*
/// `round` updates (top level = +round, bottom level = −round) and the
/// alloc values computed in that round.
struct TerminationCheck {
  bool satisfied = false;
  std::size_t neighbors_of_top = 0;   ///< |N(L_top)|
  std::size_t bottom_size = 0;        ///< |L_bottom|
  double mass_above_bottom = 0.0;     ///< Σ_{v above bottom} alloc_v
};
[[nodiscard]] TerminationCheck check_termination(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& levels, const std::vector<double>& alloc,
    std::size_t round, double epsilon);

}  // namespace mpcalloc
