// The proportional allocation algorithm (Algorithm 1 of the paper, due to
// Agrawal–Zadimoghaddam–Mirrokni [AZM18]) and its loose-threshold variant
// (Algorithm 3, appendix A), in a vectorised engine.
//
// Per round r = 1..τ:
//   each u ∈ L:  x_{u,v} = β_v / Σ_{v'∈N_u} β_{v'}          (line 2)
//   each v ∈ R:  alloc_v = Σ_{u∈N_v} x_{u,v}                 (line 3)
//   each v ∈ R:  β_v *= (1+ε)  if alloc_v ≤ C_v/(1+k_{v,r}ε) (line 4)
//                β_v /= (1+ε)  if alloc_v ≥ C_v(1+k_{v,r}ε)
// then lines 5–6 scale each v's incoming fractions by min(1, C_v/alloc_v).
//
// The paper's two analyses of the same loop:
//   * Theorem 9:  τ ≥ log_{1+ε}(4λ/ε)+1  ⇒  (2+10ε)-approximation.
//   * Theorem 20 (AZM18 + appendix A.3): τ ≥ 2·log(2|R|/ε)/ε² + 1/ε ⇒
//     (1+18ε)-approximation.
//
// The engine also implements the Section-4 remark's λ-oblivious termination
// rule: stop as soon as |N(L_top)| ≤ |L_bottom| or the allocation mass from
// N(L_top) into non-bottom levels is ≥ (1−ε/2)|N(L_top)|; either certifies
// a (2+10ε)-approximation without knowing λ.
#pragma once

#include "alloc/levels.hpp"
#include "alloc/options.hpp"
#include "alloc/round_engine.hpp"
#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

namespace mpcalloc {

/// How the round loop decides to stop.
enum class StopRule : std::uint8_t {
  kFixedRounds,   ///< run exactly `max_rounds` rounds
  kAdaptive,      ///< Section-4 remark's condition (λ-oblivious); max_rounds
                  ///< still acts as a hard safety cap
};

/// Deprecated spellings: `num_threads`, `engine`, and
/// `dense_switch_fraction` used to be declared directly on this struct;
/// they now come from the shared CommonOptions base (alloc/options.hpp)
/// with unchanged names, defaults, and meaning. The exact solver ignores
/// the inherited `seed` (it draws no randomness). A non-empty `threshold_k`
/// must be safe to invoke concurrently when num_threads > 1 (pure functions
/// are).
struct ProportionalConfig : CommonOptions {
  double epsilon = 0.25;
  std::size_t max_rounds = 0;  ///< must be ≥ 1 for kFixedRounds
  StopRule stop_rule = StopRule::kFixedRounds;

  /// Algorithm 3's loose thresholds: k_{v,r} per vertex and round. Empty ⇒
  /// Algorithm 1 (k ≡ 1). Values must lie in [1/k_bound, k_bound] for the
  /// appendix-A guarantees to apply; the engine does not enforce this.
  std::function<double(Vertex v, std::size_t round)> threshold_k;

  /// Record MatchWeight after every round (costs one extra pass per round).
  bool track_weight_history = false;

  /// Optional trajectory recording (round_engine.hpp): when non-null, the
  /// solver appends one Change list per executed round — the round's
  /// frontier with its ±1 steps — clearing the tape first. The serving
  /// layer's warm restarts diff against this tape. Must outlive the call.
  TrajectoryTape* record_tape = nullptr;
};

struct ProportionalResult {
  FractionalAllocation allocation;      ///< feasible output of lines 5–6
  double match_weight = 0.0;            ///< Σ_v min(C_v, alloc_v)
  std::size_t rounds_executed = 0;
  bool stopped_by_condition = false;    ///< true iff kAdaptive triggered
  std::vector<std::int32_t> final_levels;  ///< β_v = (1+ε)^{level_v}, per v∈R
  std::vector<double> final_alloc;      ///< alloc_v of the last round
  std::vector<double> weight_history;   ///< per-round MatchWeight if tracked
  SolveStats stats;                     ///< per-round frontier/engine counters
};

/// Run the engine. Throws std::invalid_argument on bad config.
/// Legacy entry point: forwards through the Solver facade (alloc/solver.hpp),
/// as do solve_two_plus_eps / solve_adaptive below; results are unchanged.
[[nodiscard]] ProportionalResult run_proportional(
    const AllocationInstance& instance, const ProportionalConfig& config);

/// τ(λ, ε) = ⌈log_{1+ε}(4λ/ε)⌉ + 1 — Theorem 9's round budget.
[[nodiscard]] std::size_t tau_for_arboricity(double lambda, double epsilon);

/// τ(|R|, ε) = ⌈2·log(2|R|/ε)/ε²⌉ + ⌈1/ε⌉ — Theorem 20's round budget.
[[nodiscard]] std::size_t tau_for_one_plus_eps(std::size_t num_right,
                                               double epsilon);

/// Convenience: Theorem 2 — (2+10ε) approximation with τ from λ.
/// `num_threads` as in ProportionalConfig (0 = auto).
[[nodiscard]] ProportionalResult solve_two_plus_eps(
    const AllocationInstance& instance, double lambda, double epsilon,
    std::size_t num_threads = 0);

/// Convenience: λ-oblivious run with the adaptive stop rule (the Section-4
/// remark). `safety_cap` bounds the loop; 0 picks τ(|R| as λ upper bound).
/// `num_threads` as in ProportionalConfig (0 = auto).
[[nodiscard]] ProportionalResult solve_adaptive(
    const AllocationInstance& instance, double epsilon,
    std::size_t safety_cap = 0, std::size_t num_threads = 0);

// ---------------------------------------------------------------------------
// Internals shared with the sampled executor (Algorithm 2) and hosts.
// ---------------------------------------------------------------------------

/// Per-round left-side aggregation: for each u, the maximum neighbour level
/// and the *reciprocal* of the scaled denominator
/// Σ_{v∈N_u} (1+ε)^{level_v − maxlevel_u} ∈ [1, deg], so the per-edge
/// consumers (compute_alloc, materialize_allocation) do one multiply
/// instead of one divide per edge.
struct LeftAggregate {
  std::vector<std::int32_t> max_level;   ///< per u; INT32_MIN for isolated u
  std::vector<double> inv_scaled_denominator;  ///< 1/denom; 0 for isolated u
};

/// Recompute u's LeftAggregate entry by scanning its full CSR neighborhood
/// — the exact per-vertex body of the dense sweep, shared so the
/// incremental engine's refreshed entries are bitwise identical to a dense
/// recompute by construction. Isolated u is left untouched (the dense
/// sweep's assign() initialises those to INT32_MIN / 0.0).
inline void recompute_left_entry(const BipartiteGraph& graph,
                                 const std::vector<std::int32_t>& levels,
                                 const PowTable& pow_table, Vertex u,
                                 LeftAggregate& agg) {
  const auto neighbors = graph.left_neighbors(u);
  if (neighbors.empty()) return;
  std::int32_t max_level = std::numeric_limits<std::int32_t>::min();
  for (const Incidence& inc : neighbors) {
    max_level = std::max(max_level, levels[inc.to]);
  }
  double denom = 0.0;
  for (const Incidence& inc : neighbors) {
    denom += pow_table.pow(levels[inc.to] - max_level);
  }
  agg.max_level[u] = max_level;
  // denom ≥ 1 (the max-level neighbour contributes (1+ε)^0 = 1), so the
  // reciprocal is well defined and in (0, 1].
  agg.inv_scaled_denominator[u] = 1.0 / denom;
}

/// Recompute alloc_v by scanning v's full CSR neighborhood in incidence
/// order — the dense sweep's per-vertex body (see recompute_left_entry).
[[nodiscard]] inline double recompute_alloc_entry(
    const BipartiteGraph& graph, const std::vector<std::int32_t>& levels,
    const LeftAggregate& left, const PowTable& pow_table, Vertex v) {
  double total = 0.0;
  for (const Incidence& inc : graph.right_neighbors(v)) {
    const Vertex u = inc.to;
    // x_{u,v} = (1+ε)^{level_v} / Σ_{v'} (1+ε)^{level_{v'}}, evaluated as
    // (1+ε)^{level_v − max_u} · inv_scaled_denominator_u to stay in
    // range and to trade the per-edge divide for a multiply.
    total += pow_table.pow(levels[v] - left.max_level[u]) *
             left.inv_scaled_denominator[u];
  }
  return total;
}

[[nodiscard]] LeftAggregate compute_left_aggregate(
    const BipartiteGraph& graph, const std::vector<std::int32_t>& levels,
    const PowTable& pow_table, std::size_t num_threads = 1);

/// Dense sweep into a caller-owned aggregate (resized on shape mismatch,
/// reused allocation-free otherwise — the round loop's steady state).
void compute_left_aggregate_into(const BipartiteGraph& graph,
                                 const std::vector<std::int32_t>& levels,
                                 const PowTable& pow_table,
                                 std::size_t num_threads, LeftAggregate& out);

/// alloc_v = Σ_{u∈N_v} (1+ε)^{level_v − maxlevel_u} · inv_denom_u, summed in
/// right-CSR incidence order (so independent hosts can reproduce it
/// bit-for-bit; the tiling never splits a vertex's sum).
[[nodiscard]] std::vector<double> compute_alloc(
    const BipartiteGraph& graph, const std::vector<std::int32_t>& levels,
    const LeftAggregate& left, const PowTable& pow_table,
    std::size_t num_threads = 1);

/// Dense sweep into a caller-owned vector (see compute_left_aggregate_into).
void compute_alloc_into(const BipartiteGraph& graph,
                        const std::vector<std::int32_t>& levels,
                        const LeftAggregate& left, const PowTable& pow_table,
                        std::size_t num_threads, std::vector<double>& out);

/// Algorithm 1's k ≡ 1 thresholds as a stateless callable: the common
/// no-threshold_k case instantiates apply_level_update with this type, so
/// the per-vertex threshold lookup compiles to a constant instead of a
/// std::function indirect call.
struct UnitThreshold {
  double operator()(Vertex, std::size_t) const { return 1.0; }
};

/// Line 4's per-vertex step: {-1, 0, +1} from this round's alloc_v against
/// the capacity thresholds. The exact comparison body of apply_level_update,
/// shared so incremental replayers (serve/warm_restart) step
/// bitwise-identically to the dense sweep.
[[nodiscard]] inline std::int8_t level_step(double alloc_v, double capacity,
                                            double k, double epsilon) {
  if (alloc_v <= capacity / (1.0 + k * epsilon)) return 1;
  if (alloc_v >= capacity * (1.0 + k * epsilon)) return -1;
  return 0;
}

/// Apply line 4's threshold update in place; returns the number of vertices
/// whose level changed. If `level_deltas` is non-null (sized |R|) it
/// records the per-vertex step {-1, 0, +1} taken this round, letting the
/// driver reconstruct the round's start levels without snapshotting the
/// whole level vector (see reconstruct_start_levels) and the incremental
/// engine derive the changed-vertex frontier. `threshold_k` must be
/// concurrency-safe when num_threads > 1. The templated overload is the
/// hot path (a statically dispatched callable, e.g. UnitThreshold); the
/// std::function overloads below forward to it.
template <typename ThresholdFn>
  requires std::is_invocable_r_v<double, ThresholdFn, Vertex, std::size_t>
std::size_t apply_level_update(std::span<const std::uint32_t> capacities,
                               const std::vector<double>& alloc,
                               double epsilon, std::size_t round,
                               const ThresholdFn& threshold_k,
                               std::vector<std::int32_t>& levels,
                               std::size_t num_threads = 1,
                               std::vector<std::int8_t>* level_deltas = nullptr) {
  return parallel_reduce<std::size_t>(
      0, capacities.size(), kParallelTile, num_threads, 0,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        std::size_t changed = 0;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          const std::int8_t delta =
              level_step(alloc[v], static_cast<double>(capacities[v]),
                         threshold_k(v, round), epsilon);
          levels[v] += delta;
          changed += delta != 0;
          if (level_deltas) (*level_deltas)[v] = delta;
        }
        return changed;
      },
      std::plus<>());
}

std::size_t apply_level_update(
    const AllocationInstance& instance, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads = 1,
    std::vector<std::int8_t>* level_deltas = nullptr);

/// The same sweep over an explicit capacity span (the b-matching driver
/// runs it against its R-side capacities). An empty threshold_k dispatches
/// to the UnitThreshold instantiation (no per-vertex indirect call).
std::size_t apply_level_update(
    std::span<const std::uint32_t> capacities, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads = 1,
    std::vector<std::int8_t>* level_deltas = nullptr);

/// Undo one apply_level_update step: start_levels[v] = levels[v] - deltas[v]
/// — the levels at the start of the round that recorded `deltas`.
[[nodiscard]] std::vector<std::int32_t> reconstruct_start_levels(
    const std::vector<std::int32_t>& levels,
    const std::vector<std::int8_t>& deltas, std::size_t num_threads = 1);

/// Materialise the feasible fractional allocation of lines 5–6 from the
/// levels at the *start* of the final round and that round's alloc values.
[[nodiscard]] FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads = 1);

/// As above, but reusing an already-computed LeftAggregate of
/// `start_levels` instead of re-deriving it (the driver has the final
/// round's aggregate in hand).
[[nodiscard]] FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels, const LeftAggregate& left,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads = 1);

/// MatchWeight = Σ_v min(C_v, alloc_v).
[[nodiscard]] double match_weight(const AllocationInstance& instance,
                                  const std::vector<double>& alloc,
                                  std::size_t num_threads = 1);

/// The Section-4 remark's termination test, evaluated on the levels *after*
/// `round` updates (top level = +round, bottom level = −round) and the
/// alloc values computed in that round.
struct TerminationCheck {
  bool satisfied = false;
  std::size_t neighbors_of_top = 0;   ///< |N(L_top)|
  std::size_t bottom_size = 0;        ///< |L_bottom|
  double mass_above_bottom = 0.0;     ///< Σ_{v above bottom} alloc_v
};

/// Reusable buffers for check_termination, so the adaptive driver does not
/// allocate an |L|-sized vector every round. The marked vector is all-zero
/// between calls (the check re-clears only when it marked anything).
struct TerminationScratch {
  std::vector<std::uint8_t> left_marked;
};

[[nodiscard]] TerminationCheck check_termination(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& levels, const std::vector<double>& alloc,
    std::size_t round, double epsilon);

/// As above with caller-owned scratch and a thread count. The N(L_top)
/// marking sweep is skipped outright when no vertex sits at level +round
/// (|N(L_top)| = 0 certifies termination by itself).
[[nodiscard]] TerminationCheck check_termination(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& levels, const std::vector<double>& alloc,
    std::size_t round, double epsilon, TerminationScratch& scratch,
    std::size_t num_threads);

}  // namespace mpcalloc
