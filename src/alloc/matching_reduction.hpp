// The vertex-splitting reduction from allocation to maximum matching, and
// why it fails on low-arboricity inputs (Remark 1 of the paper).
//
// The reduction replaces every v ∈ R by C_v copies, each adjacent to all of
// N(v); allocations of G correspond to matchings of the split graph. The
// paper's point: this can inflate arboricity from 1 to Θ(n) (a star whose
// center has capacity n−1 becomes K_{n-1,n-1}), so arboricity-parameterised
// matching algorithms gain nothing through it. Experiment E7 measures the
// blow-up and compares solution quality.
#pragma once

#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

namespace mpcalloc {

struct SplitGraph {
  BipartiteGraph graph;                 ///< L unchanged; R side = capacity copies
  std::vector<Vertex> copy_owner;       ///< split R index → original v
  std::vector<std::size_t> first_copy;  ///< original v → first split index
};

/// Build the split graph. Size guard: throws std::length_error if the
/// reduced edge count Σ_v C_v·deg(v) exceeds `max_edges`.
[[nodiscard]] SplitGraph split_capacities(const AllocationInstance& instance,
                                          std::size_t max_edges = 50'000'000);

/// Map a matching of the split graph (as an allocation with unit caps on
/// the split side) back to an allocation of the original instance.
[[nodiscard]] IntegralAllocation lift_matching(
    const AllocationInstance& instance, const SplitGraph& split,
    const IntegralAllocation& split_matching);

}  // namespace mpcalloc
