#include "alloc/sampled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace mpcalloc {

namespace {

/// (1+ε)^d for any signed d: table lookup in the common range, exp fallback
/// (clamped against overflow) for large positive exponents that can appear
/// transiently when an anchor lags behind a fast-rising level.
double pow_signed(const PowTable& table, double log1p_eps, std::int64_t d) {
  if (d <= 64 && d >= -table.underflow_depth()) return table.pow(d);
  if (d < 0) return 0.0;
  const double exponent = static_cast<double>(d) * log1p_eps;
  if (exponent > 690.0) return 1e300;
  return std::exp(exponent);
}

/// A sampled neighbour with its group rescale weight |group| / |sample|.
struct WeightedSample {
  std::uint32_t neighbor = 0;  ///< position-independent vertex id
  double weight = 1.0;
};

/// Estimated left-side priority β̂_u = mantissa · (1+ε)^{anchor}.
struct ScaledValue {
  std::int64_t anchor = 0;
  double mantissa = 0.0;  ///< 0 ⇒ undefined (isolated vertex)
};

}  // namespace

SampledResult run_sampled(const AllocationInstance& instance,
                          const SampledConfig& config, Xoshiro256pp& rng) {
  instance.validate();
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_sampled: max_rounds must be >= 1");
  }
  if (config.phase_length == 0) {
    throw std::invalid_argument("run_sampled: phase_length must be >= 1");
  }
  if (config.samples_per_group == 0) {
    throw std::invalid_argument("run_sampled: samples_per_group must be >= 1");
  }

  const auto& g = instance.graph;
  const std::size_t nl = g.num_left();
  const std::size_t nr = g.num_right();
  const PowTable pow_table(config.epsilon);
  const double log1p_eps = std::log1p(config.epsilon);

  SampledResult result;
  std::vector<std::int32_t> levels(nr, 0);

  // β̂_u state; exact at initialisation (β_u = Σ_{v∈N_u} β_v = deg(u)).
  std::vector<ScaledValue> beta_left(nl);
  for (Vertex u = 0; u < nl; ++u) {
    beta_left[u] = ScaledValue{0, static_cast<double>(g.left_degree(u))};
  }

  // Group key for an L vertex: ⌊log_{1+ε} β̂_u⌋, anchored for range safety.
  auto left_group_key = [&](Vertex u) -> std::int64_t {
    const ScaledValue& b = beta_left[u];
    if (b.mantissa <= 0.0) return std::numeric_limits<std::int64_t>::min();
    return b.anchor +
           static_cast<std::int64_t>(std::floor(std::log(b.mantissa) / log1p_eps + 1e-12));
  };

  // Per-round sampled views, rebuilt each phase:
  //   left_samples[r][u]  — sampled R neighbours of u for phase round r
  //   right_samples[r][v] — sampled L neighbours of v for phase round r
  std::vector<std::vector<std::vector<WeightedSample>>> left_samples;
  std::vector<std::vector<std::vector<WeightedSample>>> right_samples;

  // Draw per-group fresh samples for each of the B rounds of a phase.
  // `positions[g]` lists neighbour array positions belonging to group g.
  auto draw_samples = [&](const std::map<std::int64_t, std::vector<std::uint32_t>>&
                              groups,
                          std::vector<std::vector<WeightedSample>>& per_round_out,
                          std::size_t rounds_in_phase) {
    for (std::size_t r = 0; r < rounds_in_phase; ++r) {
      auto& out = per_round_out[r];
      for (const auto& [key, members] : groups) {
        (void)key;
        if (members.size() <= config.samples_per_group) {
          // Small group: use it exactly — zero estimation error.
          for (const std::uint32_t w : members) {
            out.push_back(WeightedSample{w, 1.0});
          }
          result.samples_drawn += members.size();
        } else {
          const double weight = static_cast<double>(members.size()) /
                                static_cast<double>(config.samples_per_group);
          for (std::size_t k = 0; k < config.samples_per_group; ++k) {
            out.push_back(
                WeightedSample{members[rng.uniform(members.size())], weight});
          }
          result.samples_drawn += config.samples_per_group;
        }
      }
    }
  };

  std::size_t round = 0;
  while (round < config.max_rounds) {
    const std::size_t rounds_in_phase =
        std::min(config.phase_length, config.max_rounds - round);
    ++result.phases_executed;

    // ---- Phase start: group neighbourhoods by current priority level and
    // draw fresh independent samples for every round of the phase.
    left_samples.assign(rounds_in_phase, std::vector<std::vector<WeightedSample>>(nl));
    right_samples.assign(rounds_in_phase, std::vector<std::vector<WeightedSample>>(nr));

    for (Vertex u = 0; u < nl; ++u) {
      std::map<std::int64_t, std::vector<std::uint32_t>> groups;
      for (const Incidence& inc : g.left_neighbors(u)) {
        groups[levels[inc.to]].push_back(inc.to);
      }
      std::vector<std::vector<WeightedSample>*> slots;
      for (std::size_t r = 0; r < rounds_in_phase; ++r) {
        slots.push_back(&left_samples[r][u]);
      }
      // draw into each round's slot
      for (std::size_t r = 0; r < rounds_in_phase; ++r) {
        std::vector<std::vector<WeightedSample>> tmp(1);
        draw_samples(groups, tmp, 1);
        *slots[r] = std::move(tmp[0]);
      }
    }
    for (Vertex v = 0; v < nr; ++v) {
      std::map<std::int64_t, std::vector<std::uint32_t>> groups;
      for (const Incidence& inc : g.right_neighbors(v)) {
        groups[left_group_key(inc.to)].push_back(inc.to);
      }
      for (std::size_t r = 0; r < rounds_in_phase; ++r) {
        std::vector<std::vector<WeightedSample>> tmp(1);
        draw_samples(groups, tmp, 1);
        right_samples[r][v] = std::move(tmp[0]);
      }
    }

    // Report the phase's sampled communication subgraph (union over the
    // phase's rounds) to the observer — this is the graph H whose radius-B
    // balls the MPC driver ships to machines.
    if (config.on_phase_subgraph) {
      std::vector<std::vector<std::uint32_t>> adjacency(nl + nr);
      for (std::size_t r = 0; r < rounds_in_phase; ++r) {
        for (Vertex u = 0; u < nl; ++u) {
          for (const WeightedSample& s : left_samples[r][u]) {
            adjacency[u].push_back(static_cast<std::uint32_t>(nl + s.neighbor));
            adjacency[nl + s.neighbor].push_back(u);
          }
        }
        for (Vertex v = 0; v < nr; ++v) {
          for (const WeightedSample& s : right_samples[r][v]) {
            adjacency[nl + v].push_back(s.neighbor);
            adjacency[s.neighbor].push_back(static_cast<std::uint32_t>(nl + v));
          }
        }
      }
      for (auto& list : adjacency) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
      }
      config.on_phase_subgraph(adjacency);
    }

    // ---- Execute the phase's rounds on the sampled views.
    for (std::size_t r = 0; r < rounds_in_phase; ++r) {
      ++round;
      // Estimate β̂_u from this round's samples (levels are current).
      for (Vertex u = 0; u < nl; ++u) {
        const auto& samples = left_samples[r][u];
        if (samples.empty()) {
          beta_left[u] = ScaledValue{0, 0.0};
          continue;
        }
        std::int32_t anchor = std::numeric_limits<std::int32_t>::min();
        for (const WeightedSample& s : samples) {
          anchor = std::max(anchor, levels[s.neighbor]);
        }
        double mantissa = 0.0;
        for (const WeightedSample& s : samples) {
          mantissa += s.weight * pow_table.pow(levels[s.neighbor] - anchor);
        }
        beta_left[u] = ScaledValue{anchor, mantissa};
      }
      // Estimate alloc_v and apply the threshold update.
      for (Vertex v = 0; v < nr; ++v) {
        double alloc_estimate = 0.0;
        for (const WeightedSample& s : right_samples[r][v]) {
          const ScaledValue& b = beta_left[s.neighbor];
          if (b.mantissa <= 0.0) continue;
          alloc_estimate +=
              s.weight *
              pow_signed(pow_table, log1p_eps, levels[v] - b.anchor) /
              b.mantissa;
        }
        const double cap = static_cast<double>(instance.capacities[v]);
        if (alloc_estimate <= cap / (1.0 + config.epsilon)) {
          ++levels[v];
        } else if (alloc_estimate >= cap * (1.0 + config.epsilon)) {
          --levels[v];
        }
      }
    }
    result.rounds_executed = round;

    // ---- Phase-end termination test (exact, as the MPC-side O(1)-round
    // test is): evaluate the §4 condition on the *current* state.
    if (config.adaptive_termination) {
      const LeftAggregate left = compute_left_aggregate(g, levels, pow_table);
      const std::vector<double> exact_alloc =
          compute_alloc(g, levels, left, pow_table);
      const TerminationCheck check = check_termination(
          instance, levels, exact_alloc, round, config.epsilon);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
  }

  // ---- Exact output materialisation (one extra exact pass; see header).
  const LeftAggregate left = compute_left_aggregate(g, levels, pow_table);
  const std::vector<double> exact_alloc =
      compute_alloc(g, levels, left, pow_table);
  result.allocation =
      materialize_allocation(instance, levels, exact_alloc, pow_table);
  result.match_weight = match_weight(instance, exact_alloc);
  result.final_levels = std::move(levels);
  return result;
}

}  // namespace mpcalloc
