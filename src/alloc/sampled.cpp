#include "alloc/sampled.hpp"

#include "alloc/solver.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace mpcalloc {

namespace {

/// (1+ε)^d for any signed d: table lookup in the common range, exp fallback
/// (clamped against overflow) for large positive exponents that can appear
/// transiently when an anchor lags behind a fast-rising level.
double pow_signed(const PowTable& table, double log1p_eps, std::int64_t d) {
  if (d <= 64 && d >= -table.underflow_depth()) return table.pow(d);
  if (d < 0) return 0.0;
  const double exponent = static_cast<double>(d) * log1p_eps;
  if (exponent > 690.0) return 1e300;
  return std::exp(exponent);
}

/// A sampled neighbour with its group rescale weight |group| / |sample|.
struct WeightedSample {
  std::uint32_t neighbor = 0;  ///< position-independent vertex id
  double weight = 1.0;
};

/// Estimated left-side priority β̂_u = mantissa · (1+ε)^{anchor}.
struct ScaledValue {
  std::int64_t anchor = 0;
  double mantissa = 0.0;  ///< 0 ⇒ undefined (isolated vertex)
};

/// One vertex's neighbourhood partitioned into priority-level groups,
/// flattened: `members` holds the groups back to back in ascending key
/// order, `group_end[i]` is the exclusive end of group i.
struct GroupedNeighbors {
  std::vector<std::uint32_t> members;
  std::vector<std::uint32_t> group_end;
};

/// Seed for the RNG stream of one sampling tile. A SplitMix64 hash chain
/// over (run seed, phase, round, side, tile) — a pure function of the tile
/// coordinates, never of which thread executes the tile, so the executor's
/// randomness is bitwise independent of the thread count.
std::uint64_t tile_stream_seed(std::uint64_t run_seed, std::size_t phase,
                               std::size_t round, std::size_t side,
                               std::size_t tile) {
  std::uint64_t h = run_seed;
  for (const std::uint64_t part :
       {static_cast<std::uint64_t>(phase), static_cast<std::uint64_t>(round),
        static_cast<std::uint64_t>(side), static_cast<std::uint64_t>(tile)}) {
    h = SplitMix64(h ^ (part + 0x9e3779b97f4a7c15ULL)).next();
  }
  return h;
}

/// Draw one round's weighted samples for one vertex: each group of size
/// ≤ samples_per_group is copied exactly (zero estimation error), larger
/// groups contribute samples_per_group uniform draws with the |group| /
/// |sample| rescale weight.
void draw_samples(const GroupedNeighbors& groups, std::size_t samples_per_group,
                  Xoshiro256pp& rng, std::vector<WeightedSample>& out) {
  std::uint32_t begin = 0;
  for (const std::uint32_t end : groups.group_end) {
    const std::uint32_t size = end - begin;
    if (size <= samples_per_group) {
      for (std::uint32_t i = begin; i < end; ++i) {
        out.push_back(WeightedSample{groups.members[i], 1.0});
      }
    } else {
      const double weight = static_cast<double>(size) /
                            static_cast<double>(samples_per_group);
      for (std::size_t k = 0; k < samples_per_group; ++k) {
        out.push_back(WeightedSample{
            groups.members[begin + rng.uniform(size)], weight});
      }
    }
    begin = end;
  }
}

}  // namespace

SampledResult detail::run_sampled_impl(const AllocationInstance& instance,
                                       const SampledConfig& config,
                                       Xoshiro256pp& rng) {
  instance.validate();
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_sampled: max_rounds must be >= 1");
  }
  if (config.phase_length == 0) {
    throw std::invalid_argument("run_sampled: phase_length must be >= 1");
  }
  if (config.samples_per_group == 0) {
    throw std::invalid_argument("run_sampled: samples_per_group must be >= 1");
  }

  const auto& g = instance.graph;
  const std::size_t nl = g.num_left();
  const std::size_t nr = g.num_right();
  const PowTable pow_table(config.epsilon);
  const double log1p_eps = std::log1p(config.epsilon);
  const std::size_t threads = resolve_num_threads(config.num_threads);

  // All sampling randomness flows from one seed drawn here, expanded into
  // per-(phase, round, tile) streams — the caller's RNG advances by exactly
  // one draw regardless of thread count or round count.
  const std::uint64_t run_seed = rng();

  SampledResult result;
  std::vector<std::int32_t> levels(nr, 0);

  // β̂_u state; exact at initialisation (β_u = Σ_{v∈N_u} β_v = deg(u)).
  std::vector<ScaledValue> beta_left(nl);
  for (Vertex u = 0; u < nl; ++u) {
    beta_left[u] = ScaledValue{0, static_cast<double>(g.left_degree(u))};
  }

  // Group key for an L vertex: ⌊log_{1+ε} β̂_u⌋, anchored for range safety.
  auto left_group_key = [&](Vertex u) -> std::int64_t {
    const ScaledValue& b = beta_left[u];
    if (b.mantissa <= 0.0) return std::numeric_limits<std::int64_t>::min();
    return b.anchor +
           static_cast<std::int64_t>(std::floor(std::log(b.mantissa) / log1p_eps + 1e-12));
  };

  // Per-round sampled views, rebuilt each phase:
  //   left_samples[r][u]  — sampled R neighbours of u for phase round r
  //   right_samples[r][v] — sampled L neighbours of v for phase round r
  std::vector<std::vector<std::vector<WeightedSample>>> left_samples;
  std::vector<std::vector<std::vector<WeightedSample>>> right_samples;
  std::vector<GroupedNeighbors> left_groups(nl);
  std::vector<GroupedNeighbors> right_groups(nr);

  std::size_t phase_index = 0;
  std::size_t round = 0;
  while (round < config.max_rounds) {
    const std::size_t rounds_in_phase =
        std::min(config.phase_length, config.max_rounds - round);
    ++result.phases_executed;

    // ---- Phase start: partition neighbourhoods into level groups. The
    // per-vertex group maps are independent work; the flattened groups are
    // ordered by ascending key, so the layout is a pure function of the
    // current levels/β̂ state. One builder serves both sides, parameterised
    // on the CSR accessor and the group-key function.
    const auto build_groups = [&](std::size_t count,
                                  std::vector<GroupedNeighbors>& out,
                                  const auto& neighbors_of,
                                  const auto& key_of) {
      parallel_for(0, count, kParallelTile, threads,
                   [&](std::size_t tile_begin, std::size_t tile_end) {
                     std::map<std::int64_t, std::vector<std::uint32_t>> groups;
                     for (Vertex x = tile_begin; x < tile_end; ++x) {
                       groups.clear();
                       for (const Incidence& inc : neighbors_of(x)) {
                         groups[key_of(inc.to)].push_back(inc.to);
                       }
                       GroupedNeighbors& flat = out[x];
                       flat.members.clear();
                       flat.group_end.clear();
                       for (const auto& [key, members] : groups) {
                         (void)key;
                         flat.members.insert(flat.members.end(),
                                             members.begin(), members.end());
                         flat.group_end.push_back(
                             static_cast<std::uint32_t>(flat.members.size()));
                       }
                     }
                   });
    };
    build_groups(nl, left_groups,
                 [&](Vertex u) { return g.left_neighbors(u); },
                 [&](Vertex v) { return static_cast<std::int64_t>(levels[v]); });
    build_groups(nr, right_groups,
                 [&](Vertex v) { return g.right_neighbors(v); },
                 left_group_key);

    // ---- Draw fresh independent samples for every round of the phase, on
    // per-tile RNG streams keyed by (phase, round, side, tile): which
    // thread runs a tile is scheduling noise, which stream a tile draws
    // from is not.
    left_samples.assign(rounds_in_phase,
                        std::vector<std::vector<WeightedSample>>(nl));
    right_samples.assign(rounds_in_phase,
                         std::vector<std::vector<WeightedSample>>(nr));
    const auto draw_round = [&](std::size_t count,
                                const std::vector<GroupedNeighbors>& groups,
                                std::vector<std::vector<WeightedSample>>& out,
                                std::size_t round_index, std::size_t side) {
      parallel_for(0, count, kParallelTile, threads,
                   [&](std::size_t tile_begin, std::size_t tile_end) {
                     Xoshiro256pp tile_rng(tile_stream_seed(
                         run_seed, phase_index, round_index, side,
                         tile_begin / kParallelTile));
                     for (Vertex x = tile_begin; x < tile_end; ++x) {
                       draw_samples(groups[x], config.samples_per_group,
                                    tile_rng, out[x]);
                     }
                   });
      for (Vertex x = 0; x < count; ++x) result.samples_drawn += out[x].size();
    };
    for (std::size_t r = 0; r < rounds_in_phase; ++r) {
      draw_round(nl, left_groups, left_samples[r], round + r, /*side=*/0);
      draw_round(nr, right_groups, right_samples[r], round + r, /*side=*/1);
    }

    // Report the phase's sampled communication subgraph (union over the
    // phase's rounds) to the observer — this is the graph H whose radius-B
    // balls the MPC driver ships to machines. The direct halves of the
    // lists are written in parallel (disjoint per vertex); the inverted
    // halves are collected per tile and scattered afterwards — insertion
    // order is irrelevant because every list is sorted and deduplicated.
    if (config.on_phase_subgraph) {
      std::vector<std::vector<std::uint32_t>> adjacency(nl + nr);
      const std::size_t left_tiles = (nl + kParallelTile - 1) / kParallelTile;
      const std::size_t right_tiles = (nr + kParallelTile - 1) / kParallelTile;
      std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
          inverted(left_tiles + right_tiles);
      const auto scatter_side =
          [&](std::size_t count,
              const std::vector<std::vector<std::vector<WeightedSample>>>&
                  samples,
              std::size_t tile_base, const auto& self_id,
              const auto& partner_id) {
            parallel_for(0, count, kParallelTile, threads,
                         [&](std::size_t tile_begin, std::size_t tile_end) {
                           auto& inv =
                               inverted[tile_base + tile_begin / kParallelTile];
                           for (Vertex x = tile_begin; x < tile_end; ++x) {
                             const std::uint32_t self = self_id(x);
                             for (std::size_t r = 0; r < rounds_in_phase; ++r) {
                               for (const WeightedSample& s : samples[r][x]) {
                                 const std::uint32_t partner =
                                     partner_id(s.neighbor);
                                 adjacency[self].push_back(partner);
                                 inv.emplace_back(partner, self);
                               }
                             }
                           }
                         });
          };
      scatter_side(nl, left_samples, 0,
                   [](Vertex u) { return static_cast<std::uint32_t>(u); },
                   [&](std::uint32_t neighbor) {
                     return static_cast<std::uint32_t>(nl + neighbor);
                   });
      scatter_side(nr, right_samples, left_tiles,
                   [&](Vertex v) { return static_cast<std::uint32_t>(nl + v); },
                   [](std::uint32_t neighbor) { return neighbor; });
      for (const auto& tile_pairs : inverted) {
        for (const auto& [to, from] : tile_pairs) {
          adjacency[to].push_back(from);
        }
      }
      parallel_for(0, nl + nr, kParallelTile, threads,
                   [&](std::size_t tile_begin, std::size_t tile_end) {
                     for (std::size_t i = tile_begin; i < tile_end; ++i) {
                       auto& list = adjacency[i];
                       std::sort(list.begin(), list.end());
                       list.erase(std::unique(list.begin(), list.end()),
                                  list.end());
                     }
                   });
      config.on_phase_subgraph(adjacency);
    }

    // ---- Execute the phase's rounds on the sampled views: the left
    // estimation sweep writes only beta_left[u], the right sweep reads the
    // finished beta_left and writes only levels[v] — both embarrassingly
    // parallel with a barrier between them.
    for (std::size_t r = 0; r < rounds_in_phase; ++r) {
      ++round;
      const auto& round_left = left_samples[r];
      const auto& round_right = right_samples[r];
      // Estimate β̂_u from this round's samples (levels are current).
      parallel_for(
          0, nl, kParallelTile, threads,
          [&](std::size_t tile_begin, std::size_t tile_end) {
            for (Vertex u = tile_begin; u < tile_end; ++u) {
              const auto& samples = round_left[u];
              if (samples.empty()) {
                beta_left[u] = ScaledValue{0, 0.0};
                continue;
              }
              std::int32_t anchor = std::numeric_limits<std::int32_t>::min();
              for (const WeightedSample& s : samples) {
                anchor = std::max(anchor, levels[s.neighbor]);
              }
              double mantissa = 0.0;
              for (const WeightedSample& s : samples) {
                mantissa += s.weight * pow_table.pow(levels[s.neighbor] - anchor);
              }
              beta_left[u] = ScaledValue{anchor, mantissa};
            }
          });
      // Estimate alloc_v and apply the threshold update.
      parallel_for(
          0, nr, kParallelTile, threads,
          [&](std::size_t tile_begin, std::size_t tile_end) {
            for (Vertex v = tile_begin; v < tile_end; ++v) {
              double alloc_estimate = 0.0;
              for (const WeightedSample& s : round_right[v]) {
                const ScaledValue& b = beta_left[s.neighbor];
                if (b.mantissa <= 0.0) continue;
                alloc_estimate +=
                    s.weight *
                    pow_signed(pow_table, log1p_eps, levels[v] - b.anchor) /
                    b.mantissa;
              }
              const double cap = static_cast<double>(instance.capacities[v]);
              if (alloc_estimate <= cap / (1.0 + config.epsilon)) {
                ++levels[v];
              } else if (alloc_estimate >= cap * (1.0 + config.epsilon)) {
                --levels[v];
              }
            }
          });
    }
    result.rounds_executed = round;
    ++phase_index;

    // ---- Phase-end termination test (exact, as the MPC-side O(1)-round
    // test is): evaluate the §4 condition on the *current* state.
    if (config.adaptive_termination) {
      const LeftAggregate left =
          compute_left_aggregate(g, levels, pow_table, threads);
      const std::vector<double> exact_alloc =
          compute_alloc(g, levels, left, pow_table, threads);
      const TerminationCheck check = check_termination(
          instance, levels, exact_alloc, round, config.epsilon);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
  }

  // ---- Exact output materialisation (one extra exact pass; see header).
  const LeftAggregate left =
      compute_left_aggregate(g, levels, pow_table, threads);
  const std::vector<double> exact_alloc =
      compute_alloc(g, levels, left, pow_table, threads);
  result.allocation = materialize_allocation(instance, levels, exact_alloc,
                                             pow_table, threads);
  result.match_weight = match_weight(instance, exact_alloc, threads);
  result.final_levels = std::move(levels);
  return result;
}

}  // namespace mpcalloc
