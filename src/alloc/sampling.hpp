// The Lemma 11 estimator: approximating a sum by a rescaled uniform sample.
//
// Lemma 11: if every element of a sequence of n values lies in [V/t, V·t]
// and s ≥ 20·t²·log n/ε⁴ samples are drawn uniformly at random, the
// rescaled sample sum S_y = (n/s)·Σ y_i satisfies |S_y − S_x| ≤ 4εS_x with
// probability ≥ 1 − n^{-10·log_{1+ε} t}.
//
// Algorithm 2 uses this with t = (1+ε)^B to estimate neighbourhood β-sums
// from per-level-group samples; bench_sampling (E4) measures the actual
// error/failure-rate curve.
#pragma once

#include "util/rng.hpp"

#include <cstddef>
#include <span>

namespace mpcalloc {

struct SumEstimate {
  double estimate = 0.0;
  std::size_t samples_used = 0;
};

/// Rescaled-sum estimator: draws `samples` uniform (with replacement)
/// samples from `values` and returns (n/s)·Σ y. samples == 0 returns 0.
[[nodiscard]] SumEstimate estimate_sum(std::span<const double> values,
                                       std::size_t samples, Xoshiro256pp& rng);

/// Lemma 11's sufficient sample count: ⌈20·t²·log(n)/ε⁴⌉.
[[nodiscard]] std::size_t lemma11_sample_count(double t, double epsilon,
                                               std::size_t n);

}  // namespace mpcalloc
