#include "alloc/proportional.hpp"

#include "alloc/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

void compute_left_aggregate_into(const BipartiteGraph& graph,
                                 const std::vector<std::int32_t>& levels,
                                 const PowTable& pow_table,
                                 std::size_t num_threads, LeftAggregate& out) {
  // Reset to the isolated-vertex defaults every sweep (the sweep body never
  // writes isolated entries), so reusing one buffer across graphs can never
  // leak stale values; assign() into an already-sized vector reuses its
  // storage, keeping the warm path heap-free.
  out.max_level.assign(graph.num_left(),
                       std::numeric_limits<std::int32_t>::min());
  out.inv_scaled_denominator.assign(graph.num_left(), 0.0);
  parallel_for(0, graph.num_left(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (Vertex u = static_cast<Vertex>(tile_begin); u < tile_end; ++u) {
      recompute_left_entry(graph, levels, pow_table, u, out);
    }
  });
}

LeftAggregate compute_left_aggregate(const BipartiteGraph& graph,
                                     const std::vector<std::int32_t>& levels,
                                     const PowTable& pow_table,
                                     std::size_t num_threads) {
  LeftAggregate agg;
  compute_left_aggregate_into(graph, levels, pow_table, num_threads, agg);
  return agg;
}

void compute_alloc_into(const BipartiteGraph& graph,
                        const std::vector<std::int32_t>& levels,
                        const LeftAggregate& left, const PowTable& pow_table,
                        std::size_t num_threads, std::vector<double>& out) {
  out.resize(graph.num_right());
  parallel_for(0, graph.num_right(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
      out[v] = recompute_alloc_entry(graph, levels, left, pow_table, v);
    }
  });
}

std::vector<double> compute_alloc(const BipartiteGraph& graph,
                                  const std::vector<std::int32_t>& levels,
                                  const LeftAggregate& left,
                                  const PowTable& pow_table,
                                  std::size_t num_threads) {
  std::vector<double> alloc;
  compute_alloc_into(graph, levels, left, pow_table, num_threads, alloc);
  return alloc;
}

std::size_t apply_level_update(
    std::span<const std::uint32_t> capacities, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads,
    std::vector<std::int8_t>* level_deltas) {
  if (!threshold_k) {
    // The common Algorithm-1 case: statically dispatched k ≡ 1, no
    // per-vertex indirect call through std::function.
    return apply_level_update(capacities, alloc, epsilon, round,
                              UnitThreshold{}, levels, num_threads,
                              level_deltas);
  }
  // Deduce the template on a transparent lambda so the call does not
  // recurse into this exact-match overload.
  const auto invoke = [&threshold_k](Vertex v, std::size_t r) {
    return threshold_k(v, r);
  };
  return apply_level_update(capacities, alloc, epsilon, round, invoke, levels,
                            num_threads, level_deltas);
}

std::size_t apply_level_update(
    const AllocationInstance& instance, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads,
    std::vector<std::int8_t>* level_deltas) {
  return apply_level_update(std::span<const std::uint32_t>(instance.capacities),
                            alloc, epsilon, round, threshold_k, levels,
                            num_threads, level_deltas);
}

std::vector<std::int32_t> reconstruct_start_levels(
    const std::vector<std::int32_t>& levels,
    const std::vector<std::int8_t>& deltas, std::size_t num_threads) {
  std::vector<std::int32_t> start_levels(levels.size());
  parallel_for(0, levels.size(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (std::size_t v = tile_begin; v < tile_end; ++v) {
      start_levels[v] = levels[v] - deltas[v];
    }
  });
  return start_levels;
}

FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels, const LeftAggregate& left,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads) {
  const auto& g = instance.graph;
  FractionalAllocation out;
  out.x.assign(g.num_edges(), 0.0);
  parallel_for(0, g.num_edges(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (EdgeId e = static_cast<EdgeId>(tile_begin); e < tile_end; ++e) {
      const Edge& ed = g.edge(e);
      if (g.left_degree(ed.u) == 0) continue;
      const double x = pow_table.pow(start_levels[ed.v] - left.max_level[ed.u]) *
                       left.inv_scaled_denominator[ed.u];
      const double cap = static_cast<double>(instance.capacities[ed.v]);
      const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
      out.x[e] = x * scale;
    }
  });
  return out;
}

FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads) {
  const LeftAggregate left = compute_left_aggregate(
      instance.graph, start_levels, pow_table, num_threads);
  return materialize_allocation(instance, start_levels, left, alloc, pow_table,
                                num_threads);
}

double match_weight(const AllocationInstance& instance,
                    const std::vector<double>& alloc,
                    std::size_t num_threads) {
  return parallel_reduce<double>(
      0, instance.graph.num_right(), kParallelTile, num_threads, 0.0,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        double total = 0.0;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          total += std::min(alloc[v],
                            static_cast<double>(instance.capacities[v]));
        }
        return total;
      },
      std::plus<>());
}

TerminationCheck check_termination(const AllocationInstance& instance,
                                   const std::vector<std::int32_t>& levels,
                                   const std::vector<double>& alloc,
                                   std::size_t round, double epsilon,
                                   TerminationScratch& scratch,
                                   std::size_t num_threads) {
  const auto& g = instance.graph;
  const auto top = static_cast<std::int32_t>(round);
  const auto bottom = -static_cast<std::int32_t>(round);

  // Pass 1 (adjacency-free): bottom size, the mass above the bottom level,
  // and whether any vertex reached the top level at all.
  struct RightStats {
    std::size_t bottom_size = 0;
    double mass_above_bottom = 0.0;
    bool has_top = false;
  };
  const RightStats stats = parallel_reduce<RightStats>(
      0, g.num_right(), kParallelTile, num_threads, RightStats{},
      [&](std::size_t tile_begin, std::size_t tile_end) {
        RightStats partial;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          if (levels[v] == top) partial.has_top = true;
          if (levels[v] == bottom) ++partial.bottom_size;
          if (levels[v] > bottom) partial.mass_above_bottom += alloc[v];
        }
        return partial;
      },
      [](RightStats acc, const RightStats& partial) {
        acc.bottom_size += partial.bottom_size;
        acc.mass_above_bottom += partial.mass_above_bottom;
        acc.has_top = acc.has_top || partial.has_top;
        return acc;
      });

  TerminationCheck check;
  check.bottom_size = stats.bottom_size;
  check.mass_above_bottom = stats.mass_above_bottom;

  // Pass 2 (only when some vertex is at the top level — +round requires a
  // vertex that levelled up every single round, so this dies out quickly on
  // converging instances): mark and count N(L_top) without double counting.
  if (stats.has_top) {
    if (scratch.left_marked.size() != g.num_left()) {
      scratch.left_marked.assign(g.num_left(), 0);
    }
    std::uint8_t* const marked = scratch.left_marked.data();
    parallel_for(0, g.num_right(), kParallelTile, num_threads,
                 [&](std::size_t tile_begin, std::size_t tile_end) {
      for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
        if (levels[v] != top) continue;
        for (const Incidence& inc : g.right_neighbors(v)) {
          // Concurrent marking is an idempotent store of 1; the final
          // marked *set* (and hence the count below) is schedule-free.
          const std::atomic_ref<std::uint8_t> flag(marked[inc.to]);
          if (flag.load(std::memory_order_relaxed) == 0) {
            flag.store(1, std::memory_order_relaxed);
          }
        }
      }
    });
    // Count and re-zero in the same sweep, leaving the scratch all-clear
    // for the next round.
    check.neighbors_of_top = parallel_reduce<std::size_t>(
        0, g.num_left(), kParallelTile, num_threads, 0,
        [&](std::size_t tile_begin, std::size_t tile_end) {
          std::size_t count = 0;
          for (std::size_t u = tile_begin; u < tile_end; ++u) {
            count += marked[u];
            marked[u] = 0;
          }
          return count;
        },
        std::plus<>());
  }

  const auto n_top = static_cast<double>(check.neighbors_of_top);
  check.satisfied =
      check.neighbors_of_top <= check.bottom_size ||
      check.mass_above_bottom >= (1.0 - epsilon / 2.0) * n_top;
  return check;
}

TerminationCheck check_termination(const AllocationInstance& instance,
                                   const std::vector<std::int32_t>& levels,
                                   const std::vector<double>& alloc,
                                   std::size_t round, double epsilon) {
  TerminationScratch scratch;
  return check_termination(instance, levels, alloc, round, epsilon, scratch,
                           /*num_threads=*/1);
}

ProportionalResult detail::run_proportional_impl(
    const AllocationInstance& instance, const ProportionalConfig& config) {
  instance.validate();
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_proportional: max_rounds must be >= 1");
  }
  if (!(config.dense_switch_fraction >= 0.0)) {
    throw std::invalid_argument(
        "run_proportional: dense_switch_fraction must be >= 0");
  }
  const std::size_t num_threads = resolve_num_threads(config.num_threads);
  const RoundEngine engine = resolve_round_engine(config.engine);
  const PowTable pow_table(config.epsilon);
  const auto& g = instance.graph;

  ProportionalResult result;
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);
  LeftAggregate left;
  RoundWorkspace ws;
  ws.init(g);
  TerminationScratch scratch;
  bool have_frontier = false;  // round 1 has no previous deltas: dense
  if (config.record_tape) config.record_tape->rounds.clear();

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    RoundStats round_stats;
    round_stats.sparse = ws.choose_sparse(g, engine, have_frontier,
                                          config.dense_switch_fraction);
    if (round_stats.sparse) {
      // Refresh only the entries the previous round's frontier can have
      // moved; every refreshed entry scans its full neighborhood in dense
      // order, so the values are bitwise identical to a dense sweep.
      parallel_for_each_vertex(ws.touched_left(), num_threads, [&](Vertex u) {
        recompute_left_entry(g, levels, pow_table, u, left);
      });
      parallel_for_each_vertex(ws.touched_right(), num_threads, [&](Vertex v) {
        alloc[v] = recompute_alloc_entry(g, levels, left, pow_table, v);
      });
      round_stats.recomputed_left = ws.touched_left().size();
      round_stats.recomputed_right = ws.touched_right().size();
    } else {
      compute_left_aggregate_into(g, levels, pow_table, num_threads, left);
      compute_alloc_into(g, levels, left, pow_table, num_threads, alloc);
    }
    apply_level_update(instance, alloc, config.epsilon, round,
                       config.threshold_k, levels, num_threads, &ws.deltas);
    ws.derive_frontier(g, ws.deltas, num_threads);
    have_frontier = true;
    if (config.record_tape) {
      // The frontier *is* this round's change set, already ascending; the
      // tape just pairs each vertex with the ±1 step it took.
      auto& changes = config.record_tape->rounds.emplace_back();
      changes.reserve(ws.frontier().size());
      for (const Vertex v : ws.frontier()) {
        changes.push_back({v, ws.deltas[v]});
      }
    }
    round_stats.frontier_size = ws.frontier().size();
    round_stats.frontier_volume = ws.frontier_volume();
    result.stats.record_round(round_stats);
    result.rounds_executed = round;
    if (config.track_weight_history) {
      result.weight_history.push_back(
          match_weight(instance, alloc, num_threads));
    }
    if (config.stop_rule == StopRule::kAdaptive) {
      const TerminationCheck check =
          check_termination(instance, levels, alloc, round, config.epsilon,
                            scratch, num_threads);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
  }

  // `left` is the final round's aggregate, computed from that round's start
  // levels (the incremental path keeps it current entry by entry); undo the
  // final update step to recover them (one O(|R|) pass) instead of
  // snapshotting the whole level vector every round.
  const std::vector<std::int32_t> start_levels =
      reconstruct_start_levels(levels, ws.deltas, num_threads);
  result.allocation = materialize_allocation(instance, start_levels, left,
                                             alloc, pow_table, num_threads);
  result.match_weight = match_weight(instance, alloc, num_threads);
  result.final_levels = std::move(levels);
  result.final_alloc = std::move(alloc);
  return result;
}

std::size_t tau_for_arboricity(double lambda, double epsilon) {
  if (lambda < 1.0) lambda = 1.0;
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double tau =
      std::log(4.0 * lambda / epsilon) / std::log1p(epsilon) + 1.0;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

std::size_t tau_for_one_plus_eps(std::size_t num_right, double epsilon) {
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double r = static_cast<double>(std::max<std::size_t>(num_right, 2));
  const double tau = 2.0 * std::log(2.0 * r / epsilon) / (epsilon * epsilon) +
                     1.0 / epsilon;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

}  // namespace mpcalloc
