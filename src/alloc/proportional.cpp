#include "alloc/proportional.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

LeftAggregate compute_left_aggregate(const BipartiteGraph& graph,
                                     const std::vector<std::int32_t>& levels,
                                     const PowTable& pow_table) {
  LeftAggregate agg;
  agg.max_level.assign(graph.num_left(), std::numeric_limits<std::int32_t>::min());
  agg.scaled_denominator.assign(graph.num_left(), 0.0);
  for (Vertex u = 0; u < graph.num_left(); ++u) {
    const auto neighbors = graph.left_neighbors(u);
    if (neighbors.empty()) continue;
    std::int32_t max_level = std::numeric_limits<std::int32_t>::min();
    for (const Incidence& inc : neighbors) {
      max_level = std::max(max_level, levels[inc.to]);
    }
    double denom = 0.0;
    for (const Incidence& inc : neighbors) {
      denom += pow_table.pow(levels[inc.to] - max_level);
    }
    agg.max_level[u] = max_level;
    agg.scaled_denominator[u] = denom;
  }
  return agg;
}

std::vector<double> compute_alloc(const BipartiteGraph& graph,
                                  const std::vector<std::int32_t>& levels,
                                  const LeftAggregate& left,
                                  const PowTable& pow_table) {
  std::vector<double> alloc(graph.num_right(), 0.0);
  for (Vertex v = 0; v < graph.num_right(); ++v) {
    double total = 0.0;
    for (const Incidence& inc : graph.right_neighbors(v)) {
      const Vertex u = inc.to;
      // x_{u,v} = (1+ε)^{level_v} / Σ_{v'} (1+ε)^{level_{v'}}, evaluated as
      // (1+ε)^{level_v − max_u} / scaled_denominator_u to stay in range.
      total += pow_table.pow(levels[v] - left.max_level[u]) /
               left.scaled_denominator[u];
    }
    alloc[v] = total;
  }
  return alloc;
}

std::size_t apply_level_update(
    const AllocationInstance& instance, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels) {
  std::size_t changed = 0;
  for (Vertex v = 0; v < instance.graph.num_right(); ++v) {
    const double k = threshold_k ? threshold_k(v, round) : 1.0;
    const double cap = static_cast<double>(instance.capacities[v]);
    if (alloc[v] <= cap / (1.0 + k * epsilon)) {
      ++levels[v];
      ++changed;
    } else if (alloc[v] >= cap * (1.0 + k * epsilon)) {
      --levels[v];
      ++changed;
    }
  }
  return changed;
}

FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels,
    const std::vector<double>& alloc, const PowTable& pow_table) {
  const auto& g = instance.graph;
  const LeftAggregate left = compute_left_aggregate(g, start_levels, pow_table);
  FractionalAllocation out;
  out.x.assign(g.num_edges(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (g.left_degree(ed.u) == 0) continue;
    const double x = pow_table.pow(start_levels[ed.v] - left.max_level[ed.u]) /
                     left.scaled_denominator[ed.u];
    const double cap = static_cast<double>(instance.capacities[ed.v]);
    const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
    out.x[e] = x * scale;
  }
  return out;
}

double match_weight(const AllocationInstance& instance,
                    const std::vector<double>& alloc) {
  double total = 0.0;
  for (Vertex v = 0; v < instance.graph.num_right(); ++v) {
    total += std::min(alloc[v], static_cast<double>(instance.capacities[v]));
  }
  return total;
}

TerminationCheck check_termination(const AllocationInstance& instance,
                                   const std::vector<std::int32_t>& levels,
                                   const std::vector<double>& alloc,
                                   std::size_t round, double epsilon) {
  const auto& g = instance.graph;
  const auto top = static_cast<std::int32_t>(round);
  const auto bottom = -static_cast<std::int32_t>(round);

  TerminationCheck check;
  std::vector<std::uint8_t> left_marked(g.num_left(), 0);
  for (Vertex v = 0; v < g.num_right(); ++v) {
    if (levels[v] == top) {
      for (const Incidence& inc : g.right_neighbors(v)) {
        if (!left_marked[inc.to]) {
          left_marked[inc.to] = 1;
          ++check.neighbors_of_top;
        }
      }
    }
    if (levels[v] == bottom) ++check.bottom_size;
    if (levels[v] > bottom) check.mass_above_bottom += alloc[v];
  }
  const auto n_top = static_cast<double>(check.neighbors_of_top);
  check.satisfied =
      check.neighbors_of_top <= check.bottom_size ||
      check.mass_above_bottom >= (1.0 - epsilon / 2.0) * n_top;
  return check;
}

ProportionalResult run_proportional(const AllocationInstance& instance,
                                    const ProportionalConfig& config) {
  instance.validate();
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_proportional: max_rounds must be >= 1");
  }
  const PowTable pow_table(config.epsilon);
  const auto& g = instance.graph;

  ProportionalResult result;
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<std::int32_t> start_levels;
  std::vector<double> alloc;

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    start_levels = levels;  // β values at the start of this round
    const LeftAggregate left = compute_left_aggregate(g, levels, pow_table);
    alloc = compute_alloc(g, levels, left, pow_table);
    apply_level_update(instance, alloc, config.epsilon, round,
                       config.threshold_k, levels);
    result.rounds_executed = round;
    if (config.track_weight_history) {
      result.weight_history.push_back(match_weight(instance, alloc));
    }
    if (config.stop_rule == StopRule::kAdaptive) {
      const TerminationCheck check =
          check_termination(instance, levels, alloc, round, config.epsilon);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
  }

  result.allocation =
      materialize_allocation(instance, start_levels, alloc, pow_table);
  result.match_weight = match_weight(instance, alloc);
  result.final_levels = std::move(levels);
  result.final_alloc = std::move(alloc);
  return result;
}

std::size_t tau_for_arboricity(double lambda, double epsilon) {
  if (lambda < 1.0) lambda = 1.0;
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double tau =
      std::log(4.0 * lambda / epsilon) / std::log1p(epsilon) + 1.0;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

std::size_t tau_for_one_plus_eps(std::size_t num_right, double epsilon) {
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double r = static_cast<double>(std::max<std::size_t>(num_right, 2));
  const double tau = 2.0 * std::log(2.0 * r / epsilon) / (epsilon * epsilon) +
                     1.0 / epsilon;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

ProportionalResult solve_two_plus_eps(const AllocationInstance& instance,
                                      double lambda, double epsilon) {
  ProportionalConfig config;
  config.epsilon = epsilon;
  config.max_rounds = tau_for_arboricity(lambda, epsilon);
  config.stop_rule = StopRule::kFixedRounds;
  return run_proportional(instance, config);
}

ProportionalResult solve_adaptive(const AllocationInstance& instance,
                                  double epsilon, std::size_t safety_cap) {
  ProportionalConfig config;
  config.epsilon = epsilon;
  config.stop_rule = StopRule::kAdaptive;
  // λ ≤ n always, so τ(n, ε) is a valid hard cap for the adaptive loop.
  config.max_rounds =
      safety_cap > 0
          ? safety_cap
          : tau_for_arboricity(
                static_cast<double>(std::max<std::size_t>(
                    instance.graph.num_vertices(), 2)),
                epsilon);
  return run_proportional(instance, config);
}

}  // namespace mpcalloc
