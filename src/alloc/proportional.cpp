#include "alloc/proportional.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace mpcalloc {

LeftAggregate compute_left_aggregate(const BipartiteGraph& graph,
                                     const std::vector<std::int32_t>& levels,
                                     const PowTable& pow_table,
                                     std::size_t num_threads) {
  LeftAggregate agg;
  agg.max_level.assign(graph.num_left(), std::numeric_limits<std::int32_t>::min());
  agg.inv_scaled_denominator.assign(graph.num_left(), 0.0);
  parallel_for(0, graph.num_left(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (Vertex u = static_cast<Vertex>(tile_begin); u < tile_end; ++u) {
      const auto neighbors = graph.left_neighbors(u);
      if (neighbors.empty()) continue;
      std::int32_t max_level = std::numeric_limits<std::int32_t>::min();
      for (const Incidence& inc : neighbors) {
        max_level = std::max(max_level, levels[inc.to]);
      }
      double denom = 0.0;
      for (const Incidence& inc : neighbors) {
        denom += pow_table.pow(levels[inc.to] - max_level);
      }
      agg.max_level[u] = max_level;
      // denom ≥ 1 (the max-level neighbour contributes (1+ε)^0 = 1), so the
      // reciprocal is well defined and in (0, 1].
      agg.inv_scaled_denominator[u] = 1.0 / denom;
    }
  });
  return agg;
}

std::vector<double> compute_alloc(const BipartiteGraph& graph,
                                  const std::vector<std::int32_t>& levels,
                                  const LeftAggregate& left,
                                  const PowTable& pow_table,
                                  std::size_t num_threads) {
  std::vector<double> alloc(graph.num_right(), 0.0);
  parallel_for(0, graph.num_right(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
      double total = 0.0;
      for (const Incidence& inc : graph.right_neighbors(v)) {
        const Vertex u = inc.to;
        // x_{u,v} = (1+ε)^{level_v} / Σ_{v'} (1+ε)^{level_{v'}}, evaluated as
        // (1+ε)^{level_v − max_u} · inv_scaled_denominator_u to stay in
        // range and to trade the per-edge divide for a multiply.
        total += pow_table.pow(levels[v] - left.max_level[u]) *
                 left.inv_scaled_denominator[u];
      }
      alloc[v] = total;
    }
  });
  return alloc;
}

std::size_t apply_level_update(
    std::span<const std::uint32_t> capacities, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads,
    std::vector<std::int8_t>* level_deltas) {
  return parallel_reduce<std::size_t>(
      0, capacities.size(), kParallelTile, num_threads, 0,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        std::size_t changed = 0;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          const double k = threshold_k ? threshold_k(v, round) : 1.0;
          const double cap = static_cast<double>(capacities[v]);
          std::int8_t delta = 0;
          if (alloc[v] <= cap / (1.0 + k * epsilon)) {
            ++levels[v];
            delta = 1;
            ++changed;
          } else if (alloc[v] >= cap * (1.0 + k * epsilon)) {
            --levels[v];
            delta = -1;
            ++changed;
          }
          if (level_deltas) (*level_deltas)[v] = delta;
        }
        return changed;
      },
      std::plus<>());
}

std::size_t apply_level_update(
    const AllocationInstance& instance, const std::vector<double>& alloc,
    double epsilon, std::size_t round,
    const std::function<double(Vertex, std::size_t)>& threshold_k,
    std::vector<std::int32_t>& levels, std::size_t num_threads,
    std::vector<std::int8_t>* level_deltas) {
  return apply_level_update(std::span<const std::uint32_t>(instance.capacities),
                            alloc, epsilon, round, threshold_k, levels,
                            num_threads, level_deltas);
}

std::vector<std::int32_t> reconstruct_start_levels(
    const std::vector<std::int32_t>& levels,
    const std::vector<std::int8_t>& deltas, std::size_t num_threads) {
  std::vector<std::int32_t> start_levels(levels.size());
  parallel_for(0, levels.size(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (std::size_t v = tile_begin; v < tile_end; ++v) {
      start_levels[v] = levels[v] - deltas[v];
    }
  });
  return start_levels;
}

FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels, const LeftAggregate& left,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads) {
  const auto& g = instance.graph;
  FractionalAllocation out;
  out.x.assign(g.num_edges(), 0.0);
  parallel_for(0, g.num_edges(), kParallelTile, num_threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (EdgeId e = static_cast<EdgeId>(tile_begin); e < tile_end; ++e) {
      const Edge& ed = g.edge(e);
      if (g.left_degree(ed.u) == 0) continue;
      const double x = pow_table.pow(start_levels[ed.v] - left.max_level[ed.u]) *
                       left.inv_scaled_denominator[ed.u];
      const double cap = static_cast<double>(instance.capacities[ed.v]);
      const double scale = alloc[ed.v] > cap ? cap / alloc[ed.v] : 1.0;
      out.x[e] = x * scale;
    }
  });
  return out;
}

FractionalAllocation materialize_allocation(
    const AllocationInstance& instance,
    const std::vector<std::int32_t>& start_levels,
    const std::vector<double>& alloc, const PowTable& pow_table,
    std::size_t num_threads) {
  const LeftAggregate left = compute_left_aggregate(
      instance.graph, start_levels, pow_table, num_threads);
  return materialize_allocation(instance, start_levels, left, alloc, pow_table,
                                num_threads);
}

double match_weight(const AllocationInstance& instance,
                    const std::vector<double>& alloc,
                    std::size_t num_threads) {
  return parallel_reduce<double>(
      0, instance.graph.num_right(), kParallelTile, num_threads, 0.0,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        double total = 0.0;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          total += std::min(alloc[v],
                            static_cast<double>(instance.capacities[v]));
        }
        return total;
      },
      std::plus<>());
}

TerminationCheck check_termination(const AllocationInstance& instance,
                                   const std::vector<std::int32_t>& levels,
                                   const std::vector<double>& alloc,
                                   std::size_t round, double epsilon,
                                   TerminationScratch& scratch,
                                   std::size_t num_threads) {
  const auto& g = instance.graph;
  const auto top = static_cast<std::int32_t>(round);
  const auto bottom = -static_cast<std::int32_t>(round);

  // Pass 1 (adjacency-free): bottom size, the mass above the bottom level,
  // and whether any vertex reached the top level at all.
  struct RightStats {
    std::size_t bottom_size = 0;
    double mass_above_bottom = 0.0;
    bool has_top = false;
  };
  const RightStats stats = parallel_reduce<RightStats>(
      0, g.num_right(), kParallelTile, num_threads, RightStats{},
      [&](std::size_t tile_begin, std::size_t tile_end) {
        RightStats partial;
        for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
          if (levels[v] == top) partial.has_top = true;
          if (levels[v] == bottom) ++partial.bottom_size;
          if (levels[v] > bottom) partial.mass_above_bottom += alloc[v];
        }
        return partial;
      },
      [](RightStats acc, const RightStats& partial) {
        acc.bottom_size += partial.bottom_size;
        acc.mass_above_bottom += partial.mass_above_bottom;
        acc.has_top = acc.has_top || partial.has_top;
        return acc;
      });

  TerminationCheck check;
  check.bottom_size = stats.bottom_size;
  check.mass_above_bottom = stats.mass_above_bottom;

  // Pass 2 (only when some vertex is at the top level — +round requires a
  // vertex that levelled up every single round, so this dies out quickly on
  // converging instances): mark and count N(L_top) without double counting.
  if (stats.has_top) {
    if (scratch.left_marked.size() != g.num_left()) {
      scratch.left_marked.assign(g.num_left(), 0);
    }
    std::uint8_t* const marked = scratch.left_marked.data();
    parallel_for(0, g.num_right(), kParallelTile, num_threads,
                 [&](std::size_t tile_begin, std::size_t tile_end) {
      for (Vertex v = static_cast<Vertex>(tile_begin); v < tile_end; ++v) {
        if (levels[v] != top) continue;
        for (const Incidence& inc : g.right_neighbors(v)) {
          // Concurrent marking is an idempotent store of 1; the final
          // marked *set* (and hence the count below) is schedule-free.
          const std::atomic_ref<std::uint8_t> flag(marked[inc.to]);
          if (flag.load(std::memory_order_relaxed) == 0) {
            flag.store(1, std::memory_order_relaxed);
          }
        }
      }
    });
    // Count and re-zero in the same sweep, leaving the scratch all-clear
    // for the next round.
    check.neighbors_of_top = parallel_reduce<std::size_t>(
        0, g.num_left(), kParallelTile, num_threads, 0,
        [&](std::size_t tile_begin, std::size_t tile_end) {
          std::size_t count = 0;
          for (std::size_t u = tile_begin; u < tile_end; ++u) {
            count += marked[u];
            marked[u] = 0;
          }
          return count;
        },
        std::plus<>());
  }

  const auto n_top = static_cast<double>(check.neighbors_of_top);
  check.satisfied =
      check.neighbors_of_top <= check.bottom_size ||
      check.mass_above_bottom >= (1.0 - epsilon / 2.0) * n_top;
  return check;
}

TerminationCheck check_termination(const AllocationInstance& instance,
                                   const std::vector<std::int32_t>& levels,
                                   const std::vector<double>& alloc,
                                   std::size_t round, double epsilon) {
  TerminationScratch scratch;
  return check_termination(instance, levels, alloc, round, epsilon, scratch,
                           /*num_threads=*/1);
}

ProportionalResult run_proportional(const AllocationInstance& instance,
                                    const ProportionalConfig& config) {
  instance.validate();
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_proportional: max_rounds must be >= 1");
  }
  const std::size_t num_threads = resolve_num_threads(config.num_threads);
  const PowTable pow_table(config.epsilon);
  const auto& g = instance.graph;

  ProportionalResult result;
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<std::int8_t> last_deltas(g.num_right(), 0);
  std::vector<double> alloc;
  LeftAggregate left;
  TerminationScratch scratch;

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    left = compute_left_aggregate(g, levels, pow_table, num_threads);
    alloc = compute_alloc(g, levels, left, pow_table, num_threads);
    apply_level_update(instance, alloc, config.epsilon, round,
                       config.threshold_k, levels, num_threads, &last_deltas);
    result.rounds_executed = round;
    if (config.track_weight_history) {
      result.weight_history.push_back(
          match_weight(instance, alloc, num_threads));
    }
    if (config.stop_rule == StopRule::kAdaptive) {
      const TerminationCheck check =
          check_termination(instance, levels, alloc, round, config.epsilon,
                            scratch, num_threads);
      if (check.satisfied) {
        result.stopped_by_condition = true;
        break;
      }
    }
  }

  // `left` is the final round's aggregate, computed from that round's start
  // levels; undo the final update step to recover them (one O(|R|) pass)
  // instead of snapshotting the whole level vector every round.
  const std::vector<std::int32_t> start_levels =
      reconstruct_start_levels(levels, last_deltas, num_threads);
  result.allocation = materialize_allocation(instance, start_levels, left,
                                             alloc, pow_table, num_threads);
  result.match_weight = match_weight(instance, alloc, num_threads);
  result.final_levels = std::move(levels);
  result.final_alloc = std::move(alloc);
  return result;
}

std::size_t tau_for_arboricity(double lambda, double epsilon) {
  if (lambda < 1.0) lambda = 1.0;
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double tau =
      std::log(4.0 * lambda / epsilon) / std::log1p(epsilon) + 1.0;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

std::size_t tau_for_one_plus_eps(std::size_t num_right, double epsilon) {
  if (!(epsilon > 0.0)) throw std::invalid_argument("tau: epsilon > 0 required");
  const double r = static_cast<double>(std::max<std::size_t>(num_right, 2));
  const double tau = 2.0 * std::log(2.0 * r / epsilon) / (epsilon * epsilon) +
                     1.0 / epsilon;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(tau)));
}

ProportionalResult solve_two_plus_eps(const AllocationInstance& instance,
                                      double lambda, double epsilon,
                                      std::size_t num_threads) {
  ProportionalConfig config;
  config.epsilon = epsilon;
  config.max_rounds = tau_for_arboricity(lambda, epsilon);
  config.stop_rule = StopRule::kFixedRounds;
  config.num_threads = num_threads;
  return run_proportional(instance, config);
}

ProportionalResult solve_adaptive(const AllocationInstance& instance,
                                  double epsilon, std::size_t safety_cap,
                                  std::size_t num_threads) {
  ProportionalConfig config;
  config.epsilon = epsilon;
  config.stop_rule = StopRule::kAdaptive;
  config.num_threads = num_threads;
  // λ ≤ n always, so τ(n, ε) is a valid hard cap for the adaptive loop.
  config.max_rounds =
      safety_cap > 0
          ? safety_cap
          : tau_for_arboricity(
                static_cast<double>(std::max<std::size_t>(
                    instance.graph.num_vertices(), 2)),
                epsilon);
  return run_proportional(instance, config);
}

}  // namespace mpcalloc
