#include "alloc/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace mpcalloc {

namespace {

constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// Mutable view of an integral allocation supporting O(1) reassignment of an
/// L vertex between R partners. Residual capacity of v is implicit:
/// C_v − |matched_at[v]|.
class AllocationState {
 public:
  AllocationState(const AllocationInstance& instance,
                  const IntegralAllocation& initial)
      : instance_(instance),
        match_edge_(instance.graph.num_left(), kNoEdge),
        matched_at_(instance.graph.num_right()),
        position_(instance.graph.num_left(), 0) {
    initial.check_valid(instance);
    for (const EdgeId e : initial.edges) {
      attach(instance.graph.edge(e).u, e);
    }
  }

  [[nodiscard]] const AllocationInstance& instance() const { return instance_; }
  [[nodiscard]] EdgeId match_edge(Vertex u) const { return match_edge_[u]; }
  [[nodiscard]] bool is_free(Vertex u) const { return match_edge_[u] == kNoEdge; }
  [[nodiscard]] std::uint32_t slack(Vertex v) const {
    return instance_.capacities[v] -
           static_cast<std::uint32_t>(matched_at_[v].size());
  }
  [[nodiscard]] const std::vector<Vertex>& matched_at(Vertex v) const {
    return matched_at_[v];
  }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Move u's match to edge e (which must be incident to u); detaches from
  /// the previous partner first. e == kNoEdge frees u.
  void reassign(Vertex u, EdgeId e) {
    if (match_edge_[u] != kNoEdge) detach(u);
    if (e != kNoEdge) attach(u, e);
  }

  [[nodiscard]] IntegralAllocation extract() const {
    IntegralAllocation out;
    for (Vertex u = 0; u < match_edge_.size(); ++u) {
      if (match_edge_[u] != kNoEdge) out.edges.push_back(match_edge_[u]);
    }
    return out;
  }

 private:
  void attach(Vertex u, EdgeId e) {
    const Vertex v = instance_.graph.edge(e).v;
    match_edge_[u] = e;
    position_[u] = matched_at_[v].size();
    matched_at_[v].push_back(u);
    ++size_;
  }

  void detach(Vertex u) {
    const Vertex v = instance_.graph.edge(match_edge_[u]).v;
    auto& list = matched_at_[v];
    const std::size_t pos = position_[u];
    list[pos] = list.back();
    position_[list[pos]] = pos;
    list.pop_back();
    match_edge_[u] = kNoEdge;
    --size_;
  }

  const AllocationInstance& instance_;
  std::vector<EdgeId> match_edge_;
  std::vector<std::vector<Vertex>> matched_at_;
  std::vector<std::size_t> position_;  ///< index of u inside matched_at_[v]
  std::size_t size_ = 0;
};

/// One Hopcroft–Karp phase over the residual structure with BFS depth cap
/// `max_pairs` (a walk of 2d+1 edges visits d matched pairs). Returns the
/// number of augmentations applied.
class PathPhase {
 public:
  PathPhase(AllocationState& state, std::uint32_t max_pairs)
      : state_(state),
        graph_(state.instance().graph),
        max_pairs_(max_pairs),
        dist_(graph_.num_left(), kUnreached),
        visited_(graph_.num_left(), 0) {}

  std::size_t run() {
    if (!bfs()) return 0;
    std::size_t augmented = 0;
    for (Vertex u = 0; u < graph_.num_left(); ++u) {
      if (state_.is_free(u) && dist_[u] == 0 && !visited_[u]) {
        visited_[u] = 1;
        if (dfs(u)) ++augmented;
      }
    }
    return augmented;
  }

 private:
  /// Layer the L vertices by alternating-walk distance from the free ones.
  /// Returns true iff some free-capacity R vertex is reachable in budget.
  bool bfs() {
    std::fill(dist_.begin(), dist_.end(), kUnreached);
    std::queue<Vertex> queue;
    for (Vertex u = 0; u < graph_.num_left(); ++u) {
      if (state_.is_free(u)) {
        dist_[u] = 0;
        queue.push(u);
      }
    }
    bool reachable = false;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      for (const Incidence& inc : graph_.left_neighbors(u)) {
        if (inc.edge == state_.match_edge(u)) continue;
        const Vertex v = inc.to;
        if (state_.slack(v) > 0) reachable = true;
        // Displacing a partner of v adds one matched pair to the walk; only
        // expand while the budget allows a deeper pair.
        if (dist_[u] >= max_pairs_) continue;
        for (const Vertex w : state_.matched_at(v)) {
          if (dist_[w] == kUnreached) {
            dist_[w] = dist_[u] + 1;
            queue.push(w);
          }
        }
      }
    }
    return reachable;
  }

  /// Augment along one walk: find v with slack (terminal) or displace a
  /// matched partner one layer deeper, then claim v.
  bool dfs(Vertex u) {
    for (const Incidence& inc : graph_.left_neighbors(u)) {
      if (inc.edge == state_.match_edge(u)) continue;
      if (state_.slack(inc.to) > 0) {
        state_.reassign(u, inc.edge);
        return true;
      }
    }
    if (dist_[u] >= max_pairs_) return false;
    for (const Incidence& inc : graph_.left_neighbors(u)) {
      if (inc.edge == state_.match_edge(u)) continue;
      const Vertex v = inc.to;
      // Local copy: recursive dfs calls mutate matched_at(v), and a member
      // scratch buffer would be clobbered across recursion levels.
      const std::vector<Vertex> partners(state_.matched_at(v).begin(),
                                         state_.matched_at(v).end());
      for (const Vertex w : partners) {
        if (visited_[w] || dist_[w] != dist_[u] + 1) continue;
        visited_[w] = 1;
        if (dfs(w)) {
          // w vacated one unit of v's capacity; u takes it.
          state_.reassign(u, inc.edge);
          return true;
        }
      }
    }
    return false;
  }

  AllocationState& state_;
  const BipartiteGraph& graph_;
  std::uint32_t max_pairs_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint8_t> visited_;
};

}  // namespace

BoostResult boost_path_limited(const AllocationInstance& instance,
                               const IntegralAllocation& initial,
                               std::size_t max_walk_length) {
  instance.validate();
  if (max_walk_length % 2 == 0 || max_walk_length == 0) {
    throw std::invalid_argument(
        "boost_path_limited: walk length must be odd (alternating walk)");
  }
  const auto max_pairs = static_cast<std::uint32_t>((max_walk_length - 1) / 2);
  AllocationState state(instance, initial);

  BoostResult result;
  for (;;) {
    PathPhase phase(state, max_pairs);
    const std::size_t augmented = phase.run();
    if (augmented == 0) break;
    ++result.iterations;
    result.augmentations_per_iteration.push_back(augmented);
  }
  result.allocation = state.extract();
  result.allocation.check_valid(instance);
  return result;
}

BoostResult boost_to_one_plus_eps(const AllocationInstance& instance,
                                  const IntegralAllocation& initial,
                                  double epsilon) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("boost_to_one_plus_eps: epsilon > 0");
  }
  const auto k = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
  return boost_path_limited(instance, initial, 2 * k + 1);
}

BoostResult boost_ggm22(const AllocationInstance& instance,
                        const IntegralAllocation& initial, double epsilon,
                        std::size_t iterations, Xoshiro256pp& rng) {
  instance.validate();
  if (!(epsilon > 0.0)) throw std::invalid_argument("boost_ggm22: epsilon > 0");
  const auto k = static_cast<std::uint32_t>(std::ceil(1.0 / epsilon));
  const auto& g = instance.graph;
  AllocationState state(instance, initial);

  BoostResult result;
  result.augmentations_per_iteration.reserve(iterations);

  // Arc bookkeeping per iteration: matched edge e sits in layer layer_of[e]
  // (0 = unassigned), oriented tail v → head u, consumable once per layer
  // graph. pred_* record the chaining so completed walks can be replayed.
  std::vector<std::uint32_t> arc_layer(g.num_edges(), 0);
  std::vector<std::uint8_t> arc_active(g.num_edges(), 0);
  std::vector<EdgeId> pred_edge(g.num_edges(), kNoEdge);
  std::vector<std::uint32_t> edge_slot(g.num_edges(), 0);

  for (std::size_t it = 0; it < iterations; ++it) {
    ++result.iterations;

    // Walk-length parameter for this layer graph: a walk survives only if
    // it spans every layer, so a fixed k preserves only length-(2k+1)
    // walks. Sampling j ∈ {0..k} per iteration covers every length ≤ 2k+1
    // across iterations (adaptation of Appendix B; see DESIGN.md §1).
    const auto j = static_cast<std::uint32_t>(rng.uniform(k + 1));

    // Step 3: every matched edge picks a uniform layer in [1, j].
    std::vector<std::vector<EdgeId>> arcs_in_layer(j + 2);
    for (Vertex u = 0; u < g.num_left(); ++u) {
      const EdgeId e = state.match_edge(u);
      if (e == kNoEdge) continue;
      const auto layer =
          j == 0 ? 0 : 1 + static_cast<std::uint32_t>(rng.uniform(j));
      arc_layer[e] = layer;
      arc_active[e] = 0;
      pred_edge[e] = kNoEdge;
      if (layer > 0) arcs_in_layer[layer].push_back(e);
    }
    // Step 4: every unmatched edge picks a uniform slot in [0, j]; slot i
    // connects heads of layer i to tails of layer i+1.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edge_slot[e] = static_cast<std::uint32_t>(rng.uniform(j + 1));
    }

    // Arc-multiplicity still consumable at each R vertex per layer, plus
    // a pointer to one unconsumed arc (rebuilt per layer below).
    std::vector<std::uint32_t> remaining_slack(g.num_right());
    for (Vertex v = 0; v < g.num_right(); ++v) {
      remaining_slack[v] = state.slack(v);
    }

    // Active heads of the current layer. Layer 0's heads are the free L
    // vertices; deeper heads are the L endpoints of arcs reached by a walk.
    std::vector<Vertex> heads;
    for (Vertex u = 0; u < g.num_left(); ++u) {
      if (state.is_free(u)) heads.push_back(u);
    }
    std::vector<EdgeId> head_via(g.num_left(), kNoEdge);  // arc that made u a head

    std::vector<std::pair<Vertex, EdgeId>> completed;  // (final head, closing edge)

    for (std::uint32_t layer = 0; layer <= j && !heads.empty(); ++layer) {
      // Unconsumed arcs of layer+1 grouped by tail vertex.
      std::vector<std::vector<EdgeId>> tails(g.num_right());
      if (layer + 1 <= j) {
        for (const EdgeId arc : arcs_in_layer[layer + 1]) {
          tails[g.edge(arc).v].push_back(arc);
        }
      }
      std::vector<Vertex> next_heads;
      for (const Vertex u : heads) {
        bool advanced = false;
        for (const Incidence& inc : g.left_neighbors(u)) {
          const EdgeId e = inc.edge;
          if (e == state.match_edge(u)) continue;  // matched edges are arcs
          if (edge_slot[e] != layer) continue;
          const Vertex v = inc.to;
          if (layer == j) {
            // Terminal slot: v must have residual capacity.
            if (remaining_slack[v] > 0) {
              --remaining_slack[v];
              completed.emplace_back(u, e);
              advanced = true;
              break;
            }
          } else if (!tails[v].empty()) {
            const EdgeId arc = tails[v].back();
            tails[v].pop_back();
            arc_active[arc] = 1;
            pred_edge[arc] = e;
            const Vertex next_u = g.edge(arc).u;
            head_via[next_u] = arc;
            next_heads.push_back(next_u);
            advanced = true;
            break;
          }
        }
        (void)advanced;
      }
      heads = std::move(next_heads);
    }

    // Replay completed walks backwards: the closing edge re-matches its
    // head; each displaced head re-matches along the edge that reached it.
    std::size_t augmentations = 0;
    for (const auto& [final_head, closing_edge] : completed) {
      // Collect the chain first (reassign invalidates match pointers).
      // Walk backwards: u_t takes the closing edge; each shallower head
      // u_{j} takes the connector edge that reached u_{j+1}'s arc.
      std::vector<std::pair<Vertex, EdgeId>> chain;  // (u, new edge for u)
      Vertex u = final_head;
      EdgeId new_edge = closing_edge;
      for (;;) {
        chain.emplace_back(u, new_edge);
        const EdgeId via = head_via[u];  // the arc (matched edge) owning u
        if (via == kNoEdge) break;       // reached the free layer-0 head
        new_edge = pred_edge[via];       // connector that consumed the arc
        u = g.edge(new_edge).u;
      }
      // Apply from the deep end: the final head claims fresh capacity, every
      // shallower vertex claims the unit its successor vacated.
      for (const auto& [vertex, edge] : chain) {
        state.reassign(vertex, edge);
      }
      augmentations += 1;
    }
    result.augmentations_per_iteration.push_back(augmentations);

    // Reset per-iteration arc marks for matched edges (cheap sweep).
    for (auto& layer_arcs : arcs_in_layer) {
      for (const EdgeId e : layer_arcs) {
        arc_layer[e] = 0;
        arc_active[e] = 0;
        pred_edge[e] = kNoEdge;
      }
    }
    std::fill(head_via.begin(), head_via.end(), kNoEdge);
  }

  result.allocation = state.extract();
  result.allocation.check_valid(instance);
  return result;
}

}  // namespace mpcalloc
