#include "alloc/local_host.hpp"

#include <limits>
#include <stdexcept>

namespace mpcalloc {

using local::LocalNetwork;
using local::Message;
using local::ProcessorContext;
using local::Side;

LocalHostResult run_proportional_local(const AllocationInstance& instance,
                                       const ProportionalConfig& config) {
  instance.validate();
  if (config.stop_rule != StopRule::kFixedRounds) {
    // The Section-4 remark itself notes the termination condition is not
    // known to be checkable in O(1) LOCAL rounds; it is an MPC-side test.
    throw std::invalid_argument(
        "run_proportional_local: adaptive stop rule is MPC-only");
  }
  if (config.max_rounds == 0) {
    throw std::invalid_argument("run_proportional_local: max_rounds >= 1");
  }

  const auto& g = instance.graph;
  const std::size_t num_threads = resolve_num_threads(config.num_threads);
  const PowTable pow_table(config.epsilon);
  LocalNetwork net(g, num_threads);

  // Processor-private state. Indexed by vertex id, but each handler reads
  // and writes only its own vertex's entries — locality is preserved.
  std::vector<std::int32_t> levels(g.num_right(), 0);
  std::vector<std::int32_t> start_levels(g.num_right(), 0);
  std::vector<double> alloc(g.num_right(), 0.0);
  // L-side processors remember the levels their neighbours announced.
  std::vector<std::vector<std::int32_t>> known_levels(g.num_left());
  for (Vertex u = 0; u < g.num_left(); ++u) {
    known_levels[u].assign(g.left_degree(u), 0);
  }
  // R-side processors remember the fractional terms their neighbours last
  // sent, so a round in which nothing upstream moved costs no messages:
  // the protocol is frontier-driven — R re-announces its level only when it
  // changed, L recomputes and re-sends terms only when it heard a new
  // level, R re-sums only when it received a new term. Every reused cached
  // value equals what a dense re-send would have carried (the senders'
  // inputs did not change), so the hosted run stays bit-for-bit identical
  // to the always-broadcast protocol and to the vectorised engine.
  std::vector<std::vector<double>> known_terms(g.num_right());
  for (Vertex v = 0; v < g.num_right(); ++v) {
    known_terms[v].assign(g.right_degree(v), 0.0);
  }

  // Init round: every R processor announces its priority level.
  net.step([&](ProcessorContext& ctx) {
    if (ctx.side() == Side::kRight) {
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        ctx.send(i, Message{static_cast<double>(levels[ctx.vertex()])});
      }
    }
  });

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    // Step A: L processors absorb announced levels; if any neighbour
    // moved, recompute the proportional fractions and push each term to
    // its R endpoint (otherwise the R side keeps last round's terms).
    net.step([&](ProcessorContext& ctx) {
      if (ctx.side() != Side::kLeft) return;
      const Vertex u = ctx.vertex();
      auto& known = known_levels[u];
      bool heard_update = false;
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        const Message& msg = ctx.incoming(i);
        if (!msg.empty()) {
          known[i] = static_cast<std::int32_t>(msg[0]);
          heard_update = true;
        }
      }
      if (ctx.degree() == 0 || !heard_update) return;
      std::int32_t max_level = std::numeric_limits<std::int32_t>::min();
      for (const std::int32_t level : known) max_level = std::max(max_level, level);
      double denom = 0.0;
      for (const std::int32_t level : known) {
        denom += pow_table.pow(level - max_level);
      }
      // One reciprocal per processor, then a multiply per edge — the same
      // arithmetic (bit for bit) as compute_left_aggregate + compute_alloc.
      const double inv_denom = 1.0 / denom;
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        ctx.send(i, Message{pow_table.pow(known[i] - max_level) * inv_denom});
      }
    });

    // Step B: R processors fold in any updated terms and re-sum them in
    // incidence order (the same order as compute_alloc — cached values are
    // the terms a broadcast would have re-delivered), update their level,
    // and announce it iff it changed.
    net.step([&](ProcessorContext& ctx) {
      if (ctx.side() != Side::kRight) return;
      const Vertex v = ctx.vertex();
      start_levels[v] = levels[v];
      auto& terms = known_terms[v];
      bool heard_update = false;
      for (std::size_t i = 0; i < ctx.degree(); ++i) {
        const Message& msg = ctx.incoming(i);
        if (!msg.empty()) {
          terms[i] = msg[0];
          heard_update = true;
        }
      }
      if (heard_update) {
        double total = 0.0;
        for (const double term : terms) total += term;
        alloc[v] = total;
      }
      const double k = config.threshold_k ? config.threshold_k(v, round) : 1.0;
      const double cap = static_cast<double>(instance.capacities[v]);
      std::int32_t level = levels[v];
      if (alloc[v] <= cap / (1.0 + k * config.epsilon)) {
        ++level;
      } else if (alloc[v] >= cap * (1.0 + k * config.epsilon)) {
        --level;
      }
      if (level != levels[v]) {
        levels[v] = level;
        for (std::size_t i = 0; i < ctx.degree(); ++i) {
          ctx.send(i, Message{static_cast<double>(level)});
        }
      }
    });
  }

  LocalHostResult out;
  out.result.allocation = materialize_allocation(instance, start_levels, alloc,
                                                 pow_table, num_threads);
  out.result.match_weight = match_weight(instance, alloc, num_threads);
  out.result.rounds_executed = config.max_rounds;
  out.result.final_levels = std::move(levels);
  out.result.final_alloc = std::move(alloc);
  out.local_rounds = net.rounds();
  out.messages_sent = net.messages_sent();
  out.max_message_words = net.max_message_words();
  return out;
}

}  // namespace mpcalloc
