// Greedy baselines for the allocation problem.
//
// These are the natural sequential heuristics a practitioner would try
// first; experiment E7 compares them against the proportional-allocation
// algorithm. Any maximal allocation is a 2-approximation (standard
// argument: each chosen edge blocks at most two OPT edges), so these also
// serve as cheap constant-approximation seeds for the booster.
#pragma once

#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/rng.hpp"

namespace mpcalloc {

/// Scan L vertices in index order; give each u the first neighbour with
/// residual capacity. Output is a maximal allocation (2-approximation).
[[nodiscard]] IntegralAllocation greedy_allocation(
    const AllocationInstance& instance);

/// Same, but L vertices are visited in a uniformly random order.
[[nodiscard]] IntegralAllocation randomized_greedy_allocation(
    const AllocationInstance& instance, Xoshiro256pp& rng);

/// Visit L vertices in increasing degree order and pick the neighbour with
/// the largest residual capacity (a "least-constrained-first" heuristic).
[[nodiscard]] IntegralAllocation degree_aware_greedy_allocation(
    const AllocationInstance& instance);

}  // namespace mpcalloc
