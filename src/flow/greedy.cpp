#include "flow/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace mpcalloc {

namespace {

IntegralAllocation greedy_over_order(const AllocationInstance& instance,
                                     const std::vector<Vertex>& order) {
  const auto& g = instance.graph;
  std::vector<std::uint32_t> residual(instance.capacities);
  IntegralAllocation result;
  result.edges.reserve(std::min<std::size_t>(g.num_left(), g.num_edges()));
  for (const Vertex u : order) {
    for (const Incidence& inc : g.left_neighbors(u)) {
      if (residual[inc.to] > 0) {
        --residual[inc.to];
        result.edges.push_back(inc.edge);
        break;
      }
    }
  }
  return result;
}

}  // namespace

IntegralAllocation greedy_allocation(const AllocationInstance& instance) {
  std::vector<Vertex> order(instance.graph.num_left());
  std::iota(order.begin(), order.end(), 0);
  return greedy_over_order(instance, order);
}

IntegralAllocation randomized_greedy_allocation(
    const AllocationInstance& instance, Xoshiro256pp& rng) {
  std::vector<Vertex> order(instance.graph.num_left());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return greedy_over_order(instance, order);
}

IntegralAllocation degree_aware_greedy_allocation(
    const AllocationInstance& instance) {
  const auto& g = instance.graph;
  std::vector<Vertex> order(g.num_left());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](Vertex a, Vertex b) {
    return g.left_degree(a) < g.left_degree(b);
  });

  std::vector<std::uint32_t> residual(instance.capacities);
  IntegralAllocation result;
  for (const Vertex u : order) {
    const Incidence* best = nullptr;
    for (const Incidence& inc : g.left_neighbors(u)) {
      if (residual[inc.to] == 0) continue;
      if (best == nullptr || residual[inc.to] > residual[best->to]) {
        best = &inc;
      }
    }
    if (best != nullptr) {
      --residual[best->to];
      result.edges.push_back(best->edge);
    }
  }
  return result;
}

}  // namespace mpcalloc
