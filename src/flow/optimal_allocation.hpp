// Exact optimal allocation via max flow, with a min-cut certificate.
//
// Network: source → every u ∈ L with capacity 1; u → v with capacity 1 for
// every edge (u,v); v → sink with capacity C_v. By LP total unimodularity,
// max-flow == maximum integral allocation == maximum fractional allocation,
// so this single oracle serves both OPT definitions used in the paper.
//
// Every solve also returns the capacity of the min cut witnessed by the
// final residual BFS (see DinicMaxFlow::solve_certified); `certificate_ok`
// records the strong-duality check value == cut, so downstream consumers
// (verify.hpp ratios, the bench JSON quality gates) report *certified*
// optima rather than trusting the solver.
#pragma once

#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

#include <cstdint>

namespace mpcalloc {

/// An exact optimum together with its min-cut certificate.
struct CertifiedOptimum {
  std::uint64_t value = 0;          ///< |OPT| (max-flow value)
  std::uint64_t cut_capacity = 0;   ///< capacity of the witnessed min cut
  bool certificate_ok = false;      ///< value == cut_capacity
};

struct OptimalAllocationResult {
  std::uint64_t value = 0;          ///< |OPT|
  std::uint64_t cut_capacity = 0;   ///< min-cut witness for `value`
  bool certificate_ok = false;      ///< value == cut_capacity
  IntegralAllocation allocation;    ///< a witness optimal allocation
};

/// Solve the instance exactly. O(E·√V)-ish in practice (unit-capacity core).
[[nodiscard]] OptimalAllocationResult solve_optimal_allocation(
    const AllocationInstance& instance);

/// Value + certificate (skips witness extraction).
[[nodiscard]] CertifiedOptimum certified_optimal_value(
    const AllocationInstance& instance);

/// Value-only variant (still certificate-checked internally).
[[nodiscard]] std::uint64_t optimal_allocation_value(
    const AllocationInstance& instance);

}  // namespace mpcalloc
