// Exact optimal allocation via max flow.
//
// Network: source → every u ∈ L with capacity 1; u → v with capacity 1 for
// every edge (u,v); v → sink with capacity C_v. By LP total unimodularity,
// max-flow == maximum integral allocation == maximum fractional allocation,
// so this single oracle serves both OPT definitions used in the paper.
#pragma once

#include "graph/allocation.hpp"
#include "graph/bipartite_graph.hpp"

#include <cstdint>

namespace mpcalloc {

struct OptimalAllocationResult {
  std::uint64_t value = 0;          ///< |OPT|
  IntegralAllocation allocation;    ///< a witness optimal allocation
};

/// Solve the instance exactly. O(E·√V)-ish in practice (unit-capacity core).
[[nodiscard]] OptimalAllocationResult solve_optimal_allocation(
    const AllocationInstance& instance);

/// Value-only variant (skips witness extraction).
[[nodiscard]] std::uint64_t optimal_allocation_value(
    const AllocationInstance& instance);

}  // namespace mpcalloc
