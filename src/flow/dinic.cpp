#include "flow/dinic.hpp"

#include "util/parallel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mpcalloc {

namespace {
// Below this frontier size a layer is expanded inline (still on the same
// fixed tile decomposition, so results are unchanged): dispatching the pool
// for a handful of vertices costs more than scanning them, and path-shaped
// level graphs would otherwise pay one dispatch per layer.
constexpr std::size_t kParallelFrontierThreshold = kParallelTile;
}  // namespace

DinicMaxFlow::DinicMaxFlow(std::size_t num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes >= kUnreached) {
    throw std::invalid_argument("DinicMaxFlow: too many nodes for 32-bit ids");
  }
}

std::size_t DinicMaxFlow::add_edge(std::size_t from, std::size_t to,
                                   FlowValue capacity) {
  if (from >= num_nodes_ || to >= num_nodes_) {
    throw std::out_of_range("DinicMaxFlow::add_edge: node out of range");
  }
  if (capacity < 0) {
    throw std::invalid_argument("DinicMaxFlow::add_edge: negative capacity");
  }
  if (solved_) throw std::logic_error("DinicMaxFlow: add_edge after solve");
  if (initial_capacity_.size() + 1 >
      static_cast<std::size_t>(std::numeric_limits<ArcIndex>::max()) / 2) {
    throw std::length_error("DinicMaxFlow::add_edge: too many edges");
  }
  edge_from_.push_back(static_cast<NodeIndex>(from));
  edge_to_.push_back(static_cast<NodeIndex>(to));
  initial_capacity_.push_back(capacity);
  return initial_capacity_.size() - 1;
}

void DinicMaxFlow::build_csr() {
  const std::size_t num_edges = initial_capacity_.size();
  const std::size_t num_arcs = 2 * num_edges;
  arc_head_.resize(num_arcs);
  arc_cap_.resize(num_arcs);
  for (std::size_t e = 0; e < num_edges; ++e) {
    arc_head_[2 * e] = edge_to_[e];
    arc_cap_[2 * e] = initial_capacity_[e];
    arc_head_[2 * e + 1] = edge_from_[e];
    arc_cap_[2 * e + 1] = 0;
  }
  // Counting sort of arc ids by tail vertex (the tail of arc 2e is
  // edge_from_[e], of arc 2e+1 edge_to_[e]).
  csr_offsets_.assign(num_nodes_ + 1, 0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    ++csr_offsets_[edge_from_[e] + 1];
    ++csr_offsets_[edge_to_[e] + 1];
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  csr_arcs_.resize(num_arcs);
  std::vector<std::size_t> fill(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (std::size_t e = 0; e < num_edges; ++e) {
    csr_arcs_[fill[edge_from_[e]]++] = static_cast<ArcIndex>(2 * e);
    csr_arcs_[fill[edge_to_[e]]++] = static_cast<ArcIndex>(2 * e + 1);
  }
  // The tails are recoverable from the CSR from here on; drop them.
  edge_from_ = {};
  edge_to_ = {};
}

bool DinicMaxFlow::bfs_layers(NodeIndex source, NodeIndex sink) {
  level_.assign(num_nodes_, kUnreached);
  level_[source] = 0;
  frontier_.clear();
  frontier_.push_back(source);
  NodeIndex depth = 0;
  while (!frontier_.empty() && level_[sink] == kUnreached) {
    const std::size_t num_tiles =
        (frontier_.size() + kParallelTile - 1) / kParallelTile;
    if (tile_candidates_.size() < num_tiles) tile_candidates_.resize(num_tiles);
    // Pass 1 (parallel, read-only on level_/arc_cap_): each tile scans its
    // slice of the frontier and records residual arcs into unreached heads.
    // Pass 2 (sequential, tile order) commits first-seen candidates, so the
    // level assignment — a pure function of BFS distance anyway — and the
    // next frontier's order are bitwise independent of the thread count.
    const std::size_t threads =
        frontier_.size() >= kParallelFrontierThreshold ? num_threads_ : 1;
    parallel_for(0, frontier_.size(), kParallelTile, threads,
                 [&](std::size_t tile_begin, std::size_t tile_end) {
                   auto& candidates = tile_candidates_[tile_begin / kParallelTile];
                   candidates.clear();
                   for (std::size_t i = tile_begin; i < tile_end; ++i) {
                     const NodeIndex u = frontier_[i];
                     const std::size_t end = csr_offsets_[u + 1];
                     for (std::size_t it = csr_offsets_[u]; it < end; ++it) {
                       const ArcIndex a = csr_arcs_[it];
                       const NodeIndex head = arc_head_[a];
                       if (arc_cap_[a] > 0 && level_[head] == kUnreached) {
                         candidates.push_back(head);
                       }
                     }
                   }
                 });
    next_frontier_.clear();
    ++depth;
    for (std::size_t tile = 0; tile < num_tiles; ++tile) {
      for (const NodeIndex v : tile_candidates_[tile]) {
        if (level_[v] == kUnreached) {
          level_[v] = depth;
          next_frontier_.push_back(v);
        }
      }
    }
    std::swap(frontier_, next_frontier_);
  }
  return level_[sink] != kUnreached;
}

DinicMaxFlow::FlowValue DinicMaxFlow::blocking_flow(NodeIndex source,
                                                    NodeIndex sink) {
  std::copy(csr_offsets_.begin(), csr_offsets_.end() - 1, cur_.begin());
  FlowValue total = 0;
  std::size_t depth = 0;
  stack_nodes_[0] = source;
  for (;;) {
    const NodeIndex u = stack_nodes_[depth];
    if (u == sink) {
      // Augment by the path bottleneck, then retreat to the tail of the
      // first saturated arc (everything before it still has residual).
      FlowValue bottleneck = kInfinity;
      std::size_t retreat_to = 0;
      for (std::size_t i = 0; i < depth; ++i) {
        if (arc_cap_[stack_arcs_[i]] < bottleneck) {
          bottleneck = arc_cap_[stack_arcs_[i]];
          retreat_to = i;
        }
      }
      for (std::size_t i = 0; i < depth; ++i) {
        arc_cap_[stack_arcs_[i]] -= bottleneck;
        arc_cap_[stack_arcs_[i] ^ 1] += bottleneck;
      }
      total += bottleneck;
      depth = retreat_to;
      continue;
    }
    // Advance along the first admissible current arc.
    bool advanced = false;
    for (std::size_t& it = cur_[u]; it < csr_offsets_[u + 1]; ++it) {
      const ArcIndex a = csr_arcs_[it];
      const NodeIndex head = arc_head_[a];
      if (arc_cap_[a] > 0 && level_[head] == level_[u] + 1) {
        stack_arcs_[depth] = a;
        stack_nodes_[++depth] = head;
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    // Dead end: prune u from this phase's level graph and retreat. The
    // parent's current arc still points at the arc into u; it now fails the
    // level check and is skipped.
    level_[u] = kUnreached;
    if (depth == 0) break;
    --depth;
  }
  return total;
}

DinicMaxFlow::CertifiedFlow DinicMaxFlow::cut_certificate(
    FlowValue value) const {
  // After the failed BFS, S = {v : level_[v] != kUnreached} is exactly the
  // residual-reachable set, so every original-capacity arc from S to V\S is
  // saturated and cap(S, V\S) == value (strong duality). Only forward arcs
  // (even ids) carry original capacity.
  struct CutPartial {
    FlowValue capacity = 0;
    std::size_t reachable = 0;
  };
  const CutPartial cut = parallel_reduce(
      std::size_t{0}, num_nodes_, kParallelTile, num_threads_, CutPartial{},
      [&](std::size_t tile_begin, std::size_t tile_end) {
        CutPartial partial;
        for (std::size_t v = tile_begin; v < tile_end; ++v) {
          if (level_[v] == kUnreached) continue;
          ++partial.reachable;
          const std::size_t end = csr_offsets_[v + 1];
          for (std::size_t it = csr_offsets_[v]; it < end; ++it) {
            const ArcIndex a = csr_arcs_[it];
            if ((a & 1u) == 0 && level_[arc_head_[a]] == kUnreached) {
              partial.capacity += initial_capacity_[a >> 1];
            }
          }
        }
        return partial;
      },
      [](CutPartial acc, const CutPartial& partial) {
        acc.capacity += partial.capacity;
        acc.reachable += partial.reachable;
        return acc;
      });
  return CertifiedFlow{value, cut.capacity, cut.reachable};
}

DinicMaxFlow::CertifiedFlow DinicMaxFlow::solve_certified(std::size_t source,
                                                          std::size_t sink) {
  if (solved_) throw std::logic_error("DinicMaxFlow::solve called twice");
  if (source >= num_nodes_ || sink >= num_nodes_) {
    throw std::out_of_range("DinicMaxFlow::solve: node out of range");
  }
  if (source == sink) {
    throw std::invalid_argument("DinicMaxFlow: source == sink");
  }
  solved_ = true;
  num_threads_ = resolve_num_threads(num_threads_);
  build_csr();
  cur_.resize(num_nodes_);
  stack_nodes_.resize(num_nodes_ + 1);
  stack_arcs_.resize(num_nodes_);
  const auto src = static_cast<NodeIndex>(source);
  const auto snk = static_cast<NodeIndex>(sink);
  FlowValue total = 0;
  while (bfs_layers(src, snk)) {
    total += blocking_flow(src, snk);
  }
  const CertifiedFlow certified = cut_certificate(total);
  if (!certified.ok()) {
    throw std::logic_error(
        "DinicMaxFlow: certificate failed (max-flow value " +
        std::to_string(certified.value) + " != min-cut capacity " +
        std::to_string(certified.cut_capacity) + ")");
  }
  return certified;
}

DinicMaxFlow::FlowValue DinicMaxFlow::solve(std::size_t source,
                                            std::size_t sink) {
  return solve_certified(source, sink).value;
}

DinicMaxFlow::FlowValue DinicMaxFlow::flow_on(std::size_t edge_handle) const {
  if (edge_handle >= initial_capacity_.size()) {
    throw std::out_of_range("DinicMaxFlow::flow_on: bad handle");
  }
  if (!solved_) return 0;
  return initial_capacity_[edge_handle] - arc_cap_[2 * edge_handle];
}

}  // namespace mpcalloc
