#include "flow/dinic.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mpcalloc {

DinicMaxFlow::DinicMaxFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t DinicMaxFlow::add_edge(std::size_t from, std::size_t to,
                                   FlowValue capacity) {
  if (from >= graph_.size() || to >= graph_.size()) {
    throw std::out_of_range("DinicMaxFlow::add_edge: node out of range");
  }
  if (capacity < 0) {
    throw std::invalid_argument("DinicMaxFlow::add_edge: negative capacity");
  }
  if (solved_) throw std::logic_error("DinicMaxFlow: add_edge after solve");
  graph_[from].push_back(Arc{to, graph_[to].size(), capacity});
  graph_[to].push_back(Arc{from, graph_[from].size() - 1, 0});
  handles_.emplace_back(from, graph_[from].size() - 1);
  initial_capacity_.push_back(capacity);
  return handles_.size() - 1;
}

bool DinicMaxFlow::bfs(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const Arc& arc : graph_[v]) {
      if (arc.capacity > 0 && level_[arc.to] < 0) {
        level_[arc.to] = level_[v] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[sink] >= 0;
}

DinicMaxFlow::FlowValue DinicMaxFlow::dfs(std::size_t v, std::size_t sink,
                                          FlowValue pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Arc& arc = graph_[v][i];
    if (arc.capacity > 0 && level_[v] < level_[arc.to]) {
      const FlowValue d = dfs(arc.to, sink, std::min(pushed, arc.capacity));
      if (d > 0) {
        arc.capacity -= d;
        graph_[arc.to][arc.rev].capacity += d;
        return d;
      }
    }
  }
  return 0;
}

DinicMaxFlow::FlowValue DinicMaxFlow::solve(std::size_t source,
                                            std::size_t sink) {
  if (solved_) throw std::logic_error("DinicMaxFlow::solve called twice");
  if (source == sink) throw std::invalid_argument("DinicMaxFlow: source == sink");
  solved_ = true;
  FlowValue total = 0;
  while (bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (const FlowValue pushed = dfs(source, sink, kInfinity)) {
      total += pushed;
    }
  }
  return total;
}

DinicMaxFlow::FlowValue DinicMaxFlow::flow_on(std::size_t edge_handle) const {
  if (edge_handle >= handles_.size()) {
    throw std::out_of_range("DinicMaxFlow::flow_on: bad handle");
  }
  const auto [node, idx] = handles_[edge_handle];
  return initial_capacity_[edge_handle] - graph_[node][idx].capacity;
}

}  // namespace mpcalloc
