// Dinic's maximum-flow algorithm, certificate-emitting and scalable.
//
// Used as the exact-OPT oracle: the allocation problem is a bipartite
// b-matching LP whose constraint matrix is totally unimodular, so the
// maximum fractional allocation equals the maximum integral allocation and
// both equal the max s–t flow of the standard unit/C_v network. Every
// quality experiment in bench/ divides by this oracle, so reported
// approximation ratios are true ratios rather than bounds.
//
// The solver is built for depth and scale (cf. WHFC's dinic_base.h shape,
// SNIPPETS.md):
//
//  * Arcs live in two flat arrays (`arc_head_`, `arc_cap_`); arc 2e is the
//    forward copy of edge e and arc 2e^1 its reverse, so the residual
//    partner of arc a is always a^1 — there is no stored `rev` index to
//    corrupt, and self-loops are sound by construction (their forward and
//    reverse copies are distinct arcs).
//  * A CSR adjacency (`csr_offsets_`, `csr_arcs_`) groups arc ids by tail
//    vertex; per-vertex current-arc pointers index into it.
//  * BFS runs on a reusable layered queue (two flat frontier buffers, no
//    per-phase allocation), with each layer's arc scan tiled onto the
//    deterministic executor (util/parallel.hpp): tiles only read, and new
//    vertices are committed sequentially in tile order, so levels are
//    bitwise independent of the thread count.
//  * The blocking flow walks an explicit fixed-capacity stack (one slot per
//    node) with current-arc pruning — no recursion at any depth, so
//    path-shaped level graphs with millions of layers cannot overflow the
//    native stack.
//
// After the final BFS fails, the residual-reachable set S is the source
// side of a minimum cut, and cap(S, V\S) == max-flow value by LP duality.
// `solve_certified` computes that cut capacity and returns it alongside the
// flow value as a self-checking optimality certificate.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mpcalloc {

/// Max-flow solver on an explicitly built directed network.
class DinicMaxFlow {
 public:
  using FlowValue = std::int64_t;
  static constexpr FlowValue kInfinity = std::numeric_limits<FlowValue>::max();

  /// A max-flow value together with its dual witness: the capacity of the
  /// min cut induced by the residual-reachable set after the final BFS.
  /// `ok()` is the certificate check (strong duality: value == cut).
  struct CertifiedFlow {
    FlowValue value = 0;
    FlowValue cut_capacity = 0;
    std::size_t cut_reachable = 0;  ///< |S|: source-side vertices of the cut
    [[nodiscard]] bool ok() const { return value == cut_capacity; }
  };

  explicit DinicMaxFlow(std::size_t num_nodes);

  /// Adds a directed edge with the given capacity; returns its handle
  /// (usable with `flow_on` after solving). A reverse edge of capacity 0 is
  /// added internally. Self-loops are accepted and never carry flow.
  std::size_t add_edge(std::size_t from, std::size_t to, FlowValue capacity);

  /// Threads for the tiled level-graph construction (0 = auto via
  /// MPCALLOC_THREADS / hardware concurrency). Results are bitwise
  /// independent of this knob.
  void set_num_threads(std::size_t num_threads) { num_threads_ = num_threads; }

  /// Computes the max flow from `source` to `sink` with its min-cut
  /// certificate. May be called once; throws std::logic_error if the
  /// certificate fails to verify (which would indicate a solver bug).
  CertifiedFlow solve_certified(std::size_t source, std::size_t sink);

  /// Value-only convenience wrapper around solve_certified.
  FlowValue solve(std::size_t source, std::size_t sink);

  /// Flow routed through the edge returned by add_edge.
  [[nodiscard]] FlowValue flow_on(std::size_t edge_handle) const;

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const {
    return initial_capacity_.size();
  }

 private:
  using NodeIndex = std::uint32_t;
  using ArcIndex = std::uint32_t;
  static constexpr NodeIndex kUnreached =
      std::numeric_limits<NodeIndex>::max();

  void build_csr();
  bool bfs_layers(NodeIndex source, NodeIndex sink);
  FlowValue blocking_flow(NodeIndex source, NodeIndex sink);
  [[nodiscard]] CertifiedFlow cut_certificate(FlowValue value) const;

  std::size_t num_nodes_ = 0;
  std::size_t num_threads_ = 0;

  // Edge list as added; consumed by build_csr (from/to freed afterwards).
  std::vector<NodeIndex> edge_from_;
  std::vector<NodeIndex> edge_to_;
  std::vector<FlowValue> initial_capacity_;  ///< per handle, kept for flow_on

  // Flat arc storage: arc 2e forward, arc 2e+1 reverse (partner = id ^ 1).
  std::vector<NodeIndex> arc_head_;
  std::vector<FlowValue> arc_cap_;
  // CSR adjacency over arc ids, grouped by tail vertex.
  std::vector<std::size_t> csr_offsets_;
  std::vector<ArcIndex> csr_arcs_;

  // Reusable per-phase state.
  std::vector<NodeIndex> level_;
  std::vector<std::size_t> cur_;  ///< current-arc pointer into csr_arcs_
  std::vector<NodeIndex> frontier_;
  std::vector<NodeIndex> next_frontier_;
  std::vector<std::vector<NodeIndex>> tile_candidates_;
  // Blocking-flow stack, fixed capacity num_nodes (a simple path cannot be
  // longer): stack_nodes_[i] is the i-th vertex of the partial path and
  // stack_arcs_[i] the arc taken out of it.
  std::vector<NodeIndex> stack_nodes_;
  std::vector<ArcIndex> stack_arcs_;

  bool solved_ = false;
};

}  // namespace mpcalloc
