// Dinic's maximum-flow algorithm.
//
// Used as the exact-OPT oracle: the allocation problem is a bipartite
// b-matching LP whose constraint matrix is totally unimodular, so the
// maximum fractional allocation equals the maximum integral allocation and
// both equal the max s–t flow of the standard unit/C_v network. Every
// quality experiment in bench/ divides by this oracle, so reported
// approximation ratios are true ratios rather than bounds.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mpcalloc {

/// Max-flow solver on an explicitly built directed network.
class DinicMaxFlow {
 public:
  using FlowValue = std::int64_t;
  static constexpr FlowValue kInfinity = std::numeric_limits<FlowValue>::max();

  explicit DinicMaxFlow(std::size_t num_nodes);

  /// Adds a directed edge with the given capacity; returns its handle
  /// (usable with `flow_on` after solving). A reverse edge of capacity 0 is
  /// added internally.
  std::size_t add_edge(std::size_t from, std::size_t to, FlowValue capacity);

  /// Computes the max flow from `source` to `sink`. May be called once.
  FlowValue solve(std::size_t source, std::size_t sink);

  /// Flow routed through the edge returned by add_edge.
  [[nodiscard]] FlowValue flow_on(std::size_t edge_handle) const;

  [[nodiscard]] std::size_t num_nodes() const { return graph_.size(); }

 private:
  struct Arc {
    std::size_t to;
    std::size_t rev;  ///< index of the reverse arc in graph_[to]
    FlowValue capacity;
  };

  bool bfs(std::size_t source, std::size_t sink);
  FlowValue dfs(std::size_t v, std::size_t sink, FlowValue pushed);

  std::vector<std::vector<Arc>> graph_;
  std::vector<std::pair<std::size_t, std::size_t>> handles_;  ///< (node, arc idx)
  std::vector<FlowValue> initial_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  bool solved_ = false;
};

}  // namespace mpcalloc
