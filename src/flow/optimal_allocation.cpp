#include "flow/optimal_allocation.hpp"

#include "flow/dinic.hpp"

namespace mpcalloc {

namespace {

OptimalAllocationResult solve_impl(const AllocationInstance& instance,
                                   bool want_witness) {
  instance.validate();
  const auto& g = instance.graph;
  const std::size_t nl = g.num_left();
  const std::size_t nr = g.num_right();
  // Node layout: source, L block, R block, sink.
  const std::size_t source = 0;
  const std::size_t sink = 1 + nl + nr;
  DinicMaxFlow flow(sink + 1);

  for (Vertex u = 0; u < nl; ++u) {
    flow.add_edge(source, 1 + u, 1);
  }
  // Edge handles for the middle arcs start after the nl source arcs; keep
  // their handles to recover the witness allocation.
  std::vector<std::size_t> middle_handles;
  middle_handles.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    middle_handles.push_back(flow.add_edge(1 + ed.u, 1 + nl + ed.v, 1));
  }
  for (Vertex v = 0; v < nr; ++v) {
    flow.add_edge(1 + nl + v, sink, instance.capacities[v]);
  }

  const DinicMaxFlow::CertifiedFlow certified = flow.solve_certified(source, sink);
  OptimalAllocationResult result;
  result.value = static_cast<std::uint64_t>(certified.value);
  result.cut_capacity = static_cast<std::uint64_t>(certified.cut_capacity);
  result.certificate_ok = certified.ok();
  if (want_witness) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (flow.flow_on(middle_handles[e]) > 0) {
        result.allocation.edges.push_back(e);
      }
    }
    result.allocation.check_valid(instance);
  }
  return result;
}

}  // namespace

OptimalAllocationResult solve_optimal_allocation(
    const AllocationInstance& instance) {
  return solve_impl(instance, /*want_witness=*/true);
}

CertifiedOptimum certified_optimal_value(const AllocationInstance& instance) {
  const OptimalAllocationResult result =
      solve_impl(instance, /*want_witness=*/false);
  return CertifiedOptimum{result.value, result.cut_capacity,
                          result.certificate_ok};
}

std::uint64_t optimal_allocation_value(const AllocationInstance& instance) {
  return solve_impl(instance, /*want_witness=*/false).value;
}

}  // namespace mpcalloc
