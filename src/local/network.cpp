#include "local/network.hpp"

#include "util/parallel.hpp"

#include <algorithm>

namespace mpcalloc::local {

const Message& ProcessorContext::incoming(std::size_t i) const {
  return net_.incoming(side_, incidences_[i].edge);
}

void ProcessorContext::send(std::size_t i, Message message) {
  ++messages_sent_;
  words_sent_ += message.size();
  max_message_words_ = std::max(max_message_words_, message.size());
  net_.outbox(side_, incidences_[i].edge) = std::move(message);
}

LocalNetwork::LocalNetwork(const BipartiteGraph& graph, std::size_t num_threads)
    : graph_(graph),
      num_threads_(resolve_num_threads(num_threads)),
      current_to_left_(graph.num_edges()),
      current_to_right_(graph.num_edges()),
      next_to_left_(graph.num_edges()),
      next_to_right_(graph.num_edges()) {}

const Message& LocalNetwork::incoming(Side receiver_side, EdgeId e) const {
  return receiver_side == Side::kLeft ? current_to_left_[e]
                                      : current_to_right_[e];
}

Message& LocalNetwork::outbox(Side sender_side, EdgeId e) {
  // A message sent by an L-side processor is addressed to the R endpoint.
  return sender_side == Side::kLeft ? next_to_right_[e] : next_to_left_[e];
}

void LocalNetwork::step(const Handler& handler) {
  // Per-side sweep over processors. Each processor reads only its own
  // inbox slots and writes only its own outbox slots, so the sweep is
  // parallel over disjoint state; accounting is accumulated per context
  // and folded in tile order (the sums and max are order-free anyway).
  struct Accounting {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::size_t max_words = 0;
  };
  const auto run_side = [&](Side side, std::size_t count) {
    const Accounting total = parallel_reduce<Accounting>(
        0, count, kParallelTile, num_threads_, Accounting{},
        [&](std::size_t tile_begin, std::size_t tile_end) {
          Accounting partial;
          for (Vertex x = static_cast<Vertex>(tile_begin); x < tile_end; ++x) {
            ProcessorContext ctx(*this, side, x,
                                 side == Side::kLeft
                                     ? graph_.left_neighbors(x)
                                     : graph_.right_neighbors(x));
            handler(ctx);
            partial.messages += ctx.messages_sent_;
            partial.words += ctx.words_sent_;
            partial.max_words = std::max(partial.max_words,
                                         ctx.max_message_words_);
          }
          return partial;
        },
        [](Accounting acc, const Accounting& partial) {
          acc.messages += partial.messages;
          acc.words += partial.words;
          acc.max_words = std::max(acc.max_words, partial.max_words);
          return acc;
        });
    messages_sent_ += total.messages;
    words_sent_ += total.words;
    max_message_words_ = std::max(max_message_words_, total.max_words);
  };
  run_side(Side::kLeft, graph_.num_left());
  run_side(Side::kRight, graph_.num_right());

  // Deliver: the accumulated next-round messages become current; the old
  // current buffers are recycled (cleared) as the new accumulation target.
  std::swap(current_to_left_, next_to_left_);
  std::swap(current_to_right_, next_to_right_);
  parallel_for(0, next_to_left_.size(), kParallelTile, num_threads_,
               [&](std::size_t tile_begin, std::size_t tile_end) {
    for (std::size_t e = tile_begin; e < tile_end; ++e) {
      next_to_left_[e].clear();
      next_to_right_[e].clear();
    }
  });
  ++rounds_;
}

void LocalNetwork::run(std::size_t num_rounds, const Handler& handler) {
  for (std::size_t r = 0; r < num_rounds; ++r) step(handler);
}

}  // namespace mpcalloc::local
