#include "local/network.hpp"

#include <algorithm>

namespace mpcalloc::local {

const Message& ProcessorContext::incoming(std::size_t i) const {
  return net_.incoming(side_, incidences_[i].edge);
}

void ProcessorContext::send(std::size_t i, Message message) {
  net_.post(side_, incidences_[i].edge, std::move(message));
}

LocalNetwork::LocalNetwork(const BipartiteGraph& graph)
    : graph_(graph),
      current_to_left_(graph.num_edges()),
      current_to_right_(graph.num_edges()),
      next_to_left_(graph.num_edges()),
      next_to_right_(graph.num_edges()) {}

const Message& LocalNetwork::incoming(Side receiver_side, EdgeId e) const {
  return receiver_side == Side::kLeft ? current_to_left_[e]
                                      : current_to_right_[e];
}

void LocalNetwork::post(Side sender_side, EdgeId e, Message message) {
  ++messages_sent_;
  words_sent_ += message.size();
  max_message_words_ = std::max(max_message_words_, message.size());
  // A message sent by an L-side processor is addressed to the R endpoint.
  auto& slot =
      sender_side == Side::kLeft ? next_to_right_[e] : next_to_left_[e];
  slot = std::move(message);
}

void LocalNetwork::step(const Handler& handler) {
  for (Vertex u = 0; u < graph_.num_left(); ++u) {
    ProcessorContext ctx(*this, Side::kLeft, u, graph_.left_neighbors(u));
    handler(ctx);
  }
  for (Vertex v = 0; v < graph_.num_right(); ++v) {
    ProcessorContext ctx(*this, Side::kRight, v, graph_.right_neighbors(v));
    handler(ctx);
  }
  // Deliver: the accumulated next-round messages become current; the old
  // current buffers are recycled (cleared) as the new accumulation target.
  std::swap(current_to_left_, next_to_left_);
  std::swap(current_to_right_, next_to_right_);
  for (auto& m : next_to_left_) m.clear();
  for (auto& m : next_to_right_) m.clear();
  ++rounds_;
}

void LocalNetwork::run(std::size_t num_rounds, const Handler& handler) {
  for (std::size_t r = 0; r < num_rounds; ++r) step(handler);
}

}  // namespace mpcalloc::local
