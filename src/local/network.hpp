// LOCAL model runtime (Section 2.2 of the paper).
//
// The communication graph *is* the input bipartite graph; each vertex hosts
// a processor; computation proceeds in synchronous rounds. In every round a
// processor (1) reads the messages delivered at the start of the round,
// (2) computes arbitrarily, and (3) posts messages to its neighbours, which
// arrive at the beginning of the next round.
//
// The runtime is generic over the hosted algorithm: callers supply a
// per-vertex handler invoked once per vertex per round. Message delivery is
// double-buffered so that within a round every processor observes only the
// previous round's messages — the defining property of the model. The
// runtime also keeps the accounting the model cares about: round count,
// message count, and maximum message size (the paper's Section 1.2.1 notes
// the AZM18 algorithm only ever needs polylog-size messages, which is what
// makes it portable to sublinear MPC; tests verify our host respects that).
#pragma once

#include "graph/bipartite_graph.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace mpcalloc::local {

/// Which bipartition side a processor lives on.
enum class Side : std::uint8_t { kLeft, kRight };

/// A message is a small vector of words (doubles). Empty = no message.
using Message = std::vector<double>;

class LocalNetwork;

/// Per-vertex view handed to the round handler. Message accounting is
/// accumulated per context (i.e. per vertex) and folded into the network's
/// totals by the runtime, so processors of one round may run concurrently.
class ProcessorContext {
 public:
  [[nodiscard]] Side side() const { return side_; }
  [[nodiscard]] Vertex vertex() const { return vertex_; }
  [[nodiscard]] std::size_t degree() const { return incidences_.size(); }
  [[nodiscard]] Vertex neighbor(std::size_t i) const { return incidences_[i].to; }
  [[nodiscard]] EdgeId edge(std::size_t i) const { return incidences_[i].edge; }

  /// Message delivered this round along the i-th incident edge (possibly
  /// empty if the neighbour sent nothing last round).
  [[nodiscard]] const Message& incoming(std::size_t i) const;

  /// Post a message along the i-th incident edge; delivered next round.
  void send(std::size_t i, Message message);

 private:
  friend class LocalNetwork;
  ProcessorContext(LocalNetwork& net, Side side, Vertex vertex,
                   std::span<const Incidence> incidences)
      : net_(net), side_(side), vertex_(vertex), incidences_(incidences) {}

  LocalNetwork& net_;
  Side side_;
  Vertex vertex_;
  std::span<const Incidence> incidences_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t words_sent_ = 0;
  std::size_t max_message_words_ = 0;
};

class LocalNetwork {
 public:
  /// `num_threads` drives the host-side processor sweeps (0 = auto, as in
  /// util/parallel.hpp; default 1 = sequential). Handlers run concurrently
  /// within one side of one round when > 1, which is sound for handlers
  /// that touch only their own vertex's state — the LOCAL model's locality
  /// discipline. Delivered messages and accounting are identical for every
  /// thread count.
  explicit LocalNetwork(const BipartiteGraph& graph,
                        std::size_t num_threads = 1);

  using Handler = std::function<void(ProcessorContext&)>;

  /// Execute one synchronous round: every processor sees last round's
  /// messages and posts next round's. Handlers for all vertices run within
  /// the same round (order is immaterial by double-buffering).
  void step(const Handler& handler);

  /// Convenience: run `rounds` rounds of the same handler.
  void run(std::size_t rounds, const Handler& handler);

  // -- accounting ------------------------------------------------------
  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t words_sent() const { return words_sent_; }
  [[nodiscard]] std::size_t max_message_words() const { return max_message_words_; }

  [[nodiscard]] const BipartiteGraph& graph() const { return graph_; }

 private:
  friend class ProcessorContext;

  const Message& incoming(Side receiver_side, EdgeId e) const;
  /// Outbox slot for a message sent along edge e by a `sender_side`
  /// processor. Each edge has exactly one sender per side, so concurrent
  /// processors write disjoint slots.
  Message& outbox(Side sender_side, EdgeId e);

  const BipartiteGraph& graph_;
  std::size_t num_threads_;
  // inbox[0]: messages addressed to L endpoints; inbox[1]: to R endpoints.
  // Double buffered: `current_` delivered this round, `next_` accumulating.
  std::vector<Message> current_to_left_, current_to_right_;
  std::vector<Message> next_to_left_, next_to_right_;

  std::size_t rounds_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t words_sent_ = 0;
  std::size_t max_message_words_ = 0;
};

}  // namespace mpcalloc::local
