#include "mpc/transport.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <string>

namespace mpcalloc::mpc {

std::uint64_t RoundPlan::total_words_sent() const {
  std::uint64_t total = 0;
  for (const std::uint64_t words : sent) total += words;
  return total;
}

RoundPlan RoundPlan::build(const DistVec& data,
                           std::span<const std::uint32_t> destination,
                           std::size_t round) {
  if (destination.size() != data.num_records()) {
    throw std::invalid_argument("shuffle: destination size != record count");
  }
  RoundPlan plan;
  plan.width = data.width();
  plan.num_machines = data.num_shards();
  plan.round = round;
  const std::size_t n = plan.num_machines;
  const std::size_t width = plan.width;
  const std::size_t records = destination.size();

  // Record-index prefix per source shard (record i of the global order
  // lives on the machine whose range contains i).
  plan.shard_first.assign(n + 1, 0);
  for (std::size_t m = 0; m < n; ++m) {
    plan.shard_first[m + 1] = plan.shard_first[m] + data.shard(m).size() / width;
  }

  // Stable counting sort by destination: the count pass doubles as
  // destination validation, before anything is mutated (the plan is the
  // only state built so far).
  plan.dest_begin.assign(n + 1, 0);
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint32_t dest = destination[i];
    if (dest >= n) {
      throw std::out_of_range("shuffle: destination machine out of range");
    }
    ++plan.dest_begin[dest + 1];
  }
  for (std::size_t m = 0; m < n; ++m) {
    plan.dest_begin[m + 1] += plan.dest_begin[m];
  }
  plan.slot_of.resize(records);
  {
    std::vector<std::size_t> cursor(plan.dest_begin.begin(),
                                    plan.dest_begin.end() - 1);
    for (std::size_t i = 0; i < records; ++i) {
      plan.slot_of[i] = static_cast<std::uint32_t>(cursor[destination[i]]++);
    }
  }

  // Rule-1/2 tallies: a record contributes only when it changes machines.
  plan.sent.assign(n, 0);
  plan.received.assign(n, 0);
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      if (destination[i] != m) {
        plan.sent[m] += width;
        plan.received[destination[i]] += width;
      }
    }
  }
  plan.destination.assign(destination.begin(), destination.end());
  return plan;
}

void InProcessTransport::exchange(const RoundPlan& plan, DistVec& data,
                                  std::size_t num_threads) {
  WorkerGroup& group = *workers_;
  const std::size_t n = plan.num_machines;
  const std::size_t width = plan.width;
  const std::uint64_t budget = group.machine_words();
  // A split exchange delivers over sub_rounds waves, each within budget —
  // the Cluster proved a feasible wave schedule before relaxing the plan —
  // so rules 1–2 bound the *total* at S per wave. Rule 3 constrains the
  // final resident state and is never relaxed.
  const std::uint64_t round_budget =
      budget * static_cast<std::uint64_t>(std::max<std::size_t>(
                   plan.sub_rounds, 1));

  // Capacity rules 1–3, machine-by-machine in machine order, before any
  // record moves: deterministic error attribution and untouched arenas on
  // failure. The arena commit below re-enforces rule 3 (defense in depth)
  // and records the high-watermark.
  for (std::size_t m = 0; m < n; ++m) {
    if (plan.sent[m] > round_budget) {
      throw MpcCapacityError(CapacityRule::kSend, m, plan.round, plan.sent[m],
                             budget);
    }
    if (plan.received[m] > round_budget) {
      throw MpcCapacityError(CapacityRule::kReceive, m, plan.round,
                             plan.received[m], budget);
    }
    if (plan.resident_words_after(m) > budget) {
      throw MpcCapacityError(CapacityRule::kResident, m, plan.round,
                             plan.resident_words_after(m), budget);
    }
  }

  // Mailboxes: one per destination machine, grouped under the owning worker
  // and allocated by it. Slots keep the plan's stable destination order.
  std::vector<std::vector<Word>> mailbox(n);
  group.for_each_owned_shard(num_threads, [&](std::size_t d) {
    mailbox[d].resize(plan.records_for(d) * width);
  });

  // Send phase: each source worker walks its shards in record order and
  // posts every record into its destination mailbox slot. Slots are
  // disjoint across records, so the sends run owner-parallel.
  group.for_each_owned_shard(num_threads, [&](std::size_t m) {
    const std::vector<Word>& shard = data.shard(m);
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      const std::uint32_t d = plan.destination[i];
      const Word* record =
          shard.data() + (i - plan.shard_first[m]) * width;
      std::copy(record, record + width,
                mailbox[d].begin() +
                    static_cast<std::ptrdiff_t>(
                        (plan.slot_of[i] - plan.dest_begin[d]) * width));
    }
  });

  // Receive phase: each destination worker commits its mailboxes into its
  // arena — rule 3 and the resident high-watermark live here.
  group.for_each_owned_shard(num_threads, [&](std::size_t d) {
    group.commit_resident(d, mailbox[d].size(), plan.round);
    data.shard(d) = std::move(mailbox[d]);
  });
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kExchangeFailure:
      return "exchange failure";
    case FaultKind::kDelayedDelivery:
      return "delayed delivery";
    case FaultKind::kPartialDelivery:
      return "partial delivery";
    case FaultKind::kWorkerCrash:
      return "worker crash";
  }
  return "unknown fault";
}

namespace {

std::string fault_message(FaultKind kind, std::size_t round,
                          std::size_t exchange_index, std::uint32_t attempt,
                          std::size_t worker) {
  std::string what = std::string("injected fault: ") + fault_kind_name(kind) +
                     " at exchange #" + std::to_string(exchange_index) +
                     " (round " + std::to_string(round) + ", attempt " +
                     std::to_string(attempt) + ")";
  if (worker != TransportFault::kNoWorker) {
    what += " [worker " + std::to_string(worker) + "]";
  }
  return what;
}

}  // namespace

TransportFault::TransportFault(FaultKind kind, std::size_t round,
                               std::size_t exchange_index,
                               std::uint32_t attempt, std::size_t worker,
                               std::uint32_t delay_rounds)
    : std::runtime_error(
          fault_message(kind, round, exchange_index, attempt, worker)),
      kind_(kind),
      round_(round),
      exchange_index_(exchange_index),
      attempt_(attempt),
      worker_(worker),
      delay_rounds_(delay_rounds) {}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, WorkerGroup& workers, FaultPlan plan)
    : inner_(std::move(inner)), workers_(&workers), plan_(std::move(plan)) {
  if (!inner_) {
    throw std::invalid_argument("FaultInjectingTransport: null inner transport");
  }
}

FaultKind FaultInjectingTransport::draw(std::size_t ordinal,
                                        std::uint32_t attempt,
                                        std::size_t* worker,
                                        std::uint32_t* delay_rounds) const {
  *worker = TransportFault::kNoWorker;
  *delay_rounds = 0;
  // Scripted events take precedence: an event fires on every delivery
  // attempt below its `attempts` count, which is how tests script both
  // single transient faults and unrecoverable ones (attempts > max_retries).
  for (const FaultEvent& event : plan_.forced) {
    if (event.exchange_index == ordinal && attempt < event.attempts) {
      SplitMix64 sm(plan_.key ^ (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
      if (event.kind == FaultKind::kWorkerCrash) {
        *worker = static_cast<std::size_t>(sm.next() %
                                           workers_->num_workers());
      } else if (event.kind == FaultKind::kDelayedDelivery) {
        *delay_rounds = 1 + static_cast<std::uint32_t>(sm.next() % 3);
      }
      return event.kind;
    }
  }
  // Random schedule: a pure function of (key, ordinal), drawn only on the
  // first attempt so a retried exchange is never re-failed by chance — the
  // bounded-retry guarantee would otherwise be probabilistic.
  if (plan_.key != 0 && plan_.fault_probability > 0.0 && attempt == 0) {
    SplitMix64 sm(plan_.key ^ (0xbf58476d1ce4e5b9ULL * (ordinal + 1)));
    const double u =
        static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    if (u < plan_.fault_probability) {
      const FaultKind kind =
          static_cast<FaultKind>(1 + static_cast<std::uint8_t>(sm.next() % 4));
      if (kind == FaultKind::kWorkerCrash) {
        *worker = static_cast<std::size_t>(sm.next() %
                                           workers_->num_workers());
      } else if (kind == FaultKind::kDelayedDelivery) {
        *delay_rounds = 1 + static_cast<std::uint32_t>(sm.next() % 3);
      }
      return kind;
    }
  }
  return FaultKind::kNone;
}

void FaultInjectingTransport::exchange(const RoundPlan& plan, DistVec& data,
                                       std::size_t num_threads) {
  // Consecutive calls for the same plan round are delivery attempts of one
  // logical exchange (the cluster's retry loop); a new round is a new
  // exchange ordinal. Both are deterministic run-sequence quantities.
  std::size_t ordinal;
  if (plan.round == last_round_ && next_ordinal_ > 0) {
    ordinal = next_ordinal_ - 1;
    ++attempt_;
  } else {
    ordinal = next_ordinal_++;
    last_round_ = plan.round;
    attempt_ = 0;
  }

  std::size_t worker = TransportFault::kNoWorker;
  std::uint32_t delay_rounds = 0;
  const FaultKind kind = draw(ordinal, attempt_, &worker, &delay_rounds);
  if (kind == FaultKind::kNone) {
    inner_->exchange(plan, data, num_threads);
    return;
  }

  ++faults_injected_;
  switch (kind) {
    case FaultKind::kExchangeFailure:
    case FaultKind::kDelayedDelivery:
      // Fails before any record moves: every shard is exactly as it was,
      // so the cluster may simply retry in place.
      break;
    case FaultKind::kPartialDelivery: {
      // The round died mid-flight: a keyed subset of the in-flight
      // dataset's source shards is lost. Only exchange-scoped state is
      // corrupted — the cluster restores its pre-exchange copy and replays.
      SplitMix64 sm(plan_.key ^ (0x94d049bb133111ebULL * (ordinal + 1)));
      bool dropped_any = false;
      for (std::size_t m = 0; m < data.num_shards(); ++m) {
        if (sm.next() % 2 == 0) {
          data.shard(m).clear();
          dropped_any = true;
        }
      }
      if (!dropped_any && data.num_shards() > 0) {
        data.shard(sm.next() % data.num_shards()).clear();
      }
      break;
    }
    case FaultKind::kWorkerCrash:
      // The worker dies: its arena blocks of every live dataset are wiped.
      // Unrecoverable at exchange scope — the driver must restore a
      // checkpoint.
      workers_->crash_worker(worker);
      break;
    case FaultKind::kNone:
      break;
  }
  throw TransportFault(kind, plan.round, ordinal, attempt_, worker,
                       delay_rounds);
}

}  // namespace mpcalloc::mpc
