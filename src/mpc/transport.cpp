#include "mpc/transport.hpp"

#include <algorithm>

namespace mpcalloc::mpc {

std::uint64_t RoundPlan::total_words_sent() const {
  std::uint64_t total = 0;
  for (const std::uint64_t words : sent) total += words;
  return total;
}

RoundPlan RoundPlan::build(const DistVec& data,
                           std::span<const std::uint32_t> destination,
                           std::size_t round) {
  if (destination.size() != data.num_records()) {
    throw std::invalid_argument("shuffle: destination size != record count");
  }
  RoundPlan plan;
  plan.width = data.width();
  plan.num_machines = data.num_shards();
  plan.round = round;
  const std::size_t n = plan.num_machines;
  const std::size_t width = plan.width;
  const std::size_t records = destination.size();

  // Record-index prefix per source shard (record i of the global order
  // lives on the machine whose range contains i).
  plan.shard_first.assign(n + 1, 0);
  for (std::size_t m = 0; m < n; ++m) {
    plan.shard_first[m + 1] = plan.shard_first[m] + data.shard(m).size() / width;
  }

  // Stable counting sort by destination: the count pass doubles as
  // destination validation, before anything is mutated (the plan is the
  // only state built so far).
  plan.dest_begin.assign(n + 1, 0);
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint32_t dest = destination[i];
    if (dest >= n) {
      throw std::out_of_range("shuffle: destination machine out of range");
    }
    ++plan.dest_begin[dest + 1];
  }
  for (std::size_t m = 0; m < n; ++m) {
    plan.dest_begin[m + 1] += plan.dest_begin[m];
  }
  plan.slot_of.resize(records);
  {
    std::vector<std::size_t> cursor(plan.dest_begin.begin(),
                                    plan.dest_begin.end() - 1);
    for (std::size_t i = 0; i < records; ++i) {
      plan.slot_of[i] = static_cast<std::uint32_t>(cursor[destination[i]]++);
    }
  }

  // Rule-1/2 tallies: a record contributes only when it changes machines.
  plan.sent.assign(n, 0);
  plan.received.assign(n, 0);
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      if (destination[i] != m) {
        plan.sent[m] += width;
        plan.received[destination[i]] += width;
      }
    }
  }
  plan.destination.assign(destination.begin(), destination.end());
  return plan;
}

void InProcessTransport::exchange(const RoundPlan& plan, DistVec& data,
                                  std::size_t num_threads) {
  WorkerGroup& group = *workers_;
  const std::size_t n = plan.num_machines;
  const std::size_t width = plan.width;
  const std::uint64_t budget = group.machine_words();

  // Capacity rules 1–3, machine-by-machine in machine order, before any
  // record moves: deterministic error attribution and untouched arenas on
  // failure. The arena commit below re-enforces rule 3 (defense in depth)
  // and records the high-watermark.
  for (std::size_t m = 0; m < n; ++m) {
    if (plan.sent[m] > budget) {
      throw MpcCapacityError(CapacityRule::kSend, m, plan.round, plan.sent[m],
                             budget);
    }
    if (plan.received[m] > budget) {
      throw MpcCapacityError(CapacityRule::kReceive, m, plan.round,
                             plan.received[m], budget);
    }
    if (plan.resident_words_after(m) > budget) {
      throw MpcCapacityError(CapacityRule::kResident, m, plan.round,
                             plan.resident_words_after(m), budget);
    }
  }

  // Mailboxes: one per destination machine, grouped under the owning worker
  // and allocated by it. Slots keep the plan's stable destination order.
  std::vector<std::vector<Word>> mailbox(n);
  group.for_each_owned_shard(num_threads, [&](std::size_t d) {
    mailbox[d].resize(plan.records_for(d) * width);
  });

  // Send phase: each source worker walks its shards in record order and
  // posts every record into its destination mailbox slot. Slots are
  // disjoint across records, so the sends run owner-parallel.
  group.for_each_owned_shard(num_threads, [&](std::size_t m) {
    const std::vector<Word>& shard = data.shard(m);
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      const std::uint32_t d = plan.destination[i];
      const Word* record =
          shard.data() + (i - plan.shard_first[m]) * width;
      std::copy(record, record + width,
                mailbox[d].begin() +
                    static_cast<std::ptrdiff_t>(
                        (plan.slot_of[i] - plan.dest_begin[d]) * width));
    }
  });

  // Receive phase: each destination worker commits its mailboxes into its
  // arena — rule 3 and the resident high-watermark live here.
  group.for_each_owned_shard(num_threads, [&](std::size_t d) {
    group.commit_resident(d, mailbox[d].size(), plan.round);
    data.shard(d) = std::move(mailbox[d]);
  });
}

}  // namespace mpcalloc::mpc
