#include "mpc/exponentiation.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace mpcalloc::mpc {

std::uint64_t ball_volume_words(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& ball) {
  // Membership test by binary search (balls are sorted).
  std::uint64_t volume = ball.size();
  for (const std::uint32_t v : ball) {
    for (const std::uint32_t w : adjacency[v]) {
      if (std::binary_search(ball.begin(), ball.end(), w)) ++volume;
    }
  }
  return volume;
}

BallCollection collect_balls(
    Cluster& cluster, const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t radius) {
  if (radius == 0) throw std::invalid_argument("collect_balls: radius >= 1");
  const std::size_t n = adjacency.size();

  BallCollection out;
  out.balls.resize(n);

  // The doubling schedule costs ⌈log2 radius⌉ communication rounds plus one
  // round to ship the assembled balls to their home machines. The ball
  // *contents* are computed centrally (equivalent to the doubling fixpoint)
  // — what the model constrains is the per-ball volume and the round count,
  // both of which are accounted for below.
  const auto doubling_rounds = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(std::max<std::uint32_t>(radius, 2)))));
  out.rounds_charged = doubling_rounds + 1;
  cluster.charge_rounds(out.rounds_charged);

  std::vector<std::uint32_t> last_seen(n, UINT32_MAX);
  std::vector<std::uint32_t> frontier, next;
  for (std::uint32_t v = 0; v < n; ++v) {
    auto& ball = out.balls[v];
    ball.push_back(v);
    last_seen[v] = v;
    frontier.assign(1, v);
    for (std::uint32_t depth = 0; depth < radius && !frontier.empty(); ++depth) {
      next.clear();
      for (const std::uint32_t u : frontier) {
        for (const std::uint32_t w : adjacency[u]) {
          if (last_seen[w] != v) {
            last_seen[w] = v;
            next.push_back(w);
            ball.push_back(w);
          }
        }
      }
      frontier.swap(next);
    }
    std::sort(ball.begin(), ball.end());
    out.max_ball_vertices = std::max(out.max_ball_vertices, ball.size());
  }

  // Space accounting: every ball must fit on a single machine.
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t volume = ball_volume_words(adjacency, out.balls[v]);
    out.total_ball_words += volume;
    cluster.account_resident(v % cluster.num_machines(), volume);
  }
  return out;
}

}  // namespace mpcalloc::mpc
