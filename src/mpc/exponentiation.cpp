#include "mpc/exponentiation.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc::mpc {

namespace {

/// Per-thread BFS visited scratch, epoch-stamped: bumping the epoch makes
/// every stale entry unseen at once, so neither a fresh ball, a fresh
/// worker, nor a fresh collect_balls call pays an O(n) clear. Executor
/// threads are long-lived (the global pool), so the buffer amortises
/// across calls; which thread serves which worker never affects ball
/// contents.
struct BfsScratch {
  std::vector<std::uint64_t> seen_epoch;
  std::uint64_t epoch = 0;
};
thread_local BfsScratch tl_bfs_scratch;

}  // namespace

std::uint64_t ball_volume_words(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& ball) {
  // Membership test by binary search (balls are sorted).
  std::uint64_t volume = ball.size();
  for (const std::uint32_t v : ball) {
    for (const std::uint32_t w : adjacency[v]) {
      if (std::binary_search(ball.begin(), ball.end(), w)) ++volume;
    }
  }
  return volume;
}

BallCollection collect_balls(
    Cluster& cluster, const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t radius) {
  if (radius == 0) throw std::invalid_argument("collect_balls: radius >= 1");
  const std::size_t n = adjacency.size();
  const std::size_t machines = cluster.num_machines();

  BallCollection out;
  out.balls.resize(n);

  // The doubling schedule costs ⌈log2 radius⌉ communication rounds plus one
  // round to ship the assembled balls to their home machines. The ball
  // *contents* are computed via the doubling fixpoint equivalent — what the
  // model constrains is the per-ball volume and the round count, both of
  // which are accounted for below.
  const auto doubling_rounds = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(std::max<std::uint32_t>(radius, 2)))));
  out.rounds_charged = doubling_rounds + 1;
  cluster.charge_rounds(out.rounds_charged);

  // Owner-compute: ball(v) lands on home machine v mod N, so the worker
  // owning that machine runs v's truncated BFS (and the volume count),
  // writing only out.balls[v]/volumes[v]. The visited scratch is per
  // executor thread (epoch-stamped, see BfsScratch), so every ball's
  // contents are a pure function of (adjacency, radius).
  std::vector<std::uint64_t> volumes(n, 0);
  cluster.workers().for_each_owned_shard(
      cluster.num_threads(), [&](std::size_t home) {
        BfsScratch& scratch = tl_bfs_scratch;
        if (scratch.seen_epoch.size() < n) {
          scratch.seen_epoch.resize(n, 0);
        } else if (scratch.seen_epoch.size() > 4 * n + 4096) {
          // Threads outlive graphs; don't let one huge instance pin an
          // O(n) buffer per thread forever. Stale entries hold old epochs
          // (never 0 == a live epoch), so shrinking is always safe.
          std::vector<std::uint64_t>(n, 0).swap(scratch.seen_epoch);
        }
        std::vector<std::uint32_t> frontier, next;
        for (std::size_t i = home; i < n; i += machines) {
          const auto v = static_cast<std::uint32_t>(i);
          const std::uint64_t epoch = ++scratch.epoch;
          auto& ball = out.balls[v];
          ball.push_back(v);
          scratch.seen_epoch[v] = epoch;
          frontier.assign(1, v);
          for (std::uint32_t depth = 0; depth < radius && !frontier.empty();
               ++depth) {
            next.clear();
            for (const std::uint32_t u : frontier) {
              for (const std::uint32_t w : adjacency[u]) {
                if (scratch.seen_epoch[w] != epoch) {
                  scratch.seen_epoch[w] = epoch;
                  next.push_back(w);
                  ball.push_back(w);
                }
              }
            }
            frontier.swap(next);
          }
          std::sort(ball.begin(), ball.end());
          volumes[v] = ball_volume_words(adjacency, ball);
        }
      });
  for (std::uint32_t v = 0; v < n; ++v) {
    out.max_ball_vertices = std::max(out.max_ball_vertices, out.balls[v].size());
  }

  // Space accounting: every ball must fit on its home machine. The commits
  // are applied in vertex order on the calling thread, so peak tracking is
  // exact per machine and capacity-error attribution deterministic.
  for (std::uint32_t v = 0; v < n; ++v) {
    out.total_ball_words += volumes[v];
    cluster.account_resident(v % machines, volumes[v]);
  }
  return out;
}

}  // namespace mpcalloc::mpc
