#include "mpc/exponentiation.hpp"

#include "util/parallel.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc::mpc {

namespace {

/// Per-worker BFS visited scratch, epoch-stamped: bumping the epoch makes
/// every stale entry unseen at once, so neither a fresh ball, a fresh
/// tile, nor a fresh collect_balls call pays an O(n) clear. Workers are
/// long-lived (the global thread pool), so the buffer amortises across
/// calls; which worker owns which scratch never affects ball contents.
struct BfsScratch {
  std::vector<std::uint64_t> seen_epoch;
  std::uint64_t epoch = 0;
};
thread_local BfsScratch tl_bfs_scratch;

}  // namespace

std::uint64_t ball_volume_words(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& ball) {
  // Membership test by binary search (balls are sorted).
  std::uint64_t volume = ball.size();
  for (const std::uint32_t v : ball) {
    for (const std::uint32_t w : adjacency[v]) {
      if (std::binary_search(ball.begin(), ball.end(), w)) ++volume;
    }
  }
  return volume;
}

BallCollection collect_balls(
    Cluster& cluster, const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t radius) {
  if (radius == 0) throw std::invalid_argument("collect_balls: radius >= 1");
  const std::size_t n = adjacency.size();
  const std::size_t threads = cluster.num_threads();

  BallCollection out;
  out.balls.resize(n);

  // The doubling schedule costs ⌈log2 radius⌉ communication rounds plus one
  // round to ship the assembled balls to their home machines. The ball
  // *contents* are computed centrally (equivalent to the doubling fixpoint)
  // — what the model constrains is the per-ball volume and the round count,
  // both of which are accounted for below.
  const auto doubling_rounds = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(std::max<std::uint32_t>(radius, 2)))));
  out.rounds_charged = doubling_rounds + 1;
  cluster.charge_rounds(out.rounds_charged);

  // Each ball is an independent truncated BFS writing only out.balls[v];
  // the visited scratch is per worker (epoch-stamped, see BfsScratch), so
  // every ball's contents are a pure function of (adjacency, radius).
  parallel_for(
      0, n, kParallelTile, threads,
      [&](std::size_t tile_begin, std::size_t tile_end) {
        BfsScratch& scratch = tl_bfs_scratch;
        if (scratch.seen_epoch.size() < n) {
          scratch.seen_epoch.resize(n, 0);
        } else if (scratch.seen_epoch.size() > 4 * n + 4096) {
          // Workers outlive graphs; don't let one huge instance pin an
          // O(n) buffer per worker forever. Stale entries hold old epochs
          // (never 0 == a live epoch), so shrinking is always safe.
          std::vector<std::uint64_t>(n, 0).swap(scratch.seen_epoch);
        }
        std::vector<std::uint32_t> frontier, next;
        for (std::size_t i = tile_begin; i < tile_end; ++i) {
          const auto v = static_cast<std::uint32_t>(i);
          const std::uint64_t epoch = ++scratch.epoch;
          auto& ball = out.balls[v];
          ball.push_back(v);
          scratch.seen_epoch[v] = epoch;
          frontier.assign(1, v);
          for (std::uint32_t depth = 0; depth < radius && !frontier.empty();
               ++depth) {
            next.clear();
            for (const std::uint32_t u : frontier) {
              for (const std::uint32_t w : adjacency[u]) {
                if (scratch.seen_epoch[w] != epoch) {
                  scratch.seen_epoch[w] = epoch;
                  next.push_back(w);
                  ball.push_back(w);
                }
              }
            }
            frontier.swap(next);
          }
          std::sort(ball.begin(), ball.end());
        }
      });
  for (std::uint32_t v = 0; v < n; ++v) {
    out.max_ball_vertices = std::max(out.max_ball_vertices, out.balls[v].size());
  }

  // Space accounting: every ball must fit on a single machine. The volumes
  // are computed in parallel; the accounting (peak tracking and capacity
  // errors) is applied in vertex order on the calling thread, so it is
  // exact per machine and deterministic.
  std::vector<std::uint64_t> volumes(n, 0);
  parallel_for(0, n, kParallelTile, threads,
               [&](std::size_t tile_begin, std::size_t tile_end) {
                 for (std::size_t v = tile_begin; v < tile_end; ++v) {
                   volumes[v] = ball_volume_words(adjacency, out.balls[v]);
                 }
               });
  for (std::uint32_t v = 0; v < n; ++v) {
    out.total_ball_words += volumes[v];
    cluster.account_resident(v % cluster.num_machines(), volumes[v]);
  }
  return out;
}

}  // namespace mpcalloc::mpc
