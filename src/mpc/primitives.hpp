// Standard O(1/α)-round MPC primitives built on Cluster::shuffle:
// distributed sample sort (Goodrich–Sitchinava–Zhang style), reduce-by-key,
// broadcast, and prefix sums. These are the "known primitives" the paper's
// Section 5 leans on ("can be implemented from standard primitives such as
// graph exponentiation and sorting, which are by now standard in the MPC
// literature").
//
// Record convention: a record is `width` words; word 0 is the key.
// Splitter selection samples keys and computes the splitters centrally —
// that stands in for the one sample-and-broadcast round of TeraSort and is
// charged as such (see DESIGN.md §1 on accounting fidelity).
#pragma once

#include "mpc/cluster.hpp"
#include "util/rng.hpp"

#include <functional>

namespace mpcalloc::mpc {

/// Globally sort records by key (word 0), ascending; after the call the
/// concatenation of shards in machine order is sorted. Charges:
///   1 round (sample + splitter broadcast) + 1 round (bucket shuffle).
/// Throws MpcCapacityError if a bucket overflows its machine.
void sample_sort(Cluster& cluster, DistVec& data, Xoshiro256pp& rng);

/// Combine all records sharing a key into one, using `combine` to merge the
/// value words (in-place into the first argument). Requires nothing of the
/// input order. Charges: local pre-combine (free) + sample_sort (2 rounds)
/// + boundary merge between adjacent machines (1 round). The shard-local
/// combines run machine-parallel (Cluster::num_threads), so `combine` must
/// be safe to invoke concurrently on disjoint records — any pure function
/// of its two arguments is.
using CombineFn = std::function<void(std::span<Word> accum, std::span<const Word> next)>;
void reduce_by_key(Cluster& cluster, DistVec& data, const CombineFn& combine,
                   Xoshiro256pp& rng);

/// Sum-combine convenience: value words add up.
void sum_by_key(Cluster& cluster, DistVec& data, Xoshiro256pp& rng);

/// Broadcast a small message (≤ S words) to all machines. Returns the
/// number of rounds charged: ⌈log_f N⌉ with fan-out f = max(2, S/|msg|).
std::size_t broadcast_cost(const Cluster& cluster, std::size_t message_words);
void charge_broadcast(Cluster& cluster, std::size_t message_words);

/// Exclusive prefix sums of the key word across the global record order
/// (records keep their positions; word 0 is replaced by the prefix sum).
/// Charges 1 round for the per-machine aggregate exchange (valid while
/// N ≤ S, which Cluster::for_input guarantees for our regimes).
void exclusive_prefix_sum(Cluster& cluster, DistVec& data);

}  // namespace mpcalloc::mpc
