#include "mpc/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mpcalloc::mpc {

Cluster::Cluster(std::size_t num_machines, std::size_t machine_words,
                 std::size_t num_workers)
    : num_machines_(num_machines), machine_words_(machine_words) {
  if (num_machines == 0) throw std::invalid_argument("Cluster: need >= 1 machine");
  if (machine_words == 0) throw std::invalid_argument("Cluster: need S >= 1");
  workers_ =
      std::make_shared<WorkerGroup>(num_machines, machine_words, num_workers);
  transport_ = std::make_unique<InProcessTransport>(*workers_);
}

Cluster Cluster::for_input(std::uint64_t input_words, double alpha,
                           double slack, std::size_t min_words) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("Cluster::for_input: alpha must be in (0,1)");
  }
  const double s_real =
      std::pow(static_cast<double>(std::max<std::uint64_t>(input_words, 2)), alpha);
  const auto s = std::max<std::size_t>(
      min_words, static_cast<std::size_t>(std::ceil(s_real)));
  const auto machines = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(slack * static_cast<double>(input_words) /
                       static_cast<double>(s))));
  return Cluster(machines, s);
}

void Cluster::ensure_live() const {
  if (!workers_) {
    throw std::logic_error("Cluster: runtime is not live (moved-from)");
  }
}

void Cluster::charge_rounds(std::size_t k) {
  ensure_live();
  if (k == 0) return;
  rounds_ += k;
}

std::uint64_t Cluster::peak_machine_words() const {
  return workers_ ? workers_->peak_machine_words() : 0;
}

void Cluster::account_resident(std::size_t machine, std::uint64_t words) {
  ensure_live();
  if (machine >= num_machines_) {
    throw std::out_of_range("account_resident: machine index " +
                            std::to_string(machine) + " >= " +
                            std::to_string(num_machines_));
  }
  workers_->commit_resident(machine, words, rounds_);
  peak_total_words_ = std::max(peak_total_words_, words_moved_ + words);
}

DistVec Cluster::scatter(std::span<const Word> flat, std::size_t width) {
  ensure_live();
  if (width == 0 || flat.size() % width != 0) {
    throw std::invalid_argument("scatter: flat size not a multiple of width");
  }
  const std::size_t records = flat.size() / width;
  // Block partition: as even as possible. Each shard's record range is a
  // pure function of (records, num_machines).
  const std::size_t per_machine = (records + num_machines_ - 1) / num_machines_;
  const auto record_begin = [&](std::size_t m) {
    return std::min(records, m * per_machine);
  };
  // Rule 3 at arena commit, in machine order and before any arena is
  // filled: the shard sizes are pure arithmetic, so a violation leaves
  // every arena untouched and the error attribution is deterministic.
  for (std::size_t m = 0; m < num_machines_; ++m) {
    const std::uint64_t shard_words =
        static_cast<std::uint64_t>(
            std::min(records, record_begin(m) + per_machine) -
            record_begin(m)) *
        width;
    workers_->commit_resident(m, shard_words, rounds_);
  }
  peak_total_words_ = std::max<std::uint64_t>(peak_total_words_, flat.size());

  DistVec out = workers_->create_dist(width);
  // Owner-compute fill: every shard is populated by the worker whose arena
  // holds it.
  workers_->for_each_owned_shard(num_threads_, [&](std::size_t m) {
    const std::size_t r0 = record_begin(m);
    const std::size_t r1 = std::min(records, r0 + per_machine);
    if (r0 == r1) return;
    out.shard(m).assign(
        flat.begin() + static_cast<std::ptrdiff_t>(r0 * width),
        flat.begin() + static_cast<std::ptrdiff_t>(r1 * width));
  });
  return out;
}

void Cluster::shuffle(DistVec& data, std::span<const std::uint32_t> destination) {
  ensure_live();
  // Arena identity, not just geometry: a DistVec from another cluster would
  // be exchanged against the wrong S budget and the wrong arenas'
  // watermarks, silently voiding the capacity rules.
  if (!data.owned_by(*workers_)) {
    throw std::invalid_argument("shuffle: DistVec does not belong to cluster");
  }
  // Plan first: routing, tallies, and destination validation all happen
  // before any arena mutation; the round is charged only once the exchange
  // succeeded, so a rejected round leaves every counter (and arena) as it
  // found it.
  const RoundPlan plan = RoundPlan::build(data, destination, rounds_ + 1);
  transport_->exchange(plan, data, num_threads_);
  ++rounds_;
  words_moved_ += plan.total_words_sent();
  peak_total_words_ = std::max(peak_total_words_, plan.total_words());
}

void Cluster::reset_counters() {
  ensure_live();
  rounds_ = 0;
  words_moved_ = 0;
  peak_total_words_ = 0;
  workers_->reset_peaks();
}

}  // namespace mpcalloc::mpc
