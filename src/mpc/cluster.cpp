#include "mpc/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mpcalloc::mpc {

Cluster::Cluster(std::size_t num_machines, std::size_t machine_words,
                 std::size_t num_workers)
    : num_machines_(num_machines), machine_words_(machine_words) {
  if (num_machines == 0) throw std::invalid_argument("Cluster: need >= 1 machine");
  if (machine_words == 0) throw std::invalid_argument("Cluster: need S >= 1");
  workers_ =
      std::make_shared<WorkerGroup>(num_machines, machine_words, num_workers);
  // Honour MPCALLOC_TRANSPORT from birth, so the env knob flips every
  // cluster a test suite builds without per-site plumbing.
  transport_kind_ = resolve_transport_kind(TransportKind::kAuto);
  rebuild_transport();
}

void Cluster::rebuild_transport() {
  if (transport_kind_ == TransportKind::kProcess) {
    transport_ = std::make_unique<ProcessTransport>(*workers_, process_options_,
                                                    recovery_.get());
    // Real backends fault for real (a worker can die or miss a deadline on
    // any run, not just a chaos run), so the shuffle recovery loop must be
    // armed unconditionally; the default FaultPlan budgets apply until
    // set_fault_plan overrides them.
    fault_tolerant_ = true;
  } else {
    transport_ = std::make_unique<InProcessTransport>(*workers_);
  }
}

void Cluster::set_transport_kind(TransportKind kind,
                                 ProcessTransportOptions options) {
  ensure_live();
  if (fault_decorated_) {
    throw std::logic_error(
        "Cluster::set_transport_kind: configure the transport before "
        "set_fault_plan");
  }
  const TransportKind resolved = resolve_transport_kind(kind);
  if (resolved == transport_kind_ &&
      (resolved != TransportKind::kProcess || options == process_options_)) {
    return;
  }
  transport_kind_ = resolved;
  process_options_ = std::move(options);
  rebuild_transport();
}

Cluster Cluster::for_input(std::uint64_t input_words, double alpha,
                           double slack, std::size_t min_words) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("Cluster::for_input: alpha must be in (0,1)");
  }
  const double s_real =
      std::pow(static_cast<double>(std::max<std::uint64_t>(input_words, 2)), alpha);
  const auto s = std::max<std::size_t>(
      min_words, static_cast<std::size_t>(std::ceil(s_real)));
  const auto machines = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(slack * static_cast<double>(input_words) /
                       static_cast<double>(s))));
  return Cluster(machines, s);
}

void Cluster::ensure_live() const {
  if (!workers_) {
    throw std::logic_error("Cluster: runtime is not live (moved-from)");
  }
}

void Cluster::charge_rounds(std::size_t k) {
  ensure_live();
  if (k == 0) return;
  rounds_ += k;
}

std::uint64_t Cluster::peak_machine_words() const {
  return workers_ ? workers_->peak_machine_words() : 0;
}

void Cluster::account_resident(std::size_t machine, std::uint64_t words) {
  ensure_live();
  if (machine >= num_machines_) {
    throw std::out_of_range("account_resident: machine index " +
                            std::to_string(machine) + " >= " +
                            std::to_string(num_machines_));
  }
  workers_->commit_resident(machine, words, rounds_);
  peak_total_words_ = std::max(peak_total_words_, words_moved_ + words);
}

DistVec Cluster::scatter(std::span<const Word> flat, std::size_t width) {
  ensure_live();
  if (width == 0 || flat.size() % width != 0) {
    throw std::invalid_argument("scatter: flat size not a multiple of width");
  }
  const std::size_t records = flat.size() / width;
  // Block partition: as even as possible. Each shard's record range is a
  // pure function of (records, num_machines).
  const std::size_t per_machine = (records + num_machines_ - 1) / num_machines_;
  const auto record_begin = [&](std::size_t m) {
    return std::min(records, m * per_machine);
  };
  // Rule 3 first as pure arithmetic, in machine order, before any arena
  // commit: a violation must leave not just the arenas but also the
  // *watermarks* untouched (committing machine-by-machine and throwing
  // midway would have already raised earlier machines' peaks — the strong
  // exception guarantee forbids that).
  const auto shard_words_of = [&](std::size_t m) {
    return static_cast<std::uint64_t>(
               std::min(records, record_begin(m) + per_machine) -
               record_begin(m)) *
           width;
  };
  for (std::size_t m = 0; m < num_machines_; ++m) {
    const std::uint64_t shard_words = shard_words_of(m);
    if (shard_words > machine_words_) {
      throw MpcCapacityError(CapacityRule::kResident, m, rounds_, shard_words,
                             machine_words_);
    }
  }
  for (std::size_t m = 0; m < num_machines_; ++m) {
    workers_->commit_resident(m, shard_words_of(m), rounds_);
  }
  peak_total_words_ = std::max<std::uint64_t>(peak_total_words_, flat.size());

  DistVec out = workers_->create_dist(width);
  // Owner-compute fill: every shard is populated by the worker whose arena
  // holds it.
  workers_->for_each_owned_shard(num_threads_, [&](std::size_t m) {
    const std::size_t r0 = record_begin(m);
    const std::size_t r1 = std::min(records, r0 + per_machine);
    if (r0 == r1) return;
    out.shard(m).assign(
        flat.begin() + static_cast<std::ptrdiff_t>(r0 * width),
        flat.begin() + static_cast<std::ptrdiff_t>(r1 * width));
  });
  return out;
}

void Cluster::plan_split_rounds(RoundPlan& plan) const {
  const std::uint64_t budget = machine_words_;
  bool over = false;
  for (std::size_t m = 0; m < plan.num_machines && !over; ++m) {
    over = plan.sent[m] > budget || plan.received[m] > budget;
  }
  if (!over) return;
  const std::size_t width = plan.width;
  if (static_cast<std::uint64_t>(width) > budget) {
    throw MpcCapacityError("record width " + std::to_string(width) +
                           " exceeds S = " + std::to_string(budget) +
                           " (round " + std::to_string(plan.round) +
                           "; unsplittable)");
  }
  // First-fit wave schedule over the movers in global record order: each
  // moving record lands in the earliest wave where both its source's send
  // tally and its destination's receive tally stay within S. Width ≤ S, so
  // a fresh wave always admits the record — the schedule exists and its
  // length is a pure function of the plan, independent of thread count.
  // Only the wave *count* matters (the transport delivers everything in one
  // canonical mailbox commit, so the final shard state is bitwise identical
  // to the unsplit exchange); k waves are charged as k rounds.
  std::vector<std::vector<std::uint64_t>> wave_sent;
  std::vector<std::vector<std::uint64_t>> wave_recv;
  for (std::size_t m = 0; m < plan.num_machines; ++m) {
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      const std::uint32_t d = plan.destination[i];
      if (d == m) continue;
      std::size_t w = 0;
      for (; w < wave_sent.size(); ++w) {
        if (wave_sent[w][m] + width <= budget &&
            wave_recv[w][d] + width <= budget) {
          break;
        }
      }
      if (w == wave_sent.size()) {
        wave_sent.emplace_back(plan.num_machines, 0);
        wave_recv.emplace_back(plan.num_machines, 0);
      }
      wave_sent[w][m] += width;
      wave_recv[w][d] += width;
    }
  }
  plan.sub_rounds = std::max<std::size_t>(wave_sent.size(), 1);
}

void Cluster::shuffle(DistVec& data, std::span<const std::uint32_t> destination) {
  ensure_live();
  // Arena identity, not just geometry: a DistVec from another cluster would
  // be exchanged against the wrong S budget and the wrong arenas'
  // watermarks, silently voiding the capacity rules.
  if (!data.owned_by(*workers_)) {
    throw std::invalid_argument("shuffle: DistVec does not belong to cluster");
  }
  // Plan first: routing, tallies, and destination validation all happen
  // before any arena mutation; the round is charged only once the exchange
  // succeeded, so a rejected round leaves every counter (and arena) as it
  // found it.
  RoundPlan plan = RoundPlan::build(data, destination, rounds_ + 1);
  if (overflow_policy_ == OverflowPolicy::kSplitExchange) {
    plan_split_rounds(plan);
  }

  if (!fault_tolerant_) {
    transport_->exchange(plan, data, num_threads_);
  } else {
    // Recovery loop. The pre-exchange copy of the in-flight dataset is
    // simulator-side memory only — it exists so a corrupted exchange can be
    // rolled back and replayed without perturbing any model counter.
    std::vector<std::vector<Word>> backup(data.num_shards());
    for (std::size_t m = 0; m < data.num_shards(); ++m) {
      backup[m] = data.shard(m);
    }
    for (std::uint32_t attempt = 0;; ++attempt) {
      try {
        transport_->exchange(plan, data, num_threads_);
        break;
      } catch (const TransportFault& fault) {
        ++recovery_->faults_injected;
        // A crashed worker lost arena blocks of *every* live dataset — more
        // than this exchange can see. Escalate to the driver's checkpoint
        // restore.
        if (fault.kind() == FaultKind::kWorkerCrash) throw;
        if (attempt >= fault_plan_.max_retries) throw;
        ++recovery_->exchange_retries;
        // Deterministic backoff accounting: a delayed delivery charges its
        // drawn delay, everything else an exponential 2^attempt wait. These
        // are recovery rounds, not model rounds.
        recovery_->backoff_rounds += fault.delay_rounds() > 0
                                        ? fault.delay_rounds()
                                        : (std::uint64_t{1} << attempt);
        if (fault.corrupts_data()) {
          // Partial delivery: put the in-flight dataset back and rebuild
          // the plan before replaying.
          std::uint64_t restored = 0;
          for (std::size_t m = 0; m < data.num_shards(); ++m) {
            restored += backup[m].size();
            data.shard(m) = backup[m];
          }
          recovery_->restored_words += restored;
          ++recovery_->replayed_exchanges;
          plan = RoundPlan::build(data, destination, rounds_ + 1);
          if (overflow_policy_ == OverflowPolicy::kSplitExchange) {
            plan_split_rounds(plan);
          }
        }
      }
    }
  }

  rounds_ += plan.sub_rounds;
  if (plan.sub_rounds > 1) {
    ++recovery_->split_exchanges;
    recovery_->split_extra_rounds += plan.sub_rounds - 1;
  }
  words_moved_ += plan.total_words_sent();
  peak_total_words_ = std::max(peak_total_words_, plan.total_words());
}

void Cluster::set_fault_plan(FaultPlan plan) {
  ensure_live();
  fault_plan_ = plan;
  fault_tolerant_ = true;
  fault_decorated_ = true;
  transport_ = std::make_unique<FaultInjectingTransport>(
      std::move(transport_), *workers_, std::move(plan));
}

ClusterCheckpoint Cluster::checkpoint() {
  ensure_live();
  ++recovery_->checkpoints_taken;
  ClusterCheckpoint cp;
  cp.rounds = rounds_;
  cp.words_moved = words_moved_;
  cp.peak_total_words = peak_total_words_;
  cp.arenas = workers_->snapshot_arenas();
  return cp;
}

void Cluster::restore(const ClusterCheckpoint& cp) {
  ensure_live();
  if (cp.rounds > rounds_ || cp.words_moved > words_moved_) {
    throw std::invalid_argument(
        "Cluster::restore: checkpoint is ahead of the cluster");
  }
  ++recovery_->checkpoint_restores;
  // The work since the checkpoint is discarded and will be re-charged by
  // the replay — fold it into the recovery stats so it stays visible
  // without perturbing the model counters.
  recovery_->replayed_rounds += rounds_ - cp.rounds;
  recovery_->discarded_words_moved += words_moved_ - cp.words_moved;
  rounds_ = cp.rounds;
  words_moved_ = cp.words_moved;
  peak_total_words_ = cp.peak_total_words;
  workers_->restore_arenas(cp.arenas);
}

void Cluster::reset_counters() {
  ensure_live();
  rounds_ = 0;
  words_moved_ = 0;
  peak_total_words_ = 0;
  *recovery_ = MpcRecoveryStats{};
  workers_->reset_peaks();
}

}  // namespace mpcalloc::mpc
