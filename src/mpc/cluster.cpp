#include "mpc/cluster.hpp"

#include "mpc/shard_parallel.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc::mpc {

std::size_t DistVec::num_records() const {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  return width == 0 ? 0 : total / width;
}

std::size_t DistVec::num_words() const {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  return total;
}

std::vector<Word> DistVec::gather(std::size_t num_threads) const {
  std::vector<std::size_t> offset(shards.size() + 1, 0);
  for (std::size_t m = 0; m < shards.size(); ++m) {
    offset[m + 1] = offset[m] + shards[m].size();
  }
  std::vector<Word> flat(offset.back());
  detail::for_each_shard(shards.size(), num_threads, [&](std::size_t m) {
    std::copy(shards[m].begin(), shards[m].end(),
              flat.begin() + static_cast<std::ptrdiff_t>(offset[m]));
  });
  return flat;
}

Cluster::Cluster(std::size_t num_machines, std::size_t machine_words)
    : num_machines_(num_machines), machine_words_(machine_words) {
  if (num_machines == 0) throw std::invalid_argument("Cluster: need >= 1 machine");
  if (machine_words == 0) throw std::invalid_argument("Cluster: need S >= 1");
}

Cluster Cluster::for_input(std::uint64_t input_words, double alpha,
                           double slack, std::size_t min_words) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("Cluster::for_input: alpha must be in (0,1)");
  }
  const double s_real =
      std::pow(static_cast<double>(std::max<std::uint64_t>(input_words, 2)), alpha);
  const auto s = std::max<std::size_t>(
      min_words, static_cast<std::size_t>(std::ceil(s_real)));
  const auto machines = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(slack * static_cast<double>(input_words) /
                       static_cast<double>(s))));
  return Cluster(machines, s);
}

void Cluster::note_machine_load(std::uint64_t words) {
  peak_machine_words_ = std::max(peak_machine_words_, words);
  if (words > machine_words_) {
    throw MpcCapacityError("machine holds " + std::to_string(words) +
                           " words, S = " + std::to_string(machine_words_));
  }
}

void Cluster::account_resident(std::size_t machine, std::uint64_t words) {
  if (machine >= num_machines_) {
    throw std::out_of_range("account_resident: machine index");
  }
  note_machine_load(words);
  peak_total_words_ = std::max(peak_total_words_, words_moved_ + words);
}

DistVec Cluster::scatter(std::span<const Word> flat, std::size_t width) {
  if (width == 0 || flat.size() % width != 0) {
    throw std::invalid_argument("scatter: flat size not a multiple of width");
  }
  const std::size_t records = flat.size() / width;
  DistVec out;
  out.width = width;
  out.shards.assign(num_machines_, {});
  // Block partition: as even as possible. Each shard's record range is a
  // pure function of (records, num_machines), so the shard fills are
  // independent and run machine-parallel.
  const std::size_t per_machine = (records + num_machines_ - 1) /
                                  std::max<std::size_t>(num_machines_, 1);
  detail::for_each_shard(num_machines_, num_threads_, [&](std::size_t m) {
    const std::size_t r0 = std::min(records, m * per_machine);
    const std::size_t r1 = std::min(records, r0 + per_machine);
    if (r0 == r1) return;
    out.shards[m].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(r0 * width),
        flat.begin() + static_cast<std::ptrdiff_t>(r1 * width));
  });
  // Capacity accounting stays on the calling thread, shard-by-shard in
  // machine order, so the peak tracking (and any capacity error) is exact
  // and independent of scheduling.
  std::uint64_t total = 0;
  for (const auto& s : out.shards) {
    note_machine_load(s.size());
    total += s.size();
  }
  peak_total_words_ = std::max(peak_total_words_, total);
  return out;
}

void Cluster::shuffle(DistVec& data, std::span<const std::uint32_t> destination) {
  if (data.shards.size() != num_machines_) {
    throw std::invalid_argument("shuffle: DistVec does not belong to cluster");
  }
  if (destination.size() != data.num_records()) {
    throw std::invalid_argument("shuffle: destination size != record count");
  }

  const std::size_t width = data.width;
  const std::size_t total_records = destination.size();

  // Record-index prefix per source shard (record i of the global order
  // lives on the machine whose range contains i).
  std::vector<std::size_t> shard_first(num_machines_ + 1, 0);
  for (std::size_t m = 0; m < num_machines_; ++m) {
    shard_first[m + 1] = shard_first[m] + data.shards[m].size() / width;
  }
  std::vector<std::uint32_t> source_of(total_records);
  detail::for_each_shard(num_machines_, num_threads_, [&](std::size_t m) {
    std::fill(source_of.begin() + static_cast<std::ptrdiff_t>(shard_first[m]),
              source_of.begin() + static_cast<std::ptrdiff_t>(shard_first[m + 1]),
              static_cast<std::uint32_t>(m));
  });

  // Stable counting sort by destination: count, prefix, then place record
  // indices in global order — each destination's slice of `ordered` keeps
  // the source order a sequential scan would deliver, in O(R) with no
  // comparison sort. The count pass doubles as destination validation,
  // before any state is mutated.
  std::vector<std::size_t> dest_begin(num_machines_ + 1, 0);
  for (std::size_t i = 0; i < total_records; ++i) {
    const std::uint32_t dest = destination[i];
    if (dest >= num_machines_) {
      throw std::out_of_range("shuffle: destination machine out of range");
    }
    ++dest_begin[dest + 1];
  }
  for (std::size_t m = 0; m < num_machines_; ++m) {
    dest_begin[m + 1] += dest_begin[m];
  }
  std::vector<std::uint32_t> ordered(total_records);
  {
    std::vector<std::size_t> cursor(dest_begin.begin(), dest_begin.end() - 1);
    for (std::size_t i = 0; i < total_records; ++i) {
      ordered[cursor[destination[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  // Assemble every destination shard in parallel; the words sent/received
  // tallies are per-machine and written disjointly.
  std::vector<std::uint64_t> sent(num_machines_, 0);
  std::vector<std::uint64_t> received(num_machines_, 0);
  std::vector<std::vector<Word>> next(num_machines_);
  detail::for_each_shard(num_machines_, num_threads_, [&](std::size_t d) {
    auto& shard = next[d];
    shard.reserve((dest_begin[d + 1] - dest_begin[d]) * width);
    std::uint64_t received_here = 0;
    for (std::size_t k = dest_begin[d]; k < dest_begin[d + 1]; ++k) {
      const std::size_t i = ordered[k];
      const std::size_t src = source_of[i];
      const Word* record =
          data.shards[src].data() + (i - shard_first[src]) * width;
      shard.insert(shard.end(), record, record + width);
      if (src != d) received_here += width;
    }
    received[d] = received_here;
  });
  detail::for_each_shard(num_machines_, num_threads_, [&](std::size_t m) {
    std::uint64_t sent_here = 0;
    for (std::size_t i = shard_first[m]; i < shard_first[m + 1]; ++i) {
      if (destination[i] != m) sent_here += width;
    }
    sent[m] = sent_here;
  });

  // Capacity rules and counters: applied machine-by-machine in order on the
  // calling thread — exact per shard, deterministic error attribution.
  ++rounds_;
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < num_machines_; ++m) {
    if (sent[m] > machine_words_) {
      throw MpcCapacityError("machine " + std::to_string(m) + " sends " +
                             std::to_string(sent[m]) + " words in one round");
    }
    if (received[m] > machine_words_) {
      throw MpcCapacityError("machine " + std::to_string(m) + " receives " +
                             std::to_string(received[m]) +
                             " words in one round");
    }
    words_moved_ += sent[m];
    note_machine_load(next[m].size());
    total += next[m].size();
  }
  peak_total_words_ = std::max(peak_total_words_, total);
  data.shards = std::move(next);
}

void Cluster::reset_counters() {
  rounds_ = 0;
  words_moved_ = 0;
  peak_machine_words_ = 0;
  peak_total_words_ = 0;
}

}  // namespace mpcalloc::mpc
