#include "mpc/cluster.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc::mpc {

std::size_t DistVec::num_records() const {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  return width == 0 ? 0 : total / width;
}

std::size_t DistVec::num_words() const {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  return total;
}

std::vector<Word> DistVec::gather() const {
  std::vector<Word> flat;
  flat.reserve(num_words());
  for (const auto& s : shards) flat.insert(flat.end(), s.begin(), s.end());
  return flat;
}

Cluster::Cluster(std::size_t num_machines, std::size_t machine_words)
    : num_machines_(num_machines), machine_words_(machine_words) {
  if (num_machines == 0) throw std::invalid_argument("Cluster: need >= 1 machine");
  if (machine_words == 0) throw std::invalid_argument("Cluster: need S >= 1");
}

Cluster Cluster::for_input(std::uint64_t input_words, double alpha,
                           double slack, std::size_t min_words) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("Cluster::for_input: alpha must be in (0,1)");
  }
  const double s_real =
      std::pow(static_cast<double>(std::max<std::uint64_t>(input_words, 2)), alpha);
  const auto s = std::max<std::size_t>(
      min_words, static_cast<std::size_t>(std::ceil(s_real)));
  const auto machines = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(slack * static_cast<double>(input_words) /
                       static_cast<double>(s))));
  return Cluster(machines, s);
}

void Cluster::note_machine_load(std::uint64_t words) {
  peak_machine_words_ = std::max(peak_machine_words_, words);
  if (words > machine_words_) {
    throw MpcCapacityError("machine holds " + std::to_string(words) +
                           " words, S = " + std::to_string(machine_words_));
  }
}

void Cluster::account_resident(std::size_t machine, std::uint64_t words) {
  if (machine >= num_machines_) {
    throw std::out_of_range("account_resident: machine index");
  }
  note_machine_load(words);
  peak_total_words_ = std::max(peak_total_words_, words_moved_ + words);
}

DistVec Cluster::scatter(std::span<const Word> flat, std::size_t width) {
  if (width == 0 || flat.size() % width != 0) {
    throw std::invalid_argument("scatter: flat size not a multiple of width");
  }
  const std::size_t records = flat.size() / width;
  DistVec out;
  out.width = width;
  out.shards.assign(num_machines_, {});
  // Block partition: as even as possible.
  const std::size_t per_machine = (records + num_machines_ - 1) /
                                  std::max<std::size_t>(num_machines_, 1);
  std::size_t r = 0;
  for (std::size_t m = 0; m < num_machines_ && r < records; ++m) {
    const std::size_t take = std::min(per_machine, records - r);
    out.shards[m].assign(flat.begin() + static_cast<std::ptrdiff_t>(r * width),
                         flat.begin() + static_cast<std::ptrdiff_t>((r + take) * width));
    note_machine_load(out.shards[m].size());
    r += take;
  }
  std::uint64_t total = 0;
  for (const auto& s : out.shards) total += s.size();
  peak_total_words_ = std::max(peak_total_words_, total);
  return out;
}

void Cluster::shuffle(DistVec& data, std::span<const std::uint32_t> destination) {
  if (data.shards.size() != num_machines_) {
    throw std::invalid_argument("shuffle: DistVec does not belong to cluster");
  }
  if (destination.size() != data.num_records()) {
    throw std::invalid_argument("shuffle: destination size != record count");
  }

  std::vector<std::uint64_t> sent(num_machines_, 0);
  std::vector<std::uint64_t> received(num_machines_, 0);
  std::vector<std::vector<Word>> next(num_machines_);

  std::size_t record_index = 0;
  for (std::size_t m = 0; m < num_machines_; ++m) {
    const auto& shard = data.shards[m];
    const std::size_t records_here = shard.size() / data.width;
    for (std::size_t r = 0; r < records_here; ++r, ++record_index) {
      const std::uint32_t dest = destination[record_index];
      if (dest >= num_machines_) {
        throw std::out_of_range("shuffle: destination machine out of range");
      }
      const auto* begin = shard.data() + r * data.width;
      next[dest].insert(next[dest].end(), begin, begin + data.width);
      if (dest != m) {
        sent[m] += data.width;
        received[dest] += data.width;
      }
    }
  }

  ++rounds_;
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < num_machines_; ++m) {
    if (sent[m] > machine_words_) {
      throw MpcCapacityError("machine " + std::to_string(m) + " sends " +
                             std::to_string(sent[m]) + " words in one round");
    }
    if (received[m] > machine_words_) {
      throw MpcCapacityError("machine " + std::to_string(m) + " receives " +
                             std::to_string(received[m]) +
                             " words in one round");
    }
    words_moved_ += sent[m];
    note_machine_load(next[m].size());
    total += next[m].size();
  }
  peak_total_words_ = std::max(peak_total_words_, total);
  data.shards = std::move(next);
}

void Cluster::reset_counters() {
  rounds_ = 0;
  words_moved_ = 0;
  peak_machine_words_ = 0;
  peak_total_words_ = 0;
}

}  // namespace mpcalloc::mpc
