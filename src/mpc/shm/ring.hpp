// Fixed-size-packet SPSC ring queues in shared memory — the wire layer of
// the real-process MPC backend (mpc/process_transport.*).
//
// Layout follows the packet-pool style of Princeton CPF's ppool_shm_queue /
// communicate.h runtimes: one shared segment per coordinator↔worker pair,
// holding a channel header (heartbeat + readiness) and two single-producer
// single-consumer rings of 64-byte packets (tx: coordinator→worker, rx:
// worker→coordinator). Each side only ever produces on one ring and
// consumes on the other, so the synchronisation is two monotonic indices
// per ring: the producer writes slots then release-stores `tail`, the
// consumer acquire-loads `tail`, copies, then release-stores `head`.
// Producers batch their tail publications (`flush()` every
// `flush_packets`), which is where the throughput comes from — one
// release-store amortised over a burst of packets instead of one per
// packet.
//
// Everything in this header is usable from a forked child that must not
// touch the heap: the views are raw-pointer wrappers over a mapping
// established before fork, and no method allocates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mpcalloc::mpc::shm {

using Word = std::uint64_t;

/// Payload words per packet: header (16 bytes of routing + 8 of epoch +
/// 8 of argument) plus 5 words of payload = exactly one cache line.
inline constexpr std::size_t kPacketPayloadWords = 5;

/// Packet types of the exchange protocol (process_transport.cpp documents
/// the sequencing; the ring layer just moves them).
enum class PacketType : std::uint16_t {
  kNone = 0,
  kBeginExchange = 1,  ///< coordinator→worker: reset assembly, adopt epoch
  kShardSize = 2,      ///< coordinator→worker: machine will hold `arg` words
  kData = 3,           ///< coordinator→worker: payload at shard offset `arg`
  kEndExchange = 4,    ///< coordinator→worker: all data sent, echo shards
  kShardData = 5,      ///< worker→coordinator: assembled words at offset `arg`
  kShardDone = 6,      ///< worker→coordinator: machine total is `arg` words
  kExchangeDone = 7,   ///< worker→coordinator: every owned shard echoed
  kError = 8,          ///< worker→coordinator: protocol/capacity violation
  kShutdown = 9,       ///< coordinator→worker: exit cleanly
};

struct alignas(64) Packet {
  std::uint16_t type = 0;    ///< PacketType
  std::uint16_t count = 0;   ///< payload words used (≤ kPacketPayloadWords)
  std::uint32_t machine = 0;
  std::uint64_t epoch = 0;   ///< exchange epoch (stale-packet filter)
  std::uint64_t arg = 0;     ///< word offset / word count / error code
  Word payload[kPacketPayloadWords];
};
static_assert(sizeof(Packet) == 64, "one packet per cache line");

/// The two ring indices, each on its own cache line so the producer's tail
/// stores never false-share with the consumer's head stores.
struct RingControl {
  alignas(64) std::atomic<std::uint64_t> head;  ///< next slot to consume
  alignas(64) std::atomic<std::uint64_t> tail;  ///< next slot to produce
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory rings need lock-free 64-bit atomics");

/// Per-channel header: the worker's liveness signal. The worker bumps
/// `heartbeat` on every loop iteration and while spinning on a full ring,
/// so a SIGSTOPped (or dead) worker is distinguishable from a slow one by
/// heartbeat staleness alone. `ready` flips to 1 once the worker loop is
/// entered (spawn handshake).
struct alignas(64) ChannelHeader {
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint32_t> ready;
};

/// Producer-side view. Exactly one thread of one process may use it.
class RingProducer {
 public:
  RingProducer() = default;
  RingProducer(RingControl* control, Packet* slots, std::size_t capacity,
               std::size_t flush_packets)
      : control_(control),
        slots_(slots),
        capacity_(capacity),
        flush_packets_(flush_packets > 0 ? flush_packets : 1),
        tail_cache_(control->tail.load(std::memory_order_relaxed)),
        head_cache_(control->head.load(std::memory_order_relaxed)) {}

  /// Append one packet if a slot is free. The packet becomes visible to the
  /// consumer at the next flush() (or automatically after `flush_packets`
  /// unflushed appends). Returns false when the ring is full.
  bool try_push(const Packet& packet) {
    if (tail_cache_ - head_cache_ >= capacity_) {
      head_cache_ = control_->head.load(std::memory_order_acquire);
      if (tail_cache_ - head_cache_ >= capacity_) return false;
    }
    slots_[tail_cache_ % capacity_] = packet;
    ++tail_cache_;
    if (++unflushed_ >= flush_packets_) flush();
    return true;
  }

  /// Publish every appended packet (release-store the tail).
  void flush() {
    if (unflushed_ == 0) return;
    control_->tail.store(tail_cache_, std::memory_order_release);
    unflushed_ = 0;
  }

 private:
  RingControl* control_ = nullptr;
  Packet* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t flush_packets_ = 1;
  std::uint64_t tail_cache_ = 0;
  std::uint64_t head_cache_ = 0;
  std::size_t unflushed_ = 0;
};

/// Consumer-side view. Exactly one thread of one process may use it.
class RingConsumer {
 public:
  RingConsumer() = default;
  RingConsumer(RingControl* control, Packet* slots, std::size_t capacity)
      : control_(control),
        slots_(slots),
        capacity_(capacity),
        head_cache_(control->head.load(std::memory_order_relaxed)),
        tail_cache_(control->tail.load(std::memory_order_relaxed)) {}

  /// Copy out the next packet if one is published. Returns false when the
  /// ring is (currently) empty.
  bool try_pop(Packet* out) {
    if (head_cache_ == tail_cache_) {
      tail_cache_ = control_->tail.load(std::memory_order_acquire);
      if (head_cache_ == tail_cache_) return false;
    }
    *out = slots_[head_cache_ % capacity_];
    ++head_cache_;
    control_->head.store(head_cache_, std::memory_order_release);
    return true;
  }

 private:
  RingControl* control_ = nullptr;
  Packet* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::uint64_t head_cache_ = 0;
  std::uint64_t tail_cache_ = 0;
};

/// Offsets of one coordinator↔worker channel inside its shared segment:
/// [ChannelHeader][tx RingControl][tx slots][rx RingControl][rx slots].
struct ChannelLayout {
  std::size_t ring_packets = 0;
  std::size_t header_offset = 0;
  std::size_t tx_control_offset = 0;
  std::size_t tx_slots_offset = 0;
  std::size_t rx_control_offset = 0;
  std::size_t rx_slots_offset = 0;
  std::size_t segment_bytes = 0;

  static ChannelLayout for_ring_packets(std::size_t ring_packets) {
    ChannelLayout layout;
    layout.ring_packets = ring_packets;
    std::size_t offset = 0;
    const auto take = [&offset](std::size_t bytes) {
      const std::size_t at = offset;
      offset += (bytes + 63) / 64 * 64;
      return at;
    };
    layout.header_offset = take(sizeof(ChannelHeader));
    layout.tx_control_offset = take(sizeof(RingControl));
    layout.tx_slots_offset = take(ring_packets * sizeof(Packet));
    layout.rx_control_offset = take(sizeof(RingControl));
    layout.rx_slots_offset = take(ring_packets * sizeof(Packet));
    layout.segment_bytes = offset;
    return layout;
  }

  [[nodiscard]] ChannelHeader* header(void* base) const {
    return at<ChannelHeader>(base, header_offset);
  }
  [[nodiscard]] RingControl* tx_control(void* base) const {
    return at<RingControl>(base, tx_control_offset);
  }
  [[nodiscard]] Packet* tx_slots(void* base) const {
    return at<Packet>(base, tx_slots_offset);
  }
  [[nodiscard]] RingControl* rx_control(void* base) const {
    return at<RingControl>(base, rx_control_offset);
  }
  [[nodiscard]] Packet* rx_slots(void* base) const {
    return at<Packet>(base, rx_slots_offset);
  }

 private:
  template <typename T>
  static T* at(void* base, std::size_t offset) {
    return reinterpret_cast<T*>(static_cast<char*>(base) + offset);
  }
};

}  // namespace mpcalloc::mpc::shm
