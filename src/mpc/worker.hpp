// Per-worker shard ownership for the MPC runtime (Section 2.3 of the paper).
//
// The simulated cluster's N machines are partitioned into fixed contiguous
// ranges, one per runtime worker. Each Worker holds its machines' shards in
// a private arena and is the only execution context that runs shard-local
// compute on them (owner-compute affinity: WorkerGroup::for_each_owned_shard
// dispatches exactly one deterministic-executor tile per worker, so a
// worker's shards are always processed together on a single thread).
// Records cross shard boundaries only through the Transport
// (mpc/transport.hpp); the Cluster (mpc/cluster.hpp) orchestrates.
//
// Capacity rule 3 of the model — per-machine resident words ≤ S — is
// enforced when a shard is committed into an arena, and each arena keeps
// the resident high-watermark that Theorem 3 bounds; the Cluster reads its
// peak_machine_words off the arenas instead of tracking a post-hoc global
// maximum.
//
// Determinism: the ownership partition is a pure function of
// (num_machines, num_workers), and every per-machine result is a pure
// function of that machine's records — so shard contents, record streams,
// and all counters are bitwise independent of both the worker count and
// the executor thread count (the determinism matrices assert this).
#pragma once

#include "util/parallel.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcalloc::mpc {

using Word = std::uint64_t;

/// The MPC model's three per-machine capacity rules (S-word budgets).
enum class CapacityRule : std::uint8_t {
  kNone = 0,      ///< unattributed (legacy string-constructed errors)
  kSend = 1,      ///< rule 1: words sent in one round ≤ S
  kReceive = 2,   ///< rule 2: words received in one round ≤ S
  kResident = 3,  ///< rule 3: words resident after delivery ≤ S
};

[[nodiscard]] const char* capacity_rule_name(CapacityRule rule);

/// Thrown when an operation would exceed a machine's S-word budget. Carries
/// structured context — which machine, in which round, which rule, and the
/// observed vs budgeted word counts — so callers can report or test the
/// exact violation instead of parsing the message.
class MpcCapacityError : public std::runtime_error {
 public:
  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

  MpcCapacityError(CapacityRule rule, std::size_t machine, std::size_t round,
                   std::uint64_t observed_words, std::uint64_t budget_words);

  /// Unattributed violation (no single machine at fault, e.g. a broadcast
  /// message that exceeds S before any routing happens).
  explicit MpcCapacityError(const std::string& what);

  [[nodiscard]] CapacityRule rule() const { return rule_; }
  [[nodiscard]] bool has_machine() const { return machine_ != kNoMachine; }
  [[nodiscard]] std::size_t machine() const { return machine_; }
  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] std::uint64_t observed_words() const { return observed_words_; }
  [[nodiscard]] std::uint64_t budget_words() const { return budget_words_; }

 private:
  CapacityRule rule_ = CapacityRule::kNone;
  std::size_t machine_ = kNoMachine;
  std::size_t round_ = 0;
  std::uint64_t observed_words_ = 0;
  std::uint64_t budget_words_ = 0;
};

/// Handle to one machine's shard inside its owning worker's arena.
struct ShardView {
  std::uint32_t owner = 0;             ///< worker id whose arena holds the shard
  std::vector<Word>* words = nullptr;  ///< shard storage inside that arena
};

class WorkerGroup;

namespace detail {

/// One worker's block of shard storage for a distributed dataset. The block
/// belongs to that worker's arena: outside a Transport exchange, only the
/// owning worker's execution context touches it.
struct ArenaBlock {
  std::size_t first_machine = 0;
  std::vector<std::vector<Word>> shards;  ///< one per owned machine
};

struct DistStorage {
  const WorkerGroup* group = nullptr;  ///< the runtime the arenas belong to
  std::vector<ArenaBlock> blocks;      ///< indexed by worker id
};

}  // namespace detail

/// Deep copy of every live dataset's arena contents plus the per-worker
/// resident high-watermarks — the arena half of a cluster checkpoint.
/// Datasets are tracked by weak reference: a dataset that died between
/// snapshot and restore is simply skipped (its records were transient),
/// and a dataset created after the snapshot is left alone (the replaying
/// caller recreates it deterministically).
struct ArenaSnapshot {
  struct StorageSnap {
    std::weak_ptr<detail::DistStorage> storage;
    /// blocks[worker][owned shard] -> record words at snapshot time.
    std::vector<std::vector<std::vector<Word>>> blocks;
  };
  std::vector<StorageSnap> storages;
  std::vector<std::uint64_t> worker_peaks;  ///< one per worker
  [[nodiscard]] std::uint64_t total_words() const;
};

/// A dataset of fixed-width records sharded across machines: a handle of
/// per-worker ShardViews into the workers' arenas. Shard m holds machine
/// m's records back to back, each width() words; the storage is shared, so
/// copies of the handle alias the same shards.
class DistVec {
 public:
  DistVec() = default;

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t num_shards() const { return views_.size(); }
  [[nodiscard]] const std::vector<Word>& shard(std::size_t machine) const;
  [[nodiscard]] std::vector<Word>& shard(std::size_t machine);
  /// Worker id whose arena holds machine `machine`'s shard.
  [[nodiscard]] std::size_t shard_owner(std::size_t machine) const;
  /// True iff this handle's shards live in `group`'s arenas.
  [[nodiscard]] bool owned_by(const WorkerGroup& group) const;

  [[nodiscard]] std::size_t num_records() const;
  [[nodiscard]] std::size_t num_words() const;

  /// Collect all records into one flat vector (simulator-side inspection —
  /// not an MPC operation; use for verification/tests only). `num_threads`
  /// parallelises the per-shard copies; the default runs sequentially and
  /// 0 means auto (the result is identical for any value).
  [[nodiscard]] std::vector<Word> gather(std::size_t num_threads = 1) const;

 private:
  friend class WorkerGroup;

  std::size_t width_ = 1;
  std::vector<ShardView> views_;  ///< one per machine
  std::shared_ptr<detail::DistStorage> storage_;
};

/// One runtime worker: owns the contiguous machine range
/// [first_machine, end_machine) and the arena-commit accounting for it.
class Worker {
 public:
  Worker(std::size_t id, std::size_t first_machine, std::size_t end_machine,
         std::size_t machine_words);

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] std::size_t first_machine() const { return first_machine_; }
  [[nodiscard]] std::size_t end_machine() const { return end_machine_; }
  [[nodiscard]] std::size_t num_owned() const { return end_machine_ - first_machine_; }
  [[nodiscard]] std::size_t machine_words() const { return machine_words_; }

  /// Arena commit: `words` become resident for owned machine `machine`.
  /// Records the arena high-watermark and enforces capacity rule 3,
  /// throwing a structured MpcCapacityError on violation. Callers must
  /// serialise per worker: either the owning worker's executor tile or the
  /// orchestrator between passes — never both concurrently.
  void commit_resident(std::size_t machine, std::uint64_t words,
                       std::size_t round);

  /// Resident high-watermark across this worker's machines (what the
  /// Cluster folds into peak_machine_words).
  [[nodiscard]] std::uint64_t peak_words() const { return peak_words_; }
  void reset_peak() { peak_words_ = 0; }
  /// Checkpoint restore: put a previously observed watermark back verbatim
  /// (never used to account new residency — commit_resident does that).
  void restore_peak(std::uint64_t peak) { peak_words_ = peak; }

 private:
  std::size_t id_;
  std::size_t first_machine_;
  std::size_t end_machine_;
  std::size_t machine_words_;
  std::uint64_t peak_words_ = 0;
};

/// The fixed partition of machines across workers, plus the owner-compute
/// dispatcher. Created by the Cluster; the partition never changes for the
/// lifetime of the group, so ShardViews handed out by create_dist stay
/// valid for as long as the dataset's storage lives.
class WorkerGroup {
 public:
  /// num_workers = 0 picks min(num_machines, resolve_num_threads(0)).
  WorkerGroup(std::size_t num_machines, std::size_t machine_words,
              std::size_t num_workers = 0);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t num_machines() const { return num_machines_; }
  [[nodiscard]] std::size_t machine_words() const { return machine_words_; }

  [[nodiscard]] Worker& worker(std::size_t w) { return workers_[w]; }
  [[nodiscard]] const Worker& worker(std::size_t w) const { return workers_[w]; }
  [[nodiscard]] std::size_t owner_of(std::size_t machine) const;

  /// Allocate per-worker arena blocks for a new dataset and hand back the
  /// DistVec of ShardViews over them.
  [[nodiscard]] DistVec create_dist(std::size_t width) const;

  /// Owner-compute pass: run fn(machine) for every machine in [0, N), with
  /// exactly one deterministic-executor tile per worker — a worker's
  /// machines are processed together, in machine order, on a single thread.
  /// num_threads caps the parallelism (0 = auto); which thread serves which
  /// worker is scheduling noise, what is computed per machine is not.
  /// Templated so the per-machine dispatch stays direct on the hot path.
  template <typename Fn>
  void for_each_owned_shard(std::size_t num_threads, const Fn& fn) {
    parallel_for(0, workers_.size(), /*tile_size=*/1, num_threads,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t w = begin; w < end; ++w) {
                     const Worker& worker = workers_[w];
                     for (std::size_t m = worker.first_machine();
                          m < worker.end_machine(); ++m) {
                       if (observer_) observer_(w, m);
                       fn(m);
                     }
                   }
                 });
  }

  /// Test/audit hook: called as observer(worker, machine) on the executing
  /// thread for every owned-shard visit (before fn). Pass nullptr to clear.
  using AffinityObserver = std::function<void(std::size_t, std::size_t)>;
  void set_affinity_observer(AffinityObserver observer);

  /// Route an arena commit to the machine's owning worker (see
  /// Worker::commit_resident for the rule-3/watermark contract).
  void commit_resident(std::size_t machine, std::uint64_t words,
                       std::size_t round);

  /// Max resident high-watermark across all arenas.
  [[nodiscard]] std::uint64_t peak_machine_words() const;
  void reset_peaks();

  // -- fault tolerance ---------------------------------------------------
  /// Deep-copy every live dataset's shards and the worker watermarks.
  [[nodiscard]] ArenaSnapshot snapshot_arenas() const;
  /// Put the snapshotted shard contents and watermarks back. Datasets that
  /// died since the snapshot are skipped; ones born since are untouched.
  void restore_arenas(const ArenaSnapshot& snapshot);
  /// Simulate worker `w` dying mid-round: its arena blocks of every live
  /// dataset are wiped (the records are lost, the partition and the
  /// watermark history survive on the substrate). Recovery is the caller's
  /// job via restore_arenas.
  void crash_worker(std::size_t w);
  /// Live datasets currently registered against this group's arenas.
  [[nodiscard]] std::size_t num_live_storages() const;

 private:
  std::size_t num_machines_;
  std::size_t machine_words_;
  std::vector<Worker> workers_;
  AffinityObserver observer_;
  /// Every dataset ever created against these arenas, by weak reference —
  /// what checkpoint/crash need to reach "all shards of all live datasets".
  /// Pruned opportunistically; mutable because registering a new dataset
  /// does not change the group's observable partition/accounting state.
  mutable std::vector<std::weak_ptr<detail::DistStorage>> storages_;
};

}  // namespace mpcalloc::mpc
