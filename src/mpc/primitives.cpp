#include "mpc/primitives.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mpcalloc::mpc {

namespace {

/// View a shard as records and sort them locally by key (word 0).
void local_sort(std::vector<Word>& shard, std::size_t width) {
  const std::size_t records = shard.size() / width;
  std::vector<std::size_t> order(records);
  for (std::size_t i = 0; i < records; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shard[a * width] < shard[b * width];
  });
  std::vector<Word> sorted;
  sorted.reserve(shard.size());
  for (const std::size_t i : order) {
    sorted.insert(sorted.end(), shard.begin() + static_cast<std::ptrdiff_t>(i * width),
                  shard.begin() + static_cast<std::ptrdiff_t>((i + 1) * width));
  }
  shard = std::move(sorted);
}

/// Locally merge equal-key runs of a sorted shard.
void local_combine_sorted(std::vector<Word>& shard, std::size_t width,
                          const CombineFn& combine) {
  std::vector<Word> out;
  out.reserve(shard.size());
  const std::size_t records = shard.size() / width;
  for (std::size_t i = 0; i < records; ++i) {
    const auto* rec = shard.data() + i * width;
    if (!out.empty() && out[out.size() - width] == rec[0]) {
      combine(std::span<Word>(out.data() + out.size() - width, width),
              std::span<const Word>(rec, width));
    } else {
      out.insert(out.end(), rec, rec + width);
    }
  }
  shard = std::move(out);
}

}  // namespace

void sample_sort(Cluster& cluster, DistVec& data, Xoshiro256pp& rng) {
  const std::size_t width = data.width;
  const std::size_t total_records = data.num_records();
  if (total_records == 0) {
    cluster.charge_rounds(2);
    return;
  }

  // Round 1 (charged): every machine contributes a key sample; splitters are
  // the evenly spaced order statistics of the sample. Oversampling by 8x
  // log keeps buckets balanced w.h.p.
  const std::size_t machines = cluster.num_machines();
  const std::size_t oversample = 8 * (1 + static_cast<std::size_t>(
      std::log2(static_cast<double>(total_records) + 2.0)));
  std::vector<Word> sample;
  for (const auto& shard : data.shards) {
    const std::size_t records_here = shard.size() / width;
    for (std::size_t k = 0; k < oversample && records_here > 0; ++k) {
      const std::size_t r = rng.uniform(records_here);
      sample.push_back(shard[r * width]);
    }
  }
  std::sort(sample.begin(), sample.end());
  std::vector<Word> splitters;  // machines-1 upper-exclusive boundaries
  for (std::size_t i = 1; i < machines; ++i) {
    const std::size_t idx = i * sample.size() / machines;
    splitters.push_back(sample[std::min(idx, sample.size() - 1)]);
  }
  cluster.charge_rounds(1);

  // Round 2: shuffle each record to its splitter bucket.
  std::vector<std::uint32_t> destination(total_records);
  std::size_t record_index = 0;
  for (const auto& shard : data.shards) {
    const std::size_t records_here = shard.size() / width;
    for (std::size_t r = 0; r < records_here; ++r, ++record_index) {
      const Word key = shard[r * width];
      const auto it = std::upper_bound(splitters.begin(), splitters.end(), key);
      destination[record_index] =
          static_cast<std::uint32_t>(it - splitters.begin());
    }
  }
  cluster.shuffle(data, destination);

  // Local sort is free (within-round computation).
  for (auto& shard : data.shards) local_sort(shard, width);
}

void reduce_by_key(Cluster& cluster, DistVec& data, const CombineFn& combine,
                   Xoshiro256pp& rng) {
  const std::size_t width = data.width;
  // Free local pre-aggregation: shrink skewed keys before sorting so a
  // heavy key cannot overflow one machine's bucket.
  for (auto& shard : data.shards) {
    local_sort(shard, width);
    local_combine_sorted(shard, width, combine);
  }
  sample_sort(cluster, data, rng);
  for (auto& shard : data.shards) local_combine_sorted(shard, width, combine);

  // Boundary merge (1 round): a key's records can still straddle adjacent
  // machines after the sort; push each machine's first run to its left
  // neighbour when the keys match. Simulated centrally, charged as 1 round.
  cluster.charge_rounds(1);
  for (std::size_t m = cluster.num_machines(); m-- > 1;) {
    auto& right = data.shards[m];
    if (right.empty()) continue;
    // Find the previous non-empty shard.
    std::size_t left_idx = m;
    while (left_idx > 0 && data.shards[left_idx - 1].empty()) --left_idx;
    if (left_idx == 0) continue;
    auto& left = data.shards[left_idx - 1];
    if (left.empty()) continue;
    if (left[left.size() - width] == right[0]) {
      combine(std::span<Word>(left.data() + left.size() - width, width),
              std::span<const Word>(right.data(), width));
      right.erase(right.begin(), right.begin() + static_cast<std::ptrdiff_t>(width));
    }
  }
}

void sum_by_key(Cluster& cluster, DistVec& data, Xoshiro256pp& rng) {
  reduce_by_key(
      cluster, data,
      [](std::span<Word> accum, std::span<const Word> next) {
        for (std::size_t i = 1; i < accum.size(); ++i) accum[i] += next[i];
      },
      rng);
}

std::size_t broadcast_cost(const Cluster& cluster, std::size_t message_words) {
  if (message_words > cluster.machine_words()) {
    throw MpcCapacityError("broadcast message exceeds S");
  }
  const double fanout = std::max(
      2.0, static_cast<double>(cluster.machine_words()) /
               static_cast<double>(std::max<std::size_t>(1, message_words)));
  const double machines = static_cast<double>(cluster.num_machines());
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::log(machines + 1) / std::log(fanout))));
}

void charge_broadcast(Cluster& cluster, std::size_t message_words) {
  cluster.charge_rounds(broadcast_cost(cluster, message_words));
}

void exclusive_prefix_sum(Cluster& cluster, DistVec& data) {
  if (cluster.num_machines() > cluster.machine_words()) {
    throw MpcCapacityError(
        "prefix sum aggregate exchange needs N <= S machines");
  }
  const std::size_t width = data.width;
  // Per-machine totals are exchanged in one round; then each machine applies
  // its global offset locally.
  Word running = 0;
  cluster.charge_rounds(1);
  for (auto& shard : data.shards) {
    Word local = 0;
    const std::size_t records = shard.size() / width;
    for (std::size_t r = 0; r < records; ++r) {
      const Word value = shard[r * width];
      shard[r * width] = running + local;
      local += value;
    }
    running += local;
  }
}

}  // namespace mpcalloc::mpc
