#include "mpc/primitives.hpp"

#include <algorithm>
#include <cmath>

namespace mpcalloc::mpc {

namespace {

/// View a shard as records and sort them locally by key (word 0). The sort
/// is stable so equal-key record order is the shard order — one canonical
/// result on every standard library implementation.
void local_sort(std::vector<Word>& shard, std::size_t width) {
  const std::size_t records = shard.size() / width;
  std::vector<std::size_t> order(records);
  for (std::size_t i = 0; i < records; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shard[a * width] < shard[b * width];
  });
  std::vector<Word> sorted;
  sorted.reserve(shard.size());
  for (const std::size_t i : order) {
    sorted.insert(sorted.end(), shard.begin() + static_cast<std::ptrdiff_t>(i * width),
                  shard.begin() + static_cast<std::ptrdiff_t>((i + 1) * width));
  }
  shard = std::move(sorted);
}

/// Locally merge equal-key runs of a sorted shard.
void local_combine_sorted(std::vector<Word>& shard, std::size_t width,
                          const CombineFn& combine) {
  std::vector<Word> out;
  out.reserve(shard.size());
  const std::size_t records = shard.size() / width;
  for (std::size_t i = 0; i < records; ++i) {
    const auto* rec = shard.data() + i * width;
    if (!out.empty() && out[out.size() - width] == rec[0]) {
      combine(std::span<Word>(out.data() + out.size() - width, width),
              std::span<const Word>(rec, width));
    } else {
      out.insert(out.end(), rec, rec + width);
    }
  }
  shard = std::move(out);
}

/// Owner-compute pass over every shard: fn(m) runs on the worker whose
/// arena holds machine m's shard (see WorkerGroup::for_each_owned_shard).
template <typename Fn>
void for_each_owned_shard(Cluster& cluster, const Fn& fn) {
  cluster.workers().for_each_owned_shard(cluster.num_threads(), fn);
}

}  // namespace

void sample_sort(Cluster& cluster, DistVec& data, Xoshiro256pp& rng) {
  const std::size_t width = data.width();
  const std::size_t total_records = data.num_records();
  if (total_records == 0) {
    cluster.charge_rounds(2);
    return;
  }

  // Round 1 (charged): every machine contributes a key sample; splitters are
  // the evenly spaced order statistics of the sample. Oversampling by 8x
  // log keeps buckets balanced w.h.p. Each shard draws on a stream seeded
  // from the caller's RNG in machine order — the sampled keys are a pure
  // function of the caller's stream, independent of worker/thread count.
  const std::size_t machines = cluster.num_machines();
  const std::size_t oversample = 8 * (1 + static_cast<std::size_t>(
      std::log2(static_cast<double>(total_records) + 2.0)));
  std::vector<std::uint64_t> shard_seeds(machines);
  for (auto& seed : shard_seeds) seed = rng();
  std::vector<std::vector<Word>> shard_samples(machines);
  for_each_owned_shard(cluster, [&](std::size_t m) {
    const auto& shard = data.shard(m);
    const std::size_t records_here = shard.size() / width;
    if (records_here == 0) return;
    Xoshiro256pp shard_rng(shard_seeds[m]);
    auto& out = shard_samples[m];
    out.reserve(oversample);
    for (std::size_t k = 0; k < oversample; ++k) {
      out.push_back(shard[shard_rng.uniform(records_here) * width]);
    }
  });
  std::vector<Word> sample;
  for (const auto& s : shard_samples) sample.insert(sample.end(), s.begin(), s.end());
  std::sort(sample.begin(), sample.end());
  std::vector<Word> splitters;  // machines-1 upper-exclusive boundaries
  for (std::size_t i = 1; i < machines; ++i) {
    const std::size_t idx = i * sample.size() / machines;
    splitters.push_back(sample[std::min(idx, sample.size() - 1)]);
  }
  cluster.charge_rounds(1);

  // Round 2: shuffle each record to its splitter bucket (bucket lookups are
  // per-record independent, computed by the shard's owning worker).
  std::vector<std::size_t> shard_first(machines + 1, 0);
  for (std::size_t m = 0; m < machines; ++m) {
    shard_first[m + 1] = shard_first[m] + data.shard(m).size() / width;
  }
  std::vector<std::uint32_t> destination(total_records);
  for_each_owned_shard(cluster, [&](std::size_t m) {
    const auto& shard = data.shard(m);
    const std::size_t records_here = shard.size() / width;
    for (std::size_t r = 0; r < records_here; ++r) {
      const Word key = shard[r * width];
      const auto it = std::upper_bound(splitters.begin(), splitters.end(), key);
      destination[shard_first[m] + r] =
          static_cast<std::uint32_t>(it - splitters.begin());
    }
  });
  cluster.shuffle(data, destination);

  // Local sort is free (within-round computation), run by each owner.
  for_each_owned_shard(cluster, [&](std::size_t m) {
    local_sort(data.shard(m), width);
  });
}

void reduce_by_key(Cluster& cluster, DistVec& data, const CombineFn& combine,
                   Xoshiro256pp& rng) {
  const std::size_t width = data.width();
  // Free local pre-aggregation: shrink skewed keys before sorting so a
  // heavy key cannot overflow one machine's bucket. Shard-local on the
  // owning worker, so the combine callback runs concurrently across shards
  // (it must be a pure function of its two records, as the header
  // requires).
  for_each_owned_shard(cluster, [&](std::size_t m) {
    local_sort(data.shard(m), width);
    local_combine_sorted(data.shard(m), width, combine);
  });
  sample_sort(cluster, data, rng);
  for_each_owned_shard(cluster, [&](std::size_t m) {
    local_combine_sorted(data.shard(m), width, combine);
  });

  // Boundary merge (1 round): a key's records can still straddle adjacent
  // machines after the sort; push each machine's first run to its left
  // neighbour when the keys match. The chain walks machines right-to-left
  // — a genuine sequential dependency, simulated centrally on the
  // orchestrator (and charged as one round) like splitter selection; the
  // per-round record traffic it stands in for is bounded by one record per
  // machine.
  cluster.charge_rounds(1);
  for (std::size_t m = cluster.num_machines(); m-- > 1;) {
    auto& right = data.shard(m);
    if (right.empty()) continue;
    // Find the previous non-empty shard.
    std::size_t left_idx = m;
    while (left_idx > 0 && data.shard(left_idx - 1).empty()) --left_idx;
    if (left_idx == 0) continue;
    auto& left = data.shard(left_idx - 1);
    if (left.empty()) continue;
    if (left[left.size() - width] == right[0]) {
      combine(std::span<Word>(left.data() + left.size() - width, width),
              std::span<const Word>(right.data(), width));
      right.erase(right.begin(), right.begin() + static_cast<std::ptrdiff_t>(width));
    }
  }
}

void sum_by_key(Cluster& cluster, DistVec& data, Xoshiro256pp& rng) {
  reduce_by_key(
      cluster, data,
      [](std::span<Word> accum, std::span<const Word> next) {
        for (std::size_t i = 1; i < accum.size(); ++i) accum[i] += next[i];
      },
      rng);
}

std::size_t broadcast_cost(const Cluster& cluster, std::size_t message_words) {
  if (message_words > cluster.machine_words()) {
    throw MpcCapacityError("broadcast message exceeds S");
  }
  const double fanout = std::max(
      2.0, static_cast<double>(cluster.machine_words()) /
               static_cast<double>(std::max<std::size_t>(1, message_words)));
  const double machines = static_cast<double>(cluster.num_machines());
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::log(machines + 1) / std::log(fanout))));
}

void charge_broadcast(Cluster& cluster, std::size_t message_words) {
  cluster.charge_rounds(broadcast_cost(cluster, message_words));
}

void exclusive_prefix_sum(Cluster& cluster, DistVec& data) {
  if (cluster.num_machines() > cluster.machine_words()) {
    throw MpcCapacityError(
        "prefix sum aggregate exchange needs N <= S machines");
  }
  const std::size_t width = data.width();
  // Per-machine totals are exchanged in one round; then each machine applies
  // its global offset locally. Simulated as a two-pass machine-reduction:
  // pass 1 rewrites every shard with its local exclusive sums and records
  // the shard total, the totals are folded left-to-right into per-shard
  // offsets, and pass 2 applies the offsets — both passes owner-compute.
  cluster.charge_rounds(1);
  const std::size_t machines = cluster.num_machines();
  std::vector<Word> shard_total(machines, 0);
  for_each_owned_shard(cluster, [&](std::size_t m) {
    auto& shard = data.shard(m);
    Word local = 0;
    const std::size_t records = shard.size() / width;
    for (std::size_t r = 0; r < records; ++r) {
      const Word value = shard[r * width];
      shard[r * width] = local;
      local += value;
    }
    shard_total[m] = local;
  });
  std::vector<Word> offset(machines + 1, 0);
  for (std::size_t m = 0; m < machines; ++m) {
    offset[m + 1] = offset[m] + shard_total[m];
  }
  for_each_owned_shard(cluster, [&](std::size_t m) {
    auto& shard = data.shard(m);
    const std::size_t records = shard.size() / width;
    for (std::size_t r = 0; r < records; ++r) {
      shard[r * width] += offset[m];
    }
  });
}

}  // namespace mpcalloc::mpc
