#include "mpc/worker.hpp"

#include "util/parallel.hpp"

#include <algorithm>

namespace mpcalloc::mpc {

namespace {

std::string capacity_message(CapacityRule rule, std::size_t machine,
                             std::size_t round, std::uint64_t observed,
                             std::uint64_t budget) {
  std::string what = "MPC capacity violation: machine " +
                     std::to_string(machine) + " " +
                     capacity_rule_name(rule) + " " + std::to_string(observed) +
                     " words (S = " + std::to_string(budget) + ", round " +
                     std::to_string(round) + ")";
  return what;
}

}  // namespace

const char* capacity_rule_name(CapacityRule rule) {
  switch (rule) {
    case CapacityRule::kSend:
      return "sends";
    case CapacityRule::kReceive:
      return "receives";
    case CapacityRule::kResident:
      return "holds";
    case CapacityRule::kNone:
      break;
  }
  return "exceeds";
}

MpcCapacityError::MpcCapacityError(CapacityRule rule, std::size_t machine,
                                   std::size_t round,
                                   std::uint64_t observed_words,
                                   std::uint64_t budget_words)
    : std::runtime_error(
          capacity_message(rule, machine, round, observed_words, budget_words)),
      rule_(rule),
      machine_(machine),
      round_(round),
      observed_words_(observed_words),
      budget_words_(budget_words) {}

MpcCapacityError::MpcCapacityError(const std::string& what)
    : std::runtime_error("MPC capacity violation: " + what) {}

const std::vector<Word>& DistVec::shard(std::size_t machine) const {
  return *views_.at(machine).words;
}

std::vector<Word>& DistVec::shard(std::size_t machine) {
  return *views_.at(machine).words;
}

std::size_t DistVec::shard_owner(std::size_t machine) const {
  return views_.at(machine).owner;
}

bool DistVec::owned_by(const WorkerGroup& group) const {
  return storage_ != nullptr && storage_->group == &group;
}

std::size_t DistVec::num_records() const {
  return width_ == 0 ? 0 : num_words() / width_;
}

std::size_t DistVec::num_words() const {
  std::size_t total = 0;
  for (const ShardView& view : views_) total += view.words->size();
  return total;
}

std::vector<Word> DistVec::gather(std::size_t num_threads) const {
  std::vector<std::size_t> offset(views_.size() + 1, 0);
  for (std::size_t m = 0; m < views_.size(); ++m) {
    offset[m + 1] = offset[m] + views_[m].words->size();
  }
  std::vector<Word> flat(offset.back());
  parallel_for(0, views_.size(), /*tile_size=*/1, num_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   std::copy(views_[m].words->begin(), views_[m].words->end(),
                             flat.begin() +
                                 static_cast<std::ptrdiff_t>(offset[m]));
                 }
               });
  return flat;
}

Worker::Worker(std::size_t id, std::size_t first_machine,
               std::size_t end_machine, std::size_t machine_words)
    : id_(id),
      first_machine_(first_machine),
      end_machine_(end_machine),
      machine_words_(machine_words) {}

void Worker::commit_resident(std::size_t machine, std::uint64_t words,
                             std::size_t round) {
  if (machine < first_machine_ || machine >= end_machine_) {
    throw std::logic_error("Worker::commit_resident: machine " +
                           std::to_string(machine) + " not owned by worker " +
                           std::to_string(id_));
  }
  // Budget before watermark: a rejected commit never became resident, so it
  // must not pollute the Theorem-3 peak a caller reads after catching the
  // error.
  if (words > machine_words_) {
    throw MpcCapacityError(CapacityRule::kResident, machine, round, words,
                           machine_words_);
  }
  peak_words_ = std::max(peak_words_, words);
}

WorkerGroup::WorkerGroup(std::size_t num_machines, std::size_t machine_words,
                         std::size_t num_workers)
    : num_machines_(num_machines), machine_words_(machine_words) {
  if (num_machines == 0) {
    throw std::invalid_argument("WorkerGroup: need >= 1 machine");
  }
  if (machine_words == 0) {
    throw std::invalid_argument("WorkerGroup: need S >= 1");
  }
  const std::size_t w =
      std::min(num_machines,
               num_workers > 0 ? num_workers : resolve_num_threads(0));
  // As-even-as-possible contiguous ranges: the first `extra` workers own one
  // machine more than the rest. Pure function of (num_machines, w).
  const std::size_t base = num_machines / w;
  const std::size_t extra = num_machines % w;
  workers_.reserve(w);
  std::size_t first = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t owned = base + (i < extra ? 1 : 0);
    workers_.emplace_back(i, first, first + owned, machine_words);
    first += owned;
  }
}

std::size_t WorkerGroup::owner_of(std::size_t machine) const {
  if (machine >= num_machines_) {
    throw std::out_of_range("WorkerGroup::owner_of: machine " +
                            std::to_string(machine) + " >= " +
                            std::to_string(num_machines_));
  }
  const std::size_t w = workers_.size();
  const std::size_t base = num_machines_ / w;
  const std::size_t extra = num_machines_ % w;
  // Invert the partition arithmetic of the constructor.
  const std::size_t boundary = extra * (base + 1);
  if (machine < boundary) return machine / (base + 1);
  return extra + (machine - boundary) / base;
}

DistVec WorkerGroup::create_dist(std::size_t width) const {
  auto storage = std::make_shared<detail::DistStorage>();
  storage->group = this;
  storage->blocks.resize(workers_.size());
  DistVec out;
  out.width_ = width;
  out.views_.resize(num_machines_);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = workers_[w];
    detail::ArenaBlock& block = storage->blocks[w];
    block.first_machine = worker.first_machine();
    block.shards.resize(worker.num_owned());
    for (std::size_t m = worker.first_machine(); m < worker.end_machine();
         ++m) {
      out.views_[m] = ShardView{static_cast<std::uint32_t>(w),
                                &block.shards[m - worker.first_machine()]};
    }
  }
  out.storage_ = std::move(storage);
  // Register the dataset so checkpoint/crash can reach every live arena
  // block. Prune expired entries once the registry has doubled past the
  // live count, keeping registration amortised O(1).
  if (storages_.size() >= 8 &&
      storages_.size() >= 2 * (num_live_storages() + 1)) {
    std::erase_if(storages_, [](const auto& weak) { return weak.expired(); });
  }
  storages_.push_back(out.storage_);
  return out;
}

std::uint64_t ArenaSnapshot::total_words() const {
  std::uint64_t total = 0;
  for (const StorageSnap& snap : storages) {
    for (const auto& block : snap.blocks) {
      for (const auto& shard : block) total += shard.size();
    }
  }
  return total;
}

std::size_t WorkerGroup::num_live_storages() const {
  std::size_t live = 0;
  for (const auto& weak : storages_) live += weak.expired() ? 0 : 1;
  return live;
}

ArenaSnapshot WorkerGroup::snapshot_arenas() const {
  ArenaSnapshot snapshot;
  for (const auto& weak : storages_) {
    const std::shared_ptr<detail::DistStorage> storage = weak.lock();
    if (!storage) continue;
    ArenaSnapshot::StorageSnap snap;
    snap.storage = storage;
    snap.blocks.reserve(storage->blocks.size());
    for (const detail::ArenaBlock& block : storage->blocks) {
      snap.blocks.push_back(block.shards);
    }
    snapshot.storages.push_back(std::move(snap));
  }
  snapshot.worker_peaks.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    snapshot.worker_peaks.push_back(worker.peak_words());
  }
  return snapshot;
}

void WorkerGroup::restore_arenas(const ArenaSnapshot& snapshot) {
  if (snapshot.worker_peaks.size() != workers_.size()) {
    throw std::invalid_argument(
        "restore_arenas: snapshot from a different worker group");
  }
  for (const ArenaSnapshot::StorageSnap& snap : snapshot.storages) {
    const std::shared_ptr<detail::DistStorage> storage = snap.storage.lock();
    if (!storage) continue;  // the dataset died; nothing to put back
    for (std::size_t w = 0; w < storage->blocks.size(); ++w) {
      storage->blocks[w].shards = snap.blocks[w];
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].restore_peak(snapshot.worker_peaks[w]);
  }
}

void WorkerGroup::crash_worker(std::size_t w) {
  if (w >= workers_.size()) {
    throw std::out_of_range("crash_worker: worker " + std::to_string(w) +
                            " >= " + std::to_string(workers_.size()));
  }
  for (const auto& weak : storages_) {
    const std::shared_ptr<detail::DistStorage> storage = weak.lock();
    if (!storage) continue;
    for (std::vector<Word>& shard : storage->blocks[w].shards) {
      shard.clear();
    }
  }
}

void WorkerGroup::set_affinity_observer(AffinityObserver observer) {
  observer_ = std::move(observer);
}

void WorkerGroup::commit_resident(std::size_t machine, std::uint64_t words,
                                  std::size_t round) {
  workers_[owner_of(machine)].commit_resident(machine, words, round);
}

std::uint64_t WorkerGroup::peak_machine_words() const {
  std::uint64_t peak = 0;
  for (const Worker& worker : workers_) {
    peak = std::max(peak, worker.peak_words());
  }
  return peak;
}

void WorkerGroup::reset_peaks() {
  for (Worker& worker : workers_) worker.reset_peak();
}

}  // namespace mpcalloc::mpc
