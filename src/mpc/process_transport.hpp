// Real-process MPC backend: every runtime worker is a forked OS process and
// Transport::exchange rides the shared-memory SPSC packet rings of
// mpc/shm/ring.hpp.
//
// What lives where: the authoritative shard arenas (and with them capacity
// rule 3 plus the resident high-watermarks) stay in the coordinator's
// WorkerGroup, because shard-local compute in primitives.* runs
// owner-compute in the coordinator. What the child processes own is the
// *exchange*: each worker process assembles its machines' incoming records
// for the round in a private anonymous mapping (its shard arena for the
// exchange — no heap, so the child is fork-safe under the parent's live
// thread pool) and echoes the assembled shards back. Records therefore
// really do cross an address-space boundary both ways on every round, and a
// worker process dying mid-round really does lose in-flight shard state.
//
// Supervision is the robustness headline. The coordinator watches each
// child with waitpid(WNOHANG) plus a heartbeat the child bumps on every
// loop iteration (mpc/shm/ring.hpp ChannelHeader):
//
//  * child reaped  -> the worker's arena blocks are wiped
//    (WorkerGroup::crash_worker — the machine died with its memory), a
//    fresh segment + child is forked in its place, and the exchange throws
//    TransportFault{kWorkerCrash}: PR 7's checkpoint-restore tier recovers,
//    bitwise identical to the in-process backend.
//  * heartbeat stale past the deadline (hung or SIGSTOPped child) -> the
//    child is SIGCONTed and the exchange throws
//    TransportFault{kDelayedDelivery}: the cluster retries in place with
//    backoff accounting. No data was committed, so the retry is safe.
//
// Degradation is graceful rather than fatal: if fork/shm_open fails, a
// respawn fails, or the respawn budget is exhausted, the backend shuts its
// children down and every further exchange runs on an owned
// InProcessTransport — surfaced on the MpcRecoveryStats ledger
// (backend_degradations), never by aborting the run.
//
// Orphan hygiene: segments are shm_unlink'd immediately after mmap
// ("unlink-on-map" — no /dev/shm name outlives the call that created it),
// and children arrange prctl(PR_SET_PDEATHSIG, SIGKILL) so a dying
// coordinator takes its workers with it. Clean shutdown reaps every child
// (kShutdown, then SIGKILL + blocking waitpid), so no zombies either.
#pragma once

#include "mpc/shm/ring.hpp"
#include "mpc/transport.hpp"
#include "mpc/worker.hpp"

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mpcalloc::mpc {

struct MpcRecoveryStats;  // mpc/cluster.hpp (which includes this header)

/// Which Transport implementation a Cluster runs its exchanges on.
enum class TransportKind : std::uint8_t {
  kAuto = 0,       ///< defer to MPCALLOC_TRANSPORT (unset -> in-process)
  kInProcess = 1,  ///< same-address-space mailboxes (the default backend)
  kProcess = 2,    ///< forked worker processes over shared-memory rings
};

[[nodiscard]] const char* transport_kind_name(TransportKind kind);

/// Strict parse of "inprocess" / "process". Anything else throws
/// std::invalid_argument whose message names `context` (the environment
/// variable or CLI flag the value came from) — same contract as
/// resolve_num_threads for MPCALLOC_THREADS.
[[nodiscard]] TransportKind parse_transport_kind(const std::string& value,
                                                 const std::string& context);

/// Resolve kAuto against the MPCALLOC_TRANSPORT environment variable
/// (strictly parsed; unset or empty means in-process). Non-auto kinds pass
/// through unchanged.
[[nodiscard]] TransportKind resolve_transport_kind(TransportKind requested);

/// Parse a --transport CLI value: "auto" defers to the environment (kAuto),
/// anything else goes through parse_transport_kind with the flag named in
/// the error.
[[nodiscard]] TransportKind transport_kind_from_cli(const std::string& value);

/// One scripted signal delivery: send `signo` to worker `worker`'s process
/// at the start of the `exchange_index`-th exchange (0-based lifetime
/// ordinal, retries not counted — the same ordinals FaultPlan::forced
/// uses). Fires once. The worker index is taken modulo the worker count so
/// a script stays valid across thread-count sweeps.
struct ProcessKill {
  std::size_t exchange_index = 0;
  int signo = 9;  ///< SIGKILL; SIGSTOP exercises the deadline path
  std::size_t worker = 0;

  friend bool operator==(const ProcessKill&, const ProcessKill&) = default;
};

struct ProcessTransportOptions {
  std::size_t ring_packets = 1024;  ///< slots per direction per worker
  std::size_t flush_packets = 64;   ///< producer publishes every this many
  std::uint64_t deadline_ms = 2000; ///< heartbeat staleness -> deadline miss
  std::uint32_t max_respawns = 8;   ///< dead-worker re-forks before degrading
  std::vector<ProcessKill> kill_script;  ///< real-fault injection (tests)
  bool force_spawn_failure = false;      ///< test hook: every spawn fails

  friend bool operator==(const ProcessTransportOptions&,
                         const ProcessTransportOptions&) = default;
};

/// Transport over forked worker processes (see the header comment for the
/// protocol and the supervision/degradation contract). Construction never
/// throws on backend failure — it degrades. `ledger` (optional) receives
/// the recovery-overhead counters; the Cluster passes its own stats.
class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(WorkerGroup& workers,
                            ProcessTransportOptions options = {},
                            MpcRecoveryStats* ledger = nullptr);
  ~ProcessTransport() override;

  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  void exchange(const RoundPlan& plan, DistVec& data,
                std::size_t num_threads) override;

  /// True once the backend fell back to in-process exchanges.
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Worker processes currently alive (0 once degraded or shut down).
  [[nodiscard]] std::size_t live_children() const;
  /// Pid of worker `w`'s process, or -1 when none (tests: reap checks).
  [[nodiscard]] pid_t child_pid(std::size_t w) const;

 private:
  struct Channel {
    pid_t pid = -1;
    void* base = nullptr;  ///< MAP_SHARED segment (already unlinked)
    std::size_t bytes = 0;
    shm::ChannelLayout layout;
    shm::RingProducer tx;  ///< coordinator -> worker
    shm::RingConsumer rx;  ///< worker -> coordinator
    std::uint64_t last_heartbeat = 0;
    std::uint64_t last_beat_ns = 0;
    bool alive = false;
  };

  [[nodiscard]] bool spawn_worker(std::size_t w);
  void shutdown_channel(Channel& channel, bool graceful);
  void shutdown_all(bool graceful);
  void degrade();

  /// Liveness check for worker `w` mid-wait: reaps a dead child (crash ->
  /// respawn or degrade -> throw kWorkerCrash) and classifies a stale
  /// heartbeat as a deadline miss (SIGCONT -> throw kDelayedDelivery).
  void supervise(std::size_t w, const RoundPlan& plan, std::size_t ordinal);
  void handle_child_death(std::size_t w, const RoundPlan& plan,
                          std::size_t ordinal);
  /// Discard every packet currently readable on `channel`'s rx ring (all
  /// stale by protocol position — used to unwedge a worker blocked echoing
  /// a superseded epoch).
  void drain_rx_discard(Channel& channel);
  void push_tx(std::size_t w, const shm::Packet& packet, const RoundPlan& plan,
               std::size_t ordinal);
  void bump(std::uint64_t MpcRecoveryStats::* counter);

  WorkerGroup* workers_;
  ProcessTransportOptions options_;
  MpcRecoveryStats* ledger_;
  std::vector<Channel> channels_;
  std::vector<bool> kill_fired_;
  std::unique_ptr<InProcessTransport> fallback_;
  bool degraded_ = false;
  std::uint64_t epoch_ = 0;
  std::uint32_t respawns_done_ = 0;
  /// Exchange-ordinal bookkeeping, same convention as
  /// FaultInjectingTransport: consecutive calls for one plan round are
  /// delivery attempts, a new round is a new ordinal.
  std::size_t next_ordinal_ = 0;
  std::size_t last_round_ = static_cast<std::size_t>(-1);
  std::uint32_t attempt_ = 0;
};

}  // namespace mpcalloc::mpc
