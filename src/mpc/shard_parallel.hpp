// Internal helper shared by the cluster/primitives implementation files:
// run per-shard work machine-parallel on the deterministic executor.
// Shards are natural fixed tiles — which thread processes a shard never
// affects that shard's result.
#pragma once

#include "util/parallel.hpp"

#include <cstddef>

namespace mpcalloc::mpc::detail {

template <typename Fn>
void for_each_shard(std::size_t num_shards, std::size_t num_threads,
                    const Fn& fn) {
  parallel_for(0, num_shards, /*tile_size=*/1, num_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) fn(m);
               });
}

}  // namespace mpcalloc::mpc::detail
