// Message transport for the MPC runtime: the only code path that moves
// records across shard (machine) boundaries during a communication round.
//
// The Cluster orchestrates a round by building a RoundPlan — the per-record
// routing plus the per-machine send/receive word tallies, with every
// destination validated before any arena is touched — and handing it to a
// Transport. InProcessTransport realises the exchange with per-worker
// mailboxes: each source worker posts its outgoing records into the
// destination workers' mailboxes (disjoint slots, so the sends run
// owner-parallel), then each destination worker commits its mailboxes into
// its arena, which is where capacity rule 3 is enforced and the resident
// high-watermark recorded. Rules 1 and 2 (send/receive ≤ S) are checked
// from the plan's tallies, machine-by-machine in machine order, before any
// record moves — deterministic error attribution, arenas untouched on
// failure.
//
// A per-process or networked backend (the S^α sweep past one host) slots in
// behind the same Transport interface; the plan is already the wire-level
// description such a backend needs.
#pragma once

#include "mpc/worker.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

namespace mpcalloc::mpc {

/// One communication round, fully described before any data moves. Slots
/// group the global record order by destination machine, keeping source
/// order within each destination — the same stable counting sort a
/// sequential scan would deliver, so shard contents are bitwise independent
/// of how the exchange is scheduled.
struct RoundPlan {
  std::size_t width = 1;
  std::size_t num_machines = 0;
  std::size_t round = 0;  ///< round number the exchange executes (error context)
  /// Communication rounds this exchange is delivered (and charged) over.
  /// 1 is the normal case. >1 is set by the Cluster's kSplitExchange
  /// overflow policy after it has proven a wave schedule in which every
  /// machine sends and receives ≤ S words per wave — the transport then
  /// checks rules 1–2 against the relaxed S·sub_rounds budget (rule 3 is a
  /// property of the final resident state and stays exact).
  std::size_t sub_rounds = 1;

  std::vector<std::uint32_t> destination;  ///< per global record index
  std::vector<std::size_t> shard_first;    ///< N+1: record prefix by source machine
  std::vector<std::size_t> dest_begin;     ///< N+1: record slots by destination
  std::vector<std::uint32_t> slot_of;      ///< global record index -> slot
  std::vector<std::uint64_t> sent;         ///< rule-1 tallies (words per machine)
  std::vector<std::uint64_t> received;     ///< rule-2 tallies (words per machine)

  /// Records destined for machine m.
  [[nodiscard]] std::size_t records_for(std::size_t m) const {
    return dest_begin[m + 1] - dest_begin[m];
  }
  /// Words resident on machine m after delivery (rule-3 quantity).
  [[nodiscard]] std::uint64_t resident_words_after(std::size_t m) const {
    return static_cast<std::uint64_t>(records_for(m)) * width;
  }
  [[nodiscard]] std::uint64_t total_words() const {
    return static_cast<std::uint64_t>(dest_begin.back()) * width;
  }
  [[nodiscard]] std::uint64_t total_words_sent() const;

  /// Build the plan for routing record i of `data` (global record order) to
  /// machine destination[i]. Throws std::invalid_argument on a size
  /// mismatch and std::out_of_range on an out-of-range destination — in
  /// both cases before any shard or arena has been mutated.
  [[nodiscard]] static RoundPlan build(const DistVec& data,
                                       std::span<const std::uint32_t> destination,
                                       std::size_t round);
};

/// Abstract record mover. Implementations must enforce capacity rules 1–3
/// against the worker group's S budget and leave every shard untouched when
/// they throw.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Execute the planned round: move every record of `data` to its planned
  /// destination shard and commit the results into the owning arenas.
  /// `num_threads` caps the simulator-side parallelism (0 = auto); results
  /// are bitwise independent of it.
  virtual void exchange(const RoundPlan& plan, DistVec& data,
                        std::size_t num_threads) = 0;
};

/// Same-address-space transport over per-worker mailboxes (the default
/// backend; see the header comment for the exchange protocol).
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(WorkerGroup& workers) : workers_(&workers) {}

  void exchange(const RoundPlan& plan, DistVec& data,
                std::size_t num_threads) override;

 private:
  WorkerGroup* workers_;
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What a chaos run makes the exchange layer do. Ordered roughly by blast
/// radius; see TransportFault::corrupts_data for the recovery contract.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kExchangeFailure = 1,  ///< the round aborts before any record moves
  kDelayedDelivery = 2,  ///< the round aborts; retry succeeds after a
                         ///< deterministic number of accounted backoff rounds
  kPartialDelivery = 3,  ///< some source shards of the in-flight dataset are
                         ///< lost mid-round (the exchange-scoped state is
                         ///< corrupted; everything else survives)
  kWorkerCrash = 4,      ///< a worker dies: its arena blocks of *every* live
                         ///< dataset are wiped — only a checkpoint restore
                         ///< can recover
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Thrown by FaultInjectingTransport when the schedule fires. Carries the
/// structured context recovery needs: what happened, at which exchange, on
/// which attempt, and — for crashes — which worker died.
class TransportFault : public std::runtime_error {
 public:
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  TransportFault(FaultKind kind, std::size_t round, std::size_t exchange_index,
                 std::uint32_t attempt, std::size_t worker,
                 std::uint32_t delay_rounds);

  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] std::size_t exchange_index() const { return exchange_index_; }
  [[nodiscard]] std::uint32_t attempt() const { return attempt_; }
  [[nodiscard]] bool has_worker() const { return worker_ != kNoWorker; }
  [[nodiscard]] std::size_t worker() const { return worker_; }
  /// Simulated rounds a delayed delivery costs before the retry (backoff
  /// accounting input; 0 for other kinds).
  [[nodiscard]] std::uint32_t delay_rounds() const { return delay_rounds_; }

  /// True when the fault left data behind it corrupted. Partial delivery is
  /// exchange-scoped (restore the in-flight dataset and replay the plan);
  /// a worker crash loses arena state across datasets (checkpoint restore).
  [[nodiscard]] bool corrupts_data() const {
    return kind_ == FaultKind::kPartialDelivery ||
           kind_ == FaultKind::kWorkerCrash;
  }

 private:
  FaultKind kind_;
  std::size_t round_;
  std::size_t exchange_index_;
  std::uint32_t attempt_;
  std::size_t worker_;
  std::uint32_t delay_rounds_;
};

/// One scripted injection: fire `kind` at the `exchange_index`-th exchange
/// (0-based ordinal over the transport's lifetime, retries not counted) for
/// its first `attempts` delivery attempts. `attempts` > max_retries makes
/// the exchange unrecoverable at cluster level — escalation-path testing.
struct FaultEvent {
  std::size_t exchange_index = 0;
  FaultKind kind = FaultKind::kExchangeFailure;
  std::uint32_t attempts = 1;
};

/// A reproducible fault schedule. The random part is a pure function of
/// (key, exchange ordinal): every chaos run with the same key injects the
/// same faults at the same exchanges, bitwise, independent of thread count
/// — which is what makes the recovered-equals-fault-free invariant
/// testable. key == 0 and an empty `forced` list disable injection.
struct FaultPlan {
  std::uint64_t key = 0;           ///< SplitMix64 key for the random schedule
  double fault_probability = 0.0;  ///< per-exchange chance (first attempt only)
  std::vector<FaultEvent> forced;  ///< scripted injections, by exchange ordinal

  std::uint32_t max_retries = 4;   ///< cluster-level delivery attempts per
                                   ///< exchange beyond the first
  std::uint32_t max_restores = 8;  ///< driver-level checkpoint restores per run

  [[nodiscard]] bool active() const {
    return (key != 0 && fault_probability > 0.0) || !forced.empty();
  }
};

/// Decorator over any Transport that executes a FaultPlan. Consecutive
/// exchange() calls for the same plan round are delivery attempts of one
/// logical exchange; a new round advances the exchange ordinal. Faults
/// fire *before* the inner exchange runs, so kExchangeFailure and
/// kDelayedDelivery leave every shard untouched (the strong exception
/// guarantee the recovery loop relies on); kPartialDelivery wipes a keyed
/// subset of the in-flight dataset's shards and kWorkerCrash wipes one
/// worker's arena blocks of every live dataset before throwing.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          WorkerGroup& workers, FaultPlan plan);

  void exchange(const RoundPlan& plan, DistVec& data,
                std::size_t num_threads) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t exchanges_started() const { return next_ordinal_; }
  [[nodiscard]] std::uint64_t faults_injected() const { return faults_injected_; }

 private:
  [[nodiscard]] FaultKind draw(std::size_t ordinal, std::uint32_t attempt,
                               std::size_t* worker,
                               std::uint32_t* delay_rounds) const;

  std::unique_ptr<Transport> inner_;
  WorkerGroup* workers_;
  FaultPlan plan_;
  std::size_t next_ordinal_ = 0;
  std::size_t last_round_ = static_cast<std::size_t>(-1);
  std::uint32_t attempt_ = 0;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace mpcalloc::mpc
