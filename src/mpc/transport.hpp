// Message transport for the MPC runtime: the only code path that moves
// records across shard (machine) boundaries during a communication round.
//
// The Cluster orchestrates a round by building a RoundPlan — the per-record
// routing plus the per-machine send/receive word tallies, with every
// destination validated before any arena is touched — and handing it to a
// Transport. InProcessTransport realises the exchange with per-worker
// mailboxes: each source worker posts its outgoing records into the
// destination workers' mailboxes (disjoint slots, so the sends run
// owner-parallel), then each destination worker commits its mailboxes into
// its arena, which is where capacity rule 3 is enforced and the resident
// high-watermark recorded. Rules 1 and 2 (send/receive ≤ S) are checked
// from the plan's tallies, machine-by-machine in machine order, before any
// record moves — deterministic error attribution, arenas untouched on
// failure.
//
// A per-process or networked backend (the S^α sweep past one host) slots in
// behind the same Transport interface; the plan is already the wire-level
// description such a backend needs.
#pragma once

#include "mpc/worker.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace mpcalloc::mpc {

/// One communication round, fully described before any data moves. Slots
/// group the global record order by destination machine, keeping source
/// order within each destination — the same stable counting sort a
/// sequential scan would deliver, so shard contents are bitwise independent
/// of how the exchange is scheduled.
struct RoundPlan {
  std::size_t width = 1;
  std::size_t num_machines = 0;
  std::size_t round = 0;  ///< round number the exchange executes (error context)

  std::vector<std::uint32_t> destination;  ///< per global record index
  std::vector<std::size_t> shard_first;    ///< N+1: record prefix by source machine
  std::vector<std::size_t> dest_begin;     ///< N+1: record slots by destination
  std::vector<std::uint32_t> slot_of;      ///< global record index -> slot
  std::vector<std::uint64_t> sent;         ///< rule-1 tallies (words per machine)
  std::vector<std::uint64_t> received;     ///< rule-2 tallies (words per machine)

  /// Records destined for machine m.
  [[nodiscard]] std::size_t records_for(std::size_t m) const {
    return dest_begin[m + 1] - dest_begin[m];
  }
  /// Words resident on machine m after delivery (rule-3 quantity).
  [[nodiscard]] std::uint64_t resident_words_after(std::size_t m) const {
    return static_cast<std::uint64_t>(records_for(m)) * width;
  }
  [[nodiscard]] std::uint64_t total_words() const {
    return static_cast<std::uint64_t>(dest_begin.back()) * width;
  }
  [[nodiscard]] std::uint64_t total_words_sent() const;

  /// Build the plan for routing record i of `data` (global record order) to
  /// machine destination[i]. Throws std::invalid_argument on a size
  /// mismatch and std::out_of_range on an out-of-range destination — in
  /// both cases before any shard or arena has been mutated.
  [[nodiscard]] static RoundPlan build(const DistVec& data,
                                       std::span<const std::uint32_t> destination,
                                       std::size_t round);
};

/// Abstract record mover. Implementations must enforce capacity rules 1–3
/// against the worker group's S budget and leave every shard untouched when
/// they throw.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Execute the planned round: move every record of `data` to its planned
  /// destination shard and commit the results into the owning arenas.
  /// `num_threads` caps the simulator-side parallelism (0 = auto); results
  /// are bitwise independent of it.
  virtual void exchange(const RoundPlan& plan, DistVec& data,
                        std::size_t num_threads) = 0;
};

/// Same-address-space transport over per-worker mailboxes (the default
/// backend; see the header comment for the exchange protocol).
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(WorkerGroup& workers) : workers_(&workers) {}

  void exchange(const RoundPlan& plan, DistVec& data,
                std::size_t num_threads) override;

 private:
  WorkerGroup* workers_;
};

}  // namespace mpcalloc::mpc
