// MPC model runtime (Section 2.3 of the paper) — the orchestrator layer.
//
// An MPC instance has N machines, each with S words of memory; computation
// proceeds in synchronous rounds; per round a machine may send and receive
// at most S words in total; within a round computation is free. The
// sublinear regime sets S = n^α for a constant α ∈ (0,1).
//
// The runtime is split into three layers so the model's capacity rules are
// structurally true rather than arithmetic bookkeeping:
//
//  * mpc/worker.{hpp,cpp} — each runtime worker *owns* a fixed contiguous
//    range of machine shards in a private arena; shard-local compute runs
//    on the owning worker (owner-compute affinity) and rule 3 (resident
//    words ≤ S) is enforced when a shard is committed into its arena,
//    which also keeps the resident high-watermark.
//  * mpc/transport.{hpp,cpp} — the Transport is the only code path that
//    moves records across shard boundaries: it executes a RoundPlan by
//    posting records into per-worker mailboxes and committing them at the
//    destination arenas, enforcing rules 1 (sent ≤ S) and 2 (received ≤ S)
//    from the plan's tallies before anything moves.
//  * this Cluster — an orchestrator that builds round plans, charges
//    rounds, and reads the capacity high-watermarks off the arenas. The
//    quantities Theorem 3 bounds (round count, per-machine space
//    high-watermark, total space) are exposed as counters, which is what
//    bench/bench_mpc_* report.
//
// Violations throw MpcCapacityError with structured context (rule, machine,
// round, observed vs budget words). Higher-level primitives (sort by
// sampled splitters, reduce-by-key, broadcast) live in primitives.hpp and
// are built on shuffle with their textbook O(1/α) round costs. Where the
// driver simulates a step centrally for convenience (e.g. splitter
// selection, the reduce boundary merge), it charges the documented number
// of rounds via `charge_rounds` — see DESIGN.md §1.
#pragma once

#include "mpc/process_transport.hpp"
#include "mpc/transport.hpp"
#include "mpc/worker.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mpcalloc::mpc {

/// What the cluster does when a planned exchange exceeds the per-round
/// send/receive budget (rules 1–2).
enum class OverflowPolicy : std::uint8_t {
  /// Throw MpcCapacityError before anything moves (the model's default).
  kFailFast = 0,
  /// Split the exchange into k honestly-charged sub-rounds: the cluster
  /// proves a wave schedule in which every machine sends and receives ≤ S
  /// words per wave, charges k rounds instead of 1, and delivers the same
  /// final shard state as the unsplit exchange would have. Rule 3 is never
  /// relaxed — an instance whose *resident* state exceeds S still fails
  /// fast (receiving > S words implies holding > S words, so splitting can
  /// only rescue send-side pressure).
  kSplitExchange = 1,
};

/// Recovery overhead, accounted separately from the model counters so the
/// headline invariant — recovered runs bitwise match fault-free runs on
/// rounds/words_moved/peaks — stays checkable. Monotone over a run; never
/// rolled back by checkpoint restore.
struct MpcRecoveryStats {
  std::uint64_t faults_injected = 0;     ///< TransportFaults observed
  std::uint64_t exchange_retries = 0;    ///< in-place delivery re-attempts
  std::uint64_t replayed_exchanges = 0;  ///< exchanges replayed after data restore
  std::uint64_t restored_words = 0;      ///< words copied back during restores
  std::uint64_t backoff_rounds = 0;      ///< simulated wait (delay/backoff) rounds
  std::uint64_t replayed_rounds = 0;     ///< charged rounds discarded by restore
  std::uint64_t discarded_words_moved = 0;  ///< moved words discarded by restore
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_restores = 0;
  std::uint64_t split_exchanges = 0;     ///< exchanges delivered in >1 sub-round
  std::uint64_t split_extra_rounds = 0;  ///< extra rounds charged by splitting

  // Real-process backend overhead (mpc/process_transport.hpp): these count
  // actual OS events — children reaped, heartbeat deadlines blown, workers
  // re-forked, and process->in-process fallbacks — never simulated ones.
  std::uint64_t process_crashes = 0;       ///< worker processes found dead
  std::uint64_t deadline_misses = 0;       ///< heartbeat deadlines missed
  std::uint64_t worker_respawns = 0;       ///< dead workers re-forked
  std::uint64_t backend_degradations = 0;  ///< fallbacks to in-process

  friend bool operator==(const MpcRecoveryStats&,
                         const MpcRecoveryStats&) = default;
};

/// A round-level snapshot of everything an exchange can corrupt: the model
/// counters plus a deep copy of every live dataset's arenas and watermarks.
/// Restoring rolls the cluster back so a deterministic caller can replay
/// the rounds since — recovery overhead is folded into MpcRecoveryStats,
/// the model counters end up bitwise identical to a fault-free run.
struct ClusterCheckpoint {
  std::size_t rounds = 0;
  std::uint64_t words_moved = 0;
  std::uint64_t peak_total_words = 0;
  ArenaSnapshot arenas;
};

class Cluster {
 public:
  /// num_machines ≥ 1 machines of `machine_words` (= S) words each.
  /// num_workers pins the shard-ownership partition (0 = auto: one worker
  /// per executor thread, capped by the machine count). All results are
  /// bitwise independent of the worker count.
  Cluster(std::size_t num_machines, std::size_t machine_words,
          std::size_t num_workers = 0);

  /// Build a cluster in the sublinear regime for an input of `input_words`
  /// total words: S = ceil(input_words^alpha) (clamped below by min_words)
  /// and enough machines to hold `slack` times the input.
  static Cluster for_input(std::uint64_t input_words, double alpha,
                           double slack = 4.0, std::size_t min_words = 64);

  [[nodiscard]] std::size_t num_machines() const { return num_machines_; }
  [[nodiscard]] std::size_t machine_words() const { return machine_words_; }

  /// The shard-ownership layer (owner-compute dispatch, arenas) and the
  /// record transport. Live for as long as the cluster is.
  [[nodiscard]] WorkerGroup& workers() { return *workers_; }
  [[nodiscard]] const WorkerGroup& workers() const { return *workers_; }
  [[nodiscard]] Transport& transport() { return *transport_; }

  /// False once the runtime has been moved out of this object.
  [[nodiscard]] bool is_live() const { return workers_ != nullptr; }

  /// Worker threads for simulator-side work (owner-compute passes in
  /// primitives.* and exponentiation.*, transport phases). 0 = auto (the
  /// MPCALLOC_THREADS environment variable if set, else hardware
  /// concurrency). The simulated machines' contents, the round counters,
  /// and the peak_machine_words accounting are bitwise independent of the
  /// value: shards are fixed per-worker tiles, randomness is derived per
  /// shard before any parallel region, and capacity checks are applied in
  /// machine order.
  void set_num_threads(std::size_t num_threads) { num_threads_ = num_threads; }
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Load an input dataset, block-partitioned across machines. Input
  /// placement is free in the MPC model (data starts adversarially
  /// partitioned); capacity rule (3) is still enforced at arena commit.
  [[nodiscard]] DistVec scatter(std::span<const Word> flat, std::size_t width);

  /// One communication round: record i of `data` moves to machine
  /// `destination[i]` (indexed in record order across shards). Builds the
  /// RoundPlan (destinations validated before any arena mutation), executes
  /// it on the transport (rules 1–3), and advances the round counter.
  void shuffle(DistVec& data, std::span<const std::uint32_t> destination);

  /// Explicitly charge `k` rounds for a primitive whose data movement is
  /// simulated centrally (documented per call site). charge_rounds(0) is a
  /// no-op but still asserts the cluster is live.
  void charge_rounds(std::size_t k);

  /// Account `words` of resident data on machine `m` without moving records
  /// through a DistVec (used by ball-collection space accounting). The
  /// machine index is bounds-checked; the commit lands on the owning
  /// worker's arena.
  void account_resident(std::size_t machine, std::uint64_t words);

  // -- counters ----------------------------------------------------------
  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t total_words_moved() const { return words_moved_; }
  /// Read off the arenas: max resident high-watermark over all workers.
  [[nodiscard]] std::uint64_t peak_machine_words() const;
  [[nodiscard]] std::uint64_t peak_total_words() const { return peak_total_words_; }

  void reset_counters();

  // -- fault tolerance ---------------------------------------------------
  /// Wrap the current transport in a FaultInjectingTransport running `plan`
  /// and arm the recovery loop in shuffle(): transient faults are retried in
  /// place (up to plan.max_retries extra attempts, with deterministic
  /// backoff accounting), partial deliveries restore the in-flight dataset
  /// from a pre-exchange copy and replay, worker crashes propagate to the
  /// caller for a checkpoint restore.
  void set_fault_plan(FaultPlan plan);
  /// True when shuffle() runs the recovery loop — armed by set_fault_plan,
  /// and automatically by a process backend (whose faults come from the OS
  /// rather than a schedule, so retry/backoff must be on by default).
  [[nodiscard]] bool fault_tolerant() const { return fault_tolerant_; }

  void set_overflow_policy(OverflowPolicy policy) { overflow_policy_ = policy; }
  [[nodiscard]] OverflowPolicy overflow_policy() const { return overflow_policy_; }

  /// Swap the exchange backend (kAuto resolves the MPCALLOC_TRANSPORT
  /// environment variable, which the constructor already honoured — calling
  /// this with kAuto and default options is a no-op). Must run before
  /// set_fault_plan: the fault decorator wraps whichever backend is live,
  /// and replacing the backend underneath it would discard the decorator.
  /// A process backend that cannot come up degrades to in-process on the
  /// recovery ledger instead of throwing.
  void set_transport_kind(TransportKind kind,
                          ProcessTransportOptions options = {});
  [[nodiscard]] TransportKind transport_kind() const { return transport_kind_; }

  /// Snapshot counters + arenas (see ClusterCheckpoint). Counts toward
  /// recovery_stats().checkpoints_taken.
  [[nodiscard]] ClusterCheckpoint checkpoint();
  /// Roll back to `cp`: restore arenas/watermarks and the model counters,
  /// folding the discarded rounds and words into the recovery stats.
  void restore(const ClusterCheckpoint& cp);

  [[nodiscard]] const MpcRecoveryStats& recovery_stats() const {
    return *recovery_;
  }

 private:
  void ensure_live() const;
  /// (Re)build transport_ for transport_kind_ / process_options_.
  void rebuild_transport();
  /// kSplitExchange: if the plan violates rule 1 or 2, prove a first-fit
  /// wave schedule over the movers (global record order) and relax the plan
  /// to that many sub-rounds. Throws MpcCapacityError when no schedule
  /// exists (a single record wider than S).
  void plan_split_rounds(RoundPlan& plan) const;

  std::size_t num_machines_;
  std::size_t machine_words_;
  std::size_t num_threads_ = 0;
  std::size_t rounds_ = 0;
  std::uint64_t words_moved_ = 0;
  std::uint64_t peak_total_words_ = 0;
  std::shared_ptr<WorkerGroup> workers_;
  std::unique_ptr<Transport> transport_;
  TransportKind transport_kind_ = TransportKind::kInProcess;
  ProcessTransportOptions process_options_;
  bool fault_tolerant_ = false;
  /// A FaultInjectingTransport wraps transport_ (set_fault_plan ran):
  /// swapping the backend underneath it is no longer possible.
  bool fault_decorated_ = false;
  FaultPlan fault_plan_;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kFailFast;
  /// Heap-held so the address survives Cluster moves — the ProcessTransport
  /// writes its overhead counters through a stable pointer to this ledger.
  std::unique_ptr<MpcRecoveryStats> recovery_ =
      std::make_unique<MpcRecoveryStats>();
};

}  // namespace mpcalloc::mpc
