// MPC model runtime (Section 2.3 of the paper).
//
// An MPC instance has N machines, each with S words of memory; computation
// proceeds in synchronous rounds; per round a machine may send and receive
// at most S words in total; within a round computation is free. The
// sublinear regime sets S = n^α for a constant α ∈ (0,1).
//
// This Cluster is a *faithful accounting simulator*: data really lives in
// per-machine shards, every communication step goes through `shuffle`,
// and `shuffle` enforces the model's three capacity rules —
//   (1) per-machine words sent   ≤ S,
//   (2) per-machine words received ≤ S,
//   (3) per-machine resident words ≤ S after delivery —
// throwing MpcCapacityError on violation. The quantities the paper's
// Theorem 3 bounds (round count, per-machine space high-watermark, total
// space) are exposed as counters, which is what bench/bench_mpc_* report.
//
// Higher-level primitives (sort by sampled splitters, reduce-by-key,
// broadcast) live in primitives.hpp and are built on shuffle with their
// textbook O(1/α) round costs. Where the driver simulates a step centrally
// for convenience (e.g. splitter selection), it charges the documented
// number of rounds via `charge_rounds` — see DESIGN.md §1.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcalloc::mpc {

using Word = std::uint64_t;

/// Thrown when an operation would exceed a machine's S-word budget.
class MpcCapacityError : public std::runtime_error {
 public:
  explicit MpcCapacityError(const std::string& what)
      : std::runtime_error("MPC capacity violation: " + what) {}
};

/// A dataset of fixed-width records sharded across machines. Records are
/// flattened: shard[m] holds records back to back, each `width` words.
struct DistVec {
  std::size_t width = 1;
  std::vector<std::vector<Word>> shards;

  [[nodiscard]] std::size_t num_records() const;
  [[nodiscard]] std::size_t num_words() const;

  /// Collect all records into one flat vector (simulator-side inspection —
  /// not an MPC operation; use for verification/tests only). `num_threads`
  /// parallelises the per-shard copies; the default runs sequentially and
  /// 0 means auto (the result is identical for any value).
  [[nodiscard]] std::vector<Word> gather(std::size_t num_threads = 1) const;
};

class Cluster {
 public:
  /// num_machines ≥ 1 machines of `machine_words` (= S) words each.
  Cluster(std::size_t num_machines, std::size_t machine_words);

  /// Build a cluster in the sublinear regime for an input of `input_words`
  /// total words: S = ceil(input_words^alpha) (clamped below by min_words)
  /// and enough machines to hold `slack` times the input.
  static Cluster for_input(std::uint64_t input_words, double alpha,
                           double slack = 4.0, std::size_t min_words = 64);

  [[nodiscard]] std::size_t num_machines() const { return num_machines_; }
  [[nodiscard]] std::size_t machine_words() const { return machine_words_; }

  /// Worker threads for shard-local simulator work (scatter/shuffle routing
  /// and the per-shard sorts/combines in primitives.*). 0 = auto (the
  /// MPCALLOC_THREADS environment variable if set, else hardware
  /// concurrency). The simulated machines' contents, the round counters,
  /// and the peak_machine_words accounting are bitwise independent of the
  /// value: shards are fixed tiles, randomness is derived per shard before
  /// any parallel region, and accounting is applied shard-by-shard in
  /// machine order on the calling thread.
  void set_num_threads(std::size_t num_threads) { num_threads_ = num_threads; }
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Load an input dataset, block-partitioned across machines. Input
  /// placement is free in the MPC model (data starts adversarially
  /// partitioned); capacity rule (3) is still enforced.
  [[nodiscard]] DistVec scatter(std::span<const Word> flat, std::size_t width);

  /// One communication round: record i of `data` moves to machine
  /// `destination[i]` (indexed in record order across shards). Enforces all
  /// three capacity rules and advances the round counter.
  void shuffle(DistVec& data, std::span<const std::uint32_t> destination);

  /// Explicitly charge `k` rounds for a primitive whose data movement is
  /// simulated centrally (documented per call site).
  void charge_rounds(std::size_t k) { rounds_ += k; }

  /// Account `words` of resident data on machine `m` without moving records
  /// through a DistVec (used by ball-collection space accounting).
  void account_resident(std::size_t machine, std::uint64_t words);

  // -- counters ----------------------------------------------------------
  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t total_words_moved() const { return words_moved_; }
  [[nodiscard]] std::uint64_t peak_machine_words() const { return peak_machine_words_; }
  [[nodiscard]] std::uint64_t peak_total_words() const { return peak_total_words_; }

  void reset_counters();

 private:
  void note_machine_load(std::uint64_t words);

  std::size_t num_machines_;
  std::size_t machine_words_;
  std::size_t num_threads_ = 0;
  std::size_t rounds_ = 0;
  std::uint64_t words_moved_ = 0;
  std::uint64_t peak_machine_words_ = 0;
  std::uint64_t peak_total_words_ = 0;
};

}  // namespace mpcalloc::mpc
