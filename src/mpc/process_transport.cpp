#include "mpc/process_transport.hpp"

#include "mpc/cluster.hpp"
#include "util/syscall.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <system_error>

namespace mpcalloc::mpc {

namespace {

/// Coordinator-side poll granularity while waiting on a ring. Small enough
/// that a 150 ms test deadline is meaningful, large enough not to burn a
/// core against a healthy worker.
constexpr std::uint64_t kPollNs = 20'000;
/// Worker-side idle sleep between empty ring polls (also the heartbeat
/// granularity a stalled coordinator observes).
constexpr std::uint64_t kWorkerIdleNs = 20'000;
/// Grace for the child to consume kShutdown before SIGKILL steps in.
constexpr std::uint64_t kShutdownGraceNs = 200'000'000;
/// Even with a stale-heartbeat deadline armed, bound any single wait by
/// this many deadlines — a live-but-wedged worker (heartbeat advancing, no
/// protocol progress) must classify as a deadline miss, not hang CI.
constexpr std::uint64_t kWedgeDeadlineFactor = 16;

// ---------------------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------------------

/// Everything the child needs, fixed before fork. The child runs under a
/// parent that may hold heap locks in its pool threads, so the loop below
/// touches no heap and no C++ runtime machinery — only the pre-established
/// mappings, atomics, memcpy, and raw syscalls.
struct WorkerParams {
  pid_t parent;
  std::size_t first_machine;
  std::size_t num_owned;
  std::size_t machine_words;
  std::size_t ring_packets;
  std::size_t flush_packets;
  void* segment;
  shm::ChannelLayout layout;
  std::uint64_t* expected;  ///< arena: expected words per owned machine
  std::uint64_t* received;  ///< arena: words assembled so far
  shm::Word* words;         ///< arena: num_owned * machine_words
};

/// Worker-side blocking push: spin on the full ring, bumping the heartbeat
/// so the coordinator can tell "slow" from "stopped".
void child_push(shm::RingProducer& out, shm::ChannelHeader* header,
                std::uint64_t* beat, const shm::Packet& packet) {
  while (!out.try_push(packet)) {
    out.flush();
    header->heartbeat.store((*beat)++, std::memory_order_relaxed);
    mpcalloc::sleep_ns(kWorkerIdleNs);
  }
}

[[noreturn]] void worker_child_main(const WorkerParams& p) {
  // Die with the coordinator: nothing orphans. The PDEATHSIG arms against
  // the *current* parent, so close the fork→prctl window by checking the
  // parent is still who it was.
  (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() != p.parent) ::_exit(0);

  shm::ChannelHeader* header = p.layout.header(p.segment);
  shm::RingConsumer in(p.layout.tx_control(p.segment),
                       p.layout.tx_slots(p.segment), p.ring_packets);
  shm::RingProducer out(p.layout.rx_control(p.segment),
                        p.layout.rx_slots(p.segment), p.ring_packets,
                        p.flush_packets);

  std::uint64_t beat = 1;
  std::uint64_t epoch = 0;
  header->ready.store(1, std::memory_order_release);

  const auto error = [&](std::uint64_t code) {
    shm::Packet pkt;
    pkt.type = static_cast<std::uint16_t>(shm::PacketType::kError);
    pkt.epoch = epoch;
    pkt.arg = code;
    child_push(out, header, &beat, pkt);
    out.flush();
  };

  for (;;) {
    header->heartbeat.store(beat++, std::memory_order_relaxed);
    shm::Packet pkt;
    if (!in.try_pop(&pkt)) {
      mpcalloc::sleep_ns(kWorkerIdleNs);
      continue;
    }
    switch (static_cast<shm::PacketType>(pkt.type)) {
      case shm::PacketType::kShutdown:
        ::_exit(0);
      case shm::PacketType::kBeginExchange:
        epoch = pkt.epoch;
        for (std::size_t m = 0; m < p.num_owned; ++m) {
          p.expected[m] = 0;
          p.received[m] = 0;
        }
        break;
      case shm::PacketType::kShardSize: {
        if (pkt.epoch != epoch) break;
        const std::size_t local = pkt.machine - p.first_machine;
        if (pkt.machine < p.first_machine || local >= p.num_owned ||
            pkt.arg > p.machine_words) {
          // Defensive capacity rule 3: the coordinator validated the plan
          // already, so tripping this means protocol corruption.
          error(3);
          break;
        }
        p.expected[local] = pkt.arg;
        break;
      }
      case shm::PacketType::kData: {
        if (pkt.epoch != epoch) break;
        const std::size_t local = pkt.machine - p.first_machine;
        if (pkt.machine < p.first_machine || local >= p.num_owned ||
            pkt.count > shm::kPacketPayloadWords ||
            pkt.arg + pkt.count > p.expected[local]) {
          error(3);
          break;
        }
        std::memcpy(p.words + local * p.machine_words + pkt.arg, pkt.payload,
                    pkt.count * sizeof(shm::Word));
        p.received[local] += pkt.count;
        break;
      }
      case shm::PacketType::kEndExchange: {
        if (pkt.epoch != epoch) break;
        // Echo every owned shard, assembled, in machine order.
        for (std::size_t local = 0; local < p.num_owned; ++local) {
          if (p.received[local] != p.expected[local]) {
            error(2);
            break;
          }
          const shm::Word* shard = p.words + local * p.machine_words;
          shm::Packet data;
          data.type = static_cast<std::uint16_t>(shm::PacketType::kShardData);
          data.machine = static_cast<std::uint32_t>(p.first_machine + local);
          data.epoch = epoch;
          for (std::uint64_t off = 0; off < p.expected[local];
               off += shm::kPacketPayloadWords) {
            data.arg = off;
            data.count = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(shm::kPacketPayloadWords,
                                        p.expected[local] - off));
            std::memcpy(data.payload, shard + off,
                        data.count * sizeof(shm::Word));
            child_push(out, header, &beat, data);
          }
          shm::Packet done;
          done.type = static_cast<std::uint16_t>(shm::PacketType::kShardDone);
          done.machine = data.machine;
          done.epoch = epoch;
          done.arg = p.expected[local];
          child_push(out, header, &beat, done);
        }
        shm::Packet done;
        done.type = static_cast<std::uint16_t>(shm::PacketType::kExchangeDone);
        done.epoch = epoch;
        child_push(out, header, &beat, done);
        out.flush();
        break;
      }
      default:
        error(1);
        break;
    }
  }
}

shm::Packet make_packet(shm::PacketType type, std::uint64_t epoch,
                        std::uint32_t machine = 0, std::uint64_t arg = 0) {
  shm::Packet pkt;
  pkt.type = static_cast<std::uint16_t>(type);
  pkt.machine = machine;
  pkt.epoch = epoch;
  pkt.arg = arg;
  return pkt;
}

}  // namespace

// ---------------------------------------------------------------------------
// TransportKind
// ---------------------------------------------------------------------------

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kAuto:
      return "auto";
    case TransportKind::kInProcess:
      return "inprocess";
    case TransportKind::kProcess:
      return "process";
  }
  return "unknown";
}

TransportKind parse_transport_kind(const std::string& value,
                                   const std::string& context) {
  if (value == "inprocess") return TransportKind::kInProcess;
  if (value == "process") return TransportKind::kProcess;
  throw std::invalid_argument(context +
                              ": expected 'inprocess' or 'process', got '" +
                              value + "'");
}

TransportKind transport_kind_from_cli(const std::string& value) {
  if (value == "auto") return TransportKind::kAuto;
  return parse_transport_kind(value, "--transport");
}

TransportKind resolve_transport_kind(TransportKind requested) {
  if (requested != TransportKind::kAuto) return requested;
  const char* env = std::getenv("MPCALLOC_TRANSPORT");
  if (env == nullptr || *env == '\0') return TransportKind::kInProcess;
  return parse_transport_kind(env, "MPCALLOC_TRANSPORT");
}

// ---------------------------------------------------------------------------
// ProcessTransport
// ---------------------------------------------------------------------------

ProcessTransport::ProcessTransport(WorkerGroup& workers,
                                   ProcessTransportOptions options,
                                   MpcRecoveryStats* ledger)
    : workers_(&workers), options_(std::move(options)), ledger_(ledger) {
  if (options_.ring_packets < 8) options_.ring_packets = 8;
  if (options_.flush_packets == 0) options_.flush_packets = 1;
  channels_.resize(workers_->num_workers());
  kill_fired_.assign(options_.kill_script.size(), false);
  for (std::size_t w = 0; w < channels_.size(); ++w) {
    if (workers_->worker(w).num_owned() == 0) continue;
    if (!spawn_worker(w)) {
      degrade();
      return;
    }
  }
}

ProcessTransport::~ProcessTransport() { shutdown_all(/*graceful=*/true); }

void ProcessTransport::bump(std::uint64_t MpcRecoveryStats::* counter) {
  if (ledger_ != nullptr) ++(ledger_->*counter);
}

std::size_t ProcessTransport::live_children() const {
  std::size_t live = 0;
  for (const Channel& channel : channels_) live += channel.alive ? 1 : 0;
  return live;
}

pid_t ProcessTransport::child_pid(std::size_t w) const {
  return w < channels_.size() && channels_[w].alive ? channels_[w].pid : -1;
}

bool ProcessTransport::spawn_worker(std::size_t w) {
  if (options_.force_spawn_failure) return false;
  const Worker& worker = workers_->worker(w);
  const std::size_t num_owned = worker.num_owned();
  const std::size_t machine_words = workers_->machine_words();
  const shm::ChannelLayout layout =
      shm::ChannelLayout::for_ring_packets(options_.ring_packets);

  ShmHandle handle;
  try {
    handle = shm_open_exclusive("mpcalloc");
  } catch (const std::system_error&) {
    return false;  // e.g. no /dev/shm in this container -> degrade
  }
  const bool sized =
      retry_eintr([&] {
        return ::ftruncate(handle.fd, static_cast<off_t>(layout.segment_bytes));
      }) == 0;
  void* base = sized ? ::mmap(nullptr, layout.segment_bytes,
                              PROT_READ | PROT_WRITE, MAP_SHARED, handle.fd, 0)
                     : MAP_FAILED;
  // Unlink-on-map: the name dies here, in every path. The mapping (and the
  // child's copy of it, inherited through fork) keeps the segment alive.
  (void)::shm_unlink(handle.name.c_str());
  close_quiet(handle.fd);
  if (base == MAP_FAILED) return false;
  new (layout.header(base)) shm::ChannelHeader{};
  new (layout.tx_control(base)) shm::RingControl{};
  new (layout.rx_control(base)) shm::RingControl{};

  // The child's per-exchange shard arena: a private anonymous mapping
  // established pre-fork (CoW gives the child its own copy; the parent
  // unmaps its own immediately after forking). Layout: expected[], then
  // received[], then the shard words.
  const std::size_t counters_bytes = num_owned * 2 * sizeof(std::uint64_t);
  const std::size_t arena_bytes =
      counters_bytes + num_owned * machine_words * sizeof(shm::Word);
  void* arena = ::mmap(nullptr, arena_bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (arena == MAP_FAILED) {
    (void)::munmap(base, layout.segment_bytes);
    return false;
  }

  WorkerParams params;
  params.parent = ::getpid();
  params.first_machine = worker.first_machine();
  params.num_owned = num_owned;
  params.machine_words = machine_words;
  params.ring_packets = options_.ring_packets;
  params.flush_packets = options_.flush_packets;
  params.segment = base;
  params.layout = layout;
  params.expected = static_cast<std::uint64_t*>(arena);
  params.received = params.expected + num_owned;
  params.words = reinterpret_cast<shm::Word*>(
      static_cast<char*>(arena) + counters_bytes);

  const pid_t pid = ::fork();
  if (pid < 0) {
    (void)::munmap(arena, arena_bytes);
    (void)::munmap(base, layout.segment_bytes);
    return false;
  }
  if (pid == 0) worker_child_main(params);  // never returns
  (void)::munmap(arena, arena_bytes);

  Channel& channel = channels_[w];
  channel.pid = pid;
  channel.base = base;
  channel.bytes = layout.segment_bytes;
  channel.layout = layout;
  channel.tx = shm::RingProducer(layout.tx_control(base),
                                 layout.tx_slots(base), options_.ring_packets,
                                 options_.flush_packets);
  channel.rx = shm::RingConsumer(layout.rx_control(base),
                                 layout.rx_slots(base), options_.ring_packets);
  channel.alive = true;

  // Spawn handshake: the child flips `ready` as its first act. Give it the
  // supervision deadline (at least 2 s) before calling the spawn failed.
  shm::ChannelHeader* header = layout.header(base);
  const std::uint64_t start = monotonic_now_ns();
  const std::uint64_t grace_ns =
      std::max<std::uint64_t>(options_.deadline_ms, 2000) * 1'000'000ULL;
  while (header->ready.load(std::memory_order_acquire) == 0) {
    int status = 0;
    if (retry_waitpid(pid, &status, WNOHANG) != 0 ||
        monotonic_now_ns() - start > grace_ns) {
      shutdown_channel(channel, /*graceful=*/false);
      return false;
    }
    sleep_ns(kPollNs);
  }
  channel.last_heartbeat = header->heartbeat.load(std::memory_order_relaxed);
  channel.last_beat_ns = monotonic_now_ns();
  return true;
}

void ProcessTransport::shutdown_channel(Channel& channel, bool graceful) {
  if (channel.base == nullptr) return;
  if (channel.alive && channel.pid > 0) {
    // A stopped child can't consume kShutdown; continue it first.
    (void)::kill(channel.pid, SIGCONT);
    bool reaped = false;
    int status = 0;
    if (graceful &&
        channel.tx.try_push(
            make_packet(shm::PacketType::kShutdown, epoch_ + 1))) {
      channel.tx.flush();
      const std::uint64_t start = monotonic_now_ns();
      while (monotonic_now_ns() - start < kShutdownGraceNs) {
        if (retry_waitpid(channel.pid, &status, WNOHANG) != 0) {
          reaped = true;
          break;
        }
        drain_rx_discard(channel);
        sleep_ns(kPollNs);
      }
    }
    if (!reaped) {
      (void)::kill(channel.pid, SIGKILL);
      (void)retry_waitpid(channel.pid, &status, 0);
    }
  }
  (void)::munmap(channel.base, channel.bytes);
  channel = Channel{};
}

void ProcessTransport::shutdown_all(bool graceful) {
  for (Channel& channel : channels_) shutdown_channel(channel, graceful);
}

void ProcessTransport::degrade() {
  shutdown_all(/*graceful=*/false);
  fallback_ = std::make_unique<InProcessTransport>(*workers_);
  degraded_ = true;
  bump(&MpcRecoveryStats::backend_degradations);
}

void ProcessTransport::drain_rx_discard(Channel& channel) {
  shm::Packet pkt;
  while (channel.rx.try_pop(&pkt)) {
  }
}

void ProcessTransport::handle_child_death(std::size_t w, const RoundPlan& plan,
                                          std::size_t ordinal) {
  Channel& channel = channels_[w];
  (void)::munmap(channel.base, channel.bytes);
  channel = Channel{};
  bump(&MpcRecoveryStats::process_crashes);
  // The machine memory died with the process: wipe the worker's arena
  // blocks of every live dataset, exactly what the simulated kWorkerCrash
  // does — so PR 7's checkpoint-restore tier recovers both identically.
  workers_->crash_worker(w);
  if (respawns_done_ >= options_.max_respawns || !spawn_worker(w)) {
    degrade();
  } else {
    ++respawns_done_;
    bump(&MpcRecoveryStats::worker_respawns);
  }
  throw TransportFault(FaultKind::kWorkerCrash, plan.round, ordinal, attempt_,
                       w, 0);
}

void ProcessTransport::supervise(std::size_t w, const RoundPlan& plan,
                                 std::size_t ordinal) {
  Channel& channel = channels_[w];
  if (!channel.alive) {
    // Lost between exchanges (shouldn't happen, but never hang on it).
    handle_child_death(w, plan, ordinal);
  }
  int status = 0;
  const pid_t reaped = retry_waitpid(channel.pid, &status, WNOHANG);
  if (reaped != 0) {
    // Exited, SIGKILLed, or (-1/ECHILD) already unwaitable: the worker is
    // gone either way.
    handle_child_death(w, plan, ordinal);
  }
  shm::ChannelHeader* header = channel.layout.header(channel.base);
  const std::uint64_t beat =
      header->heartbeat.load(std::memory_order_relaxed);
  const std::uint64_t now = monotonic_now_ns();
  if (beat != channel.last_heartbeat) {
    channel.last_heartbeat = beat;
    channel.last_beat_ns = now;
    return;
  }
  if (now - channel.last_beat_ns >
      options_.deadline_ms * 1'000'000ULL) {
    bump(&MpcRecoveryStats::deadline_misses);
    // SIGSTOPped or hung: continue it and let the cluster retry with
    // backoff. Nothing was committed, so the retry is safe; the fresh
    // last_beat_ns gives the retry a full deadline of its own.
    (void)::kill(channel.pid, SIGCONT);
    channel.last_beat_ns = now;
    throw TransportFault(FaultKind::kDelayedDelivery, plan.round, ordinal,
                         attempt_, w, /*delay_rounds=*/1);
  }
}

void ProcessTransport::push_tx(std::size_t w, const shm::Packet& packet,
                               const RoundPlan& plan, std::size_t ordinal) {
  Channel& channel = channels_[w];
  const std::uint64_t start = monotonic_now_ns();
  const std::uint64_t wedge_ns =
      options_.deadline_ms * 1'000'000ULL * kWedgeDeadlineFactor;
  while (!channel.tx.try_push(packet)) {
    channel.tx.flush();
    // The worker may be blocked echoing a superseded epoch into a full rx
    // ring — drain it (everything there is stale while we are still
    // sending) so it can get back to consuming.
    drain_rx_discard(channel);
    supervise(w, plan, ordinal);
    if (monotonic_now_ns() - start > wedge_ns) {
      bump(&MpcRecoveryStats::deadline_misses);
      throw TransportFault(FaultKind::kDelayedDelivery, plan.round, ordinal,
                           attempt_, w, /*delay_rounds=*/1);
    }
    sleep_ns(kPollNs);
  }
}

void ProcessTransport::exchange(const RoundPlan& plan, DistVec& data,
                                std::size_t num_threads) {
  // Ordinal/attempt bookkeeping mirrors FaultInjectingTransport so kill
  // scripts address exchanges by the same numbers FaultPlan::forced does.
  std::size_t ordinal;
  if (plan.round == last_round_ && next_ordinal_ > 0) {
    ordinal = next_ordinal_ - 1;
    ++attempt_;
  } else {
    ordinal = next_ordinal_++;
    last_round_ = plan.round;
    attempt_ = 0;
  }

  if (degraded_) {
    fallback_->exchange(plan, data, num_threads);
    return;
  }

  // Real-fault injection: deliver the scripted signals for this ordinal
  // before anything moves. Each entry fires once.
  for (std::size_t i = 0; i < options_.kill_script.size(); ++i) {
    const ProcessKill& kill = options_.kill_script[i];
    if (kill_fired_[i] || kill.exchange_index != ordinal) continue;
    kill_fired_[i] = true;
    const std::size_t w = kill.worker % channels_.size();
    if (channels_[w].alive) (void)::kill(channels_[w].pid, kill.signo);
  }

  WorkerGroup& group = *workers_;
  const std::size_t n = plan.num_machines;
  const std::size_t width = plan.width;
  const std::uint64_t budget = group.machine_words();
  const std::uint64_t round_budget =
      budget * static_cast<std::uint64_t>(
                   std::max<std::size_t>(plan.sub_rounds, 1));

  // Capacity rules 1–3, machine order, before any packet is sent — the
  // same validation and error attribution as the in-process backend.
  for (std::size_t m = 0; m < n; ++m) {
    if (plan.sent[m] > round_budget) {
      throw MpcCapacityError(CapacityRule::kSend, m, plan.round, plan.sent[m],
                             budget);
    }
    if (plan.received[m] > round_budget) {
      throw MpcCapacityError(CapacityRule::kReceive, m, plan.round,
                             plan.received[m], budget);
    }
    if (plan.resident_words_after(m) > budget) {
      throw MpcCapacityError(CapacityRule::kResident, m, plan.round,
                             plan.resident_words_after(m), budget);
    }
  }

  const std::uint64_t epoch = ++epoch_;

  // Anything still readable from a superseded attempt is stale; clear it
  // so ring capacity is ours.
  for (Channel& channel : channels_) {
    if (channel.alive) drain_rx_discard(channel);
  }

  // Phase 1 — announce the round: epoch + the exact per-machine shard
  // sizes, so the children can bounds-check every kData against rule 3.
  for (std::size_t w = 0; w < channels_.size(); ++w) {
    if (!channels_[w].alive) continue;
    push_tx(w, make_packet(shm::PacketType::kBeginExchange, epoch), plan,
            ordinal);
    const Worker& worker = group.worker(w);
    for (std::size_t m = worker.first_machine(); m < worker.end_machine();
         ++m) {
      push_tx(w,
              make_packet(shm::PacketType::kShardSize, epoch,
                          static_cast<std::uint32_t>(m),
                          plan.resident_words_after(m)),
              plan, ordinal);
    }
  }

  // Phase 2 — stream every record in global record order to its
  // destination's owning worker, coalescing contiguous word runs into
  // packets. The slot arithmetic is the in-process backend's: record i
  // lands at word (slot_of[i] - dest_begin[d]) * width of shard d.
  shm::Packet staging;
  std::size_t staging_w = 0;
  bool staging_valid = false;
  const auto flush_staging = [&] {
    if (!staging_valid) return;
    push_tx(staging_w, staging, plan, ordinal);
    staging_valid = false;
  };
  const auto emit_word = [&](std::size_t w, std::uint32_t d, std::uint64_t off,
                             shm::Word value) {
    if (!staging_valid || staging_w != w || staging.machine != d ||
        staging.arg + staging.count != off ||
        staging.count >= shm::kPacketPayloadWords) {
      flush_staging();
      staging = make_packet(shm::PacketType::kData, epoch, d, off);
      staging_w = w;
      staging_valid = true;
    }
    staging.payload[staging.count++] = value;
  };
  for (std::size_t m = 0; m < n; ++m) {
    const std::vector<Word>& shard = data.shard(m);
    for (std::size_t i = plan.shard_first[m]; i < plan.shard_first[m + 1];
         ++i) {
      const std::uint32_t d = plan.destination[i];
      const std::size_t w = group.owner_of(d);
      const std::uint64_t base =
          static_cast<std::uint64_t>(plan.slot_of[i] - plan.dest_begin[d]) *
          width;
      const Word* record = shard.data() + (i - plan.shard_first[m]) * width;
      for (std::size_t k = 0; k < width; ++k) {
        emit_word(w, d, base + k, record[k]);
      }
    }
  }
  flush_staging();

  // Phase 3 — close the epoch; each child echoes its assembled shards.
  for (std::size_t w = 0; w < channels_.size(); ++w) {
    if (!channels_[w].alive) continue;
    push_tx(w, make_packet(shm::PacketType::kEndExchange, epoch), plan,
            ordinal);
    channels_[w].tx.flush();
  }

  // Phase 4 — collect the echoes, per worker in worker order. Packets from
  // superseded epochs are dropped; protocol violations classify as a
  // transient exchange failure (the cluster retries, escalating after
  // max_retries).
  std::vector<std::vector<Word>> recv(n);
  std::vector<std::uint64_t> got(n, 0);
  for (std::size_t d = 0; d < n; ++d) {
    recv[d].resize(plan.records_for(d) * width);
  }
  const auto protocol_fault = [&](std::size_t w) -> TransportFault {
    return TransportFault(FaultKind::kExchangeFailure, plan.round, ordinal,
                          attempt_, w, 0);
  };
  for (std::size_t w = 0; w < channels_.size(); ++w) {
    Channel& channel = channels_[w];
    if (!channel.alive) continue;
    const Worker& worker = group.worker(w);
    const std::uint64_t start = monotonic_now_ns();
    const std::uint64_t wedge_ns =
        options_.deadline_ms * 1'000'000ULL * kWedgeDeadlineFactor;
    for (bool done = false; !done;) {
      shm::Packet pkt;
      if (!channel.rx.try_pop(&pkt)) {
        supervise(w, plan, ordinal);
        if (monotonic_now_ns() - start > wedge_ns) {
          bump(&MpcRecoveryStats::deadline_misses);
          throw TransportFault(FaultKind::kDelayedDelivery, plan.round,
                               ordinal, attempt_, w, /*delay_rounds=*/1);
        }
        sleep_ns(kPollNs);
        continue;
      }
      if (pkt.epoch != epoch) continue;  // stale attempt
      switch (static_cast<shm::PacketType>(pkt.type)) {
        case shm::PacketType::kShardData: {
          const std::size_t machine = pkt.machine;
          if (machine < worker.first_machine() ||
              machine >= worker.end_machine() ||
              pkt.count > shm::kPacketPayloadWords ||
              pkt.arg + pkt.count > recv[machine].size()) {
            throw protocol_fault(w);
          }
          std::memcpy(recv[machine].data() + pkt.arg, pkt.payload,
                      pkt.count * sizeof(Word));
          got[machine] += pkt.count;
          break;
        }
        case shm::PacketType::kShardDone: {
          const std::size_t machine = pkt.machine;
          if (machine < worker.first_machine() ||
              machine >= worker.end_machine() ||
              pkt.arg != recv[machine].size() ||
              got[machine] != pkt.arg) {
            throw protocol_fault(w);
          }
          break;
        }
        case shm::PacketType::kExchangeDone:
          done = true;
          break;
        case shm::PacketType::kError:
        default:
          throw protocol_fault(w);
      }
    }
  }

  // Phase 5 — commit, in machine order: rule 3 is re-enforced at the arena
  // and the resident high-watermark recorded, exactly as the in-process
  // backend does it.
  for (std::size_t d = 0; d < n; ++d) {
    group.commit_resident(d, recv[d].size(), plan.round);
    data.shard(d) = std::move(recv[d]);
  }
}

}  // namespace mpcalloc::mpc
