// Graph exponentiation (Lenzen–Wattenhofer / Ghaffari–Uitto).
//
// To simulate B LOCAL rounds in o(B) MPC rounds, every vertex gathers its
// radius-B ball in the (sparsified) communication graph onto one machine by
// repeated doubling: after k doubling steps a vertex knows its 2^k-ball, so
// ⌈log2 B⌉ rounds suffice — provided each ball fits in machine memory.
//
// `collect_balls` returns the radius-B balls, charges ⌈log2 B⌉+1 rounds on
// the cluster, and *enforces the memory requirement*: if any ball's volume
// (vertices + adjacency words) exceeds S it throws MpcCapacityError — this
// is exactly the constraint that forces the paper's choice of
// B = Θ(min(√(α log n), √(log λ))) in eq. (4), and tests exercise both the
// fitting and the overflowing regime.
#pragma once

#include "mpc/cluster.hpp"

#include <cstdint>
#include <vector>

namespace mpcalloc::mpc {

struct BallCollection {
  /// balls[v] = all vertices at distance ≤ radius from v (including v),
  /// sorted ascending.
  std::vector<std::vector<std::uint32_t>> balls;
  std::size_t max_ball_vertices = 0;
  std::uint64_t total_ball_words = 0;  ///< Σ_v volume(ball(v)) — the Õ(λn) term
  std::size_t rounds_charged = 0;
};

/// adjacency: per-vertex neighbour lists over [0, n) (directed edges are
/// fine; reachability follows arcs). radius ≥ 1.
[[nodiscard]] BallCollection collect_balls(
    Cluster& cluster, const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t radius);

/// Volume (in words) that the ball occupies on a machine: one word per
/// member vertex plus one per adjacency entry among members.
[[nodiscard]] std::uint64_t ball_volume_words(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& ball);

}  // namespace mpcalloc::mpc
