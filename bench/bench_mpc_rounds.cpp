// E5a — Theorem 3/10: MPC round complexity of the phased (Algorithm 2 +
// graph exponentiation) driver vs the naive one-LOCAL-round-per-O(1)-MPC-
// rounds baseline, across arboricity.
//
// Instances are degree-bounded left-regular graphs (λ ≈ d/2): eq. (4)'s
// ball-volume constraint (d^B ≤ min(λ-ish, S)) is the real physics of the
// algorithm, and unbounded-degree inputs at finite n overflow machines for
// B ≥ 2 — the Cluster enforces this. Columns:
//   * naive MPC rounds      — Θ(log λ), 8 charged rounds per LOCAL round;
//   * phased, B per eq. (4) — the paper's safe choice at these (small) n;
//   * phased, forced B = 2  — the compression the theorem buys once balls
//                             fit, halving the per-LOCAL-round cost ("ball
//                             overflow" if the S-word budget rejects it).
//
// `--threads` drives the simulator's shard/tile parallelism (results are
// bitwise identical for any value); `--json=PATH` emits the round counters
// and total wall time for the CI perf gate.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include "util/cli.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace mpcalloc;
  using namespace mpcalloc::bench;

  CliParser cli("E5a: MPC rounds, naive vs phased driver");
  cli.option("json", "", "write machine-readable metrics JSON to this path");
  cli.threads_option();
  cli.transport_option();
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = static_cast<std::size_t>(cli.get_size("threads"));
  const mpc::TransportKind transport =
      mpc::transport_kind_from_cli(cli.get("transport"));

  const double eps = 0.25;
  const std::size_t n = 1600;

  print_preamble("E5a: MPC rounds, naive vs phased driver",
                 "Theorem 3: O~(sqrt(log lambda)) MPC rounds in the sublinear "
                 "regime vs O(log lambda) for the naive simulation");

  JsonMetrics metrics("bench_mpc_rounds");
  WallTimer total_timer;

  Table table("left-regular L=R=1600, caps U[1,5], alpha=0.8, eps=0.25");
  table.header({"degree", "lambda lb", "local rounds", "naive MPC",
                "phased MPC (eq.4 B)", "phased MPC (B=2)", "ratio (B=2)"});

  for (const std::uint32_t degree : {4u, 8u, 16u, 32u, 64u}) {
    Xoshiro256pp rng(40 + degree);
    AllocationInstance instance;
    instance.graph = left_regular(n, n, degree, rng);
    instance.capacities = uniform_capacities(n, 1, 5, rng);
    const auto lambda_lb = estimate_arboricity(instance.graph).lower_bound;

    MpcDriverConfig config;
    config.epsilon = eps;
    config.alpha = 0.8;
    config.samples_per_group = 4;
    config.seed = 9;
    config.lambda = lambda_lb;
    config.num_threads = threads;
    config.transport = transport;

    const MpcRunResult naive = run_mpc_naive(instance, config);
    const MpcRunResult phased = run_mpc_phased(instance, config);

    MpcDriverConfig forced = config;
    forced.phase_length = 2;
    std::string forced_rounds = "ball overflow";
    std::string forced_ratio = "-";
    try {
      const MpcRunResult result = run_mpc_phased(instance, forced);
      forced_rounds = Table::integer(static_cast<long long>(result.mpc_rounds));
      forced_ratio = Table::num(fractional_ratio(instance, result.allocation), 3);
      metrics.counter("phased_b2_mpc_rounds_d" + std::to_string(degree),
                      static_cast<double>(result.mpc_rounds));
    } catch (const mpc::MpcCapacityError&) {
      // B exceeded eq. (4)'s safe value for this degree/S combination.
    }

    table.row({Table::integer(degree), Table::integer(lambda_lb),
               Table::integer(static_cast<long long>(naive.local_rounds)),
               Table::integer(static_cast<long long>(naive.mpc_rounds)),
               Table::integer(static_cast<long long>(phased.mpc_rounds)),
               forced_rounds, forced_ratio});

    const std::string suffix = "_d" + std::to_string(degree);
    metrics.counter("naive_mpc_rounds" + suffix,
                    static_cast<double>(naive.mpc_rounds));
    metrics.counter("phased_mpc_rounds" + suffix,
                    static_cast<double>(phased.mpc_rounds));
    metrics.counter("local_rounds" + suffix,
                    static_cast<double>(naive.local_rounds));
    metrics.counter("phased_peak_machine_words" + suffix,
                    static_cast<double>(phased.peak_machine_words));
  }
  table.print(std::cout);
  std::cout << "\nShape check: the naive column grows ~linearly in log lambda "
               "(Theta(log lambda) MPC rounds); phasing with B=2 cuts the "
               "per-LOCAL-round cost roughly in half wherever the radius-2 "
               "balls fit in S — the sqrt(log lambda) compression of Theorem "
               "3, whose asymptotic B needs n (and S=n^alpha) far beyond a "
               "laptop-scale simulation.\n";

  metrics.time_ms("total_sweep_ms", total_timer.millis());
  if (const std::string json_path = cli.get("json"); !json_path.empty()) {
    metrics.write(json_path);
    std::cout << "\nmetrics written to " << json_path << "\n";
  }
  return 0;
}
